#!/usr/bin/env python3
"""Virtual cut-through vs wormhole switching (flit-level engine).

Run:  python examples/switching_modes.py

Section V-A designs the deadlock-free DSN routing for "wormhole or
cut-through routing modes"; Section VII-A simulates virtual cut-through.
This example uses the cycle-driven flit-level engine to show *why* VCT
is the right choice at these packet sizes: once the per-VC buffer drops
below the credit round trip (buffer < ~2 x link latency x bandwidth),
wormhole serialization stretches every hop, and below the packet size
blocked packets stall stretched across switches.
"""

import numpy as np

from repro.core import DSNTopology
from repro.routing import DuatoAdaptiveRouting
from repro.sim import AdaptiveEscapeAdapter, FlitLevelSimulator, SimConfig
from repro.traffic import make_pattern
from repro.util import format_table


def main() -> None:
    topo = DSNTopology(16)
    cfg = SimConfig(warmup_ns=2000, measure_ns=8000, drain_ns=16000, seed=3)
    routing = DuatoAdaptiveRouting(topo)

    rows = []
    for buf in (33, 16, 8, 4):
        mode = "VCT" if buf >= cfg.packet_flits else f"wormhole({buf})"
        for load in (2.0, 6.0, 10.0):
            adapter = AdaptiveEscapeAdapter(routing, cfg.num_vcs, np.random.default_rng(0))
            pattern = make_pattern("uniform", topo.n * cfg.hosts_per_switch)
            r = FlitLevelSimulator(topo, adapter, pattern, load, cfg, buffer_flits=buf).run()
            rows.append([mode, buf, load, round(r.accepted_gbps, 2), round(r.avg_latency_ns, 1)])

    print(format_table(
        ["mode", "buf_flits", "offered", "accepted", "avg_lat_ns"],
        rows,
        title="Switching modes on a 16-switch DSN (33-flit packets)",
    ))
    print(
        "\nCredit round trip here is ~17 flit times: with 4-flit buffers a"
        "\nchannel sustains only 4/17 of its bandwidth per packet, which is"
        "\nexactly the latency blow-up in the table. The paper's VCT choice"
        "\n(buffers >= packet) avoids this and keeps blocked packets parked"
        "\nin a single switch -- also what its deadlock analysis assumes."
    )


if __name__ == "__main__":
    main()
