#!/usr/bin/env python3
"""Application kernels on DSN vs the baselines.

Run:  python examples/collective_workloads.py

The paper motivates DSN with latency-sensitive scientific applications
(Section I) but evaluates only synthetic patterns. This example runs the
communication kernels real applications use -- 2-D halo exchange
(stencil codes), ring allreduce (data-parallel training / reductions),
recursive-doubling butterfly, and staggered all-to-all (FFT transpose)
-- through the network simulator on all three topologies.
"""

import numpy as np

from repro.experiments import make_topology
from repro.routing import DuatoAdaptiveRouting
from repro.sim import AdaptiveEscapeAdapter, NetworkSimulator, SimConfig
from repro.traffic import make_collective
from repro.util import format_table


def main() -> None:
    cfg = SimConfig(warmup_ns=3000, measure_ns=10000, drain_ns=20000, seed=6)
    rows = []
    for kind in ("torus", "random", "dsn"):
        topo = make_topology(kind, 64, seed=0)
        routing = DuatoAdaptiveRouting(topo)
        for wl in ("halo_exchange", "ring_allreduce", "butterfly", "all_to_all"):
            adapter = AdaptiveEscapeAdapter(routing, cfg.num_vcs, np.random.default_rng(0))
            pattern = make_collective(wl, 64 * cfg.hosts_per_switch)
            r = NetworkSimulator(topo, adapter, pattern, 4.0, cfg).run()
            rows.append([topo.name, wl, round(r.avg_latency_ns, 1), round(r.avg_hops, 2)])

    print(format_table(
        ["topology", "kernel", "avg_lat_ns", "hops"],
        rows,
        title="Application kernels at 4 Gbit/s/host (64 switches, 256 ranks)",
    ))
    print(
        "\nRank-local kernels (halo, ring allreduce) are fast everywhere;"
        "\nDSN matches the torus on locality while keeping the random-like"
        "\nglobal latency that Fig. 10's synthetic patterns showed."
    )


if __name__ == "__main__":
    main()
