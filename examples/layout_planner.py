#!/usr/bin/env python3
"""Machine-room planning: cabinets, floor area and cabling bill.

Run:  python examples/layout_planner.py [n]

Uses the Section VI-B floorplan model to produce the deployment report
an operator would want before committing to a topology: cabinet grid,
floor footprint, and per-link-class cable statistics for DSN, 2-D torus
and the RANDOM (DLN-2-2) alternative -- including total cable, the
quantity the paper motivates with the Earth Simulator's 2000+ km of
cabling.
"""

import sys

from repro.core import DSNTopology
from repro.layout import Floorplan, cable_report
from repro.topologies import DLNRandomTopology, TorusTopology
from repro.util import format_table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1024

    fp = Floorplan(n)
    print(f"floorplan for {n} switches: {fp.num_cabinets} cabinets "
          f"({fp.rows} rows x {fp.per_row}), "
          f"{fp.floor_width_m:.1f} m x {fp.floor_depth_m:.1f} m of floor")

    rows = []
    class_rows = []
    for topo in (TorusTopology.square(n), DLNRandomTopology(n, seed=0), DSNTopology(n)):
        rep = cable_report(topo, floorplan=fp)
        rows.append(rep.row())
        for cls, (count, avg) in sorted(rep.per_class.items()):
            class_rows.append([rep.name, cls, count, round(avg, 2)])

    print()
    print(format_table(
        ["topology", "cables", "avg_m", "total_m", "max_m"],
        rows,
        title="Cabling bill of materials",
    ))
    print()
    print(format_table(
        ["topology", "link class", "count", "avg_m"],
        class_rows,
        title="Per-class breakdown",
    ))

    torus_total, rnd_total, dsn_total = rows[0][3], rows[1][3], rows[2][3]
    print(f"\nDSN total cable = {dsn_total / rnd_total:.0%} of RANDOM's, "
          f"{dsn_total / torus_total:.0%} of the torus's.")


if __name__ == "__main__":
    main()
