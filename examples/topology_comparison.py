#!/usr/bin/env python3
"""Regenerate the paper's graph-analysis figures (Figs. 7, 8, 9).

Run:  python examples/topology_comparison.py [--full]

Sweeps network sizes 32..2048 (paper's log2 N = 5..11) and prints the
three figure tables: diameter, average shortest path length, and
average cable length on the Section VI-B machine-room floorplan.
``--full`` includes the 2048-switch points (a few extra seconds).
"""

import sys

from repro.experiments import (
    fig7_diameter,
    fig8_aspl,
    fig9_cable,
    format_cable_sweep,
    format_hop_sweep,
)


def main() -> None:
    full = "--full" in sys.argv
    sizes = (32, 64, 128, 256, 512, 1024, 2048) if full else (32, 64, 128, 256, 512)

    print(format_hop_sweep(fig7_diameter(sizes=sizes), "Figure 7: diameter (hops)"))
    print()
    print(format_hop_sweep(fig8_aspl(sizes=sizes), "Figure 8: average shortest path length (hops)"))
    print()
    print(format_cable_sweep(fig9_cable(sizes=sizes), "Figure 9: average cable length (m)"))
    print(
        "\nShape to observe (paper Section VI): RANDOM wins hops but its"
        "\ncable cost explodes; DSN tracks RANDOM on hops and the torus on"
        "\ncable -- the layout-aware small-world compromise."
    )


if __name__ == "__main__":
    main()
