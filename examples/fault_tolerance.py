#!/usr/bin/env python3
"""Mid-run link failures and live rerouting on the paper trio.

Run:  python examples/fault_tolerance.py

The paper motivates low-degree networks partly by "their simple
management mechanisms for faults" (Section I). This example makes that
concrete with the Fig. 10 simulation setup -- uniform traffic over the
n=64 trio (torus / RANDOM / DSN) -- but with a *timed fault schedule*:
a quarter of the way into the run 2% of the links die, and halfway in
another 2% follow. The flit-level engine drops the packets caught on
the dead links, rebuilds the routing tables on the survivor graph
(fresh fingerprints, so no stale cached tables), and reroutes every
packet still in flight from wherever it is.

Watch three things in the table: how many packets each topology loses
at the instant of failure, how long the in-flight population takes to
drain onto the rebuilt tables (``recovery``), and how much accepted
throughput the degraded network retains after the last fault.
"""

from repro.experiments import paper_trio
from repro.faults import random_link_schedule, run_with_faults
from repro.sim import SimConfig
from repro.util import format_table


def main() -> None:
    n = 64
    cfg = SimConfig(warmup_ns=2000, measure_ns=8000, drain_ns=16000, seed=3)
    # Faults at 1/4 and 1/2 of the measurement window.
    t1 = cfg.warmup_ns + 0.25 * cfg.measure_ns
    t2 = cfg.warmup_ns + 0.50 * cfg.measure_ns
    offered = 4.0

    rows = []
    for topo in paper_trio(n, seed=0):
        schedule = random_link_schedule(
            topo, times_ns=[t1, t2], fraction_per_event=0.02, seed=7
        )
        r = run_with_faults(topo, schedule, offered_gbps=offered, config=cfg)
        recovery = max(f.recovery_ns for f in r.fault_records)
        rows.append([
            topo.name,
            sum(f.links_failed for f in r.fault_records),
            r.packets_dropped,
            round(recovery, 0),
            round(r.accepted_gbps, 2),
            round(r.post_fault_accepted_gbps, 2),
            round(r.avg_latency_ns, 1),
        ])

    print(format_table(
        ["topology", "links_lost", "pkts_dropped", "recovery_ns",
         "accepted", "post_fault", "avg_lat_ns"],
        rows,
        title=f"Timed link failures at n={n}, uniform {offered} Gbit/s/host "
              "(2% + 2% of links)",
    ))
    print(
        "\nEvery topology keeps delivering after losing 4% of its links:"
        "\nthe engine rebuilds minimal-adaptive + up*/down* escape tables"
        "\non the survivor graph at each event and in-flight packets"
        "\nre-resolve their route from their current switch. Only packets"
        "\nwith a flit physically on a dying link are lost -- the drop"
        "\ncount, not a hang, is the cost of the fault. Recovery is the"
        "\ntime until everything in flight at the fault instant drained."
    )


if __name__ == "__main__":
    main()
