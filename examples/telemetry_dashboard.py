#!/usr/bin/env python3
"""A telemetry-instrumented fault run: the observability walkthrough.

Run:  python examples/telemetry_dashboard.py [n]

Enables the telemetry subsystem (`repro.telemetry`), runs a small
Fig. 10-style simulation on a DSN with a link failure injected mid-run,
and then plays dashboard: the per-interval time series around the fault
epoch (per-link utilization, queue occupancy, accepted load), the
hottest links of the run, and the merged metric registry. Finally the
whole thing is exported in both dashboard-ingestion formats:

  TELEMETRY_dashboard.jsonl  -- one JSON object per metric/sample
  TELEMETRY_dashboard.prom   -- Prometheus text exposition

Everything printed here comes from pure observation: the same run with
telemetry disabled produces bit-identical simulation results.
"""

import sys

from repro import telemetry
from repro.core import DSNTopology
from repro.faults import random_link_schedule, run_with_faults
from repro.sim import SimConfig
from repro.telemetry import export
from repro.util import format_table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    telemetry.enable()

    cfg = SimConfig(warmup_ns=2000, measure_ns=8000, drain_ns=16000, seed=3)
    topo = DSNTopology(n)
    fault_at = cfg.warmup_ns + cfg.measure_ns / 2
    sched = random_link_schedule(topo, [fault_at], 0.02, seed=7)

    print(f"running {topo.name} at 2.0 Gbit/s/host, "
          f"{len(sched.events[0].faults.dead_links)} links fail "
          f"at t={fault_at:.0f} ns ...\n")
    res = run_with_faults(topo, sched, offered_gbps=2.0, config=cfg)

    tel = res.telemetry
    print(f"engine={tel['engine']}  samples={tel['num_samples']} "
          f"(every {tel['interval_ns']:.0f} ns)  channels={tel['num_channels']}")
    print(f"delivered {res.delivered_measured} packets, "
          f"dropped {res.packets_dropped} on the dead links\n")

    # -- the time series around the fault epoch -------------------------
    mark = tel["faults"][0]
    window = [s for s in tel["samples"]
              if abs(s["t_ns"] - mark["t_ns"]) <= 4 * tel["interval_ns"]]
    rows = []
    for s in window:
        at_fault = "<- fault" if s["t_ns"] >= mark["t_ns"] > s["t_ns"] - tel["interval_ns"] else ""
        rows.append([
            round(s["t_ns"], 0),
            f"{s['util_mean']:.3f}",
            f"{s['util_max']:.3f}",
            f"{s['occ_mean']:.2f}",
            f"{s['occ_max']:.0f}",
            f"{s['accepted_gbps']:.2f}",
            at_fault,
        ])
    print(format_table(
        ["t_ns", "util_mean", "util_max", "occ_mean", "occ_max", "accepted", ""],
        rows,
        title=f"Per-interval samples around the fault "
              f"(t={mark['t_ns']:.0f} ns, {mark['links_failed']} links)",
    ))

    # -- hottest links of the whole run ---------------------------------
    print()
    print(format_table(
        ["from", "to", "mean_util"],
        [[u, v, f"{x:.3f}"] for u, v, x in
         [tuple(h) for h in tel["link_util"]["hot"]]],
        title="Hottest links (whole-run mean utilization)",
    ))

    # -- the merged registry (cache, routing, fault counters, spans) ----
    print()
    print(export.summary_table())

    # -- export both dashboard formats ----------------------------------
    jsonl = "TELEMETRY_dashboard.jsonl"
    prom = "TELEMETRY_dashboard.prom"
    lines = export.write_jsonl(jsonl, extra_records=tel["samples"])
    with open(prom, "w") as fh:
        fh.write(export.prometheus_text())
    print(f"\nwrote {jsonl} ({lines} records) and {prom}")


if __name__ == "__main__":
    main()
