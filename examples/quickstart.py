#!/usr/bin/env python3
"""Quickstart: build a DSN, inspect it, route on it, compare baselines.

Run:  python examples/quickstart.py [n]

Walks through the library's core API in the order the paper introduces
the ideas: construction (Section IV-B), degree properties (Fact 1),
custom routing (Fig. 2), graph metrics vs the torus and RANDOM
baselines (Figs. 7-8), and cable length on a machine-room floor
(Fig. 9).
"""

import sys

from repro.analysis import analyze
from repro.core import DSNTopology, dsn_route, dsn_theory
from repro.core.routing import Phase
from repro.layout import average_cable_length
from repro.topologies import DLNRandomTopology, TorusTopology
from repro.util import format_table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64

    # ------------------------------------------------------------------
    # 1. Build the basic DSN (x defaults to p-1, the paper's setting).
    # ------------------------------------------------------------------
    dsn = DSNTopology(n)
    th = dsn_theory(n)
    print(f"== {dsn.name} ==")
    print(f"p (super-node size) = {dsn.p}, r (tail) = {dsn.r}, x = {dsn.x}")
    print(f"degree census       = {dsn.degree_census()}  (Fact 1: max 5, avg <= 4)")
    print(f"super nodes         = {dsn.num_super_nodes}")

    # Every node knows its level, height and shortcut:
    v = 3
    print(
        f"node {v}: level {dsn.level(v)}, height {dsn.height(v)}, "
        f"shortcut -> {dsn.shortcut_from(v)} (span {dsn.shortcut_span(v)})"
    )

    # ------------------------------------------------------------------
    # 2. Route with the custom three-phase algorithm (Fig. 2).
    # ------------------------------------------------------------------
    s, t = 5, n // 2 + 3
    route = dsn_route(dsn, s, t)
    print(f"\nroute {s} -> {t}: {route.path}")
    print(
        "phases: PRE-WORK %d, MAIN %d, FINISH %d  (bound 3p+r = %d)"
        % (
            route.phase_length(Phase.PREWORK),
            route.phase_length(Phase.MAIN),
            route.phase_length(Phase.FINISH),
            th.routing_diameter_bound,
        )
    )

    # ------------------------------------------------------------------
    # 3. Compare with the paper's baselines (Figs. 7-9 in one table).
    # ------------------------------------------------------------------
    rows = []
    for topo in (TorusTopology.square(n), DLNRandomTopology(n, seed=0), dsn):
        m = analyze(topo)
        rows.append(
            [m.name, m.diameter, round(m.aspl, 2), round(m.average_degree, 2),
             round(average_cable_length(topo), 2)]
        )
    print()
    print(
        format_table(
            ["topology", "diameter", "aspl", "avg_degree", "avg_cable_m"],
            rows,
            title=f"DSN vs baselines at {n} switches",
        )
    )
    print(
        "\nThe DSN matches the random topology's hop metrics at a cable "
        "budget close to the torus -- the paper's headline result."
    )


if __name__ == "__main__":
    main()
