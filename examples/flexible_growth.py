#!/usr/bin/env python3
"""Growing a DSN one node at a time (Section V-C flexible topology).

Run:  python examples/flexible_growth.py

Operators rarely get to install a machine whose size is a multiple of
p. The flexible DSN starts from a convenient major size (the paper uses
DSN-10-1020) and inserts *minor* nodes with fractional IDs anywhere on
the ring; routing still works by addressing the major node just before
each minor. This script reproduces the paper's 1020 + 4 example and
then keeps growing the machine, checking routing health at every step.
"""

import random

from repro.core import FlexibleDSNTopology, flexible_route


def routing_health(topo, trials=400, seed=0) -> float:
    """Average route length over random pairs (all must deliver)."""
    rng = random.Random(seed)
    total = 0
    for _ in range(trials):
        s = rng.randrange(topo.n)
        t = rng.randrange(topo.n)
        r = flexible_route(topo, s, t)
        r.validate()
        total += r.length
    return total / trials


def main() -> None:
    # The paper's example: DSN-10-1020 plus four minors.
    minors = [10, 20, 30, 40]
    f = FlexibleDSNTopology(1020, minors_after=minors)
    print(f"{f.name}: n={f.n}, minors at labels "
          f"{[str(f.label(f.major_ring_id(m) + 1)) for m in minors]}")
    print(f"  avg route length over random pairs: {routing_health(f):.2f} hops")

    # Keep adding nodes (e.g. replacing failed blades, expanding racks).
    print("\ngrowing the machine:")
    for extra in (8, 16, 32):
        grown = FlexibleDSNTopology(1020, minors_after=list(range(0, extra * 10, 10)))
        print(
            f"  n={grown.n:5d} ({grown.num_minors:3d} minors)  "
            f"avg route {routing_health(grown):.2f} hops  "
            f"degree census {grown.degree_census()}"
        )

    print(
        "\nRoute lengths stay flat as minors are added: each minor costs "
        "only the final succ hops past its major (Section V-C)."
    )


if __name__ == "__main__":
    main()
