#!/usr/bin/env python3
"""Run the Fig. 10 network simulation: latency vs accepted traffic.

Run:  python examples/simulate_traffic.py [pattern] [--full]

``pattern`` is one of uniform / bit_reversal / neighboring (default
uniform). Simulates 64 switches x 4 hosts under the paper's Section
VII-A parameters (virtual cut-through, 4 VCs, 33-flit packets, 96 Gbps
links, 100 ns routers) with minimal-adaptive routing + up*/down* escape,
and prints one latency-throughput curve per topology.
"""

import sys

from repro.experiments import fig10, format_curves
from repro.sim import SimConfig


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    pattern = args[0] if args else "uniform"
    full = "--full" in sys.argv

    if full:
        loads = (1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0)
        config = SimConfig()
    else:
        loads = (1.0, 4.0, 8.0, 12.0)
        config = SimConfig(warmup_ns=4000, measure_ns=12000, drain_ns=24000)

    print(f"simulating 64 switches, pattern={pattern}, loads={loads} Gbit/s/host ...")
    curves = fig10(pattern, loads=loads, config=config, seed=1)
    print()
    print(format_curves(curves, f"Figure 10 ({pattern})"))

    by_name = {c.topology: c for c in curves}
    dsn = next(c for name, c in by_name.items() if name.startswith("DSN"))
    torus = next(c for name, c in by_name.items() if name.startswith("Torus"))
    gain = 1 - dsn.low_load_latency() / torus.low_load_latency()
    print(
        f"\nDSN reduces low-load latency vs torus by {gain:.1%} "
        "(paper: 15% on uniform, 4.3% on bit reversal)"
    )


if __name__ == "__main__":
    main()
