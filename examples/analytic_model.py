#!/usr/bin/env python3
"""Analytic latency model vs the simulator, plotted in the terminal.

Run:  python examples/analytic_model.py

Builds the M/D/1 channel model for the 64-switch DSN and torus, sweeps
offered load, overlays the event-driven simulator's measurements, and
prints the predicted saturation points. The model needs milliseconds;
the simulator needs seconds -- useful for screening topologies before
simulating them.
"""

import numpy as np

from repro.core import DSNTopology
from repro.routing import DuatoAdaptiveRouting
from repro.sim import AdaptiveEscapeAdapter, NetworkSimulator, SimConfig
from repro.sim.model import build_uniform_model
from repro.topologies import TorusTopology
from repro.traffic import make_pattern
from repro.viz import ascii_plot


def main() -> None:
    cfg = SimConfig(warmup_ns=3000, measure_ns=9000, drain_ns=18000, seed=3)
    loads = (1.0, 2.0, 4.0, 6.0, 8.0)

    series = {}
    for topo in (DSNTopology(64), TorusTopology.square(64)):
        model = build_uniform_model(topo, cfg)
        routing = DuatoAdaptiveRouting(topo)
        sim_lat = []
        for load in loads:
            adapter = AdaptiveEscapeAdapter(routing, cfg.num_vcs, np.random.default_rng(0))
            r = NetworkSimulator(topo, adapter, make_pattern("uniform", 256), load, cfg).run()
            sim_lat.append(r.avg_latency_ns)
        series[f"{topo.name} sim"] = sim_lat
        series[f"{topo.name} model"] = model.curve(loads)
        print(f"{topo.name}: predicted saturation {model.saturation_gbps():.1f} Gbit/s/host")

    print()
    print(ascii_plot(list(loads), series, width=56, height=14,
                     x_label="offered Gbit/s/host", y_label="avg latency ns"))


if __name__ == "__main__":
    main()
