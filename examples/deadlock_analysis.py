#!/usr/bin/env python3
"""Deadlock analysis demo: why DSN-E/DSN-V exist (Section V-A, Thm 3).

Run:  python examples/deadlock_analysis.py [n]

Builds the channel dependency graph (CDG) of (a) the basic DSN-Routing
and (b) the extended deadlock-free routing over all source-destination
pairs, then searches for cycles. The basic algorithm shares pred
channels between PRE-WORK and FINISH and closes dependency loops around
the ring; the extended discipline (Up links for PRE-WORK, Extra links
inside the 2p-node dateline region for FINISH) leaves a permanent gap
that no cycle can cross -- verified here exhaustively, which is the
computational form of the paper's Theorem 3.
"""

import sys

from repro.core import DSNETopology, DSNTopology, dsn_route, dsn_route_extended
from repro.routing import build_cdg, find_cycle, route_channels


def all_routes(topo, route_fn):
    return [
        route_channels(route_fn(topo, s, t))
        for s in range(topo.n)
        for t in range(topo.n)
        if s != t
    ]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64

    basic = DSNTopology(n)
    cdg = build_cdg(all_routes(basic, dsn_route))
    cycle = find_cycle(cdg)
    print(f"basic DSN-Routing on {basic.name}:")
    print(f"  CDG: {cdg.number_of_nodes()} channels, {cdg.number_of_edges()} dependencies")
    if cycle:
        print(f"  DEADLOCK RISK: dependency cycle of length {len(cycle)}, e.g.")
        for ch in cycle[:6]:
            print(f"    {ch[0]:>4} -> {ch[1]:<4} [{ch[2]}]")
        print("    ...")
    else:
        print("  unexpectedly acyclic!?")

    ext = DSNETopology(n)
    cdg_e = build_cdg(all_routes(ext, dsn_route_extended))
    cycle_e = find_cycle(cdg_e)
    print(f"\nextended routing on {ext.name} (+{len(ext.up_links)} Up, "
          f"+{len(ext.extra_links)} Extra links):")
    print(f"  CDG: {cdg_e.number_of_nodes()} channels, {cdg_e.number_of_edges()} dependencies")
    print("  acyclic =", cycle_e is None, " (Theorem 3 verified)" if cycle_e is None else "")


if __name__ == "__main__":
    main()
