"""Ablation: virtual cut-through vs wormhole switching (flit engine).

The paper's simulator uses virtual cut-through (Section VII-A) and its
deadlock discussion covers "wormhole or cut-through routing modes"
(Section V-A). The flit-level reference engine reproduces the classic
difference: once per-VC buffers drop below the credit round trip,
wormhole serialization stretches and saturation falls -- quantified
here on the 16-switch DSN.

Also cross-validates the two simulation engines at low load: the
event-driven engine (used for Fig. 10) and the cycle-driven flit engine
must agree on latency within cycle-quantization error.
"""

import numpy as np
import pytest
from conftest import once

from repro.core import DSNTopology
from repro.routing import DuatoAdaptiveRouting
from repro.sim import (
    AdaptiveEscapeAdapter,
    FlitLevelSimulator,
    NetworkSimulator,
    SimConfig,
)
from repro.traffic import make_pattern
from repro.util import format_table

CFG = SimConfig(warmup_ns=2000, measure_ns=8000, drain_ns=16000, seed=3)


def _run(topo, load, buffer_flits, seed=0):
    routing = DuatoAdaptiveRouting(topo)
    adapter = AdaptiveEscapeAdapter(routing, CFG.num_vcs, np.random.default_rng(seed))
    pat = make_pattern("uniform", topo.n * CFG.hosts_per_switch)
    return FlitLevelSimulator(topo, adapter, pat, load, CFG, buffer_flits=buffer_flits).run()


def test_vct_vs_wormhole(benchmark):
    topo = DSNTopology(16)

    def sweep():
        rows = []
        for buf in (33, 16, 8, 4):
            for load in (2.0, 6.0, 10.0):
                r = _run(topo, load, buf)
                rows.append(
                    [buf, load, round(r.accepted_gbps, 2), round(r.avg_latency_ns, 1)]
                )
        return rows

    rows = once(benchmark, sweep)
    print()
    print(
        format_table(
            ["buf_flits", "offered", "accepted", "avg_lat_ns"],
            rows,
            title="Switching-mode ablation (DSN, 16 switches; 33-flit packets)",
        )
    )
    by = {(r[0], r[1]): r for r in rows}
    # Deep wormhole (4-flit buffers) is strictly slower than VCT.
    assert by[(4, 6.0)][3] > by[(33, 6.0)][3]
    # All configurations still deliver (deadlock-free escape holds in
    # wormhole mode too).
    assert all(r[2] > 0 for r in rows)


def test_engine_cross_validation(benchmark):
    """Event-driven vs flit-level engine at low load."""
    topo = DSNTopology(16)

    def run_both():
        routing = DuatoAdaptiveRouting(topo)
        pat = make_pattern("uniform", 64)
        flit = FlitLevelSimulator(
            topo,
            AdaptiveEscapeAdapter(routing, CFG.num_vcs, np.random.default_rng(0)),
            pat,
            1.0,
            CFG,
        ).run()
        event = NetworkSimulator(
            topo,
            AdaptiveEscapeAdapter(routing, CFG.num_vcs, np.random.default_rng(0)),
            make_pattern("uniform", 64),
            1.0,
            CFG,
        ).run()
        return flit, event

    flit, event = once(benchmark, run_both)
    print(
        f"\nflit-level {flit.avg_latency_ns:.1f} ns vs event-driven "
        f"{event.avg_latency_ns:.1f} ns at 1 Gbit/s/host"
    )
    assert flit.avg_latency_ns == pytest.approx(event.avg_latency_ns, rel=0.06)
