"""Experiments E2 and E15 -- Figure 8: average shortest path length.

Regenerates Fig. 8 (ASPL vs network size) and checks the Section VII-B
text claim: at 64 switches the ASPL is 3.2 / 3.2 / 4.1 hops for
DSN / RANDOM / torus ("DSN improves ... by up to 55%" at large N).
"""

import pytest
from conftest import once

from repro.experiments import fig8_aspl, format_hop_sweep, hop_distribution_table


def test_fig8_aspl(benchmark, graph_sizes):
    rows = once(benchmark, fig8_aspl, sizes=graph_sizes)
    print()
    print(format_hop_sweep(rows, "Figure 8: average shortest path length (hops)"))

    for row in rows:
        dsn, torus, rnd = row.values["dsn"], row.values["torus"], row.values["random"]
        assert rnd <= dsn
        if row.n >= 64:
            assert dsn < torus
        assert dsn <= 1.5 * rnd

    best_gain = max(
        1 - row.values["dsn"] / row.values["torus"] for row in rows if row.n >= 256
    )
    assert best_gain >= 0.5, f"best ASPL gain over torus only {best_gain:.0%}"
    print(f"\nmax ASPL improvement over torus: {best_gain:.0%} (paper: up to 55%)")


def test_64switch_aspl_text_claim(benchmark):
    """E15: the Section VII-B quoted values 3.2 / 3.2 / 4.1 hops."""
    rows = once(benchmark, fig8_aspl, sizes=(64,))
    v = rows[0].values
    print(
        f"\n64-switch ASPL  measured: DSN={v['dsn']:.2f} RANDOM={v['random']:.2f} "
        f"torus={v['torus']:.2f}   (paper: 3.2 / 3.2 / 4.1)"
    )
    assert v["torus"] == pytest.approx(4.1, abs=0.1)
    assert v["dsn"] == pytest.approx(3.2, abs=0.35)
    assert v["random"] == pytest.approx(3.2, abs=0.25)


def test_hop_distribution(benchmark):
    """The distribution behind the averages: DSN's pair distances sit in
    a tight logarithmic band; the torus's tail reaches its diameter."""
    table = once(benchmark, hop_distribution_table, 256)
    print()
    print(table)
    assert "dsn" in table
