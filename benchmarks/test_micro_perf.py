"""Library micro-benchmarks (pytest-benchmark proper).

Not a paper artefact: these track the performance of the reproduction
itself -- topology construction, route computation, metric sweeps and
simulator event throughput -- so regressions in the hot paths show up.
"""

import numpy as np

from repro.analysis import shortest_path_matrix
from repro.core import DSNTopology, dsn_route
from repro.routing import DuatoAdaptiveRouting, UpDownRouting
from repro.sim import AdaptiveEscapeAdapter, NetworkSimulator, SimConfig
from repro.traffic import make_pattern


def test_dsn_construction_1024(benchmark):
    topo = benchmark(DSNTopology, 1024)
    assert topo.n == 1024


def test_dsn_route_throughput(benchmark):
    topo = DSNTopology(1024)
    pairs = [(i * 37 % 1024, i * 101 % 1024) for i in range(200)]
    pairs = [(s, t) for s, t in pairs if s != t]

    def route_batch():
        return [dsn_route(topo, s, t).length for s, t in pairs]

    lengths = benchmark(route_batch)
    assert max(lengths) <= 3 * topo.p + topo.r


def test_aspl_2048(benchmark):
    topo = DSNTopology(2048)
    dist = benchmark(shortest_path_matrix, topo)
    assert dist.shape == (2048, 2048)


def test_updown_table_build_128(benchmark):
    topo = DSNTopology(128)
    ud = benchmark(UpDownRouting, topo)
    assert ud.distance(0, 64) >= 1


def test_simulator_throughput(benchmark):
    """Events processed for a 64-switch run at moderate load."""
    topo = DSNTopology(64)
    cfg = SimConfig(warmup_ns=2000, measure_ns=6000, drain_ns=10000, seed=2)
    routing = DuatoAdaptiveRouting(topo)

    def run():
        adapter = AdaptiveEscapeAdapter(routing, cfg.num_vcs, np.random.default_rng(0))
        pattern = make_pattern("uniform", 64 * cfg.hosts_per_switch)
        return NetworkSimulator(topo, adapter, pattern, 6.0, cfg).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.delivered_measured > 0


def test_flit_event_engine_throughput(benchmark):
    """Flit-level run under the event-driven engine at low load -- the
    regime where cost should track traffic, not simulated cycles."""
    from repro.sim import FlitLevelSimulator

    topo = DSNTopology(16)
    cfg = SimConfig(seed=2)
    routing = DuatoAdaptiveRouting(topo)

    def run():
        adapter = AdaptiveEscapeAdapter(routing, cfg.num_vcs, np.random.default_rng(0))
        pattern = make_pattern("uniform", 16 * cfg.hosts_per_switch)
        return FlitLevelSimulator(topo, adapter, pattern, 0.2, cfg, engine="event").run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.delivered_measured > 0
