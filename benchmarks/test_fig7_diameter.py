"""Experiment E1 -- Figure 7: diameter vs network size.

Regenerates the paper's Fig. 7 rows (DSN, 2-D torus, RANDOM = DLN-2-2
for N = 32..2048) and asserts the published shape: RANDOM lowest, DSN
close behind, torus increasingly worse -- "DSN improves the diameter
by up to 67%" over torus.
"""

from conftest import once

from repro.experiments import fig7_diameter, format_hop_sweep


def test_fig7_diameter(benchmark, graph_sizes):
    rows = once(benchmark, fig7_diameter, sizes=graph_sizes)
    print()
    print(format_hop_sweep(rows, "Figure 7: diameter vs network size (hops)"))

    for row in rows:
        dsn, torus, rnd = row.values["dsn"], row.values["torus"], row.values["random"]
        # RANDOM is the lowest (or ties) at every size.
        assert rnd <= dsn
        # DSN beats the torus from 64 switches up, increasingly so.
        if row.n >= 64:
            assert dsn < torus
        # DSN stays within a small factor of RANDOM (same-degree optimal).
        assert dsn <= 1.6 * rnd + 2

    # Paper: "improves the diameter ... by up to 67%".
    best_gain = max(
        1 - row.values["dsn"] / row.values["torus"] for row in rows if row.n >= 256
    )
    assert best_gain >= 0.6, f"best diameter gain over torus only {best_gain:.0%}"
    print(f"\nmax diameter improvement over torus: {best_gain:.0%} (paper: up to 67%)")


def test_fig7_dsn_diameter_logarithmic(benchmark, graph_sizes):
    """DSN's diameter grows ~logarithmically (the small-world effect):
    every doubling of N adds only ~1 hop."""
    rows = once(benchmark, fig7_diameter, sizes=graph_sizes)
    dsn = [row.values["dsn"] for row in rows]
    increments = [b - a for a, b in zip(dsn, dsn[1:])]
    assert all(inc <= 2 for inc in increments)
    assert dsn[-1] <= 2.5 * rows[-1].n.bit_length()
