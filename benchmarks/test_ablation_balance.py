"""Experiment E13 -- Section VII-B remark: traffic balance of the DSN
custom routing vs up*/down*.

The paper reports (results "not discussed in detail due to scope"):
"our custom routing makes traffic significantly more balanced than
using up*/down* routing". We route all ordered pairs both ways and
compare the channel-load distributions; a minimal-routing reference
marks the attainable floor.
"""

from conftest import once

from repro.experiments import compare_balance, format_balance


def test_custom_routing_balance(benchmark):
    cmp = once(benchmark, compare_balance, 64)
    print()
    print(format_balance(cmp))
    assert cmp.custom_beats_updown
    # "significantly": the hot-spot factor improves by >= 1.5x.
    assert cmp.updown.max_over_mean / cmp.custom.max_over_mean >= 1.5


def test_balance_scales_to_larger_networks(benchmark):
    cmp = once(benchmark, compare_balance, 128)
    print()
    print(format_balance(cmp))
    assert cmp.custom_beats_updown


def test_dynamic_balance_in_simulation(benchmark):
    """Dynamic (simulated) confirmation: measured channel utilization
    under load, pure up*/down* vs DSN custom routing vs adaptive."""
    import numpy as np

    from repro.core import DSNVTopology, dsn_route_extended
    from repro.routing import DuatoAdaptiveRouting
    from repro.sim import (
        AdaptiveEscapeAdapter,
        NetworkSimulator,
        SimConfig,
        dsn_custom_adapter,
    )
    from repro.traffic import make_pattern
    from repro.util import format_table

    cfg = SimConfig(warmup_ns=3000, measure_ns=10000, drain_ns=20000, seed=2)
    topo = DSNVTopology(64)
    routing = DuatoAdaptiveRouting(topo)
    cache = {}

    def route_fn(s, t):
        if (s, t) not in cache:
            cache[(s, t)] = dsn_route_extended(topo, s, t)
        return cache[(s, t)]

    def run_all():
        out = {}
        for name, adapter in (
            ("adaptive+escape", AdaptiveEscapeAdapter(routing, 4, np.random.default_rng(0))),
            ("up*/down*", AdaptiveEscapeAdapter(routing, 4, np.random.default_rng(0), escape_only=True)),
            ("dsn_custom", dsn_custom_adapter(route_fn)),
        ):
            sim = NetworkSimulator(
                topo, adapter, make_pattern("uniform", 256), 2.0, cfg,
                collect_channel_stats=True,
            )
            out[name] = sim.run()
        return out

    results = once(benchmark, run_all)
    rows = [
        [name, round(r.channel_utilization().mean(), 3),
         round(r.utilization_imbalance(), 2), round(r.avg_latency_ns, 1)]
        for name, r in results.items()
    ]
    print()
    print(format_table(
        ["routing", "mean_util", "max/mean", "avg_lat_ns"],
        rows,
        title="Dynamic channel utilization at 2 Gbit/s/host (DSN, 64 switches)",
    ))
    # The paper's claim holds dynamically too: custom routing spreads
    # load better than up*/down*.
    assert (
        results["dsn_custom"].utilization_imbalance()
        < results["up*/down*"].utilization_imbalance()
    )
