"""Experiments E7-E10 -- validation of Facts 1-3 and Theorems 1-2.

Prints measured-vs-bound tables for every analytical claim of Section
IV-C across network sizes, including sizes with and without an
incomplete final super node (r = 0 and r > 0).
"""

from conftest import once

from repro.experiments import check_degrees, check_line_cable, check_routing
from repro.util import format_table

SIZES = (32, 64, 100, 128, 250, 512, 1020, 1024, 2048)


def test_fact1_degrees(benchmark):
    """E7: degrees in {2..5}, average <= 4, at most p degree-5 nodes."""
    checks = once(benchmark, lambda: [check_degrees(n) for n in SIZES])
    print()
    print(
        format_table(
            ["n", "x", "min_deg", "max_deg", "avg_deg", "deg5", "deg5_bound", "verdict"],
            [c.row() for c in checks],
            title="Fact 1 / Theorem 1(a): DSN degree properties",
        )
    )
    assert all(c.ok for c in checks)


def test_fact2_fact3_theorem2a_routing(benchmark):
    """E8+E9: routing diameter <= 3p+r, diameter <= 2.5p+r,
    E[route] <= 2p, E[shortest] <= 1.5p."""

    def run():
        out = []
        for n in SIZES:
            sample = None if n <= 256 else 4000
            out.append(check_routing(n, sample_pairs=sample))
        return out

    checks = once(benchmark, run)
    print()
    print(
        format_table(
            [
                "n",
                "x",
                "rt_diam",
                "<=3p+r",
                "diam",
                "<=2.5p+r",
                "E[route]",
                "<=2p",
                "E[short]",
                "<=1.5p",
                "verdict",
            ],
            [c.row() for c in checks],
            title="Facts 2-3 / Theorem 2(a): path-length bounds",
        )
    )
    assert all(c.ok for c in checks)


def test_theorem2b_line_cable(benchmark):
    """E10: line-layout cable -- DSN ~n^2/p total, ~n/p per shortcut,
    vs DLN-2-2's ~n/4 per random chord; saving factor ~p/3."""
    checks = once(benchmark, lambda: [check_line_cable(n) for n in (64, 256, 1020, 2048)])
    print()
    print(
        format_table(
            [
                "n",
                "p",
                "dsn_avg_sc",
                "bound",
                "dln22_avg_sc",
                "expect",
                "saving",
                "~p/3",
                "verdict",
            ],
            [c.row() for c in checks],
            title="Theorem 2(b): line-layout cable lengths",
        )
    )
    assert all(c.ok for c in checks)
    # The saving factor grows with p, as the theorem promises.
    savings = [c.savings_factor for c in checks]
    assert savings[-1] > savings[0]
