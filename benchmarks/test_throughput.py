"""Extended experiment E32: measured saturation throughput.

The paper's throughput metric made explicit: "the largest amount of
traffic accepted by the network before the network is not saturated"
(Section VII-A), searched by bisection for each topology and pattern.
The Fig. 10 claim under test: "All the topologies have similar
throughput".
"""

import numpy as np
from conftest import once

from repro.experiments import make_topology
from repro.routing import DuatoAdaptiveRouting
from repro.sim import AdaptiveEscapeAdapter, NetworkSimulator, SimConfig, find_saturation
from repro.traffic import make_pattern
from repro.util import format_table

CFG = SimConfig(warmup_ns=3000, measure_ns=9000, drain_ns=18000, seed=2)


def test_saturation_throughput(benchmark):
    def sweep():
        rows = []
        sats = {}
        for kind in ("torus", "random", "dsn"):
            topo = make_topology(kind, 64, seed=0)
            routing = DuatoAdaptiveRouting(topo)

            def run_at(load, topo=topo, routing=routing):
                adapter = AdaptiveEscapeAdapter(
                    routing, CFG.num_vcs, np.random.default_rng(0)
                )
                pattern = make_pattern("uniform", 256)
                return NetworkSimulator(topo, adapter, pattern, load, CFG).run()

            s = find_saturation(run_at, resolution_gbps=1.0)
            sats[kind] = s.saturation_gbps
            rows.append(s.row())
        return rows, sats

    rows, sats = once(benchmark, sweep)
    print()
    print(format_table(
        ["topology", "pattern", "saturation_gbps", "accepted", "probes"],
        rows,
        title="Measured saturation throughput (uniform, 64 switches)",
    ))
    # "All the topologies have similar throughput" (Section VII-B).
    vals = list(sats.values())
    spread = max(vals) / min(vals)
    print(f"\nthroughput spread across topologies: {spread:.2f}x (paper: similar)")
    assert spread < 1.35
