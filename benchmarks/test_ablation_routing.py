"""Routing-scheme ablation on the 64-switch DSN and torus.

Compares, under uniform traffic:

* the paper's Section VII scheme (minimal-adaptive + up*/down* escape);
* pure up*/down* (the deadlock-free baseline the escape is built from);
* the DSN custom routing (deterministic, Section VII-B);
* minimal-adaptive with custom-routing escape -- the paper's Section
  VIII future work ("deadlock-free minimal custom routing on DSNs"),
  which needs no global spanning tree;
* DOR with VC datelines on the torus (its native routing) -- checking
  that up*/down* did not unfairly handicap the torus in Fig. 10.
"""

from conftest import once

from repro.experiments import run_curve
from repro.sim import SimConfig
from repro.util import format_table

CFG = SimConfig(warmup_ns=4000, measure_ns=12000, drain_ns=24000, seed=2)
LOADS = (2.0, 8.0)


def test_routing_scheme_ablation(benchmark):
    def sweep():
        rows = []
        for kind, routing in (
            ("dsn", "adaptive"),
            ("dsn", "updown"),
            ("dsn_v", "custom"),
            ("dsn_v", "minimal_custom"),
            ("torus", "adaptive"),
            ("torus", "dor"),
        ):
            curve = run_curve(kind, "uniform", loads=LOADS, n=64, config=CFG,
                              seed=1, routing=routing)
            for p in curve.points:
                rows.append([
                    curve.topology, routing, p.offered_gbps,
                    round(p.accepted_gbps, 2), round(p.avg_latency_ns, 1),
                    round(p.avg_hops, 2),
                ])
        return rows

    rows = once(benchmark, sweep)
    print()
    print(format_table(
        ["topology", "routing", "offered", "accepted", "avg_lat_ns", "hops"],
        rows,
        title="Routing-scheme ablation, uniform traffic, 64 switches",
    ))

    def lat(topo_prefix, routing, load):
        return next(
            r[4] for r in rows
            if r[0].startswith(topo_prefix) and r[1] == routing and r[2] == load
        )

    # Adaptivity helps: adaptive+escape beats pure up*/down* at load.
    assert lat("DSN", "adaptive", 8.0) < lat("DSN", "updown", 8.0)
    # The future-work scheme beats the plain custom routing at low load
    # (minimal paths) -- the point of making the custom routing minimal.
    assert lat("DSN-V", "minimal_custom", 2.0) < lat("DSN-V", "custom", 2.0)
    # DOR does not change the torus's standing vs DSN at low load.
    assert lat("DSN", "adaptive", 2.0) < lat("Torus", "dor", 2.0)
