"""Sensitivity analysis E26: Fig. 9's shape vs floorplan conventions.

The paper does not pin down the per-cabinet wiring-overhead convention
or how full cabinets are; EXPERIMENTS.md claims the Fig. 9 *shape*
(RANDOM greatly exceeds DSN; DSN within ~1.5x of torus) is insensitive
to those choices. This experiment proves it by sweeping the overhead
(0 / 2 / 4 m per endpoint) and cabinet occupancy (8 / 16 / 32 switches)
at n = 1024.
"""

from conftest import once

from repro.experiments import make_topology
from repro.layout import FloorplanConfig, average_cable_length
from repro.util import format_table


def test_fig9_shape_robust_to_conventions(benchmark):
    n = 1024

    def sweep():
        rows = []
        for per_cab in (8, 16, 32):
            for overhead in (0.0, 2.0, 4.0):
                cfg = FloorplanConfig(
                    switches_per_cabinet=per_cab, overhead_per_cabinet_m=overhead
                )
                vals = {
                    kind: average_cable_length(make_topology(kind, n, seed=0), config=cfg)
                    for kind in ("torus", "random", "dsn")
                }
                rows.append([
                    per_cab, overhead,
                    round(vals["torus"], 2), round(vals["random"], 2), round(vals["dsn"], 2),
                    round(vals["dsn"] / vals["random"], 3),
                    round(vals["dsn"] / vals["torus"], 3),
                ])
        return rows

    rows = once(benchmark, sweep)
    print()
    print(format_table(
        ["sw/cab", "overhead_m", "torus", "random", "dsn", "dsn/random", "dsn/torus"],
        rows,
        title=f"Fig. 9 sensitivity to floorplan conventions (n={n})",
    ))
    for row in rows:
        dsn_over_random, dsn_over_torus = row[5], row[6]
        # Under every convention: DSN clearly beats RANDOM...
        assert dsn_over_random < 0.85
        # ...and stays in the torus's neighbourhood.
        assert dsn_over_torus < 1.6
