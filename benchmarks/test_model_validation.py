"""Extended experiment E24: analytic model vs event-driven simulator.

The M/D/1 channel model (Dally-Towles methodology) predicts each
Fig. 10 curve from the topology and routing alone. Validating it
against the simulator both sanity-checks the simulator (two independent
implementations of the same physics) and gives a fast screening tool
for new topologies.
"""

import numpy as np
from conftest import once

from repro.experiments import make_topology
from repro.routing import DuatoAdaptiveRouting
from repro.sim import AdaptiveEscapeAdapter, NetworkSimulator, SimConfig
from repro.sim.model import build_uniform_model
from repro.traffic import make_pattern
from repro.util import format_table

CFG = SimConfig(warmup_ns=4000, measure_ns=12000, drain_ns=24000, seed=3)
LOADS = (1.0, 4.0, 8.0)


def test_model_vs_simulator(benchmark):
    def sweep():
        rows = []
        errors = []
        for kind in ("torus", "random", "dsn"):
            topo = make_topology(kind, 64, seed=0)
            model = build_uniform_model(topo, CFG)
            routing = DuatoAdaptiveRouting(topo)
            for load in LOADS:
                adapter = AdaptiveEscapeAdapter(routing, CFG.num_vcs, np.random.default_rng(0))
                sim = NetworkSimulator(
                    topo, adapter, make_pattern("uniform", 256), load, CFG
                ).run()
                pred = model.latency_ns(load)
                err = pred / sim.avg_latency_ns - 1
                errors.append(abs(err))
                rows.append([
                    topo.name, load, round(sim.avg_latency_ns, 1),
                    round(pred, 1), f"{err:+.1%}",
                ])
            rows.append([topo.name, "sat", "-", round(model.saturation_gbps(), 1), ""])
        return rows, errors

    rows, errors = once(benchmark, sweep)
    print()
    print(format_table(
        ["topology", "offered", "sim_lat_ns", "model_lat_ns", "error"],
        rows,
        title="Analytic M/D/1 model vs event-driven simulator (uniform)",
    ))
    # The model tracks the simulator within 10% at every point below
    # saturation.
    assert max(errors) < 0.10
