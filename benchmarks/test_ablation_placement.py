"""Extended experiment E19: placement-optimization gains (refs [7], [11]).

Optimizes the switch-to-cabinet assignment with simulated annealing and
measures how much total cable each topology recovers over the
conventional layout. The layout-aware thesis quantified: DSN gains
essentially nothing (already laid out well), and RANDOM cannot be fixed
by placement -- matching ref [11]'s "less reduction ... in low-radix
networks".
"""

from conftest import once

from repro.experiments import placement_table


def test_placement_gains(benchmark):
    table, results = once(benchmark, placement_table, n=256, iterations=15_000)
    print()
    print(table)
    by = {r.name.split("-")[0]: r for r in results}
    # DSN's conventional layout is already near-optimal.
    assert by["DSN"].gain < 0.05
    # No topology loses cable by optimizing.
    assert all(r.gain >= 0 for r in results)
    # RANDOM keeps a large absolute penalty even after optimization --
    # placement cannot create locality a random graph does not have.
    assert by["DLN"].optimized_total_m > 1.2 * by["DSN"].optimized_total_m
