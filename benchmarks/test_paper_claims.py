"""Experiment E29: the consolidated paper-claims scorecard.

Runs every quantitative claim of the paper (abstract, Sections IV-VII)
as a machine check and prints the verdict table -- the one-screen answer
to "did the reproduction work?". EXACT claims must meet the stated
number/bound; SHAPE claims must hold qualitatively with the magnitude
reported (the simulation-model-dependent ones, per DESIGN.md
substitution #1).
"""

from conftest import once

from repro.experiments.claims import check_claims, format_claims


def test_paper_claims_scorecard(benchmark):
    results = once(benchmark, check_claims)
    print()
    print(format_claims(results))
    failed = [r for r in results if not r.ok]
    assert not failed, f"claims failed: {[r.claim.claim_id for r in failed]}"
