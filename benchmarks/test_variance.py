"""Extended experiment E31: seed variance of the RANDOM baseline.

Figs. 7-9 use one sample from the DLN-2-2 ensemble; this shows the
comparison does not hinge on the sample: across seeds, RANDOM's hop
metrics stay tightly clustered below DSN's and its cable cost stays
well above.
"""

from conftest import once

from repro.experiments.variance import format_ensemble, random_ensemble


def test_random_baseline_variance(benchmark):
    stats = once(
        benchmark, lambda: [random_ensemble(n, seeds=5) for n in (64, 256, 1024)]
    )
    print()
    print(format_ensemble(stats))
    for s in stats:
        # hop metrics: tiny spread, always at or below DSN
        assert s.aspl_std < 0.1
        assert s.aspl_mean <= s.dsn_aspl + 0.05
        # cable: RANDOM above DSN for every plausible draw at scale
        if s.n >= 256:
            assert s.cable_mean - 3 * s.cable_std > s.dsn_cable * 0.95
        assert s.orderings_stable
