"""Shared benchmark configuration.

Set ``REPRO_BENCH_FULL=1`` to run the full paper-scale sweeps (all seven
network sizes, seven-point load curves, longer measurement windows).
The default is a reduced but shape-preserving configuration so the whole
benchmark suite finishes in a few minutes.
"""

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return FULL


@pytest.fixture(scope="session")
def graph_sizes() -> tuple[int, ...]:
    """Network sizes for the Fig. 7-9 sweeps (always full: they are cheap)."""
    return (32, 64, 128, 256, 512, 1024, 2048)


@pytest.fixture(scope="session")
def sim_loads() -> tuple[float, ...]:
    """Offered loads (Gbit/s/host) for the Fig. 10 curves."""
    if FULL:
        return (1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0)
    return (1.0, 4.0, 8.0, 12.0)


@pytest.fixture(scope="session")
def sim_config():
    from repro.sim import SimConfig

    if FULL:
        return SimConfig(warmup_ns=10_000, measure_ns=30_000, drain_ns=40_000, seed=1)
    return SimConfig(warmup_ns=4_000, measure_ns=12_000, drain_ns=24_000, seed=1)


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The figure benches are measurements of a whole experiment, not
    microbenchmarks; one round keeps the suite fast while still
    recording wall time per experiment in the benchmark table.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
