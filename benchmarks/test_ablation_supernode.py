"""Design-choice ablation E25: why p = ceil(log2 n)?

The construction fixes the super-node size at ``p = ceil(log2 n)``:
exactly enough shortcut levels that the longest spans half the ring and
the shortest is local. This ablation sweeps p around the natural value
and measures the trade-off the choice optimizes:

* smaller p -> fewer shortcut levels -> the distance-halving chain
  bottoms out early and routing/diameter degrade;
* larger p -> shortcuts are rarer per node (lower degree, less cable)
  but each super node is a longer local walk -> hops degrade again;
* the natural p sits at the knee: near-minimal hops at near-minimal
  cable.
"""

from conftest import once

from repro.analysis import analyze
from repro.core import DSNTopology, dsn_route
from repro.layout import average_cable_length
from repro.util import format_table, ilog2_ceil


def test_supernode_size_tradeoff(benchmark):
    n = 512
    natural = ilog2_ceil(n)

    def sweep():
        rows = []
        for p in (natural - 4, natural - 2, natural, natural + 3, natural + 9):
            topo = DSNTopology(n, p=p)
            m = analyze(topo)
            worst = max(
                dsn_route(topo, s, t).length
                for s in range(0, n, 7)
                for t in range(0, n, 11)
            )
            rows.append([
                p,
                "(natural)" if p == natural else "",
                m.diameter,
                round(m.aspl, 3),
                round(m.average_degree, 2),
                round(average_cable_length(topo), 2),
                worst,
            ])
        return rows

    rows = once(benchmark, sweep)
    print()
    print(format_table(
        ["p", "", "diameter", "aspl", "avg_deg", "avg_cable_m", "rt_worst"],
        rows,
        title=f"Super-node size ablation at n={n} (natural p={natural})",
    ))

    by_p = {r[0]: r for r in rows}
    nat = by_p[natural]
    # The natural p is on the hop-metric pareto front: no swept p both
    # beats its ASPL *and* its cable.
    for p, row in by_p.items():
        if p == natural:
            continue
        assert not (row[3] < nat[3] and row[5] < nat[5]), (
            f"p={p} dominates the natural choice"
        )
    # Far-off p values clearly degrade hops.
    assert by_p[natural + 9][3] > 1.3 * nat[3]
    assert by_p[natural - 4][6] > 1.5 * nat[6]
