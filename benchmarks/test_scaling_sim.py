"""Extended experiment E21: the latency gap at larger network sizes.

Section VII-B: "We thus expect that our DSNs maintain lower latency
near to RANDOM topology as the network size becomes large, e.g., 2048
switches as shown in our graph analysis." The paper extrapolates from
hop counts; we simulate directly at 256 switches (1024 hosts) at low
load and check that the DSN-vs-torus latency gap *widens* relative to
64 switches, tracking the hop-count ratio.
"""

import pytest
from conftest import once

from repro.experiments import run_curve
from repro.sim import SimConfig
from repro.util import format_table

CFG = SimConfig(warmup_ns=3000, measure_ns=9000, drain_ns=18000, seed=2)


def test_latency_gap_widens_with_scale(benchmark):
    def sweep():
        rows = {}
        for n in (64, 256):
            for kind in ("torus", "random", "dsn"):
                curve = run_curve(kind, "uniform", loads=(2.0,), n=n, config=CFG, seed=1)
                p = curve.points[0]
                rows[(n, kind)] = (p.avg_latency_ns, p.avg_hops)
        return rows

    rows = once(benchmark, sweep)
    table = [
        [n, kind, round(rows[(n, kind)][0], 1), round(rows[(n, kind)][1], 2)]
        for n in (64, 256)
        for kind in ("torus", "random", "dsn")
    ]
    print()
    print(format_table(
        ["switches", "topology", "avg_lat_ns", "hops"],
        table,
        title="Low-load latency vs network size (2 Gbit/s/host, uniform)",
    ))

    gain64 = 1 - rows[(64, "dsn")][0] / rows[(64, "torus")][0]
    gain256 = 1 - rows[(256, "dsn")][0] / rows[(256, "torus")][0]
    print(f"\nDSN latency gain over torus: {gain64:.1%} at 64 -> {gain256:.1%} at 256 switches")
    assert gain256 > gain64
    # DSN stays near RANDOM as size grows (within 20%; the hop-count gap
    # between basic DSN and RANDOM is ~1.2x at 256 switches, Fig. 8).
    assert rows[(256, "dsn")][0] == pytest.approx(rows[(256, "random")][0], rel=0.20)
