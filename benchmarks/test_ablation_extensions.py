"""Experiments E11 and E14 -- the Section V extensions.

* E11 (Theorem 3): exhaustive channel-dependency-graph verification
  that the DSN-E/DSN-V extended routing is deadlock-free while the
  basic routing is not.
* E14 (Section V-B): DSN-D-d diameter/routing-diameter ablation against
  the basic DSN -- the paper promises ~(7/4)p diameter and ~2p routing
  diameter for DSN-D-2.
* Extension cost accounting: extra cables of DSN-E vs DSN-V's extra
  virtual channels.
"""

from conftest import once

from repro.analysis import analyze
from repro.core import (
    DSNDTopology,
    DSNETopology,
    DSNTopology,
    dsn_route,
    dsn_route_extended,
    dsn_theory,
    dsnd_route,
)
from repro.layout import cable_report
from repro.routing import build_cdg, find_cycle, route_channels
from repro.util import format_table


def test_theorem3_cdg_verification(benchmark):
    """E11: extended routing CDG acyclic; basic routing CDG cyclic."""

    def verify(n):
        topo = DSNETopology(n)
        ext = [
            route_channels(dsn_route_extended(topo, s, t))
            for s in range(n)
            for t in range(n)
            if s != t
        ]
        base = DSNTopology(n)
        basic = [
            route_channels(dsn_route(base, s, t))
            for s in range(n)
            for t in range(n)
            if s != t
        ]
        return find_cycle(build_cdg(ext)), find_cycle(build_cdg(basic))

    rows = []
    for n in (64, 100, 128):
        ext_cycle, basic_cycle = once(benchmark, verify, n) if n == 64 else verify(n)
        rows.append([n, "acyclic" if ext_cycle is None else "CYCLE", "cyclic" if basic_cycle else "ACYCLIC?!"])
        assert ext_cycle is None, f"extended routing CDG has a cycle at n={n}"
        assert basic_cycle is not None, f"basic routing CDG unexpectedly acyclic at n={n}"
    print()
    print(
        format_table(
            ["n", "extended (Thm 3)", "basic"],
            rows,
            title="Theorem 3: channel dependency graph verification",
        )
    )


def test_dsnd_diameter_ablation(benchmark):
    """E14: DSN-D-d vs basic DSN, diameter and routing diameter."""

    def measure(n):
        rows = []
        basic = DSNTopology(n)
        th = dsn_theory(n)
        basic_m = analyze(basic)
        basic_rt = max(
            dsn_route(basic, s, t).length
            for s in range(0, n, 3)
            for t in range(0, n, 5)
        )
        rows.append([basic.name, basic_m.diameter, basic_rt, round(basic_m.aspl, 2), basic.num_links])
        for d in (2, 3):
            topo = DSNDTopology(n, d=d)
            m = analyze(topo)
            rt = max(
                dsnd_route(topo, s, t).length
                for s in range(0, n, 3)
                for t in range(0, n, 5)
            )
            rows.append([topo.name, m.diameter, rt, round(m.aspl, 2), topo.num_links])
        return rows, th

    rows, th = once(benchmark, measure, 512)
    print()
    print(
        format_table(
            ["topology", "diameter", "routing_diam", "aspl", "links"],
            rows,
            title=f"DSN-D ablation at n=512 (p={th.p}: 7/4p={1.75*th.p:.1f}, 2p={2*th.p})",
        )
    )
    # DSN-D-2 routing diameter ~2p plus the express stride q (our
    # post-hoc express rewrite is slightly weaker than the paper's
    # sketched "updated" algorithm, which it does not specify).
    dsnd2 = DSNDTopology(512, d=2)
    assert rows[1][2] <= 2 * th.p + th.r + dsnd2.q + 2
    # And strictly better than its own truncated base without express
    # acceleration (apples-to-apples; the DSN-(p-1) row above has a
    # different shortcut budget).
    base_same_x = max(
        dsn_route(dsnd2, s, t).length for s in range(0, 512, 3) for t in range(0, 512, 5)
    )
    assert rows[1][2] <= base_same_x


def test_extension_cable_overhead(benchmark):
    """DSN-E pays for deadlock freedom in cables; DSN-V in VCs.
    Quantify the DSN-E wiring overhead on the Fig. 9 floorplan."""

    def measure(n):
        base = cable_report(DSNTopology(n))
        ext = cable_report(DSNETopology(n))
        return base, ext

    base, ext = once(benchmark, measure, 1024)
    overhead = ext.total_m / base.total_m - 1
    print(
        f"\nDSN-E wiring overhead at n=1024: {overhead:.1%} more total cable "
        f"({ext.num_cables - base.num_cables} extra local cables)"
    )
    # Up/Extra links are all local: the overhead stays modest.
    assert overhead < 0.60
