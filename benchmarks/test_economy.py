"""Extended experiment E28: the Section VI-B economy claim in currency.

"The total cost of interconnects ... increases in proportion to the
cable length ... We thus expect that our DSN topology has a good
economy." Priced out, the claim has structure worth reporting honestly:

* on the **topology-dependent** cost (cables: material + transceivers +
  installation), DSN beats RANDOM outright while nearly matching its
  hop count -- the cable-cost x hops product is DSN's win at any scale;
* on **total** cost, switch prices dilute the cable advantage: at the
  default prices RANDOM's hop lead wins total-cost x hops, and DSN
  overtakes it only once cable runs cost more per metre than the
  break-even price this experiment computes (long spans / premium
  optics / denser machines) -- which is exactly the regime the paper's
  quote ("in proportion to the cable length") presumes.
"""

from conftest import once

from repro.analysis import analyze
from repro.experiments import paper_trio
from repro.layout import CostModel, interconnect_cost
from repro.util import format_table


def _cable_cost(c):
    return c.cables_material + c.cables_fixed + c.installation


def test_cost_performance(benchmark):
    def sweep():
        rows = []
        data = {}
        for n in (1024, 2048):
            for topo in paper_trio(n, seed=0):
                cost = interconnect_cost(topo)
                aspl = analyze(topo).aspl
                key = (n, topo.name.split("-")[0])
                data[key] = (cost, aspl)
                rows.append([
                    n, topo.name, round(cost.total / 1e6, 3),
                    round(_cable_cost(cost) / 1e6, 3), round(aspl, 2),
                    round(_cable_cost(cost) * aspl / 1e6, 2),
                ])
        return rows, data

    rows, data = once(benchmark, sweep)
    print()
    print(format_table(
        ["N", "topology", "total_M", "cable_M", "aspl", "cable*hops (M)"],
        rows,
        title="Interconnect economy (Section VI-B claim priced out)",
    ))
    for n in (1024, 2048):
        dsn_c, dsn_a = data[(n, "DSN")]
        rnd_c, rnd_a = data[(n, "DLN")]
        torus_c, torus_a = data[(n, "Torus")]
        # The topology-dependent spend: DSN's good economy.
        assert _cable_cost(dsn_c) * dsn_a < _cable_cost(rnd_c) * rnd_a
        assert _cable_cost(dsn_c) * dsn_a < _cable_cost(torus_c) * torus_a


def test_break_even_cable_price(benchmark):
    """At what cable price per metre does DSN beat RANDOM on *total*
    cost x hops? (Above it, the paper's economy argument covers the
    whole bill, not just the cabling line item.)"""

    def compute(n=2048):
        trio = paper_trio(n, seed=0)
        aspl = {t.name: analyze(t).aspl for t in trio}
        for price in range(40, 4001, 40):
            model = CostModel(cable_cost_per_m=float(price))
            costs = {t.name: interconnect_cost(t, model=model) for t in trio}
            dsn = next(k for k in costs if k.startswith("DSN"))
            rnd = next(k for k in costs if k.startswith("DLN"))
            if costs[dsn].total * aspl[dsn] < costs[rnd].total * aspl[rnd]:
                return price, aspl
        return None, aspl

    price, _ = once(benchmark, compute)
    print(f"\nbreak-even cable price (DSN beats RANDOM on total cost x hops): "
          f"{price}/m at n=2048 (default model: 40/m)")
    assert price is not None, "no break-even below 4000/m -- cable model off"
    assert price > 40  # at the default price RANDOM's hop lead wins
