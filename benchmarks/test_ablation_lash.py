"""Extended experiment E30: LASH layered minimal routing.

How many virtual-channel layers does deterministic *minimal* routing
need on each topology (LASH, Skeie et al.) -- and does it fit the
paper's 4-VC budget? Then race LASH against the paper's
adaptive+escape scheme in the simulator: minimal + deterministic vs
minimal-adaptive.
"""

import numpy as np
import pytest
from conftest import once

from repro.experiments import make_topology
from repro.routing import DuatoAdaptiveRouting, lash_adapter, lash_layering
from repro.sim import AdaptiveEscapeAdapter, NetworkSimulator, SimConfig
from repro.traffic import make_pattern
from repro.util import format_table

CFG = SimConfig(warmup_ns=3000, measure_ns=10000, drain_ns=20000, seed=4)


def test_lash_layer_budget(benchmark):
    def sweep():
        rows = []
        for n in (64, 128):
            for kind in ("torus", "random", "dsn"):
                topo = make_topology(kind, n, seed=0)
                l = lash_layering(topo, max_layers=8)
                l.verify()
                rows.append([n, topo.name, l.num_layers, l.layer_sizes()])
        return rows

    rows = once(benchmark, sweep)
    print()
    print(format_table(
        ["N", "topology", "layers", "pairs per layer"],
        [[r[0], r[1], r[2], str(r[3])] for r in rows],
        title="LASH minimal routing: VC layers needed",
    ))
    # Everything fits the paper's 4 VCs at 64 switches.
    assert all(r[2] <= 4 for r in rows if r[0] == 64)


def test_lash_vs_adaptive_latency(benchmark):
    """Why the paper's scheme beats plain minimal-deterministic routing:
    LASH pins each pair to one path AND one VC, so it loses both the
    path diversity and three quarters of the buffering -- it matches
    adaptive at (near) zero load and congests far earlier."""
    topo = make_topology("dsn", 64, seed=0)

    def run_all():
        out = {}
        lash = lash_adapter(lash_layering(topo))
        adaptive_fn = lambda: AdaptiveEscapeAdapter(
            DuatoAdaptiveRouting(topo), CFG.num_vcs, np.random.default_rng(0)
        )
        for load in (0.5, 4.0):
            out[("lash", load)] = NetworkSimulator(
                topo, lash_adapter(lash_layering(topo)), make_pattern("uniform", 256),
                load, CFG,
            ).run()
            out[("adaptive", load)] = NetworkSimulator(
                topo, adaptive_fn(), make_pattern("uniform", 256), load, CFG
            ).run()
        return out

    results = once(benchmark, run_all)
    print()
    for (name, load), r in sorted(results.items()):
        print(f"  {name:9s} @{load:3.1f}G  lat={r.avg_latency_ns:7.1f} ns  "
              f"hops={r.avg_hops:.2f}  accepted={r.accepted_gbps:.2f}")
    # Both minimal: same hops, near-equal latency at very low load...
    assert results[("lash", 0.5)].avg_hops == pytest.approx(
        results[("adaptive", 0.5)].avg_hops, abs=0.15
    )
    assert results[("lash", 0.5)].avg_latency_ns < 1.2 * results[
        ("adaptive", 0.5)
    ].avg_latency_ns
    # ...but LASH congests much earlier at a load adaptive shrugs off.
    assert (
        results[("lash", 4.0)].avg_latency_ns
        > 1.5 * results[("adaptive", 4.0)].avg_latency_ns
    )
