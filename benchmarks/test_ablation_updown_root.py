"""Ablation E27: up*/down* root choice.

The paper (and its ref [13]) leave the spanning-tree root unspecified;
our default is the highest-degree switch. Since the escape layer's
quality affects the whole Section VII simulation, this ablation
quantifies the root's impact on the DSN: average legal-path length and
load balance for (a) node 0, (b) the highest-degree node, (c) a
minimum-eccentricity (center) node, and (d) a ring-antipodal node.
"""

import numpy as np
from conftest import once

from repro.analysis import channel_loads, eccentricities, load_stats
from repro.core import DSNTopology
from repro.routing import UpDownRouting
from repro.util import format_table


def test_updown_root_choice(benchmark):
    topo = DSNTopology(64)

    def sweep():
        ecc = eccentricities(topo)
        center = int(np.argmin(ecc))
        roots = {
            "node-0": 0,
            "max-degree": int(np.argmax(topo.degrees)),
            "center": center,
            "antipode": topo.n // 2,
        }
        rows = []
        for label, root in roots.items():
            ud = UpDownRouting(topo, root=root)
            loads = load_stats(channel_loads(topo, ud.path))
            rows.append([
                label, root, round(ud.average_path_length(), 3),
                round(loads.max_over_mean, 2), round(loads.gini, 3),
            ])
        return rows

    rows = once(benchmark, sweep)
    print()
    print(format_table(
        ["root choice", "node", "avg_path", "max/mean", "gini"],
        rows,
        title="up*/down* root-choice ablation (DSN, 64 switches)",
    ))
    paths = [r[2] for r in rows]
    # The root choice moves the average path length by < 15%: the
    # Fig. 10 comparison is not an artifact of a lucky root.
    assert max(paths) / min(paths) < 1.15
    # But it does move the hot-spot factor, which is why E13/E20 matter.
    hot = [r[3] for r in rows]
    assert max(hot) / min(hot) > 1.0
