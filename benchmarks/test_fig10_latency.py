"""Experiments E4-E6 -- Figure 10: latency vs accepted traffic.

Reproduces the paper's cycle-level simulation (Section VII): 64
switches x 4 hosts, 33-flit packets, 4 VCs, minimal-adaptive routing
with up*/down* escape, for (a) uniform, (b) bit-reversal and
(c) neighboring traffic. The assertions encode the published shape:

* DSN and RANDOM sit on nearly the same curve;
* DSN's low-load latency beats the torus (paper: ~15% on uniform,
  ~4.3% on bit reversal);
* all three topologies saturate at similar accepted traffic.

Absolute saturation points differ from the paper (our router model is
packet-granular and fully adaptive -- see DESIGN.md substitution #1);
the paper's x-axis reaches 12 Gbit/s/host, within which all three
topologies stay unsaturated here as there.
"""

import pytest
from conftest import once

from repro.experiments import fig10, format_curves


def _curves_by_kind(curves):
    by = {}
    for c in curves:
        key = "dsn" if c.topology.startswith("DSN") else (
            "torus" if c.topology.startswith("Torus") else "random"
        )
        by[key] = c
    return by


def _run_pattern(benchmark, pattern, loads, config):
    curves = once(
        benchmark, fig10, pattern, loads=loads, n=64, config=config, seed=1
    )
    print()
    print(format_curves(curves, f"Figure 10 ({pattern}): latency vs accepted traffic"))
    return _curves_by_kind(curves)


def _assert_common_shape(by, pattern):
    dsn, torus, rnd = by["dsn"], by["torus"], by["random"]
    # DSN latency below torus at low load.
    gain = 1 - dsn.low_load_latency() / torus.low_load_latency()
    print(f"\n{pattern}: DSN low-load latency gain over torus: {gain:.1%}")
    assert dsn.low_load_latency() < torus.low_load_latency()
    # DSN and RANDOM nearly coincide (a permutation can favour the
    # random graph's extra path diversity slightly, hence the margin).
    assert dsn.low_load_latency() == pytest.approx(rnd.low_load_latency(), rel=0.13)
    # Similar throughput: within the paper's 12 Gbit/s/host axis none
    # saturates much before the others.
    assert dsn.saturation_gbps() >= 0.8 * torus.saturation_gbps()
    assert rnd.saturation_gbps() >= 0.8 * torus.saturation_gbps()
    return gain


def test_fig10a_uniform(benchmark, sim_loads, sim_config):
    by = _run_pattern(benchmark, "uniform", sim_loads, sim_config)
    gain = _assert_common_shape(by, "uniform")
    # Paper: 15% latency improvement on uniform traffic.
    assert gain >= 0.05


def test_fig10b_bit_reversal(benchmark, sim_loads, sim_config):
    by = _run_pattern(benchmark, "bit_reversal", sim_loads, sim_config)
    gain = _assert_common_shape(by, "bit_reversal")
    assert gain >= 0.0  # paper: 4.3%


def test_fig10c_neighboring(benchmark, sim_loads, sim_config):
    by = _run_pattern(benchmark, "neighboring", sim_loads, sim_config)
    # Under 90%-local traffic all curves flatten; DSN must still not lose
    # to the torus at low load.
    assert by["dsn"].low_load_latency() <= 1.02 * by["torus"].low_load_latency()
