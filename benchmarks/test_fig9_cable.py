"""Experiments E3 and E12 -- Figure 9: average cable length vs size.

Regenerates Fig. 9 under the Section VI-B floorplan (16 switches per
0.6 m x 2.1 m cabinet, Manhattan distances, 2 m intra-cabinet cables,
per-cabinet wiring overhead) and asserts the published shape: RANDOM's
average cable grows steeply, DSN stays close to the torus, and DSN cuts
the average cable length vs RANDOM by up to ~38%.
"""

from conftest import once

from repro.experiments import dsn6_vs_torus3d, fig9_cable, format_cable_sweep


def test_fig9_cable(benchmark, graph_sizes):
    rows = once(benchmark, fig9_cable, sizes=graph_sizes)
    print()
    print(format_cable_sweep(rows, "Figure 9: average cable length (m)"))

    big = rows[-1]
    small = rows[0]
    # RANDOM's cable cost explodes with size...
    assert big.values["random"] > 2 * small.values["random"]
    # ...while DSN stays in the torus's neighbourhood.
    assert big.values["dsn"] < 1.5 * big.values["torus"]

    reduction = max(
        1 - row.values["dsn"] / row.values["random"] for row in rows
    )
    print(f"\nmax cable reduction vs RANDOM: {reduction:.0%} (paper: up to 38%)")
    assert reduction >= 0.25


def test_dsn6_vs_torus3d(benchmark):
    """E12 (Section VI-B remark): a degree-6 DSN has cable length in the
    neighbourhood of the 3-D torus under the conventional layout."""
    dsn6, torus3 = once(benchmark, dsn6_vs_torus3d, n=512)
    print(
        f"\ndegree-6 DSN avg cable {dsn6.average_m:.2f} m vs "
        f"3-D torus {torus3.average_m:.2f} m (n=512)"
    )
    assert dsn6.average_m < 1.6 * torus3.average_m
