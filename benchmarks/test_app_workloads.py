"""Extended experiment E23: application-shaped workloads.

The paper's motivation (Section I) is latency-sensitive scientific
applications, but its evaluation stops at synthetic patterns. Here the
trio runs the communication kernels such applications actually use --
2-D halo exchange, ring allreduce, recursive-doubling butterfly, and
staggered all-to-all -- at a fixed moderate load, comparing average
latency across topologies.
"""

import numpy as np
from conftest import once

from repro.experiments import make_topology
from repro.routing import DuatoAdaptiveRouting
from repro.sim import AdaptiveEscapeAdapter, NetworkSimulator, SimConfig
from repro.traffic import make_collective
from repro.util import format_table

CFG = SimConfig(warmup_ns=3000, measure_ns=10000, drain_ns=20000, seed=6)
WORKLOADS = ("halo_exchange", "ring_allreduce", "butterfly", "all_to_all")


def test_application_workloads(benchmark):
    def sweep():
        rows = []
        results = {}
        for kind in ("torus", "random", "dsn"):
            topo = make_topology(kind, 64, seed=0)
            routing = DuatoAdaptiveRouting(topo)
            for wl in WORKLOADS:
                adapter = AdaptiveEscapeAdapter(routing, CFG.num_vcs, np.random.default_rng(0))
                pattern = make_collective(wl, 64 * CFG.hosts_per_switch)
                r = NetworkSimulator(topo, adapter, pattern, 4.0, CFG).run()
                rows.append([topo.name, wl, round(r.avg_latency_ns, 1), round(r.avg_hops, 2)])
                results[(kind, wl)] = r
        return rows, results

    rows, results = once(benchmark, sweep)
    print()
    print(format_table(
        ["topology", "workload", "avg_lat_ns", "hops"],
        rows,
        title="Application kernels at 4 Gbit/s/host, 64 switches",
    ))

    # Everything delivers (no workload deadlocks or starves).
    assert all(r.delivered_fraction == 1.0 for r in results.values())
    # The window covers the first steps of each (bulk-synchronous)
    # collective, so destinations are rank-near: staggered all-to-all's
    # early steps are ring-adjacent, where DSN's layout matches ranks.
    assert (
        results[("dsn", "all_to_all")].avg_latency_ns
        <= results[("torus", "all_to_all")].avg_latency_ns
    )
    # Ring allreduce is DSN's home turf: rank+1 is ring/switch adjacent.
    assert results[("dsn", "ring_allreduce")].avg_hops <= 0.5
    assert (
        results[("dsn", "ring_allreduce")].avg_latency_ns
        <= results[("torus", "ring_allreduce")].avg_latency_ns
    )
    # Butterfly's early XOR partners map nicely onto both the ring and
    # the grid; DSN tracks RANDOM within ~15%.
    assert abs(
        results[("dsn", "butterfly")].avg_latency_ns
        - results[("random", "butterfly")].avg_latency_ns
    ) <= 0.15 * results[("random", "butterfly")].avg_latency_ns
