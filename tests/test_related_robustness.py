"""Tests for the related-work and robustness experiment drivers."""

import pytest

from repro.experiments import (
    bisection_table,
    diameter_degree_table,
    dln_family_table,
    fault_table,
    greedy_vs_dsn_routing,
    rerouting_table,
)


class TestRelatedWork:
    def test_diameter_degree_table_renders(self):
        out = diameter_degree_table()
        assert "DeBruijn" in out and "CCC" in out and "DSN" in out

    def test_dln_family_monotone(self):
        """As x grows, DLN-x diameter falls while degree rises."""
        import re

        out = dln_family_table(256)
        assert "DLN-2-256" in out
        # parse the diameter column (skip the title line, which also
        # begins with "DLN-x")
        rows = [l.split() for l in out.splitlines() if re.match(r"\s*DLN-\d+-\d+\s", l)]
        diams = [float(r[2]) for r in rows]
        degrees = [int(r[4]) for r in rows]
        assert diams == sorted(diams, reverse=True)
        assert degrees == sorted(degrees)

    def test_greedy_comparison_fields(self):
        cmp = greedy_vs_dsn_routing(8, samples=100, seed=0)
        assert cmp.n == 64
        assert cmp.kleinberg_mean > 0 and cmp.dsn_mean > 0
        assert cmp.kleinberg_max >= cmp.kleinberg_mean

    def test_greedy_scaling_is_polylog(self):
        """Greedy mean / log^2(n) stays roughly constant across sizes
        (the Theta(log^2 n) scaling of ref [16])."""
        import math

        ratios = []
        for side in (8, 16):
            cmp = greedy_vs_dsn_routing(side, samples=200, seed=1)
            ratios.append(cmp.kleinberg_mean / math.log2(cmp.n) ** 2)
        assert ratios[1] == pytest.approx(ratios[0], rel=0.5)

    def test_dsn_routing_bounded_by_2p(self):
        cmp = greedy_vs_dsn_routing(16, samples=200, seed=2)
        p = 8  # ceil(log2 256)
        assert cmp.dsn_mean <= 2 * p


class TestRobustnessDrivers:
    def test_fault_table(self):
        table, stats = fault_table(n=64, fractions=(0.02,), trials=3, seed=0)
        assert "Link-failure" in table
        assert len(stats) == 3  # three topologies x one fraction

    def test_rerouting_stretch_small(self):
        """Up*/down* recomputation absorbs 5% link failures with only a
        few percent of path stretch on every topology."""
        table, rows = rerouting_table(n=64, trials=3, seed=0)
        assert "rerouting" in table
        for r in rows:
            if r["stretch"] == r["stretch"]:  # not NaN
                assert 1.0 <= r["stretch"] < 1.3

    def test_bisection_table_ordering(self):
        table, ests = bisection_table(n=64, seed=0)
        by = {e.name.split("-")[0]: e for e in ests}
        # torus has the smallest bisection per node at equal degree
        assert by["Torus"].per_node_upper <= by["DLN"].per_node_upper
        assert "Bisection" in table
