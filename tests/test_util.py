"""Unit and property tests for repro.util."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    bit_reverse,
    ceil_div,
    check_index,
    check_positive,
    check_range,
    clockwise_distance,
    format_table,
    ilog2_ceil,
    ilog2_floor,
    is_power_of_two,
    make_rng,
    ring_distance,
)


class TestIntLog:
    @given(st.integers(min_value=1, max_value=2**60))
    def test_floor_definition(self, v):
        k = ilog2_floor(v)
        assert 2**k <= v < 2 ** (k + 1)

    @given(st.integers(min_value=1, max_value=2**60))
    def test_ceil_definition(self, v):
        k = ilog2_ceil(v)
        assert 2 ** (k - 1) < v <= 2**k or (v == 1 and k == 0)

    def test_powers_of_two_agree(self):
        for e in range(20):
            assert ilog2_floor(2**e) == ilog2_ceil(2**e) == e

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            ilog2_floor(bad)
        with pytest.raises(ValueError):
            ilog2_ceil(bad)


class TestPowerOfTwo:
    def test_known_values(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(-4)
        assert not is_power_of_two(1023)

    @given(st.integers(min_value=0, max_value=40))
    def test_all_powers(self, e):
        assert is_power_of_two(2**e)


class TestCeilDiv:
    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**6))
    def test_matches_float_ceil(self, a, b):
        import math

        assert ceil_div(a, b) == math.ceil(a / b) or ceil_div(a, b) == -(-a // b)

    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**6))
    def test_definition(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a <= q * b or (a == 0 and q == 0)

    def test_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(5, 0)


class TestBitReverse:
    def test_known(self):
        assert bit_reverse(0b0001, 4) == 0b1000
        assert bit_reverse(0b1011, 4) == 0b1101
        assert bit_reverse(0, 8) == 0

    @given(st.integers(min_value=1, max_value=16), st.data())
    def test_involution(self, width, data):
        v = data.draw(st.integers(min_value=0, max_value=2**width - 1))
        assert bit_reverse(bit_reverse(v, width), width) == v

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            bit_reverse(16, 4)
        with pytest.raises(ValueError):
            bit_reverse(-1, 4)


class TestRingDistances:
    @given(
        st.integers(min_value=3, max_value=10**6),
        st.data(),
    )
    def test_symmetry_and_bounds(self, n, data):
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        b = data.draw(st.integers(min_value=0, max_value=n - 1))
        d = ring_distance(a, b, n)
        assert d == ring_distance(b, a, n)
        assert 0 <= d <= n // 2

    @given(st.integers(min_value=3, max_value=10**6), st.data())
    def test_clockwise_plus_counterclockwise(self, n, data):
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        b = data.draw(st.integers(min_value=0, max_value=n - 1))
        if a != b:
            assert clockwise_distance(a, b, n) + clockwise_distance(b, a, n) == n
        else:
            assert clockwise_distance(a, b, n) == 0

    def test_known(self):
        assert clockwise_distance(5, 2, 8) == 5
        assert ring_distance(5, 2, 8) == 3


class TestRng:
    def test_int_seed_reproducible(self):
        assert make_rng(7).integers(1000) == make_rng(7).integers(1000)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.500" in out and "3.250" in out

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_range(self):
        check_range("x", 5, 0, 10)
        with pytest.raises(ValueError):
            check_range("x", 11, 0, 10)

    def test_check_index(self):
        check_index("x", 0, 5)
        with pytest.raises(ValueError):
            check_index("x", 5, 5)
        with pytest.raises(ValueError):
            check_index("x", -1, 5)
