"""Integration tests for the VCT network simulator (Section VII model)."""

import numpy as np
import pytest

from repro.analysis import average_shortest_path_length
from repro.core import DSNTopology, DSNVTopology, dsn_route_extended
from repro.routing import DuatoAdaptiveRouting
from repro.sim import (
    AdaptiveEscapeAdapter,
    NetworkSimulator,
    SimConfig,
    dsn_custom_adapter,
)
from repro.topologies import TorusTopology
from repro.traffic import make_pattern

FAST = SimConfig(warmup_ns=2000, measure_ns=6000, drain_ns=15000, seed=3)


def run_sim(topo, load=2.0, pattern="uniform", cfg=FAST, seed=0):
    routing = DuatoAdaptiveRouting(topo)
    adapter = AdaptiveEscapeAdapter(routing, cfg.num_vcs, np.random.default_rng(seed))
    pat = make_pattern(pattern, topo.n * cfg.hosts_per_switch)
    return NetworkSimulator(topo, adapter, pat, load, cfg).run()


class TestConservation:
    def test_all_measured_delivered_at_low_load(self):
        r = run_sim(DSNTopology(16), load=1.0)
        assert r.delivered_fraction == 1.0
        assert r.generated_measured > 0
        assert not r.saturated

    def test_accepted_tracks_offered_below_saturation(self):
        # n=16 with a 6 us window carries ~10% Poisson noise on the
        # delivered count; the tolerance reflects that, not model error
        # (the 64-switch Fig. 10 runs track within ~1%).
        r = run_sim(DSNTopology(16), load=4.0)
        assert r.accepted_gbps == pytest.approx(4.0, rel=0.3)
        assert not r.saturated


class TestLatencyModel:
    def test_zero_load_latency_matches_analytic(self):
        """The sim's low-load latency must equal the pipelined head
        latency + serialization predicted from the average hop count."""
        topo = DSNTopology(64)
        cfg = SimConfig(warmup_ns=2000, measure_ns=8000, drain_ns=10000)
        r = run_sim(topo, load=0.5, cfg=cfg)
        predicted = cfg.zero_load_latency_ns(r.avg_hops)
        assert r.avg_latency_ns == pytest.approx(predicted, rel=0.02)

    def test_hop_counts_near_shortest(self):
        topo = DSNTopology(64)
        r = run_sim(topo, load=0.5)
        # switch-level ASPL over random host pairs, adjusted for
        # same-switch pairs (hop 0)
        aspl = average_shortest_path_length(topo)
        assert r.avg_hops == pytest.approx(aspl, rel=0.1)

    def test_latency_increases_with_load(self):
        topo = DSNTopology(16)
        low = run_sim(topo, load=1.0)
        high = run_sim(topo, load=10.0)
        assert high.avg_latency_ns > low.avg_latency_ns

    def test_dsn_beats_torus_at_low_load(self):
        """The Fig. 10 headline: DSN's lower hop count gives lower latency."""
        dsn = run_sim(DSNTopology(64), load=1.0)
        torus = run_sim(TorusTopology((8, 8)), load=1.0)
        assert dsn.avg_latency_ns < torus.avg_latency_ns


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_sim(DSNTopology(16), load=3.0, seed=7)
        b = run_sim(DSNTopology(16), load=3.0, seed=7)
        assert a.avg_latency_ns == b.avg_latency_ns
        assert a.delivered_measured == b.delivered_measured


class TestSaturation:
    def test_saturation_flag_set_past_capacity(self):
        r = run_sim(DSNTopology(16), load=40.0)
        assert r.saturated
        assert r.accepted_gbps < 40.0


class TestCustomRoutingAdapter:
    def test_dsn_custom_routing_runs(self):
        topo = DSNVTopology(16)
        cache = {}

        def route_fn(s, t):
            if (s, t) not in cache:
                cache[(s, t)] = dsn_route_extended(topo, s, t)
            return cache[(s, t)]

        adapter = dsn_custom_adapter(route_fn)
        pat = make_pattern("uniform", 16 * FAST.hosts_per_switch)
        r = NetworkSimulator(topo, adapter, pat, 1.0, FAST).run()
        assert r.delivered_fraction == 1.0
        # deterministic non-minimal routing: hops >= shortest-path count
        assert r.avg_hops >= average_shortest_path_length(topo) - 0.5


class TestValidation:
    def test_pattern_size_mismatch_rejected(self):
        topo = DSNTopology(16)
        routing = DuatoAdaptiveRouting(topo)
        adapter = AdaptiveEscapeAdapter(routing, FAST.num_vcs, np.random.default_rng(0))
        pat = make_pattern("uniform", 10)
        with pytest.raises(ValueError, match="hosts"):
            NetworkSimulator(topo, adapter, pat, 1.0, FAST)

    def test_result_row_format(self):
        r = run_sim(DSNTopology(16), load=1.0)
        assert len(r.row()) == len(type(r).headers())
