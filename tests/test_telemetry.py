"""Tests for the unified telemetry subsystem.

Pins the contracts the rest of the stack relies on: registry
semantics, the disabled no-op fast path, worker-merge identity across
``REPRO_WORKERS``, sampler determinism (simulation results are
bit-identical telemetry on vs off), and exporter round-trips.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry import export, merge
from repro.telemetry.registry import TelemetryRegistry
from repro.telemetry.samplers import SimSampler
from repro.util.parallel import parallel_map
from repro.util.profiling import StageTimer


@pytest.fixture
def tel():
    """Telemetry on with a clean registry; restored to env default after."""
    telemetry.reset()
    telemetry.enable()
    yield telemetry
    telemetry.reset()
    telemetry.refresh_from_env()


def _instrumented(x):
    """Deterministic per-item instrumentation (module-level: picklable)."""
    telemetry.count("t.items")
    telemetry.count("t.value", x)
    telemetry.observe("t.obs", float(x), edges=(1.0, 2.0, 4.0, 8.0))
    telemetry.gauge_set("t.last", float(x))
    return x * 2


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_create_or_get(self, tel):
        reg = telemetry.get_registry()
        c1 = reg.counter("a.b")
        c1.inc()
        c1.inc(4)
        assert reg.counter("a.b") is c1
        assert c1.value == 5

    def test_gauge_last_write_wins(self, tel):
        g = telemetry.get_registry().gauge("g")
        g.set(1.0)
        g.set(2.5, tag="w1")
        assert g.value == 2.5 and g.tag == "w1"

    def test_histogram_buckets(self, tel):
        h = telemetry.get_registry().histogram("h", edges=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        # le semantics: 1.0 falls in the le=1.0 bucket (bisect_left).
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(106.5)
        assert h.mean == pytest.approx(106.5 / 4)

    def test_histogram_rejects_unsorted_edges(self, tel):
        with pytest.raises(ValueError):
            telemetry.get_registry().histogram("bad", edges=(2.0, 1.0))

    def test_clear_and_len(self, tel):
        reg = telemetry.get_registry()
        reg.counter("c")
        reg.gauge("g")
        reg.histogram("h")
        assert len(reg) == 3
        reg.clear()
        assert len(reg) == 0

    def test_helpers_write_default_registry(self, tel):
        telemetry.count("x", 3)
        telemetry.gauge_set("y", 1.5, tag="t")
        telemetry.observe("z", 0.5)
        reg = telemetry.get_registry()
        assert reg.counters["x"].value == 3
        assert reg.gauges["y"].value == 1.5
        assert reg.histograms["z"].count == 1


class TestDisabledNoOp:
    def test_helpers_do_nothing_when_disabled(self):
        telemetry.reset()
        telemetry.disable()
        telemetry.count("nope")
        telemetry.gauge_set("nope", 1.0)
        telemetry.observe("nope", 1.0)
        assert len(telemetry.get_registry()) == 0

    def test_spans_do_not_attach_when_disabled(self):
        telemetry.reset()
        telemetry.disable()
        with telemetry.span("s") as sp:
            pass
        assert sp.seconds >= 0.0  # always times
        assert telemetry.trace_tree() == []

    def test_env_refresh(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert telemetry.refresh_from_env() is True
        monkeypatch.delenv("REPRO_TELEMETRY")
        assert telemetry.refresh_from_env() is False


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_builds_tree(self, tel):
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("inner"):
                pass
        rows = dict((p, c) for p, _s, c in telemetry.span_rows())
        assert rows == {"outer": 1, "outer/inner": 2}

    def test_same_name_accumulates_one_node(self, tel):
        for _ in range(50):
            with telemetry.span("loop"):
                pass
        tree = telemetry.trace_tree()
        assert len(tree) == 1 and tree[0]["count"] == 50

    def test_decorator(self, tel):
        @telemetry.timed("deco")
        def f():
            return 7

        assert f() == 7
        assert [p for p, _s, _c in telemetry.span_rows()] == ["deco"]

    def test_stage_timer_delegates(self, tel):
        t = StageTimer()
        with t.stage("alpha"):
            pass
        with t.stage("alpha"):
            pass
        assert t.counts["alpha"] == 2
        rows = dict((p, c) for p, _s, c in telemetry.span_rows())
        assert rows.get("bench.alpha") == 2

    def test_stage_timer_format_unchanged(self, tel, tmp_path):
        t = StageTimer()
        with t.stage("s1"):
            pass
        d = t.as_dict()
        assert set(d["s1"]) == {"seconds", "intervals"}
        doc = t.write(str(tmp_path / "b.json"), extra={"ok": True})
        assert set(doc) == {
            "timestamp", "python", "platform", "cpu_count", "stages", "ok"
        }


# ----------------------------------------------------------------------
# worker merge
# ----------------------------------------------------------------------
class TestWorkerMerge:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_merge_identity_across_worker_counts(self, tel, workers):
        items = list(range(12))
        out = parallel_map(_instrumented, items, workers=workers)
        assert out == [x * 2 for x in items]
        reg = telemetry.get_registry()
        assert reg.counters["t.items"].value == len(items)
        assert reg.counters["t.value"].value == sum(items)
        h = reg.histograms["t.obs"]
        assert h.count == len(items)
        assert h.sum == pytest.approx(float(sum(items)))
        assert sum(h.counts) == len(items)
        # Last-write-wins gauge exists; pool runs carry a worker tag.
        assert "t.last" in reg.gauges
        if workers > 1:
            assert reg.gauges["t.last"].tag is not None

    def test_pool_counters_match_serial_exactly(self, tel):
        items = list(range(9))
        parallel_map(_instrumented, items, workers=1)
        serial = merge.snapshot()
        telemetry.reset()
        parallel_map(_instrumented, items, workers=3)
        pooled = merge.snapshot()
        assert serial["counters"] == pooled["counters"]
        sh, ph = serial["histograms"]["t.obs"], pooled["histograms"]["t.obs"]
        assert sh["counts"] == ph["counts"] and sh["count"] == ph["count"]

    def test_delta_excludes_preexisting_counts(self, tel):
        telemetry.count("pre", 100)
        base = merge.snapshot()
        telemetry.count("pre", 1)
        telemetry.count("new", 2)
        d = merge.delta(merge.snapshot(), base)
        assert d["counters"] == {"pre": 1, "new": 2}

    def test_merge_snapshot_semantics(self, tel):
        reg = TelemetryRegistry()
        snap = {
            "worker": 1234,
            "counters": {"c": 5},
            "gauges": {"g": (2.0, None)},
            "histograms": {
                "h": {"edges": (1.0, 2.0), "counts": [1, 0, 2], "sum": 9.0, "count": 3}
            },
        }
        merge.merge_snapshot(snap, registry=reg)
        merge.merge_snapshot(snap, registry=reg)
        assert reg.counters["c"].value == 10
        assert reg.gauges["g"].tag == "pid1234"
        h = reg.histograms["h"]
        assert h.counts == [2, 0, 4] and h.count == 6 and h.sum == 18.0

    def test_merge_rejects_edge_mismatch(self, tel):
        reg = TelemetryRegistry()
        reg.histogram("h", edges=(1.0, 2.0))
        snap = {
            "worker": 1,
            "counters": {},
            "gauges": {},
            "histograms": {
                "h": {"edges": (5.0,), "counts": [0, 0], "sum": 0.0, "count": 0}
            },
        }
        with pytest.raises(ValueError, match="edges differ"):
            merge.merge_snapshot(snap, registry=reg)


# ----------------------------------------------------------------------
# samplers + engine determinism
# ----------------------------------------------------------------------
def _run_flit(offered=2.0, tracer=None):
    from repro.core import DSNTopology
    from repro.routing import DuatoAdaptiveRouting
    from repro.sim import AdaptiveEscapeAdapter, FlitLevelSimulator, SimConfig
    from repro.traffic import make_pattern

    cfg = SimConfig(warmup_ns=1000, measure_ns=4000, drain_ns=8000, seed=3)
    topo = DSNTopology(16)
    adapter = AdaptiveEscapeAdapter(
        DuatoAdaptiveRouting(topo), cfg.num_vcs, np.random.default_rng(0)
    )
    pattern = make_pattern("uniform", topo.n * cfg.hosts_per_switch)
    return FlitLevelSimulator(topo, adapter, pattern, offered, cfg, tracer=tracer).run()


def _run_event(offered=2.0):
    from repro.core import DSNTopology
    from repro.routing import DuatoAdaptiveRouting
    from repro.sim import AdaptiveEscapeAdapter, NetworkSimulator, SimConfig
    from repro.traffic import make_pattern

    cfg = SimConfig(warmup_ns=1000, measure_ns=4000, drain_ns=8000, seed=3)
    topo = DSNTopology(16)
    adapter = AdaptiveEscapeAdapter(
        DuatoAdaptiveRouting(topo), cfg.num_vcs, np.random.default_rng(0)
    )
    pattern = make_pattern("uniform", topo.n * cfg.hosts_per_switch)
    return NetworkSimulator(topo, adapter, pattern, offered, cfg).run()


class TestSamplerDeterminism:
    def test_flit_results_identical_on_vs_off(self):
        telemetry.reset()
        telemetry.disable()
        off = _run_flit()
        telemetry.enable()
        try:
            on = _run_flit()
        finally:
            telemetry.reset()
            telemetry.refresh_from_env()
        assert off.latencies_ns == on.latencies_ns
        assert off.hop_counts == on.hop_counts
        assert off.delivered_measured == on.delivered_measured
        assert off.delivered_in_window_bits == on.delivered_in_window_bits
        assert off.telemetry == {}
        assert on.telemetry["engine"] == "flit"
        assert on.telemetry["num_samples"] == len(on.telemetry["samples"]) > 0

    def test_event_results_identical_on_vs_off(self):
        telemetry.reset()
        telemetry.disable()
        off = _run_event()
        telemetry.enable()
        try:
            on = _run_event()
        finally:
            telemetry.reset()
            telemetry.refresh_from_env()
        assert off.latencies_ns == on.latencies_ns
        assert off.delivered_measured == on.delivered_measured
        assert off.telemetry == {}
        assert on.telemetry["engine"] == "event"
        assert on.telemetry["num_samples"] > 0

    def test_enabled_runs_repeatable(self, tel):
        a = _run_flit()
        b = _run_flit()
        assert a.latencies_ns == b.latencies_ns
        assert a.telemetry["samples"] == b.telemetry["samples"]

    def test_sample_records_shape(self, tel):
        res = _run_flit()
        rec = res.telemetry["samples"][0]
        assert {"t_ns", "link_util", "queue_occ", "util_mean", "util_max",
                "occ_mean", "occ_max", "accepted_gbps", "offered_gbps"} <= set(rec)
        assert all(0.0 <= u <= 1.0 for u in rec["link_util"])

    def test_interval_env_knob(self, tel, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_INTERVAL_NS", "250")
        fine = _run_flit()
        monkeypatch.setenv("REPRO_TELEMETRY_INTERVAL_NS", "2000")
        coarse = _run_flit()
        assert fine.telemetry["num_samples"] > coarse.telemetry["num_samples"]
        assert fine.latencies_ns == coarse.latencies_ns

    def test_tracer_wired_into_flit_engine(self, tel):
        from repro.sim import TraceRecorder

        tr = TraceRecorder()
        res = _run_flit(tracer=tr)
        kinds = {e.kind for e in tr.events}
        assert kinds == {"inject", "hop", "deliver"}
        delivers = [e for e in tr.events if e.kind == "deliver"]
        assert len(delivers) >= res.delivered_measured
        reg = telemetry.get_registry()
        assert reg.counters["trace.events.deliver"].value == len(delivers)

    def test_tracer_truncation_counted(self, tel):
        from repro.sim import TraceRecorder

        tr = TraceRecorder(max_events=10)
        _run_flit(tracer=tr)
        assert tr.truncated and len(tr.events) == 10
        reg = telemetry.get_registry()
        assert reg.counters["trace.dropped_events"].value > 0


class TestSimSamplerUnit:
    def test_fault_marks_and_hot_links(self, tel):
        s = SimSampler([(0, 1), (1, 2)], num_hosts=4, interval_ns=100.0)
        s.sample(100.0, chan_busy_ns=np.array([50.0, 0.0]))
        s.on_fault(150.0, links_failed=2)
        s.sample(200.0, chan_busy_ns=np.array([90.0, 10.0]))
        assert s.fault_marks == [{"t_ns": 150.0, "links_failed": 2}]
        hot = s.hot_links(k=1)
        assert hot[0][0] == 0 and hot[0][1] == 1
        summ = s.finalize("unit")
        assert summ["faults"] == s.fault_marks
        assert summ["num_samples"] == 2
        reg = telemetry.get_registry()
        assert reg.counters["unit.fault_marks"].value == 1
        assert reg.gauges["unit.samples"].value == 2


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExport:
    def test_jsonl_round_trip(self, tel, tmp_path):
        telemetry.count("c", 2)
        telemetry.gauge_set("g", 1.5, tag="w")
        telemetry.observe("h", 0.5, edges=(1.0,))
        with telemetry.span("sp"):
            pass
        path = tmp_path / "t.jsonl"
        n = export.write_jsonl(path, extra_records=[{"t_ns": 1.0, "x": 2}])
        recs = export.read_jsonl(path)
        assert len(recs) == n == 5
        by_type = {r["type"]: r for r in recs}
        assert by_type["counter"]["value"] == 2
        assert by_type["gauge"]["tag"] == "w"
        assert by_type["histogram"]["counts"] == [1, 0]
        assert by_type["span"]["count"] == 1
        assert by_type["sample"]["x"] == 2

    def test_prometheus_text(self, tel):
        telemetry.count("a.b", 3)
        telemetry.gauge_set("g", 2.0, tag="pid9")
        telemetry.observe("h", 1.0, edges=(1.0, 2.0))
        telemetry.observe("h", 5.0, edges=(1.0, 2.0))
        text = export.prometheus_text()
        assert "# TYPE repro_a_b counter\nrepro_a_b 3" in text
        assert 'repro_g{worker="pid9"} 2.0' in text
        assert 'repro_h_bucket{le="1.0"} 1' in text
        assert 'repro_h_bucket{le="2.0"} 1' in text
        assert 'repro_h_bucket{le="+Inf"} 2' in text
        assert "repro_h_count 2" in text

    def test_run_summary_and_table(self, tel):
        telemetry.count("c")
        telemetry.observe("h", 0.5)
        summ = export.run_summary()
        assert summ["counters"] == {"c": 1}
        assert summ["histograms"]["h"]["count"] == 1
        table = export.summary_table()
        assert "Counters" in table and "Histograms" in table

    def test_empty_summary_message(self):
        telemetry.reset()
        assert "no telemetry recorded" in export.summary_table(TelemetryRegistry())


# ----------------------------------------------------------------------
# instrumented layers + CLI
# ----------------------------------------------------------------------
class TestInstrumentedLayers:
    def test_cache_counters(self, tel):
        from repro import cache
        from repro.core import DSNTopology

        cache.clear_cache()
        topo = DSNTopology(32)
        cache.distance_matrix(topo)
        cache.distance_matrix(topo)
        reg = telemetry.get_registry()
        assert reg.counters["cache.misses"].value >= 1
        assert reg.counters["cache.memory.hits"].value >= 1
        assert reg.gauges["cache.memory_bytes"].value > 0

    def test_routing_table_build_metrics(self, tel):
        from repro.core import DSNTopology
        from repro.routing.table import ShortestPathTable

        ShortestPathTable(DSNTopology(32)).next_hop_arrays()
        reg = telemetry.get_registry()
        assert reg.counters["routing.next_hop_builds"].value == 1
        assert reg.histograms["routing.next_hop_build_s"].count == 1
        assert reg.gauges["routing.next_hop_csr_bytes"].value > 0

    def test_blocked_bfs_metrics(self, tel):
        from repro.analysis.blocked import streaming_hop_stats
        from repro.core import DSNTopology

        streaming_hop_stats(DSNTopology(64), block_rows=16)
        reg = telemetry.get_registry()
        assert reg.counters["bfs.blocks"].value == 4
        assert reg.counters["bfs.pairs_reached"].value == 64 * 64
        assert "analysis.streaming_hop_stats" in dict(
            (p, c) for p, _s, c in telemetry.span_rows()
        )

    def test_fault_path_metrics(self, tel):
        from repro.core import DSNTopology
        from repro.faults import run_with_faults
        from repro.faults.schedule import random_link_schedule
        from repro.sim import SimConfig

        cfg = SimConfig(warmup_ns=500, measure_ns=3000, drain_ns=6000, seed=1)
        topo = DSNTopology(16)
        sched = random_link_schedule(topo, [1500.0], 0.05, seed=5)
        res = run_with_faults(topo, sched, config=cfg)
        reg = telemetry.get_registry()
        assert reg.counters["faults.events"].value == 1
        assert reg.histograms["faults.reroute_s"].count == 1
        assert len(res.telemetry["faults"]) == 1
        assert res.telemetry["faults"][0]["links_failed"] >= 1


class TestCli:
    def test_telemetry_wrapper_subcommand(self, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "telemetry",
             "--jsonl", str(jsonl), "--summary", "--", "info", "32"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "Counters" in proc.stdout
        recs = export.read_jsonl(jsonl)
        assert any(r["type"] == "counter" for r in recs)

    def test_telemetry_cannot_wrap_itself(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "telemetry", "--", "telemetry"],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == 2
