"""Tests for the optional process-pool mapper."""

import os

from repro.experiments.graphs import hop_sweep
from repro.util.parallel import default_workers, parallel_map


def _square(x):
    return x * x


class TestParallelMap:
    def test_serial_default(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_order_preserved_with_pool(self):
        assert parallel_map(_square, list(range(10)), workers=2) == [
            x * x for x in range(10)
        ]

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [7], workers=8) == [49]

    def test_env_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        assert default_workers() == 0
        monkeypatch.delenv("REPRO_WORKERS")
        assert default_workers() == 0

    def test_env_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert default_workers() == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_WORKERS", "AUTO")
        assert default_workers() == (os.cpu_count() or 1)

    def test_env_negative_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "-4")
        assert default_workers() == 0

    def test_chunked_pool_covers_all_items(self):
        # More items than workers*4 exercises the chunksize > 1 path.
        n = 40
        assert parallel_map(_square, list(range(n)), workers=2) == [
            x * x for x in range(n)
        ]


class TestSweepParallelEquivalence:
    def test_hop_sweep_same_results(self):
        serial = hop_sweep("diameter", sizes=(32, 64), workers=0)
        parallel = hop_sweep("diameter", sizes=(32, 64), workers=2)
        assert [r.values for r in serial] == [r.values for r in parallel]
