"""Tests for the DOR and minimal-custom-escape simulation adapters."""

import numpy as np
import pytest

from repro.core import DSNTopology, DSNVTopology
from repro.routing.dor import dor_path
from repro.sim import (
    DORAdapter,
    MinimalCustomEscapeAdapter,
    NetworkSimulator,
    SimConfig,
)
from repro.topologies import TorusTopology
from repro.traffic import make_pattern

CFG = SimConfig(warmup_ns=2000, measure_ns=8000, drain_ns=16000, seed=5)


class TestDORAdapter:
    def test_requires_grid(self):
        with pytest.raises(TypeError):
            DORAdapter(DSNTopology(16), 4)

    def test_requires_two_vcs(self):
        with pytest.raises(ValueError):
            DORAdapter(TorusTopology((4, 4)), 1)

    def test_follows_dor_path(self):
        topo = TorusTopology((4, 4))
        ad = DORAdapter(topo, 4)
        for s in range(16):
            for t in range(16):
                if s == t:
                    continue
                path = [s]
                state = ad.initial_state(s, t)
                u = s
                while u != t:
                    opts = ad.options(u, t, state)
                    assert len(opts) == 1  # DOR is deterministic
                    u = opts[0].next_node
                    state = opts[0].new_rstate
                    path.append(u)
                assert path == dor_path(topo, s, t)

    def test_dateline_switches_vc_class(self):
        topo = TorusTopology((8, 8))
        ad = DORAdapter(topo, 4)
        # route 1 -> 6 along x wraps through the 7|0 boundary
        s, t = topo.node_at((0, 6)), topo.node_at((0, 1))
        state = ad.initial_state(s, t)
        u = s
        vcs_seen = []
        while u != t:
            opt = ad.options(u, t, state)[0]
            vcs_seen.append(opt.vc_indices)
            u, state = opt.next_node, opt.new_rstate
        assert vcs_seen[0] == (0, 1)  # pre-dateline
        assert vcs_seen[-1] == (2, 3)  # post-dateline

    def test_simulation_runs_and_delivers(self):
        topo = TorusTopology((4, 4))
        ad = DORAdapter(topo, 4)
        pat = make_pattern("uniform", 64)
        r = NetworkSimulator(topo, ad, pat, 2.0, CFG).run()
        assert r.delivered_fraction == 1.0


class TestMinimalCustomEscape:
    def test_requires_dsn_extended(self):
        with pytest.raises(TypeError):
            MinimalCustomEscapeAdapter(DSNTopology(16), 4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            MinimalCustomEscapeAdapter(DSNVTopology(16), 3, np.random.default_rng(0))

    def test_adaptive_options_minimal_escape_last(self):
        topo = DSNVTopology(64)
        ad = MinimalCustomEscapeAdapter(topo, 4, np.random.default_rng(0))
        opts = ad.options(0, 40, ad.initial_state(0, 40))
        # last option is the escape (single VC in 0..2), others adaptive (VC 3)
        assert opts[-1].vc_indices[0] < 3
        for o in opts[:-1]:
            assert o.vc_indices == (3,)
            assert ad.table.distance(o.next_node, 40) == ad.table.distance(0, 40) - 1

    def test_escape_is_sticky_and_reaches(self):
        topo = DSNVTopology(64)
        ad = MinimalCustomEscapeAdapter(topo, 4, np.random.default_rng(0))
        # force escape from the start and walk it to the end
        state = ("escape", (ad._escape_hops(5, 40), 0))
        u = 5
        hops = 0
        while u != 40:
            opt = ad.options(u, 40, state)[0]
            u, state = opt.next_node, opt.new_rstate
            hops += 1
            assert hops < 100
        assert state[0] == "escape"

    def test_delivers_under_load(self):
        """Stress: no deadlock / loss at a load past the adaptive VC's
        comfort zone (the escape layer must absorb everything)."""
        topo = DSNVTopology(16)
        ad = MinimalCustomEscapeAdapter(topo, 4, np.random.default_rng(1))
        pat = make_pattern("uniform", 64)
        r = NetworkSimulator(topo, ad, pat, 6.0, CFG).run()
        assert r.delivered_fraction == 1.0

    def test_low_load_hops_near_minimal(self):
        from repro.analysis import average_shortest_path_length

        topo = DSNVTopology(64)
        ad = MinimalCustomEscapeAdapter(topo, 4, np.random.default_rng(0))
        pat = make_pattern("uniform", 256)
        r = NetworkSimulator(topo, ad, pat, 0.5, CFG).run()
        # mostly-minimal at low load: within half a hop of the ASPL
        assert r.avg_hops <= average_shortest_path_length(topo) + 0.5
