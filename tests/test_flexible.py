"""Tests for the flexible DSN with minor nodes (Section V-C)."""

from fractions import Fraction

import pytest

from repro.core import FlexibleDSNTopology, flexible_route


class TestConstruction:
    def test_paper_example_1020_plus_4(self):
        """Section V-C: size-1024 network = DSN-10-1020 + 4 minors."""
        f = FlexibleDSNTopology(1020, minors_after=[10, 20, 30, 40])
        assert f.n == 1024
        assert f.num_minors == 4
        assert f.major_dsn.p == 10

    def test_fractional_labels(self):
        f = FlexibleDSNTopology(1020, minors_after=[10, 20])
        ring_id = f.major_ring_id(10) + 1
        assert f.is_minor(ring_id)
        assert f.label(ring_id) == Fraction(21, 2)  # "10 1/2"

    def test_multiple_minors_same_slot(self):
        f = FlexibleDSNTopology(100, minors_after=[5, 5])
        base = f.major_ring_id(5)
        assert f.is_minor(base + 1) and f.is_minor(base + 2)
        assert f.label(base + 1) == Fraction(5) + Fraction(1, 3)
        assert f.label(base + 2) == Fraction(5) + Fraction(2, 3)

    def test_majors_keep_shortcuts(self):
        f = FlexibleDSNTopology(100, minors_after=[3])
        base = f.major_dsn
        for major in range(100):
            sc = base.shortcut_from(major)
            if sc is not None:
                assert f.has_link(f.major_ring_id(major), f.major_ring_id(sc))

    def test_minors_are_degree_2(self):
        f = FlexibleDSNTopology(100, minors_after=[7, 42])
        for v in range(f.n):
            if f.is_minor(v):
                assert f.degree(v) == 2

    def test_rejects_bad_position(self):
        with pytest.raises(ValueError):
            FlexibleDSNTopology(100, minors_after=[100])

    def test_major_before(self):
        f = FlexibleDSNTopology(100, minors_after=[7])
        rid = f.major_ring_id(7)
        assert f.major_before(rid) == 7
        assert f.major_before(rid + 1) == 7  # the minor
        assert f.major_before(rid + 2) == 8


class TestRouting:
    def test_exhaustive_small(self):
        f = FlexibleDSNTopology(60, minors_after=[5, 20, 20, 47])
        for s in range(f.n):
            for t in range(f.n):
                r = flexible_route(f, s, t)
                r.validate()
                for h in r.hops:
                    assert f.has_link(h.src, h.dst)

    def test_minor_to_adjacent_cases(self):
        f = FlexibleDSNTopology(60, minors_after=[5, 5])
        m1 = f.major_ring_id(5) + 1
        m2 = m1 + 1
        # minor -> its preceding minor (backs up past it)
        assert flexible_route(f, m2, m1).length == 1
        # minor -> its major
        assert flexible_route(f, m1, f.major_ring_id(5)).length == 1
        # major -> its minor
        assert flexible_route(f, f.major_ring_id(5), m2).length == 2

    def test_trivial(self):
        f = FlexibleDSNTopology(60, minors_after=[5])
        assert flexible_route(f, 3, 3).length == 0

    def test_no_minors_matches_plain_sizes(self):
        f = FlexibleDSNTopology(64, minors_after=[])
        assert f.n == 64
        assert f.num_minors == 0
        r = flexible_route(f, 0, 40)
        r.validate()
