"""Tests for the shared-memory broadcast substrate (repro.util.shm).

The contract: ``broadcast=`` arrays observed by a task are equal bytes
on every path -- serial, pooled shared-memory, pooled ``REPRO_SHM=off``
pickle fallback -- and no ``/dev/shm`` segment outlives its publisher,
even when a worker crashes mid-map.
"""

import glob
import os

import numpy as np
import pytest

from repro.util import shm
from repro.util.parallel import parallel_map, shutdown_pool


@pytest.fixture(autouse=True)
def clean_pool_and_segments(monkeypatch):
    """Isolate each test: default env, no persistent pool, no segments."""
    monkeypatch.delenv("REPRO_SHM", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    shutdown_pool()
    yield
    shutdown_pool()
    shm.detach_all()
    assert shm.live_segments() == []


def _dev_shm_segments():
    """repro-owned segment files visible in the OS shm filesystem."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        pytest.skip("no /dev/shm on this platform")
    return sorted(glob.glob(f"/dev/shm/{shm.NAME_PREFIX}-*"))


def _read_back(item):
    """Task: sum the broadcast array plus the item (pool-picklable)."""
    arr = shm.get("weights")
    return float(arr.sum()) + item


def _checksum_both(item):
    a = shm.get("a")
    b = shm.get("b")
    return float(a.sum()), float(b.sum()), item


def _crash(item):
    if item == 3:
        os._exit(13)  # simulate a hard worker crash (no cleanup runs)
    return item


class TestBroadcastObject:
    def test_payload_is_refs_when_shared(self):
        arr = np.arange(100, dtype=np.int64)
        bc = shm.publish({"x": arr})
        try:
            assert bc.shared
            payload = bc.payload()
            assert isinstance(payload["x"], shm.ShmRef)
            assert payload["x"].shape == (100,)
        finally:
            bc.release()
        assert shm.live_segments() == []

    def test_segment_round_trip_bytes(self):
        arr = np.random.default_rng(0).random((37, 5))
        bc = shm.publish({"x": arr})
        try:
            ref = bc.payload()["x"]
            view = shm._attach(ref)
            assert view.dtype == arr.dtype
            assert not view.flags.writeable
            np.testing.assert_array_equal(view, arr)
        finally:
            shm.detach_all()
            bc.release()

    def test_refcount_shares_one_publication(self):
        bc = shm.publish({"x": np.ones(4)})
        names = shm.live_segments()
        assert len(names) == 1
        bc.acquire()
        bc.release()
        assert shm.live_segments() == names  # still held by first ref
        bc.release()
        assert shm.live_segments() == []
        with pytest.raises(ValueError):
            bc.acquire()

    def test_disabled_env_falls_back_to_arrays(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "off")
        arr = np.arange(8)
        bc = shm.publish({"x": arr})
        try:
            assert not bc.shared
            np.testing.assert_array_equal(bc.payload()["x"], arr)
            assert shm.live_segments() == []
        finally:
            bc.release()

    def test_activate_nests_innermost_first(self):
        outer = {"x": np.array([1])}
        inner = {"x": np.array([2])}
        with shm.activate(outer):
            assert shm.get("x")[0] == 1
            with shm.activate(inner):
                assert shm.get("x")[0] == 2
            assert shm.get("x")[0] == 1
        with pytest.raises(KeyError):
            shm.get("x")


class TestParallelMapBroadcast:
    def test_serial_and_pool_and_fallback_identical(self, monkeypatch):
        arr = np.random.default_rng(1).random(1000)
        items = list(range(6))
        serial = parallel_map(_read_back, items, workers=0,
                              broadcast={"weights": arr})
        pooled = parallel_map(_read_back, items, workers=2,
                              broadcast={"weights": arr})
        monkeypatch.setenv("REPRO_SHM", "off")
        fallback = parallel_map(_read_back, items, workers=2,
                                broadcast={"weights": arr})
        assert serial == pooled == fallback

    def test_multiple_arrays_and_release_after_map(self):
        a = np.arange(64, dtype=np.float64)
        b = np.arange(16, dtype=np.int32)
        out = parallel_map(_checksum_both, [0, 1, 2], workers=2,
                           broadcast={"a": a, "b": b})
        assert out == [(float(a.sum()), float(b.sum()), i) for i in range(3)]
        # parallel_map's finally released its publication immediately.
        assert shm.live_segments() == []

    def test_prebuilt_broadcast_survives_map(self):
        bc = shm.publish({"weights": np.ones(10)})
        try:
            out = parallel_map(_read_back, [1, 2], workers=2, broadcast=bc)
            assert out == [11.0, 12.0]
            assert shm.live_segments() != []  # caller's ref still holds it
        finally:
            bc.release()
        assert shm.live_segments() == []


class TestNoLeaks:
    def test_no_segments_after_pool_shutdown(self):
        before = _dev_shm_segments()
        parallel_map(_read_back, list(range(8)), workers=2,
                     broadcast={"weights": np.random.random(4096)})
        shutdown_pool()
        assert shm.live_segments() == []
        assert _dev_shm_segments() == before

    def test_worker_crash_leaks_nothing_and_pool_recovers(self):
        from concurrent.futures.process import BrokenProcessPool

        before = _dev_shm_segments()
        with pytest.raises(BrokenProcessPool):
            parallel_map(_crash, list(range(6)), workers=2,
                         broadcast={"weights": np.ones(512)})
        # The broadcast's finally ran despite the crash, and the crashed
        # worker's attachment never unlinked the publisher's segment.
        assert shm.live_segments() == []
        assert _dev_shm_segments() == before
        # Next call transparently gets a fresh, working pool.
        assert parallel_map(_crash, [0, 1], workers=2) == [0, 1]
