"""Tests for channel-load balance analysis (experiment E13 machinery)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import channel_loads, gini, load_stats
from repro.topologies import RingTopology


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.array([5.0, 5.0, 5.0])) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_is_high(self):
        v = np.zeros(100)
        v[0] = 1.0
        assert gini(v) > 0.9

    def test_all_zero(self):
        assert gini(np.zeros(5)) == 0.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=50))
    def test_bounded(self, values):
        g = gini(np.array(values))
        assert -1e-9 <= g <= 1.0

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=2, max_size=50),
        st.floats(min_value=0.1, max_value=10),
    )
    def test_scale_invariant(self, values, k):
        v = np.array(values)
        assert gini(v) == pytest.approx(gini(k * v), abs=1e-9)


class TestChannelLoads:
    def test_ring_shortest_paths(self):
        """On a 4-ring with clockwise-only unit routes, each clockwise
        channel carries exactly the routes passing over it."""
        ring = RingTopology(4)

        def clockwise_path(s, t):
            path = [s]
            u = s
            while u != t:
                u = (u + 1) % 4
                path.append(u)
            return path

        loads = channel_loads(ring, clockwise_path)
        # every ordered pair (12 of them) with clockwise walking:
        # each cw channel carries sum over pairs crossing it = 1+2+3 = 6...
        # by symmetry all 4 clockwise channels carry equal load
        cw = [loads[(i, (i + 1) % 4)] for i in range(4)]
        ccw = [loads[((i + 1) % 4, i)] for i in range(4)]
        assert len(set(cw)) == 1
        assert all(v == 0 for v in ccw)
        assert sum(cw) == sum(len(clockwise_path(s, t)) - 1 for s in range(4) for t in range(4) if s != t)

    def test_sampled_pairs(self):
        ring = RingTopology(8)

        def path(s, t):
            return [s, (s + 1) % 8] if t != s else [s]

        loads = channel_loads(ring, lambda s, t: path(s, t), sample=20, seed=1)
        assert sum(loads.values()) == 20

    def test_stats_row(self):
        stats = load_stats({(0, 1): 4, (1, 0): 0, (1, 2): 8})
        assert stats.max == 8
        assert stats.mean == 4.0
        assert stats.max_over_mean == 2.0
        assert len(stats.row()) == 6
