"""Tests for the design-space optimizer (repro.design)."""

import json

import numpy as np
import pytest

from repro import store
from repro.cli import main
from repro.design import (
    Candidate,
    build_candidate,
    channel_load_shares,
    compute_frontier,
    demichev_score,
    design_sources,
    enumerate_candidates,
    evaluate_candidate,
    explain_candidate,
    format_explain,
    format_frontier,
    format_rank,
    frontier_text,
    pareto_front,
)
from repro.design.space import MIN_DESIGN_N
from repro.experiments.sweeps import make_topology
from repro.serve import handlers
from repro.sim.model import build_uniform_model


@pytest.fixture(autouse=True)
def fresh_store(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
    monkeypatch.delenv("REPRO_DESIGN_SOURCES", raising=False)
    store.clear_store()
    store.reset_store_stats()
    yield
    store.clear_store()
    store.reset_store_stats()


class TestSpace:
    def test_enumeration_is_sorted_and_unique(self):
        cands = enumerate_candidates(64)
        assert cands == sorted(cands)
        labels = [c.label for c in cands]
        assert len(labels) == len(set(labels))
        kinds = {c.kind for c in cands}
        assert {"ring", "dsn", "dsn_d", "dln", "random",
                "random_regular", "torus", "flexible"} <= kinds

    def test_min_n_enforced(self):
        with pytest.raises(ValueError, match="n >= 16"):
            enumerate_candidates(8)

    def test_degree_budget_prunes_known_families(self):
        # A 64-node hypercube has degree 6: out at budget 5, in at 6.
        assert not any(c.kind == "hypercube" for c in enumerate_candidates(64, 5))
        cands6 = enumerate_candidates(64, 6)
        assert any(c.kind == "hypercube" for c in cands6)
        assert any(c.kind == "torus3d" for c in cands6)
        # Odd n * odd degree is not a buildable regular graph.
        degrees = {dict(c.params)["degree"] for c in enumerate_candidates(64, 5)
                   if c.kind == "random_regular"}
        assert degrees == {3, 4, 5}

    def test_seeds_scale_stochastic_families_only(self):
        one = enumerate_candidates(64, seeds=1)
        three = enumerate_candidates(64, seeds=3)
        assert sum(c.kind == "random" for c in one) == 1
        assert sum(c.kind == "random" for c in three) == 3
        assert (sum(c.kind == "dsn" for c in one)
                == sum(c.kind == "dsn" for c in three))

    def test_build_every_candidate(self):
        for c in enumerate_candidates(32, seeds=1):
            topo = build_candidate(c)
            assert topo.n == 32, c.label

    def test_flexible_candidate_hits_target_n(self):
        topo = build_candidate(Candidate(kind="flexible", n=48,
                                         params=(("minors", 4),)))
        assert topo.n == 48

    def test_label_roundtrips_params_and_seed(self):
        c = Candidate(kind="random_regular", n=64, seed=1,
                      params=(("degree", 4),))
        assert c.label == "random_regular-degree4@s1"
        assert c.as_dict()["params"] == {"degree": 4}


class TestChannelShares:
    @pytest.mark.parametrize("kind", ["dsn", "torus", "random"])
    def test_exact_shares_match_uniform_model(self, kind):
        topo = make_topology(kind, 32)
        shares, used = channel_load_shares(topo, sources=32)
        assert used == 32
        model = build_uniform_model(topo)
        # Ours is blocked (forward then reverse); the model interleaves.
        interleaved = np.empty_like(shares)
        interleaved[0::2] = shares[: topo.num_links]
        interleaved[1::2] = shares[topo.num_links:]
        np.testing.assert_allclose(interleaved, model.channel_shares, atol=1e-12)

    def test_sampled_shares_are_deterministic(self):
        topo = make_topology("dsn", 64)
        a, used_a = channel_load_shares(topo, sources=16, seed=3)
        b, used_b = channel_load_shares(topo, sources=16, seed=3)
        assert used_a == used_b == 16
        np.testing.assert_array_equal(a, b)
        assert a.shape == (2 * topo.num_links,)
        assert a.sum() == pytest.approx(1.0)

    def test_sources_env(self, monkeypatch):
        assert design_sources() == 64
        monkeypatch.setenv("REPRO_DESIGN_SOURCES", "128")
        assert design_sources() == 128
        monkeypatch.setenv("REPRO_DESIGN_SOURCES", "junk")
        assert design_sources() == 64


class TestEvaluate:
    def test_objective_fields(self):
        ev = evaluate_candidate(Candidate(kind="dsn", n=32, params=(("x", 2),)))
        assert ev["label"] == "dsn-x2"
        assert ev["diameter"] >= 1 and ev["aspl"] > 1.0
        assert ev["cable_total_m"] > 0 and ev["cost_total"] > 0
        assert ev["saturation_gbps"] > 0
        assert ev["max_degree"] >= 3

    def test_memoized_through_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        c = Candidate(kind="torus", n=16)
        first = evaluate_candidate(c)
        store.clear_store()  # drop the memory tier; disk remains
        store.reset_store_stats()
        second = evaluate_candidate(c)
        assert first == second
        stats = store.store_stats()
        assert stats.disk_hits == 1 and stats.misses == 0


class TestFrontier:
    def test_pareto_front_synthetic(self):
        def ev(label, aspl, diam, cable, sat):
            return {"label": label, "aspl": aspl, "diameter": diam,
                    "cable_total_m": cable, "saturation_gbps": sat}

        a = ev("a", 3.0, 6, 100.0, 10.0)
        b = ev("b", 4.0, 7, 150.0, 5.0)   # dominated by a
        c = ev("c", 5.0, 9, 50.0, 2.0)    # cheapest cable: survives
        assert pareto_front([a, b, c]) == ["a", "c"]

    def test_demichev_ring_scores_one(self):
        ring = {"aspl": 8.0, "cost_total": 1000.0}
        assert demichev_score(ring, ring) == {"quality": 1.0, "cost": 1.0,
                                              "score": 1.0}
        better = {"aspl": 4.0, "cost_total": 1250.0}
        d = demichev_score(better, ring)
        assert d["quality"] == 2.0 and d["cost"] == 1.25
        assert d["score"] == pytest.approx(1.6)

    def test_artifact_shape_and_ring_baseline(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        art = compute_frontier(32, workers=0)
        assert art["baseline"] == "ring"
        assert art["num_candidates"] == len(art["evaluations"])
        by_label = {ev["label"]: ev for ev in art["evaluations"]}
        assert by_label["ring"]["demichev"]["score"] == 1.0
        for label in art["pareto"]:
            assert by_label[label]["pareto"] and by_label[label]["within_budget"]
        for label in art["over_budget"]:
            assert by_label[label]["rank"] is None

    def test_bytes_identical_across_workers_and_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        serial = frontier_text(compute_frontier(24, workers=0))
        parallel = frontier_text(compute_frontier(24, workers=2))
        assert serial == parallel
        monkeypatch.delenv("REPRO_STORE")
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        store.clear_store()
        stored_cold = frontier_text(compute_frontier(24, workers=0))
        store.clear_store()
        stored_warm = frontier_text(compute_frontier(24, workers=0))
        assert serial == stored_cold == stored_warm

    def test_explain_reports_dominators(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        art = compute_frontier(32, workers=0)
        dominated = next(ev["label"] for ev in art["evaluations"]
                         if not ev["pareto"] and ev["within_budget"])
        detail = explain_candidate(art, dominated)
        assert detail["dominated_by"]
        with pytest.raises(KeyError, match="unknown candidate"):
            explain_candidate(art, "nope")

    def test_renderings_smoke(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        art = compute_frontier(32, workers=0)
        assert "pareto front" in format_frontier(art)
        assert "demichev ranking" in format_rank(art)
        card = format_explain(explain_candidate(art, art["pareto"][0]))
        assert "within_budget=True" in card


class TestCLI:
    def test_frontier_table(self, capsys):
        main(["design", "frontier", "--n", "32", "--no-store"])
        out = capsys.readouterr().out
        assert "pareto front" in out and "dsn-x2" in out

    def test_rank_json_and_out(self, tmp_path, capsys):
        out_path = tmp_path / "frontier.json"
        main(["design", "rank", "--n", "32", "--no-store",
              "--json", "--out", str(out_path)])
        out = capsys.readouterr().out
        artifact = json.loads(out.splitlines()[-1])
        assert artifact["n"] == 32
        assert out_path.read_text().endswith("\n")
        assert json.loads(out_path.read_text()) == artifact

    def test_explain_and_missing_label(self, capsys):
        main(["design", "explain", "ring", "--n", "32", "--no-store"])
        assert "candidate ring" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["design", "explain", "--n", "32", "--no-store"])

    def test_plot_flag(self, capsys):
        main(["design", "frontier", "--n", "32", "--no-store", "--plot"])
        assert "cable metres" in capsys.readouterr().out


class TestServeDesign:
    def test_parse_and_path_roundtrip(self):
        job = handlers.parse_query("/v1/design", {"n": "32", "budget": "4",
                                                  "seeds": "1", "sources": "16"})
        assert job == ("design", 32, 4, 1, 16)
        assert handlers.parse_query("/v1/design",
                                    dict(handlers_qs(handlers.job_path(job)))) == job

    def test_defaults_and_validation(self):
        job = handlers.parse_query("/v1/design", {})
        assert job == ("design", 64, 5, 2, design_sources())
        for bad in ({"n": str(MIN_DESIGN_N - 1)}, {"budget": "1"},
                    {"seeds": "0"}, {"n": "junk"}):
            with pytest.raises(handlers.QueryError):
                handlers.parse_query("/v1/design", bad)

    def test_compute_job_matches_direct(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        job = handlers.design_job(32, budget=5, seeds=1, sources=16)
        doc = handlers.compute_job(job)
        direct = compute_frontier(32, degree_budget=5, seeds=1,
                                  sources=16, workers=0)
        assert handlers.result_text(doc) == handlers.result_text(direct)


def handlers_qs(path: str) -> list[tuple[str, str]]:
    """Parse the query string of a job path back into parameters."""
    from urllib.parse import parse_qsl, urlsplit

    return parse_qsl(urlsplit(path).query)
