"""Cross-module property-based tests (hypothesis).

These check invariants that tie subsystems together: the custom routing
against graph distances, the extended routing against the basic one,
topology round-trips, and floorplan geometry.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import shortest_path_matrix
from repro.core import (
    DSNTopology,
    DSNVTopology,
    dsn_route,
    dsn_route_extended,
    dsn_theory,
)
from repro.layout import Floorplan
from repro.topologies import Topology
from repro.util import ilog2_ceil

sizes = st.integers(min_value=16, max_value=600)


class TestRoutingVsGraph:
    @settings(max_examples=25, deadline=None)
    @given(sizes, st.data())
    def test_route_at_least_graph_distance(self, n, data):
        topo = DSNTopology(n)
        dist = shortest_path_matrix(topo)
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        t = data.draw(st.integers(min_value=0, max_value=n - 1))
        r = dsn_route(topo, s, t)
        assert r.length >= dist[s, t]

    @settings(max_examples=20, deadline=None)
    @given(sizes, st.data())
    def test_extended_routing_same_node_path(self, n, data):
        basic = DSNTopology(n)
        ext = DSNVTopology(n)
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        t = data.draw(st.integers(min_value=0, max_value=n - 1))
        assert dsn_route(basic, s, t).path == dsn_route_extended(ext, s, t).path

    @settings(max_examples=20, deadline=None)
    @given(sizes, st.data())
    def test_avoid_overshoot_also_delivers(self, n, data):
        topo = DSNTopology(n)
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        t = data.draw(st.integers(min_value=0, max_value=n - 1))
        r = dsn_route(topo, s, t, avoid_overshoot=True)
        r.validate()

    @settings(max_examples=15, deadline=None)
    @given(sizes)
    def test_graph_diameter_bound_fact3(self, n):
        topo = DSNTopology(n)
        th = dsn_theory(n)
        dist = shortest_path_matrix(topo)
        assert dist.max() <= th.diameter_bound


class TestSuperGraphStructure:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=5, max_value=10))
    def test_collapse_is_dln_when_aligned(self, p_target):
        """For n = k*p, each full super node owns exactly one shortcut
        of each level 1..x (the Fig. 1(c) DLN collapse)."""
        n = p_target * (2 ** (p_target - 1) // p_target)
        if n < 16 or ilog2_ceil(n) != p_target:
            return  # alignment only holds when p(n) == p_target
        topo = DSNTopology(n)
        if topo.r != 0:
            return
        for k in range(topo.num_super_nodes):
            levels = sorted(
                topo.level(v)
                for v in topo.super_node_members(k)
                if topo.shortcut_from(v) is not None
            )
            assert levels == list(range(1, topo.x + 1))


class TestTopologyRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(sizes)
    def test_networkx_round_trip(self, n):
        topo = DSNTopology(n)
        back = Topology.from_networkx(topo.to_networkx(), name=topo.name)
        assert back.links == topo.links
        assert back.n == topo.n

    def test_from_networkx_rejects_bad_labels(self):
        g = nx.path_graph(["a", "b", "c"])
        with pytest.raises(ValueError):
            Topology.from_networkx(g)

    def test_from_networkx_defaults_local(self):
        g = nx.cycle_graph(5)
        t = Topology.from_networkx(g)
        from repro.topologies import LinkClass

        assert all(l.cls is LinkClass.LOCAL for l in t.links)


class TestFloorplanProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=5000), st.data())
    def test_distance_metric_axioms(self, n_switches, data):
        fp = Floorplan(n_switches)
        m = fp.num_cabinets
        a = data.draw(st.integers(min_value=0, max_value=m - 1))
        b = data.draw(st.integers(min_value=0, max_value=m - 1))
        c = data.draw(st.integers(min_value=0, max_value=m - 1))
        dab = fp.cabinet_distance(a, b)
        assert dab == fp.cabinet_distance(b, a)
        assert fp.cabinet_distance(a, a) == 0
        assert dab <= fp.cabinet_distance(a, c) + fp.cabinet_distance(c, b) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=5000), st.data())
    def test_cable_at_least_intra(self, n_switches, data):
        fp = Floorplan(n_switches)
        u = data.draw(st.integers(min_value=0, max_value=n_switches - 1))
        v = data.draw(st.integers(min_value=0, max_value=n_switches - 1))
        if u != v:
            assert fp.cable_length(u, v) >= fp.config.intra_cabinet_cable_m
