"""Tests for the saturation search and SimConfig derived quantities."""

import pytest

from repro.sim import SimConfig, SimResult, find_saturation


def make_result(offered, accepted_ratio, backlog=False):
    r = SimResult(
        topology="T", pattern="uniform", offered_gbps=offered,
        num_hosts=100, measure_window_ns=10_000,
    )
    r.delivered_in_window_count = 10_000  # quiet the noise widening
    r.generated_measured = 100
    r.delivered_measured = 50 if backlog else 100
    r.delivered_in_window_bits = accepted_ratio * offered * 10_000 * 100
    return r


class TestFindSaturation:
    def test_finds_threshold(self):
        # synthetic network saturating at exactly 10 Gbps/host
        def run_at(load):
            return make_result(load, accepted_ratio=1.0 if load <= 10 else 0.5)

        s = find_saturation(run_at, start_gbps=2.0, resolution_gbps=0.5)
        assert 9.5 <= s.saturation_gbps <= 10.0
        assert s.first_saturated_gbps > s.saturation_gbps

    def test_never_saturates_returns_cap(self):
        def run_at(load):
            return make_result(load, accepted_ratio=1.0)

        s = find_saturation(run_at, start_gbps=4.0, max_gbps=32.0)
        assert s.saturation_gbps == 32.0
        assert s.first_saturated_gbps == float("inf")

    def test_backlog_counts_as_saturated(self):
        def run_at(load):
            return make_result(load, accepted_ratio=1.0, backlog=load > 6)

        s = find_saturation(run_at, start_gbps=2.0, resolution_gbps=1.0)
        assert s.saturation_gbps <= 6.5

    def test_batched_ladder_matches_serial(self):
        # A map_fn probing the whole ladder at once must give the same
        # search result (bracket AND probe count) as the serial walk.
        def run_at(load):
            return make_result(load, accepted_ratio=1.0 if load <= 10 else 0.5)

        batched_loads = []

        def map_fn(fn, loads):
            batched_loads.extend(loads)
            return [fn(x) for x in loads]

        serial = find_saturation(run_at, start_gbps=2.0, resolution_gbps=0.5)
        batched = find_saturation(
            run_at, start_gbps=2.0, resolution_gbps=0.5, map_fn=map_fn
        )
        assert batched == serial
        assert batched_loads == [2.0, 4.0, 8.0, 16.0, 32.0, 64.0]

    def test_batched_ladder_never_saturates(self):
        def run_at(load):
            return make_result(load, accepted_ratio=1.0)

        s = find_saturation(
            run_at, start_gbps=4.0, max_gbps=32.0,
            map_fn=lambda fn, xs: [fn(x) for x in xs],
        )
        assert s.saturation_gbps == 32.0
        assert s.first_saturated_gbps == float("inf")


class TestSimConfig:
    def test_flit_time(self):
        cfg = SimConfig()
        assert cfg.flit_time_ns == pytest.approx(256 / 96)

    def test_packet_serialization(self):
        cfg = SimConfig()
        assert cfg.packet_serialization_ns == pytest.approx(33 * 256 / 96)

    def test_packets_per_ns(self):
        cfg = SimConfig()
        # 8448-bit packets at 8.448 Gbps -> 1e-3 packets/ns
        assert cfg.packets_per_ns(8.448) == pytest.approx(1e-3)

    def test_zero_load_formula_anchors(self):
        cfg = SimConfig()
        # 0 network hops: 1 router + inject/eject links + serialization
        assert cfg.zero_load_latency_ns(0) == pytest.approx(100 + 40 + 88, abs=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimConfig(num_vcs=0)
        with pytest.raises(ValueError):
            SimConfig(packet_flits=0)
