"""Tests for the large-n metrics engine (PR 2).

Covers the blocked bit-parallel BFS kernel (`analysis.blocked`), the
byte-budgeted cache tier and dense-vs-streaming dispatch
(`repro.cache`), vectorized distinct-pair sampling (`util.rng`), and
the batched Poisson arrival streams (`sim.arrivals`).
"""

import numpy as np
import pytest

from repro import cache
from repro.analysis.blocked import (
    HopStats,
    hop_stats_from_dense,
    streaming_hop_stats,
)
from repro.analysis.metrics import shortest_path_matrix
from repro.core import DSNTopology
from repro.sim.arrivals import PoissonGaps
from repro.topologies import RingTopology, TorusTopology
from repro.util import make_rng, sample_distinct_pairs


@pytest.fixture(autouse=True)
def fresh_cache(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_CACHE_MEM_MB", raising=False)
    monkeypatch.delenv("REPRO_BFS_BLOCK", raising=False)
    cache.clear_cache()
    cache.reset_cache_stats()
    yield
    cache.clear_cache()
    cache.reset_cache_stats()


def _dense_stats(topo) -> HopStats:
    return hop_stats_from_dense(shortest_path_matrix(topo))


class TestStreamingIdentity:
    """The streaming engine must be bit-identical to the dense path."""

    @pytest.mark.parametrize(
        "topo",
        [
            DSNTopology(64),
            DSNTopology(100),
            TorusTopology.square(64, 2),
            RingTopology(33),  # odd n: partial uint64 word
            RingTopology(3),  # smallest ring
        ],
        ids=lambda t: t.name,
    )
    def test_matches_dense(self, topo):
        assert _dense_stats(topo).same_as(streaming_hop_stats(topo))

    @pytest.mark.parametrize("block_rows", [1, 7, 63, 64, 65, 100, 1000])
    def test_block_size_invariant(self, block_rows):
        topo = DSNTopology(100)
        expect = _dense_stats(topo)
        assert expect.same_as(streaming_hop_stats(topo, block_rows=block_rows))

    def test_env_block_override(self, monkeypatch):
        topo = DSNTopology(64)
        expect = _dense_stats(topo)
        monkeypatch.setenv("REPRO_BFS_BLOCK", "13")
        assert expect.same_as(streaming_hop_stats(topo))

    def test_worker_invariant(self):
        topo = DSNTopology(100)
        serial = streaming_hop_stats(topo, block_rows=32, workers=None)
        parallel = streaming_hop_stats(topo, block_rows=32, workers=2)
        assert serial.same_as(parallel)

    def test_known_ring_values(self):
        # Ring of 8: distances 1,2,3,4 with 4 at multiplicity 1 per node.
        st = streaming_hop_stats(RingTopology(8))
        assert st.diameter == 4
        assert st.total_hops == 8 * (1 + 1 + 2 + 2 + 3 + 3 + 4)
        assert st.aspl == st.total_hops / (8 * 7)
        assert np.array_equal(st.ecc, np.full(8, 4))
        assert np.array_equal(st.hist, [0, 16, 16, 16, 8])

    def test_disconnected_raises_like_dense(self):
        from repro.topologies.base import Topology

        links = [(i, (i + 1) % 6) for i in range(6)]
        links += [(6 + i, 6 + (i + 1) % 6) for i in range(6)]
        topo = Topology(12, links, name="two-rings")
        with pytest.raises(ValueError, match="disconnected"):
            streaming_hop_stats(topo)
        with pytest.raises(ValueError, match="disconnected"):
            hop_stats_from_dense(shortest_path_matrix(topo))

    def test_tiny_n_raises(self):
        class Tiny:
            n = 1

        with pytest.raises(ValueError, match="n >= 2"):
            streaming_hop_stats(Tiny())


class TestDispatch:
    def test_budget_forces_streaming(self, monkeypatch):
        # 64^2 float64 = 32 KB; a 1 MB... budget of 1 MB still allows it,
        # so shrink n^2*8 over budget by lying about the budget: n=512
        # needs 2 MB.
        topo = DSNTopology(512)
        monkeypatch.setenv("REPRO_CACHE_MEM_MB", "1")
        assert not cache.dense_distance_allowed(512)
        streamed = cache.hop_stats(topo)
        cache.clear_cache()
        monkeypatch.delenv("REPRO_CACHE_MEM_MB")
        assert cache.dense_distance_allowed(512)
        dense = cache.hop_stats(topo)
        assert streamed.same_as(dense)

    def test_resident_dense_matrix_is_reused(self):
        topo = DSNTopology(64)
        cache.distance_matrix(topo)
        misses_before = cache.cache_stats().misses
        st = cache.hop_stats(topo)
        # hop_stats itself is one more miss, but no second distance-matrix
        # computation happened (it reduced the resident int16 pack).
        assert cache.cache_stats().misses == misses_before + 1
        assert st.same_as(_dense_stats(topo))

    def test_hop_stats_disk_round_trip(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        topo = DSNTopology(64)
        first = cache.hop_stats(topo)
        cache.clear_cache()
        restored = cache.hop_stats(DSNTopology(64))
        assert cache.cache_stats().disk_hits >= 1
        assert first.same_as(restored)

    def test_analyze_matches_streaming(self, monkeypatch):
        """`analyze` routes through the dispatch; its hop metrics equal
        the streaming engine's bit-for-bit, in both budget regimes."""
        from repro.analysis import analyze

        topo = DSNTopology(512)
        streamed = streaming_hop_stats(topo)
        dense_m = analyze(topo)  # default budget: dense path
        cache.clear_cache()
        monkeypatch.setenv("REPRO_CACHE_MEM_MB", "1")
        streamed_m = analyze(topo)  # forced streaming path
        for m in (dense_m, streamed_m):
            assert m.diameter == streamed.diameter
            assert m.aspl == streamed.aspl


class TestByteBudget:
    def test_oversized_entry_not_admitted(self, monkeypatch):
        # n=1024 int16 pack is 2 MB > the 1 MB budget: computed and
        # returned, but never admitted to the memory tier.
        monkeypatch.setenv("REPRO_CACHE_MEM_MB", "1")
        topo = RingTopology(1024)
        d1 = cache.distance_matrix(topo)
        assert cache._peek((cache.topology_fingerprint(topo), "dist")) is None
        d2 = cache.distance_matrix(topo)  # recomputes: nothing resident
        assert cache.cache_stats().misses == 2
        np.testing.assert_array_equal(d1, d2)

    def test_eviction_on_budget_pressure(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MEM_MB", "1")
        # Each 256-node dist pack is 256^2*2 = 128 KB; eight fit in
        # 1 MB only after evictions start.
        for n in (250, 252, 254, 256, 258, 260, 262, 264):
            cache.distance_matrix(RingTopology(n))
        assert cache.cache_stats().evictions > 0
        assert cache._memory_bytes <= cache.memory_budget_bytes()


class TestSampleDistinctPairs:
    def test_distinct_and_valid(self):
        s, t = sample_distinct_pairs(10, 50, make_rng(0))
        assert len(s) == len(t) == 50
        assert np.all(s != t)
        assert s.min() >= 0 and s.max() < 10
        assert t.min() >= 0 and t.max() < 10
        assert len({(a, b) for a, b in zip(s.tolist(), t.tolist())}) == 50

    def test_k_capped_at_pair_count(self):
        s, t = sample_distinct_pairs(4, 1000, make_rng(0))
        assert len(s) == 4 * 3
        assert len({(a, b) for a, b in zip(s.tolist(), t.tolist())}) == 12

    def test_n1_raises_instead_of_hanging(self):
        with pytest.raises(ValueError, match="n >= 2"):
            sample_distinct_pairs(1, 5, make_rng(0))

    def test_large_flat_space_batched_path(self):
        # n^2 > 2^20 exercises the rejection-sampling branch.
        n = 2048
        s, t = sample_distinct_pairs(n, 500, make_rng(7))
        assert len(s) == 500
        assert np.all(s != t)
        assert len({(a, b) for a, b in zip(s.tolist(), t.tolist())}) == 500

    def test_deterministic(self):
        a = sample_distinct_pairs(64, 100, make_rng(3))
        b = sample_distinct_pairs(64, 100, make_rng(3))
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


class TestPoissonGaps:
    def test_deterministic_per_seed(self):
        g1 = PoissonGaps(5, 4, 2.0)
        g2 = PoissonGaps(5, 4, 2.0)
        for h in range(4):
            for _ in range(10):
                assert g1.next(h) == g2.next(h)

    def test_chunk_size_invariant(self):
        a = PoissonGaps(5, 3, 2.0, chunk=1)
        b = PoissonGaps(5, 3, 2.0, chunk=257)
        seq_a = [[a.next(h) for _ in range(300)] for h in range(3)]
        seq_b = [[b.next(h) for _ in range(300)] for h in range(3)]
        assert seq_a == seq_b

    def test_hosts_independent_of_interleaving(self):
        a = PoissonGaps(9, 2, 1.0)
        b = PoissonGaps(9, 2, 1.0)
        # a: drain host 0 then host 1; b: interleave. Same sequences.
        a0 = [a.next(0) for _ in range(20)]
        a1 = [a.next(1) for _ in range(20)]
        b0, b1 = [], []
        for _ in range(20):
            b0.append(b.next(0))
            b1.append(b.next(1))
        assert a0 == b0 and a1 == b1

    def test_mean_matches_scale(self):
        g = PoissonGaps(0, 1, 3.0, chunk=512)
        draws = np.array([g.next(0) for _ in range(20_000)])
        assert draws.mean() == pytest.approx(3.0, rel=0.05)
        assert np.all(draws >= 0)

    def test_generator_seed_accepted(self):
        rng1 = np.random.default_rng(11)
        rng2 = np.random.default_rng(11)
        g1 = PoissonGaps(rng1, 2, 1.0)
        g2 = PoissonGaps(rng2, 2, 1.0)
        assert [g1.next(0) for _ in range(5)] == [g2.next(0) for _ in range(5)]

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonGaps(0, 0, 1.0)
        with pytest.raises(ValueError):
            PoissonGaps(0, 1, 1.0, chunk=0)
