"""Fuzz tests: random small configurations must always deliver.

A final safety net over the whole simulation stack: random topology
kind, random routing adapter, random pattern and load -- every measured
packet must be delivered (no deadlock, no loss, no stuck waiters) and
basic accounting must stay consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DSNTopology, DSNVTopology
from repro.routing import DuatoAdaptiveRouting, lash_adapter, lash_layering
from repro.sim import (
    AdaptiveEscapeAdapter,
    MinimalCustomEscapeAdapter,
    NetworkSimulator,
    SimConfig,
)
from repro.topologies import TorusTopology
from repro.traffic import make_pattern

PATTERNS = ["uniform", "neighboring", "hotspot"]
ADAPTERS = ["adaptive", "updown", "minimal_custom", "lash"]


def build(topo_kind: str, adapter_kind: str, seed: int):
    if topo_kind == "dsn":
        topo = DSNVTopology(16) if adapter_kind == "minimal_custom" else DSNTopology(16)
    else:
        topo = TorusTopology((4, 4))
    rng = np.random.default_rng(seed)
    if adapter_kind == "adaptive":
        adapter = AdaptiveEscapeAdapter(DuatoAdaptiveRouting(topo), 4, rng)
    elif adapter_kind == "updown":
        adapter = AdaptiveEscapeAdapter(DuatoAdaptiveRouting(topo), 4, rng, escape_only=True)
    elif adapter_kind == "minimal_custom":
        adapter = MinimalCustomEscapeAdapter(topo, 4, rng)
    else:
        adapter = lash_adapter(lash_layering(topo))
    return topo, adapter


class TestFuzzDelivery:
    @settings(max_examples=12, deadline=None)
    @given(
        topo_kind=st.sampled_from(["dsn", "torus"]),
        adapter_kind=st.sampled_from(ADAPTERS),
        pattern=st.sampled_from(PATTERNS),
        load=st.floats(min_value=0.5, max_value=6.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_always_delivers(self, topo_kind, adapter_kind, pattern, load, seed):
        if topo_kind == "torus" and adapter_kind == "minimal_custom":
            return  # adapter requires a DSN-V topology
        topo, adapter = build(topo_kind, adapter_kind, seed)
        # Generous drain: single-VC deterministic schemes (LASH) drain a
        # hotspot backlog slowly; a genuine deadlock still fails. Sources
        # stop at the end of the measurement window, so the backlog is
        # finite and this bound is sound even beyond saturation.
        cfg = SimConfig(warmup_ns=1500, measure_ns=4000, drain_ns=80000, seed=seed)
        pat = make_pattern(pattern, topo.n * cfg.hosts_per_switch)
        r = NetworkSimulator(topo, adapter, pat, load, cfg).run()
        assert r.delivered_fraction == 1.0, (topo_kind, adapter_kind, pattern, load)
        if r.latencies_ns:
            lats = np.array(r.latencies_ns)
            assert (lats > 0).all()
            assert r.avg_hops >= 0


class TestFuzzPipelinedRouter:
    """The pipelined router must stay deadlock-free under random configs.

    Random DSN-V (custom source-routing and minimal-custom-escape) and
    DSN-E (adaptive / up-down escape) configurations with random
    pipeline depths and buffer regimes (VCT and wormhole): every packet
    must drain (no VA/SA/credit deadlock) and flit accounting must
    conserve packets (delivered + dropped == generated; no faults are
    scheduled here, so dropped stays 0).
    """

    @settings(max_examples=10, deadline=None)
    @given(
        adapter_kind=st.sampled_from(["custom", "minimal_custom", "adaptive", "updown"]),
        pattern=st.sampled_from(PATTERNS),
        load=st.floats(min_value=0.5, max_value=6.0),
        lag=st.integers(min_value=2, max_value=12),
        buf=st.sampled_from([4, 8, 33, None]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_pipelined_deadlock_free_and_conserving(
        self, adapter_kind, pattern, load, lag, buf, seed
    ):
        import dataclasses

        from repro.core.extensions import dsn_route_extended
        from repro.sim import FlitLevelSimulator, RouterConfig, dsn_custom_adapter

        if adapter_kind == "custom":
            topo = DSNVTopology(16)
            adapter = dsn_custom_adapter(lambda s, t: dsn_route_extended(topo, s, t))
        else:
            topo, adapter = build("dsn", adapter_kind, seed)
        cfg = SimConfig(
            warmup_ns=1500,
            measure_ns=4000,
            drain_ns=80000,
            seed=seed,
            router=RouterConfig.with_depth(lag, vc_buffer_flits=buf),
        )
        pat = make_pattern(pattern, topo.n * cfg.hosts_per_switch)
        r = FlitLevelSimulator(topo, adapter, pat, load, cfg).run()
        assert r.delivered_fraction == 1.0, (adapter_kind, pattern, load, lag, buf)
        assert r.delivered_measured + r.dropped_measured == r.generated_measured
        assert r.packets_dropped == 0


class TestFuzzEngineEquivalence:
    """The event-driven flit engine must match the cycle scan bit for bit.

    Random topology/adapter/pattern/load/seed: both run loops must
    produce structurally identical :class:`SimResult` objects. Fresh
    adapters per run keep the RNG streams independent and aligned.
    """

    @settings(max_examples=8, deadline=None)
    @given(
        topo_kind=st.sampled_from(["dsn", "torus"]),
        adapter_kind=st.sampled_from(ADAPTERS),
        pattern=st.sampled_from(PATTERNS),
        load=st.floats(min_value=0.1, max_value=6.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_engines_bit_identical(self, topo_kind, adapter_kind, pattern, load, seed):
        if topo_kind == "torus" and adapter_kind == "minimal_custom":
            return  # adapter requires a DSN-V topology
        import dataclasses

        from repro.sim import FlitLevelSimulator

        cfg = SimConfig(warmup_ns=1000, measure_ns=2500, drain_ns=40000, seed=seed)
        results = []
        for engine in ("cycle", "event"):
            topo, adapter = build(topo_kind, adapter_kind, seed)
            pat = make_pattern(pattern, topo.n * cfg.hosts_per_switch)
            sim = FlitLevelSimulator(topo, adapter, pat, load, cfg, engine=engine)
            results.append(dataclasses.asdict(sim.run()))
        assert results[0] == results[1], (topo_kind, adapter_kind, pattern, load)
