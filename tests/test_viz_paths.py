"""Tests for path diversity analysis and terminal visualization."""

import pytest

from repro.analysis import path_diversity
from repro.core import DSNTopology, dsn_route
from repro.topologies import RingTopology, TorusTopology
from repro.viz import ascii_plot, dsn_ring_diagram, route_diagram


class TestPathDiversity:
    def test_ring_has_two_disjoint_paths(self):
        d = path_diversity(RingTopology(16), sample_pairs=50, seed=0)
        assert d.mean_disjoint_paths == 2.0
        assert d.min_disjoint_paths == 2
        assert d.mean_minimal_paths >= 1.0

    def test_torus_disjoint_equals_degree(self):
        d = path_diversity(TorusTopology((4, 4)), sample_pairs=None)
        assert d.min_disjoint_paths == 4  # 4-regular, 4-connected

    def test_dsn_diversity_at_least_min_degree(self):
        d = path_diversity(DSNTopology(64), sample_pairs=100, seed=1)
        assert d.min_disjoint_paths >= 2
        assert d.pairs == 100

    def test_torus_minimal_count_exceeds_random_like(self):
        torus = path_diversity(TorusTopology((8, 8)), sample_pairs=100, seed=0)
        ring = path_diversity(RingTopology(64), sample_pairs=100, seed=0)
        assert torus.mean_minimal_paths > ring.mean_minimal_paths


class TestRingDiagram:
    def test_contains_levels_and_shortcuts(self):
        t = DSNTopology(32)
        out = dsn_ring_diagram(t, max_nodes=10)
        assert "L1" in out and "-->" in out
        assert "more nodes" in out

    def test_full_render_small(self):
        t = DSNTopology(16)
        out = dsn_ring_diagram(t, max_nodes=16)
        assert "more nodes" not in out
        assert out.count("\n") == 16  # header + 16 node rows


class TestRouteDiagram:
    def test_phases_visible(self):
        t = DSNTopology(64)
        r = dsn_route(t, 3, 40)
        out = route_diagram(t, r)
        assert "main" in out
        assert "=>" in out or "->" in out
        assert f"route 3 -> 40 ({r.length} hops)" in out


class TestAsciiPlot:
    def test_renders_all_series(self):
        out = ascii_plot([1, 2, 3], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]})
        assert "o = a" in out and "x = b" in out
        assert "o" in out and "x" in out

    def test_constant_series_ok(self):
        out = ascii_plot([0, 1], {"flat": [5.0, 5.0]})
        assert "flat" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([], {})

    def test_nan_skipped(self):
        out = ascii_plot([1, 2], {"a": [1.0, float("nan")]})
        assert "o = a" in out
