"""Tests for small-world indices."""

import pytest

from repro.analysis import clustering_coefficient, small_world_indices
from repro.core import DSNTopology
from repro.topologies import KleinbergTopology, RingTopology, Topology


class TestClustering:
    def test_triangle_is_fully_clustered(self):
        t = Topology(3, [(0, 1), (1, 2), (0, 2)])
        assert clustering_coefficient(t) == 1.0

    def test_ring_has_zero_clustering(self):
        assert clustering_coefficient(RingTopology(10)) == 0.0


class TestIndices:
    def test_dsn_path_length_near_random(self):
        """The DSN design goal: ASPL close to a degree-matched random graph."""
        idx = small_world_indices(DSNTopology(128), seed=0)
        assert idx.path_length_ratio < 1.6

    def test_kleinberg_is_small_world_shaped(self):
        idx = small_world_indices(KleinbergTopology(12, q=1, seed=0), seed=0)
        assert idx.aspl < 12  # far below the grid's ~8+... lattice scaling
        assert idx.random_aspl > 0

    def test_fields_consistent(self):
        idx = small_world_indices(DSNTopology(64), seed=1, samples=2)
        assert idx.aspl == pytest.approx(3.485, abs=0.01)
        assert idx.sigma == idx.sigma  # not NaN only if clustering > 0, either ok
