"""Tests for LASH layered shortest-path routing."""

import pytest

from repro.core import DSNTopology
from repro.routing import lash_adapter, lash_layering
from repro.topologies import RingTopology, TorusTopology


class TestLayering:
    def test_paths_are_minimal(self):
        topo = DSNTopology(32)
        l = lash_layering(topo)
        from repro.routing import ShortestPathTable

        table = ShortestPathTable(topo)
        for (s, t), p in l.paths.items():
            assert len(p) - 1 == table.distance(s, t)

    def test_every_pair_assigned(self):
        topo = TorusTopology((4, 4))
        l = lash_layering(topo)
        assert len(l.layer_of) == 16 * 15
        assert all(0 <= li < l.num_layers for li in l.layer_of.values())

    def test_layers_acyclic(self):
        l = lash_layering(DSNTopology(32))
        l.verify()  # raises on any cyclic layer

    def test_ring_needs_two_layers(self):
        """A ring's one-per-pair minimal paths wrap the cycle: one layer
        cannot be acyclic, two suffice (the dateline, rediscovered)."""
        l = lash_layering(RingTopology(12))
        assert l.num_layers == 2

    def test_fits_paper_vc_budget_at_64(self):
        """DSN, torus and RANDOM all LASH-route within the paper's 4 VCs."""
        from repro.experiments import paper_trio

        for topo in paper_trio(64):
            l = lash_layering(topo)
            assert l.num_layers <= 4, topo.name

    def test_layer_sizes_sum(self):
        l = lash_layering(DSNTopology(32))
        assert sum(l.layer_sizes()) == 32 * 31

    def test_max_layers_enforced(self):
        with pytest.raises(RuntimeError):
            lash_layering(RingTopology(12), max_layers=1)


class TestLashInSimulator:
    def test_simulates_and_delivers(self):
        import numpy as np

        from repro.sim import NetworkSimulator, SimConfig
        from repro.traffic import make_pattern

        cfg = SimConfig(warmup_ns=2000, measure_ns=6000, drain_ns=12000, seed=9)
        topo = DSNTopology(16)
        adapter = lash_adapter(lash_layering(topo))
        r = NetworkSimulator(topo, adapter, make_pattern("uniform", 64), 2.0, cfg).run()
        assert r.delivered_fraction == 1.0
        # minimal: hops equal the shortest-path average
        from repro.analysis import average_shortest_path_length

        assert r.avg_hops == pytest.approx(average_shortest_path_length(topo), abs=0.3)
