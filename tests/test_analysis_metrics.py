"""Tests for graph metrics (diameter / ASPL / histograms)."""

import numpy as np
import pytest

from repro.analysis import (
    analyze,
    average_shortest_path_length,
    diameter,
    eccentricities,
    hop_histogram,
    shortest_path_matrix,
)
from repro.core import DSNTopology
from repro.topologies import RingTopology, Topology, TorusTopology


def complete_graph(n):
    return Topology(n, [(i, j) for i in range(n) for j in range(i + 1, n)], name=f"K{n}")


class TestDistances:
    def test_complete_graph(self):
        k5 = complete_graph(5)
        assert diameter(k5) == 1
        assert average_shortest_path_length(k5) == 1.0

    def test_ring_closed_forms(self):
        # ring ASPL: mean of min(d, n-d) over d=1..n-1
        for n in (6, 9, 12):
            r = RingTopology(n)
            expected = np.mean([min(d, n - d) for d in range(1, n)])
            assert average_shortest_path_length(r) == pytest.approx(expected)
            assert diameter(r) == n // 2

    def test_matrix_symmetric_zero_diagonal(self):
        t = DSNTopology(32)
        d = shortest_path_matrix(t)
        assert np.allclose(d, d.T)
        assert np.all(np.diag(d) == 0)

    def test_disconnected_raises(self):
        t = Topology(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            diameter(t)
        with pytest.raises(ValueError):
            average_shortest_path_length(t)

    def test_eccentricities(self):
        r = RingTopology(8)
        assert list(eccentricities(r)) == [4] * 8

    def test_hop_histogram_counts_all_pairs(self):
        t = TorusTopology((4, 4))
        h = hop_histogram(t)
        assert h.sum() == 16 * 15
        assert h[0] == 0
        assert h[1] == 16 * 4  # each node has 4 distance-1 partners


class TestAnalyze:
    def test_summary_fields(self):
        m = analyze(DSNTopology(64))
        assert m.name == "DSN-5-64"
        assert m.n == 64
        assert m.diameter == 6
        assert m.aspl == pytest.approx(3.485, abs=0.01)
        assert m.max_degree <= 5
        assert len(m.row()) == 8

    def test_paper_64switch_ordering(self):
        """Fig. 8 at 64 switches: DSN and RANDOM beat torus."""
        from repro.topologies import DLNRandomTopology

        dsn = analyze(DSNTopology(64)).aspl
        torus = analyze(TorusTopology((8, 8))).aspl
        rnd = analyze(DLNRandomTopology(64, seed=0)).aspl
        assert dsn < torus
        assert rnd < torus
        assert abs(dsn - rnd) < 0.6
