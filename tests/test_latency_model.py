"""Tests for the analytic M/D/1 latency model."""

import numpy as np
import pytest

from repro.core import DSNTopology
from repro.sim import SimConfig
from repro.sim.model import build_uniform_model
from repro.topologies import RingTopology, TorusTopology


class TestModelBasics:
    def test_shares_normalized(self):
        m = build_uniform_model(DSNTopology(32))
        assert m.channel_shares.sum() == pytest.approx(1.0)
        assert (m.channel_shares >= 0).all()

    def test_zero_load_matches_config_formula(self):
        cfg = SimConfig()
        m = build_uniform_model(DSNTopology(32), cfg)
        assert m.latency_ns(1e-9) == pytest.approx(cfg.zero_load_latency_ns(m.avg_hops), rel=1e-6)

    def test_latency_monotone_in_load(self):
        m = build_uniform_model(DSNTopology(64))
        lats = [m.latency_ns(l) for l in (1.0, 4.0, 8.0)]
        assert lats == sorted(lats)

    def test_infinite_at_saturation(self):
        m = build_uniform_model(DSNTopology(64))
        sat = m.saturation_gbps()
        assert m.latency_ns(sat * 1.01) == float("inf")
        assert m.latency_ns(sat * 0.5) < float("inf")

    def test_balanced_saturates_no_earlier_than_oblivious(self):
        t = TorusTopology.square(64)
        bal = build_uniform_model(t, balanced=True)
        obl = build_uniform_model(t, balanced=False)
        assert bal.saturation_gbps() >= obl.saturation_gbps()

    def test_curve_shape(self):
        m = build_uniform_model(DSNTopology(32))
        c = m.curve((1.0, 2.0))
        assert len(c) == 2


class TestSymmetry:
    def test_torus_balanced_shares_uniform(self):
        """On a vertex-transitive torus, the balanced shares are equal
        across channels."""
        m = build_uniform_model(TorusTopology((4, 4)), balanced=True)
        assert m.channel_shares.std() / m.channel_shares.mean() < 1e-9

    def test_ring_shares_uniform(self):
        m = build_uniform_model(RingTopology(8), balanced=True)
        assert np.allclose(m.channel_shares, m.channel_shares[0])


class TestAgainstSimulator:
    def test_tracks_simulation_at_moderate_load(self):
        """The model must track the event-driven engine within ~8% well
        below saturation (the validation experiment E24 does the full
        sweep)."""
        from repro.routing import DuatoAdaptiveRouting
        from repro.sim import AdaptiveEscapeAdapter, NetworkSimulator
        from repro.traffic import make_pattern

        cfg = SimConfig(warmup_ns=3000, measure_ns=9000, drain_ns=18000, seed=3)
        topo = DSNTopology(64)
        model = build_uniform_model(topo, cfg)
        adapter = AdaptiveEscapeAdapter(
            DuatoAdaptiveRouting(topo), cfg.num_vcs, np.random.default_rng(0)
        )
        sim = NetworkSimulator(topo, adapter, make_pattern("uniform", 256), 4.0, cfg).run()
        assert model.latency_ns(4.0) == pytest.approx(sim.avg_latency_ns, rel=0.08)
