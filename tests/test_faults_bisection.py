"""Tests for fault injection and bisection estimation."""

import pytest

from repro.analysis import (
    bisection_estimate,
    cut_links,
    degrade,
    fault_sweep,
)
from repro.core import DSNTopology
from repro.topologies import RingTopology, Topology, TorusTopology


class TestDegrade:
    def test_removes_exact_links(self):
        t = RingTopology(8)
        dead = [t.links[0], t.links[3]]
        d = degrade(t, dead)
        assert d.num_links == 6
        for l in dead:
            assert not d.has_link(l.u, l.v)

    def test_no_failures_identity(self):
        t = DSNTopology(32)
        assert degrade(t, []).num_links == t.num_links


class TestFaultSweep:
    def test_zero_fraction_matches_baseline(self):
        from repro.analysis import analyze

        t = DSNTopology(32)
        stats = fault_sweep(t, 0.0, trials=2, seed=0)
        m = analyze(t)
        assert stats.connected_fraction == 1.0
        assert stats.mean_diameter == m.diameter
        assert stats.mean_aspl == pytest.approx(m.aspl)

    def test_metrics_degrade_with_failures(self):
        t = DSNTopology(64)
        base = fault_sweep(t, 0.0, trials=1, seed=0)
        hurt = fault_sweep(t, 0.10, trials=10, seed=0)
        if hurt.connected_fraction > 0:
            assert hurt.mean_aspl >= base.mean_aspl

    def test_ring_disconnects_easily(self):
        """Two failed links disconnect a ring: P(connected) must be low."""
        r = RingTopology(32)
        stats = fault_sweep(r, 0.08, trials=20, seed=1)  # ~2-3 failures
        assert stats.connected_fraction < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            fault_sweep(DSNTopology(32), 1.0)

    def test_row_format_with_disconnection(self):
        r = RingTopology(16)
        stats = fault_sweep(r, 0.3, trials=5, seed=0)
        row = stats.row()
        assert len(row) == 5


class TestBisection:
    def test_ring_bisection_is_2(self):
        est = bisection_estimate(RingTopology(16), restarts=5, seed=0)
        assert est.heuristic_upper == 2
        assert est.spectral_lower <= 2

    def test_torus_bisection_closed_form(self):
        """k x k torus bisection = 2k crossing links."""
        est = bisection_estimate(TorusTopology((8, 8)), restarts=8, seed=0)
        assert est.heuristic_upper >= 16
        assert est.heuristic_upper <= 2 * 16  # heuristic may be off by 2x
        assert est.spectral_lower <= est.heuristic_upper

    def test_lower_never_exceeds_upper(self):
        for topo in (DSNTopology(64), TorusTopology((4, 8))):
            est = bisection_estimate(topo, seed=1)
            assert est.spectral_lower <= est.heuristic_upper + 1e-9

    def test_cut_links_manual(self):
        t = Topology(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert cut_links(t, {0, 1}) == 2
        assert cut_links(t, {0, 2}) == 4
