"""Tests for the pipelined multi-VC router (repro.sim.router).

Pins the subsystem's contracts:

* resolver errors name the accepted values (``REPRO_ROUTER``, and the
  same contract on ``REPRO_FLIT_ENGINE``);
* RouterConfig validation, depth accounting and env resolution;
* deterministic LRG arbitration (starvation-freedom, canonical
  tie-break, per-resource independence);
* zero-load timing: a lag-matched pipelined run is byte-identical to
  the ideal model, and any other depth differs by exactly the closed
  form ``(hops + 1) * (lag - ideal_cycles) * flit_time_ns``;
* DSN-V channel-class enforcement: fewer VCs than Section V-A's four
  classes is rejected with a clear error;
* store keys carry pipelined parameters but ignore inert ideal ones;
* ``router.*`` telemetry counters; engine-spelling equivalence; the
  router design-space sweep's shape.
"""

import dataclasses

import numpy as np
import pytest

from repro import store, telemetry
from repro.core.extensions import DSNVTopology, dsn_route_extended
from repro.sim import (
    FlitLevelSimulator,
    LRGArbiter,
    ROUTER_MODES,
    RouterConfig,
    SimConfig,
    dsn_custom_adapter,
    resolve_flit_engine,
    resolve_router,
)
from repro.sim.adapters import DSN_V_MIN_VCS
from repro.traffic import make_pattern

#: The ideal router's lumped lag at the default parameters:
#: ceil(100 ns / (256 bit / 96 Gbps)) cycles.
IDEAL_CYCLES = 38

BASE = dict(warmup_ns=1500, measure_ns=6000, drain_ns=12000, seed=3)


def _run(rcfg, load=0.1, num_vcs=4, drain=None, topo=None):
    """One DSN-V custom-routing flit run under the given router config."""
    base = dict(BASE)
    if drain is not None:
        base["drain_ns"] = drain
    cfg = SimConfig(router=rcfg, num_vcs=num_vcs, **base)
    topo = topo or DSNVTopology(16)
    adapter = dsn_custom_adapter(
        lambda s, t: dsn_route_extended(topo, s, t), num_vcs=cfg.num_vcs
    )
    pattern = make_pattern("uniform", topo.n * cfg.hosts_per_switch)
    return FlitLevelSimulator(topo, adapter, pattern, load, cfg).run()


# ----------------------------------------------------------------------
# resolvers (satellite: clear errors naming the accepted values)
# ----------------------------------------------------------------------
class TestResolvers:
    def test_router_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROUTER", "pipelined")
        assert resolve_router("ideal") == "ideal"

    def test_router_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ROUTER", raising=False)
        assert resolve_router() == "ideal"
        monkeypatch.setenv("REPRO_ROUTER", " Pipelined ")
        assert resolve_router() == "pipelined"

    def test_router_unknown_names_accepted_values(self):
        with pytest.raises(ValueError) as exc:
            resolve_router("warp")
        msg = str(exc.value)
        assert "warp" in msg and "REPRO_ROUTER" in msg
        for mode in ROUTER_MODES:
            assert mode in msg

    def test_router_unknown_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROUTER", "bogus")
        with pytest.raises(ValueError, match="bogus"):
            resolve_router()

    def test_flit_engine_unknown_names_accepted_values(self):
        with pytest.raises(ValueError) as exc:
            resolve_flit_engine("quantum")
        msg = str(exc.value)
        assert "quantum" in msg and "REPRO_FLIT_ENGINE" in msg
        assert "event" in msg and "cycle" in msg

    def test_flit_engine_unknown_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIT_ENGINE", "warp")
        with pytest.raises(ValueError, match="warp"):
            resolve_flit_engine()

    def test_simconfig_resolves_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROUTER", "pipelined")
        assert SimConfig().router.pipelined
        monkeypatch.delenv("REPRO_ROUTER")
        assert not SimConfig().router.pipelined


# ----------------------------------------------------------------------
# RouterConfig
# ----------------------------------------------------------------------
class TestRouterConfig:
    def test_depth_accounting(self):
        rc = RouterConfig(mode="pipelined", rc_cycles=3, va_cycles=2, sa_cycles=2, st_cycles=1)
        assert rc.depth == 8
        assert rc.hop_lag_cycles == 6  # rc + va + (sa-1) + (st-1)

    def test_with_depth_exact_lag(self):
        for lag in (2, 10, 38):
            rc = RouterConfig.with_depth(lag)
            assert rc.pipelined and rc.hop_lag_cycles == lag

    def test_with_depth_floor(self):
        with pytest.raises(ValueError, match="at least 2"):
            RouterConfig.with_depth(1)

    def test_stage_depths_positive(self):
        with pytest.raises(ValueError):
            RouterConfig(mode="pipelined", rc_cycles=0)

    def test_vc_buffer_validated(self):
        with pytest.raises(ValueError, match="vc_buffer_flits"):
            RouterConfig(mode="pipelined", vc_buffer_flits=0)
        assert RouterConfig(vc_buffer_flits=None).vc_buffer_flits is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="turbo"):
            RouterConfig(mode="turbo")


# ----------------------------------------------------------------------
# LRG arbitration
# ----------------------------------------------------------------------
class TestLRGArbiter:
    def test_tiebreak_lowest_id(self):
        assert LRGArbiter().grant(0, [7, 3, 5]) == 3

    def test_rotates_under_persistent_requests(self):
        arb = LRGArbiter()
        grants = [arb.grant(0, [1, 2, 3]) for _ in range(9)]
        # Starvation-free: every requester granted equally often, in
        # the deterministic aging order.
        assert grants == [1, 2, 3] * 3

    def test_new_requester_ranks_oldest(self):
        arb = LRGArbiter()
        arb.grant(0, [1, 2])
        arb.grant(0, [1, 2])
        assert arb.grant(0, [1, 2, 9]) == 9  # never granted -> oldest

    def test_resources_independent(self):
        arb = LRGArbiter()
        assert arb.grant(0, [1, 2]) == 1
        assert arb.grant(1, [1, 2]) == 1  # history on resource 0 irrelevant
        assert arb.grant(0, [1, 2]) == 2

    def test_last_grant_seq(self):
        arb = LRGArbiter()
        assert arb.last_grant_seq(0, 1) == -1
        arb.grant(0, [1])
        assert arb.last_grant_seq(0, 1) == 1


# ----------------------------------------------------------------------
# zero-load timing (the bench gate's contract, in miniature)
# ----------------------------------------------------------------------
class TestZeroLoadTiming:
    def test_lag_matched_pipelined_is_byte_identical_to_ideal(self):
        ideal = _run(RouterConfig(mode="ideal"))
        matched = _run(RouterConfig.with_depth(IDEAL_CYCLES))
        assert dataclasses.asdict(ideal) == dataclasses.asdict(matched)

    @pytest.mark.parametrize("lag", [2, 10, 44])
    def test_closed_form_depth_offset(self, lag):
        flit_ns = SimConfig().flit_time_ns
        ideal = _run(RouterConfig(mode="ideal"))
        piped = _run(RouterConfig.with_depth(lag))
        adjusted = sorted(
            lat - (hops + 1) * (lag - IDEAL_CYCLES) * flit_ns
            for lat, hops in zip(piped.latencies_ns, piped.hop_counts)
        )
        reference = sorted(ideal.latencies_ns)
        assert len(adjusted) == len(reference) > 0
        assert all(abs(a - b) < 1e-6 for a, b in zip(adjusted, reference))

    def test_engine_spellings_identical_in_pipelined_mode(self):
        cfg = SimConfig(router=RouterConfig.with_depth(4), **BASE)
        topo = DSNVTopology(16)
        results = []
        for engine in ("cycle", "event"):
            adapter = dsn_custom_adapter(
                lambda s, t: dsn_route_extended(topo, s, t), num_vcs=cfg.num_vcs
            )
            pattern = make_pattern("uniform", topo.n * cfg.hosts_per_switch)
            sim = FlitLevelSimulator(topo, adapter, pattern, 2.0, cfg, engine=engine)
            results.append(dataclasses.asdict(sim.run()))
        assert results[0] == results[1]

    def test_wormhole_pipelined_delivers(self):
        r = _run(
            RouterConfig.with_depth(4, vc_buffer_flits=4),
            load=2.0,
            drain=80000,
        )
        assert r.delivered_fraction == 1.0
        assert r.delivered_measured > 0


# ----------------------------------------------------------------------
# DSN-V channel-class enforcement
# ----------------------------------------------------------------------
class TestDSNVChannelClasses:
    def test_adapter_rejects_too_few_vcs(self):
        topo = DSNVTopology(16)
        with pytest.raises(ValueError) as exc:
            dsn_custom_adapter(lambda s, t: dsn_route_extended(topo, s, t), num_vcs=3)
        msg = str(exc.value)
        assert "Section V-A" in msg and str(DSN_V_MIN_VCS) in msg

    def test_simulator_rejects_config_below_min_vcs(self):
        topo = DSNVTopology(16)
        adapter = dsn_custom_adapter(lambda s, t: dsn_route_extended(topo, s, t))
        cfg = SimConfig(num_vcs=2, **BASE)
        pattern = make_pattern("uniform", topo.n * cfg.hosts_per_switch)
        with pytest.raises(ValueError, match="virtual channels"):
            FlitLevelSimulator(topo, adapter, pattern, 1.0, cfg)

    def test_min_vcs_satisfied_runs(self):
        r = _run(RouterConfig.with_depth(2), load=1.0, num_vcs=DSN_V_MIN_VCS)
        assert r.delivered_fraction == 1.0


# ----------------------------------------------------------------------
# store keys
# ----------------------------------------------------------------------
class TestStoreKeys:
    def _key(self, rcfg):
        topo = DSNVTopology(16)
        cfg = SimConfig(router=rcfg, **BASE)
        return store.sim_run_key(topo, "custom", "uniform", 2.0, cfg, 3, engine="flit")

    def test_pipelined_params_reach_keys(self):
        assert (
            self._key(RouterConfig.with_depth(2)).digest
            != self._key(RouterConfig.with_depth(38)).digest
        )
        assert (
            self._key(RouterConfig.with_depth(2, vc_buffer_flits=4)).digest
            != self._key(RouterConfig.with_depth(2, vc_buffer_flits=8)).digest
        )

    def test_ideal_keys_ignore_inert_params(self):
        assert (
            self._key(RouterConfig(mode="ideal")).digest
            == self._key(RouterConfig(mode="ideal", rc_cycles=7, vc_buffer_flits=4)).digest
        )

    def test_modes_never_collide(self):
        assert (
            self._key(RouterConfig(mode="ideal")).digest
            != self._key(RouterConfig.with_depth(IDEAL_CYCLES)).digest
        )


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
class TestRouterTelemetry:
    def test_counters_recorded(self):
        telemetry.reset()
        telemetry.enable()
        try:
            _run(RouterConfig.with_depth(4), load=2.0)
            reg = telemetry.get_registry()
            assert reg.counter("router.rc_done").value > 0
            assert reg.counter("router.va_requests").value >= reg.counter(
                "router.va_grants"
            ).value > 0
            assert reg.counter("router.sa_grants").value > 0
        finally:
            telemetry.reset()
            telemetry.refresh_from_env()

    def test_results_identical_with_telemetry(self):
        off = _run(RouterConfig.with_depth(4), load=2.0)
        telemetry.reset()
        telemetry.enable()
        try:
            on = _run(RouterConfig.with_depth(4), load=2.0)
        finally:
            telemetry.reset()
            telemetry.refresh_from_env()
        assert off.latencies_ns == on.latencies_ns
        assert off.hop_counts == on.hop_counts
        assert not off.telemetry and bool(on.telemetry)


# ----------------------------------------------------------------------
# router design-space sweep
# ----------------------------------------------------------------------
class TestRouterSweep:
    def test_shape_and_reference_rows(self):
        from repro.experiments import router_sweep

        rows = router_sweep(
            vcs=(4,), buffers=(33,), depths=(2, 38),
            load=0.1, n=16, config=SimConfig(**BASE), seed=1, workers=0,
        )
        assert len(rows) == 3  # 1 ideal reference + 2 grid points
        ideal_rows = [r for r in rows if r.hop_lag_cycles is None]
        assert len(ideal_rows) == 1 and ideal_rows[0].vc_buffer_flits is None
        assert all(r.delivered > 0 for r in rows)
        # At contention-free load with a VCT-depth buffer, the
        # lag-matched grid point reproduces the ideal reference.
        matched = next(r for r in rows if r.hop_lag_cycles == 38)
        assert matched.avg_latency_ns == pytest.approx(ideal_rows[0].avg_latency_ns)
        shallow = next(r for r in rows if r.hop_lag_cycles == 2)
        assert shallow.avg_latency_ns < matched.avg_latency_ns

    def test_format(self):
        from repro.experiments import format_router_sweep, router_sweep

        rows = router_sweep(
            vcs=(4,), buffers=(8,), depths=(2,),
            load=1.0, n=16, config=SimConfig(**BASE), seed=1, workers=0,
        )
        text = format_router_sweep(rows)
        assert "hop lag" in text and "ideal" in text
