"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sizes_parsing(self):
        args = build_parser().parse_args(["fig7", "--sizes", "32,64"])
        assert args.sizes == (32, 64)

    def test_loads_parsing(self):
        args = build_parser().parse_args(["fig10", "--loads", "1,2.5"])
        assert args.loads == (1.0, 2.5)

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])


class TestCommands:
    def test_info_dsn(self, capsys):
        main(["info", "64"])
        out = capsys.readouterr().out
        assert "DSN-5-64" in out
        assert "p=6" in out
        assert "routing <= 22" in out

    def test_info_other_kind(self, capsys):
        main(["info", "64", "--kind", "torus"])
        out = capsys.readouterr().out
        assert "Torus-8x8" in out
        assert "DSN parameters" not in out

    def test_fig7(self, capsys):
        main(["fig7", "--sizes", "32,64"])
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "64" in out

    def test_fig8(self, capsys):
        main(["fig8", "--sizes", "32"])
        assert "Figure 8" in capsys.readouterr().out

    def test_fig9(self, capsys):
        main(["fig9", "--sizes", "32,64"])
        assert "Figure 9" in capsys.readouterr().out

    def test_theory_all_ok(self, capsys):
        main(["theory", "--sizes", "32,64"])
        out = capsys.readouterr().out
        assert "all bounds hold" in out
        assert "VIOLATION" not in out

    def test_balance(self, capsys):
        main(["balance", "--n", "32"])
        out = capsys.readouterr().out
        assert "up*/down*" in out

    def test_fig10_quick(self, capsys):
        main(["fig10", "--loads", "2", "--n", "16"])
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "uniform" in out

    def test_fig10_flit_engine(self, capsys):
        main(["fig10", "--loads", "2", "--n", "16", "--engine", "flit"])
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "uniform" in out

    def test_fig10_pipelined_router_implies_flit(self, capsys):
        # --router pipelined exists only in the flit engine; the CLI
        # must switch engines rather than error out.
        main(["fig10", "--loads", "2", "--n", "16", "--router", "pipelined"])
        out = capsys.readouterr().out
        assert "Figure 10" in out

    def test_router_sweep_artifact(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "rs.json"
        main(["router-sweep", "--vcs", "4", "--buffers", "33", "--depths", "2,38",
              "--load", "1", "--n", "16", "--out", str(out_path)])
        out = capsys.readouterr().out
        assert "hop lag" in out and "ideal" in out
        payload = json.loads(out_path.read_text())
        assert payload["experiment"] == "router-sweep"
        # one ideal reference per VC count + the 1x1x2 grid
        assert len(payload["rows"]) == 3
        ideal = [r for r in payload["rows"] if r["hop_lag_cycles"] is None]
        assert len(ideal) == 1

    def test_robustness(self, capsys):
        main(["robustness", "--n", "64", "--trials", "2"])
        out = capsys.readouterr().out
        assert "Bisection" in out and "Link-failure" in out

    def test_faults_artifact(self, capsys, tmp_path):
        out_path = tmp_path / "deg.json"
        main(["faults", "--n", "64", "--trials", "1", "--fractions", "0.0,0.05",
              "--kinds", "dsn", "--out", str(out_path)])
        out = capsys.readouterr().out
        assert "Degradation" in out and out_path.exists()


class TestSweep:
    @pytest.fixture(autouse=True)
    def clean_store_env(self):
        """The sweep handler sets REPRO_STORE/_DIR in os.environ for
        pool workers; snapshot and restore them around each test."""
        import os

        from repro import store

        saved = {k: os.environ.get(k) for k in ("REPRO_STORE", "REPRO_STORE_DIR")}
        for k in saved:
            os.environ.pop(k, None)
        store.clear_store()
        store.reset_store_stats()
        yield
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
        store.clear_store()
        store.reset_store_stats()

    def test_sweep_resume_identical_artifacts(self, capsys, tmp_path):
        """Cold sweep populates the store; a second run resumes from it
        and writes a byte-identical artifact (the CI smoke, in-process)."""
        from repro import store

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        common = ["sweep", "--kinds", "dsn", "--loads", "1,2", "--n", "16",
                  "--store-dir", str(tmp_path / "store"), "--store-stats"]
        main(common + ["--out", str(a)])
        out_cold = capsys.readouterr().out
        assert "2 misses" in out_cold and "2 stores" in out_cold

        store.clear_store()  # fresh process simulation: memory tier gone
        store.reset_store_stats()
        main(common + ["--out", str(b)])
        out_warm = capsys.readouterr().out
        assert "2 hits" in out_warm and "0 misses" in out_warm
        assert a.read_bytes() == b.read_bytes()

    def test_sweep_no_store(self, capsys, tmp_path):
        main(["sweep", "--kinds", "dsn", "--loads", "2", "--n", "16",
              "--no-store", "--store-stats"])
        out = capsys.readouterr().out
        assert "0 hits" in out and "0 misses" in out and "0 stores" in out


class TestBenchCompare:
    @staticmethod
    def _artifact(path, seconds, checks):
        import json

        doc = {
            "timestamp": "2026-01-01T00:00:00",
            "stages": {k: {"seconds": v, "intervals": 1} for k, v in seconds.items()},
            "checks": checks,
        }
        path.write_text(json.dumps(doc))
        return str(path)

    def test_compare_reports_speedups_and_passes(self, capsys, tmp_path):
        old = self._artifact(tmp_path / "old.json", {"sweep": 2.0, "gate": 1.0},
                             {"identity": True})
        new = self._artifact(tmp_path / "new.json", {"sweep": 1.0, "gate": 1.0},
                             {"identity": True, "extra": True})
        main(["bench", "--compare", old, new])
        out = capsys.readouterr().out
        assert "2.00x" in out and "no check regressions" in out

    def test_compare_fails_on_check_regression(self, capsys, tmp_path):
        old = self._artifact(tmp_path / "old.json", {"sweep": 1.0}, {"identity": True})
        new = self._artifact(tmp_path / "new.json", {"sweep": 1.0}, {"identity": False})
        with pytest.raises(SystemExit):
            main(["bench", "--compare", old, new])
        assert "FAIL (new): identity" in capsys.readouterr().out

    def test_compare_fails_on_lost_check(self, capsys, tmp_path):
        old = self._artifact(tmp_path / "old.json", {"sweep": 1.0},
                             {"identity": True, "gone": True})
        new = self._artifact(tmp_path / "new.json", {"sweep": 1.0}, {"identity": True})
        with pytest.raises(SystemExit):
            main(["bench", "--compare", old, new])
        assert "check lost: gone" in capsys.readouterr().out

    def test_compare_honours_check_renames(self, capsys, tmp_path):
        """A historical artifact's old check spelling matches the new one."""
        old = self._artifact(tmp_path / "old.json", {"sweep": 1.0},
                             {"telemetry_disabled_within_2pct": True})
        new = self._artifact(tmp_path / "new.json", {"sweep": 1.0},
                             {"telemetry_disabled_overhead": True})
        main(["bench", "--compare", old, new])
        assert "no check regressions" in capsys.readouterr().out
