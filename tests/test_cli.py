"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sizes_parsing(self):
        args = build_parser().parse_args(["fig7", "--sizes", "32,64"])
        assert args.sizes == (32, 64)

    def test_loads_parsing(self):
        args = build_parser().parse_args(["fig10", "--loads", "1,2.5"])
        assert args.loads == (1.0, 2.5)

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])


class TestCommands:
    def test_info_dsn(self, capsys):
        main(["info", "64"])
        out = capsys.readouterr().out
        assert "DSN-5-64" in out
        assert "p=6" in out
        assert "routing <= 22" in out

    def test_info_other_kind(self, capsys):
        main(["info", "64", "--kind", "torus"])
        out = capsys.readouterr().out
        assert "Torus-8x8" in out
        assert "DSN parameters" not in out

    def test_fig7(self, capsys):
        main(["fig7", "--sizes", "32,64"])
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "64" in out

    def test_fig8(self, capsys):
        main(["fig8", "--sizes", "32"])
        assert "Figure 8" in capsys.readouterr().out

    def test_fig9(self, capsys):
        main(["fig9", "--sizes", "32,64"])
        assert "Figure 9" in capsys.readouterr().out

    def test_theory_all_ok(self, capsys):
        main(["theory", "--sizes", "32,64"])
        out = capsys.readouterr().out
        assert "all bounds hold" in out
        assert "VIOLATION" not in out

    def test_balance(self, capsys):
        main(["balance", "--n", "32"])
        out = capsys.readouterr().out
        assert "up*/down*" in out

    def test_fig10_quick(self, capsys):
        main(["fig10", "--loads", "2", "--n", "16"])
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "uniform" in out

    def test_robustness(self, capsys):
        main(["robustness", "--n", "64", "--trials", "2"])
        out = capsys.readouterr().out
        assert "Bisection" in out and "Link-failure" in out
