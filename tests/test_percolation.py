"""Tests for the incremental percolation engine (repro.faults.percolation).

The engine's contract: coupled monotone fault sampling (fault sets
nest across fractions within a trial), and *exact* metrics that are
byte-identical between the fused multi-fraction engine and the naive
per-point baseline -- for every block size, worker count and
``REPRO_SHM`` setting -- with every (trial, fraction) point store-backed
under engine-independent keys.
"""

import json
from collections import deque

import numpy as np
import pytest

from repro import store
from repro.faults.percolation import (
    DEFAULT_PERC_FRACTIONS,
    canonical_links,
    link_field,
    percolation_artifact,
    percolation_sweep,
    percolation_trial,
    slot_tables,
)
from repro.store import shards as store_shards_mod
from repro.util.parallel import shutdown_pool

FRACTIONS = (0.0, 0.05, 0.15, 0.40)


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
    monkeypatch.delenv("REPRO_SHM", raising=False)
    monkeypatch.delenv("REPRO_BFS_BLOCK", raising=False)
    monkeypatch.delenv("REPRO_FAULT_TRIALS", raising=False)
    monkeypatch.setenv("REPRO_STORE", "off")
    store_shards_mod.invalidate_layout_cache()
    store.clear_store()
    yield
    shutdown_pool()
    store.clear_store()


def _reference_metrics(topo, fraction, seed, trial):
    """Pure-Python BFS reference for one (trial, fraction) point."""
    uv = canonical_links(topo)
    field = link_field(len(uv), seed, trial)
    alive = uv[field >= fraction]
    adj = [[] for _ in range(topo.n)]
    for u, v in alive:
        adj[int(u)].append(int(v))
        adj[int(v)].append(int(u))
    sizes, total_hops, diameter = [], 0, 0
    for s in range(topo.n):
        dist = {s: 0}
        q = deque([s])
        while q:
            x = q.popleft()
            for y in adj[x]:
                if y not in dist:
                    dist[y] = dist[x] + 1
                    q.append(y)
        sizes.append(len(dist))
        total_hops += sum(dist.values())
        diameter = max(diameter, max(dist.values()))
    reachable = sum(sizes) - topo.n
    return {
        "fraction": float(fraction),
        "dead_links": int((field < fraction).sum()),
        "kept_links": int((field >= fraction).sum()),
        "lcc": max(sizes),
        "ncomp": int(round(sum(1.0 / s for s in sizes))),
        "reachable_pairs": reachable,
        "total_hops": total_hops,
        "diameter": diameter,
        "aspl": (total_hops / reachable) if reachable > 0 else None,
    }


class TestCoupledSampling:
    def test_field_depends_only_on_seed_and_trial(self):
        a = link_field(50, seed=3, trial=7)
        b = link_field(50, seed=3, trial=7)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, link_field(50, seed=3, trial=8))
        assert not np.array_equal(a, link_field(50, seed=4, trial=7))

    def test_fault_sets_nest_across_fractions(self):
        from repro.experiments.sweeps import make_topology

        topo = make_topology("dsn", 64, seed=0)
        uv = canonical_links(topo)
        field = link_field(len(uv), seed=0, trial=1)
        dead = [
            {(int(u), int(v)) for u, v in uv[field < f]}
            for f in (0.02, 0.10, 0.30)
        ]
        assert dead[0] <= dead[1] <= dead[2]  # monotone coupling

    def test_slot_tables_map_every_real_slot(self):
        from repro.experiments.sweeps import make_topology

        topo = make_topology("dsn", 64, seed=0)
        pad, uv, eidx = slot_tables(topo)
        real = pad < topo.n
        assert (eidx[real] < len(uv)).all()  # every edge found
        assert (eidx[~real] == len(uv)).all()  # pad slots hit the sentinel
        # eidx round-trips to the canonical endpoints.
        node = np.arange(topo.n)[:, None] * np.ones_like(pad)
        u = np.minimum(node, pad)[real]
        v = np.maximum(node, pad)[real]
        np.testing.assert_array_equal(uv[eidx[real], 0], u)
        np.testing.assert_array_equal(uv[eidx[real], 1], v)


class TestEngineExactness:
    @pytest.mark.parametrize("kind", ["dsn", "random", "torus"])
    def test_incremental_matches_naive(self, kind):
        inc = percolation_trial(kind, 64, FRACTIONS, seed=0, trial=1)
        naive = percolation_trial(
            kind, 64, FRACTIONS, seed=0, trial=1, engine="naive"
        )
        assert inc == naive

    def test_matches_python_reference_including_disconnection(self):
        from repro.experiments.sweeps import make_topology

        # f=0.40 at n=32 disconnects reliably: metrics must stay exact
        # over reachable pairs, with lcc/ncomp tracking the pieces.
        topo = make_topology("dsn", 32, seed=0)
        rows = percolation_trial("dsn", 32, FRACTIONS, seed=0, trial=2)
        for frac, row in zip(FRACTIONS, rows):
            assert row == _reference_metrics(topo, frac, seed=0, trial=2)
        assert rows[-1]["ncomp"] > 1  # the disconnection case was hit

    def test_intact_anchor_matches_streaming_engine(self):
        from repro.analysis.blocked import streaming_hop_stats
        from repro.experiments.sweeps import make_topology

        topo = make_topology("dsn", 64, seed=0)
        row0 = percolation_trial("dsn", 64, FRACTIONS, seed=0, trial=0)[0]
        stats = streaming_hop_stats(topo)
        assert row0["lcc"] == 64
        assert row0["diameter"] == stats.diameter
        assert row0["aspl"] == pytest.approx(stats.aspl, abs=0)

    def test_block_size_invariance(self):
        rows = [
            percolation_trial("dsn", 64, FRACTIONS, seed=0, trial=1,
                              block_rows=b)
            for b in (64, 97, 4096)
        ]
        assert rows[0] == rows[1] == rows[2]

    def test_fractions_must_ascend(self):
        with pytest.raises(ValueError, match="ascending"):
            percolation_trial("dsn", 32, (0.1, 0.05), seed=0, trial=0)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            percolation_trial("dsn", 32, FRACTIONS, engine="magic")


class TestSweepInvariance:
    def test_workers_and_shm_do_not_change_results(self, monkeypatch):
        kw = dict(n=64, fractions=FRACTIONS, trials=2, seed=0, kinds=("dsn",))
        _, _, serial = percolation_sweep(workers=0, **kw)
        _, _, pooled = percolation_sweep(workers=2, **kw)
        monkeypatch.setenv("REPRO_SHM", "off")
        _, _, pickled = percolation_sweep(workers=2, **kw)
        enc = lambda raw: json.dumps(raw, sort_keys=True)
        assert enc(serial) == enc(pooled) == enc(pickled)

    def test_engines_agree_at_sweep_level(self):
        kw = dict(n=64, fractions=FRACTIONS, trials=2, seed=0,
                  kinds=("dsn", "random"), workers=0)
        _, pts_inc, raw_inc = percolation_sweep(engine="incremental", **kw)
        _, pts_naive, raw_naive = percolation_sweep(engine="naive", **kw)
        assert raw_inc == raw_naive
        assert pts_inc == pts_naive

    def test_trials_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_TRIALS", "3")
        _, points, _ = percolation_sweep(
            n=32, fractions=FRACTIONS, kinds=("dsn",), workers=0
        )
        assert all(p.trials == 3 for p in points)

    def test_aggregate_is_sane(self):
        _, points, _ = percolation_sweep(
            n=64, fractions=FRACTIONS, trials=2, seed=0, kinds=("dsn",),
            workers=0,
        )
        anchor = points[0]
        assert anchor.fraction == 0.0
        assert anchor.connected_fraction == 1.0
        assert anchor.mean_lcc_fraction == 1.0
        assert anchor.throughput_retention == pytest.approx(1.0)
        # Heavier damage never grows the giant component or retention.
        lccs = [p.mean_lcc_fraction for p in points]
        assert lccs == sorted(lccs, reverse=True)


class TestStoreResume:
    def test_resume_and_cross_engine_reuse(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        kw = dict(n=32, fractions=FRACTIONS, trials=2, seed=0,
                  kinds=("dsn",), workers=0)
        _, _, first = percolation_sweep(**kw)

        store.clear_store()  # memory tier only: force disk round-trips
        store.reset_store_stats()
        _, _, resumed = percolation_sweep(**kw)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            resumed, sort_keys=True
        )
        assert store.store_stats().misses == 0  # fully store-served

        # The naive engine hits the same engine-independent keys.
        store.clear_store()
        store.reset_store_stats()
        _, _, naive = percolation_sweep(engine="naive", **kw)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            naive, sort_keys=True
        )
        assert store.store_stats().misses == 0

    def test_single_trial_points_are_keyed_individually(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        full = percolation_trial("dsn", 32, FRACTIONS, seed=0, trial=0)
        store.clear_store()
        store.reset_store_stats()
        # A different (sub-)sweep over stored fractions recomputes nothing.
        sub = percolation_trial("dsn", 32, FRACTIONS[1:], seed=0, trial=0)
        assert sub == full[1:]
        assert store.store_stats().misses == 0


class TestArtifactAndCli:
    def test_artifact_deterministic_and_engine_independent(self, tmp_path):
        p1, p2, p3 = (tmp_path / f"{i}.json" for i in "abc")
        kw = dict(n=32, fractions=FRACTIONS, trials=2, seed=0,
                  kinds=("dsn",), workers=0)
        percolation_artifact(p1, **kw)
        percolation_artifact(p2, **kw)
        assert p1.read_bytes() == p2.read_bytes()
        percolation_artifact(p3, engine="naive", **kw)
        d1, d3 = json.loads(p1.read_text()), json.loads(p3.read_text())
        assert d1["points"] == d3["points"]
        assert d1["raw"] == d3["raw"]

    def test_cli_percolation(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "PERC.json"
        main([
            "percolation", "--n", "32", "--fractions", "0.0,0.1",
            "--trials", "2", "--kinds", "dsn", "--out", str(out),
            "--no-store",
        ])
        text = capsys.readouterr().out
        assert "Percolation sweep" in text
        doc = json.loads(out.read_text())
        assert doc["experiment"] == "percolation_sweep"
        assert doc["fractions"] == [0.0, 0.1]
        assert len(doc["points"]) == 2

    def test_cli_default_fractions(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["percolation"])
        assert args.fractions is None  # handler falls back to the default
        assert args.engine == "incremental"
        parsed = build_parser().parse_args(
            ["percolation", "--fractions", "0.0,0.2"]
        )
        assert parsed.fractions == (0.0, 0.2)
        assert DEFAULT_PERC_FRACTIONS[0] == 0.0
