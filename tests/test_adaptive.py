"""Tests for Duato-style adaptive routing candidates."""

import pytest

from repro.core import DSNTopology
from repro.routing import DuatoAdaptiveRouting
from repro.topologies import TorusTopology


@pytest.fixture(scope="module")
def routing():
    return DuatoAdaptiveRouting(DSNTopology(64))


class TestCandidates:
    def test_adaptive_first_escape_last(self, routing):
        cands = routing.candidates(0, 40, down_only=False)
        kinds = [c.escape for c in cands]
        assert kinds == sorted(kinds)  # False... then True...
        assert any(c.escape for c in cands)
        assert any(not c.escape for c in cands)

    def test_adaptive_candidates_are_minimal(self, routing):
        for s in range(0, 64, 7):
            for t in range(0, 64, 5):
                if s == t:
                    continue
                d = routing.table.distance(s, t)
                for c in routing.candidates(s, t, down_only=False):
                    if not c.escape:
                        assert routing.table.distance(c.next_node, t) == d - 1

    def test_down_only_restricts_escape(self, routing):
        ud = routing.updown
        for s in range(0, 64, 7):
            for t in range(0, 64, 11):
                if s == t:
                    continue
                for c in routing.candidates(s, t, down_only=True):
                    if c.escape:
                        assert not ud.is_up(s, c.next_node)

    def test_empty_at_destination(self, routing):
        assert routing.candidates(5, 5, down_only=False) == []

    def test_escape_path_legal(self, routing):
        p = routing.escape_path(3, 50)
        assert p[0] == 3 and p[-1] == 50

    def test_minimal_path(self, routing):
        p = routing.minimal_path(3, 50)
        assert len(p) - 1 == routing.table.distance(3, 50)


class TestOnTorus:
    def test_works_on_torus(self):
        r = DuatoAdaptiveRouting(TorusTopology((4, 4)))
        cands = r.candidates(0, 10, down_only=False)
        assert len(cands) >= 2  # adaptivity: both dimensions productive
