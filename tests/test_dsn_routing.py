"""Tests for DSN-Routing (Fig. 2; Facts 2-3; Theorem 2(a); Section V-D)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DSNTopology, dsn_route, dsn_theory, route_all_pairs
from repro.core.routing import HopKind, Phase


def exhaustive_routes(topo, **kw):
    return [dsn_route(topo, s, t, **kw) for s in range(topo.n) for t in range(topo.n) if s != t]


class TestBasicValidity:
    def test_trivial_route(self):
        t = DSNTopology(64)
        r = dsn_route(t, 5, 5)
        assert r.length == 0 and r.path == [5]

    def test_rejects_bad_nodes(self):
        t = DSNTopology(64)
        with pytest.raises(ValueError):
            dsn_route(t, -1, 5)
        with pytest.raises(ValueError):
            dsn_route(t, 0, 64)

    @pytest.mark.parametrize("n", [16, 32, 64, 100])
    def test_exhaustive_delivery(self, n):
        topo = DSNTopology(n)
        for r in exhaustive_routes(topo):
            r.validate()

    def test_hops_traverse_real_links(self):
        topo = DSNTopology(64)
        for r in exhaustive_routes(topo)[:500]:
            for h in r.hops:
                assert topo.has_link(h.src, h.dst), h

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=16, max_value=1500), st.data())
    def test_random_instances_deliver(self, n, data):
        topo = DSNTopology(n)
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        t = data.draw(st.integers(min_value=0, max_value=n - 1))
        r = dsn_route(topo, s, t)
        r.validate()
        assert r.length <= dsn_theory(n).routing_diameter_bound


class TestBounds:
    @pytest.mark.parametrize("n", [16, 32, 64, 100, 250])
    def test_fact2_routing_diameter(self, n):
        """Fact 2: path length <= 3p + r for x > p - log p."""
        topo = DSNTopology(n)
        th = dsn_theory(n)
        assert th.fact2_applies
        worst = max(r.length for r in exhaustive_routes(topo))
        assert worst <= th.routing_diameter_bound

    @pytest.mark.parametrize("n", [64, 100])
    def test_theorem2a_expected_length(self, n):
        """Theorem 2(a): E[routing path] <= 2p over uniform pairs."""
        topo = DSNTopology(n)
        routes = exhaustive_routes(topo)
        mean = sum(r.length for r in routes) / len(routes)
        assert mean <= dsn_theory(n).expected_routing_length_bound

    def test_overshoot_bounded(self):
        """Section IV-C: the FINISH pred-walk covers at most p + r."""
        n = 100
        topo = DSNTopology(n)
        th = dsn_theory(n)
        for r in exhaustive_routes(topo):
            finish_preds = sum(
                1 for h in r.hops if h.phase is Phase.FINISH and h.kind is HopKind.PRED
            )
            assert finish_preds <= th.overshoot_bound


class TestPhaseStructure:
    def test_phase_order(self):
        """Hops always appear in PRE-WORK -> MAIN -> FINISH order."""
        order = {Phase.PREWORK: 0, Phase.MAIN: 1, Phase.FINISH: 2}
        topo = DSNTopology(64)
        for r in exhaustive_routes(topo):
            seq = [order[h.phase] for h in r.hops]
            assert seq == sorted(seq), r

    def test_prework_uses_pred_only(self):
        topo = DSNTopology(64)
        for r in exhaustive_routes(topo):
            for h in r.hops:
                if h.phase is Phase.PREWORK:
                    assert h.kind is HopKind.PRED

    def test_main_uses_succ_and_shortcut_only(self):
        topo = DSNTopology(64)
        for r in exhaustive_routes(topo):
            for h in r.hops:
                if h.phase is Phase.MAIN:
                    assert h.kind in (HopKind.SUCC, HopKind.SHORTCUT)

    def test_main_level_monotone_when_no_tail(self):
        """Within MAIN the level only increases (the Fact 2 invariant and
        the Theorem 3 no-cycle argument for the Succ/Shortcut group).
        Strict monotonicity needs r = 0; an incomplete tail super node
        resets levels mid-walk (the Section IV-C pathology), which is
        why n is chosen as a multiple of p here."""
        topo = DSNTopology(112)  # p = 7, r = 0
        assert topo.r == 0
        for r in exhaustive_routes(topo):
            levels = [topo.level(h.src) for h in r.hops if h.phase is Phase.MAIN]
            assert levels == sorted(levels), r

    def test_main_level_resets_confined_to_tail(self):
        """With r > 0 any MAIN level reset happens while crossing the
        incomplete tail super node, never elsewhere."""
        topo = DSNTopology(100)  # p = 7, r = 2
        tail_start = (topo.num_super_nodes - 1) * topo.p
        for r in exhaustive_routes(topo):
            main = [h for h in r.hops if h.phase is Phase.MAIN]
            for a, b in zip(main, main[1:]):
                if topo.level(b.src) < topo.level(a.src):
                    assert a.src >= tail_start or a.src < topo.p, (r.source, r.dest)

    def test_shortcut_halves_distance(self):
        """Every shortcut taken in MAIN at least halves the remaining
        clockwise distance or overshoots terminally."""
        topo = DSNTopology(128)
        n = topo.n
        for r in exhaustive_routes(topo):
            for h in r.hops:
                if h.kind is not HopKind.SHORTCUT:
                    continue
                d_before = (r.dest - h.src) % n
                d_after = (r.dest - h.dst) % n
                jumped = (h.dst - h.src) % n
                if jumped <= d_before:
                    assert d_after <= d_before / 2 + topo.p + topo.r


class TestAvoidOvershoot:
    @pytest.mark.parametrize("n", [32, 64, 100])
    def test_valid_and_bounded(self, n):
        topo = DSNTopology(n)
        th = dsn_theory(n)
        for r in exhaustive_routes(topo, avoid_overshoot=True):
            r.validate()
            assert r.length <= th.routing_diameter_bound + th.p

    def test_reduces_finish_pred_walks(self):
        """Section V-D: the twist trades FINISH pred hops for MAIN hops.
        n = 128 (r > 0) actually produces overshoots; power-of-two sizes
        with exact spans barely overshoot at all."""
        topo = DSNTopology(128)
        pairs = [(s, t) for s in range(128) for t in range(128) if s != t]
        basic_preds = ext_preds = 0
        for s, t in pairs:
            b = dsn_route(topo, s, t)
            a = dsn_route(topo, s, t, avoid_overshoot=True)
            basic_preds += sum(
                1 for h in b.hops if h.phase is Phase.FINISH and h.kind is HopKind.PRED
            )
            ext_preds += sum(
                1 for h in a.hops if h.phase is Phase.FINISH and h.kind is HopKind.PRED
            )
        assert ext_preds < basic_preds


class TestRouteResult:
    def test_phase_and_kind_counters(self):
        topo = DSNTopology(64)
        r = dsn_route(topo, 3, 40)
        assert r.phase_length(Phase.PREWORK) + r.phase_length(Phase.MAIN) + r.phase_length(
            Phase.FINISH
        ) == r.length
        assert sum(r.kind_count(k) for k in HopKind) == r.length

    def test_route_all_pairs_generator(self):
        topo = DSNTopology(16)
        routes = list(route_all_pairs(topo))
        assert len(routes) == 16 * 15

    def test_route_all_pairs_subset(self):
        topo = DSNTopology(16)
        routes = list(route_all_pairs(topo, pairs=[(0, 5), (5, 0)]))
        assert len(routes) == 2
        assert routes[0].dest == 5

    def test_validate_catches_corruption(self):
        topo = DSNTopology(16)
        r = dsn_route(topo, 0, 5)
        r.hops.pop()
        with pytest.raises(AssertionError):
            r.validate()
