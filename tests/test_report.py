"""Tests for the auto-generated results report."""

from repro.cli import main
from repro.experiments.report import generate_report


class TestGenerateReport:
    def test_contains_all_sections(self):
        text = generate_report(include_sim=False, full=False)
        for heading in (
            "Figure 7",
            "Figure 8",
            "Figure 9",
            "Fact 1",
            "Theorem 2(b)",
            "E13",
            "Related work",
            "Robustness",
            "placement",
        ):
            assert heading in text, heading

    def test_reports_zero_violations(self):
        text = generate_report()
        assert "0 bound violations" in text


class TestReportCommand:
    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "results.md"
        main(["report", "--out", str(out)])
        assert out.exists()
        assert "Figure 7" in out.read_text()
        assert "wrote" in capsys.readouterr().out
