"""Tests for the basic DSN-x-n construction (Section IV-B, Fact 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DSNTopology, dsn_theory
from repro.topologies import LinkClass
from repro.util import ceil_div, ilog2_ceil


class TestParameters:
    def test_paper_fig4_parameters(self):
        """Fig. 4 caption: n=1024 gives p=10, r=4."""
        t = DSNTopology(1024)
        assert t.p == 10 and t.r == 4

    def test_paper_section_vc_example(self):
        """Section V-C: DSN-10-1020 has super nodes of size 10."""
        t = DSNTopology(1020)
        assert t.p == 10
        assert t.r == 0

    def test_default_x(self):
        t = DSNTopology(64)
        assert t.x == t.p - 1 == 5
        assert t.name == "DSN-5-64"

    def test_x_validation(self):
        with pytest.raises(ValueError):
            DSNTopology(64, x=0)
        with pytest.raises(ValueError):
            DSNTopology(64, x=6)  # p-1 = 5

    def test_min_size(self):
        with pytest.raises(ValueError):
            DSNTopology(8)


class TestLevels:
    def test_periodic_assignment(self):
        t = DSNTopology(32)
        # level i assigned to nodes k*p + i - 1
        for k in range(t.n // t.p):
            for i in range(1, t.p + 1):
                assert t.level(k * t.p + i - 1) == i

    def test_height_complements_level(self):
        t = DSNTopology(64)
        for v in range(t.n):
            assert t.level(v) + t.height(v) == t.p + 1

    def test_tail_levels(self):
        t = DSNTopology(1024)  # r = 4
        for i, v in enumerate(range(1020, 1024)):
            assert t.level(v) == i + 1


class TestShortcuts:
    def test_only_levels_up_to_x_have_shortcuts(self):
        t = DSNTopology(128, x=4)
        for v in range(t.n):
            if t.level(v) <= t.x:
                assert t.shortcut_from(v) is not None
            else:
                assert t.shortcut_from(v) is None

    def test_shortcut_target_level_and_span(self):
        """Level-l shortcut lands on a level-(l+1) node at clockwise
        distance >= ceil(n/2^l) (Section IV-B bullet 3)."""
        for n in (32, 64, 100, 250):
            t = DSNTopology(n)
            for v in range(n):
                w = t.shortcut_from(v)
                if w is None:
                    continue
                l = t.level(v)
                assert t.level(w) == l + 1
                span = t.shortcut_span(v)
                assert span >= ceil_div(n, 2**l)
                # minimality: no closer level-(l+1) node at or beyond the span
                for d in range(ceil_div(n, 2**l), span):
                    assert t.level((v + d) % n) != l + 1

    def test_lowest_level_shortcut_shape(self):
        """Section V-B: the shortest shortcuts are (i, i+p+1)."""
        n = 1024
        t = DSNTopology(n)
        for v in range(n):
            if t.level(v) == t.p - 1 and t.shortcut_from(v) is not None:
                if v < n - 2 * t.p:  # away from the incomplete tail
                    assert t.shortcut_span(v) == t.p + 1

    def test_level1_jumps_half_ring(self):
        t = DSNTopology(256)
        for v in range(t.n):
            if t.level(v) == 1:
                assert t.shortcut_span(v) >= t.n // 2

    def test_incoming_shortcuts_bounded(self):
        t = DSNTopology(250)
        for v in range(t.n):
            assert len(t.incoming_shortcuts(v)) <= 2


class TestDegreesFact1:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=16, max_value=3000), st.data())
    def test_fact1_bounds(self, n, data):
        p = ilog2_ceil(n)
        x = data.draw(st.integers(min_value=1, max_value=p - 1))
        t = DSNTopology(n, x=x)
        th = dsn_theory(n, x)
        assert t.max_degree <= th.max_degree_bound
        assert t.average_degree <= th.average_degree_bound + 1e-9
        assert t.degree_census().get(5, 0) <= th.max_degree5_nodes
        assert t.min_degree >= 2

    def test_full_x_min_degree_3(self):
        """For x = p-1 every node touches at least one shortcut."""
        t = DSNTopology(512)
        assert t.min_degree >= 3

    def test_typical_degree_is_4(self):
        t = DSNTopology(1024)
        census = t.degree_census()
        assert max(census, key=census.get) == 4


class TestStructure:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=16, max_value=2048))
    def test_connected(self, n):
        assert DSNTopology(n).is_connected()

    def test_super_nodes(self):
        t = DSNTopology(1024)
        assert t.num_super_nodes == 103  # 102 full + 1 incomplete
        assert list(t.super_node_members(0)) == list(range(10))
        assert list(t.super_node_members(102)) == [1020, 1021, 1022, 1023]
        assert t.super_node(25) == 2
        with pytest.raises(ValueError):
            t.super_node_members(103)

    def test_collapsing_supernodes_gives_dln(self):
        """Fig. 1(c): collapsing super nodes yields a DLN-x super graph --
        every full super node owns exactly one shortcut of each level."""
        t = DSNTopology(1020)  # r = 0: all super nodes complete
        for k in range(t.num_super_nodes):
            levels = sorted(
                t.level(v) for v in t.super_node_members(k) if t.shortcut_from(v) is not None
            )
            assert levels == list(range(1, t.x + 1))

    def test_ring_links_present(self):
        t = DSNTopology(64)
        locals_ = t.links_of_class(LinkClass.LOCAL)
        assert len(locals_) == 64


class TestRequiredLevel:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=16, max_value=4096), st.data())
    def test_definition(self, n, data):
        """required_level(d) = l with n/2^l < d <= n/2^(l-1)."""
        t = DSNTopology(max(n, 16))
        d = data.draw(st.integers(min_value=1, max_value=t.n))
        l = t.required_level(d)
        assert t.n / 2**l < d or d == t.n  # strict lower edge
        assert d <= t.n / 2 ** (l - 1)

    def test_rejects_bad_distance(self):
        t = DSNTopology(64)
        with pytest.raises(ValueError):
            t.required_level(0)
        with pytest.raises(ValueError):
            t.required_level(65)
