"""Tests for the persistent run store (repro.store).

The store's contract: a stored point is *bit-identical* to a fresh
computation -- across the memory tier, the disk tier, worker processes
racing on one entry, and killed-and-resumed sweeps. Anything less and
"never simulate the same point twice" would silently change results.
"""

import json
import math
import multiprocessing
import os
import threading

import numpy as np
import pytest

from repro import store
from repro.core import DSNTopology
from repro.sim import SimConfig
from repro.sim.metrics import FaultRecord, SimResult
from repro.store import shards as store_shards_mod


@pytest.fixture(autouse=True)
def fresh_store(monkeypatch):
    """Each test starts with an empty memory tier, no disk, zero stats."""
    monkeypatch.delenv("REPRO_STORE", raising=False)
    monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
    monkeypatch.delenv("REPRO_STORE_MEM", raising=False)
    monkeypatch.delenv("REPRO_STORE_SHARDS", raising=False)
    store_shards_mod.invalidate_layout_cache()
    store.clear_store()
    store.reset_store_stats()
    yield
    store.clear_store()
    store.reset_store_stats()


def _entry_files(root):
    """Every entry file in a store directory (flat root + shard dirs)."""
    return sorted(store_shards_mod.iter_entry_paths(str(root)))


def _sample_result() -> SimResult:
    return SimResult(
        topology="DSN-3-16",
        pattern="uniform",
        offered_gbps=2.0,
        num_hosts=64,
        measure_window_ns=6000.0,
        generated_measured=10,
        delivered_measured=9,
        delivered_in_window_bits=4096.0,
        delivered_in_window_count=8,
        latencies_ns=[100.5, 200.25, 0.1 + 0.2],
        hop_counts=[2, 3, 4],
        packets_dropped=1,
        flits_dropped=4,
        dropped_measured=1,
        fault_records=[
            FaultRecord(
                time_ns=3000.0,
                links_failed=2,
                packets_dropped=1,
                flits_dropped=4,
                in_flight_at_fault=3,
                recovery_ns=float("nan"),
                reroute_wall_s=0.002,
            )
        ],
        post_fault_bits=128.0,
        post_fault_window_ns=3000.0,
        channel_busy_ns={(0, 1): 12.5, (5, 3): 0.75},
        telemetry={"counters": {"sim.delivered": 9}, "samples": [{"t_ns": 1.0}]},
    )


class TestCodec:
    def test_round_trip_exact(self):
        r = _sample_result()
        doc = store.encode_result(r)
        back = store.decode_result(json.loads(json.dumps(doc, allow_nan=True)))
        assert back.latencies_ns == r.latencies_ns
        assert back.hop_counts == r.hop_counts
        assert back.channel_busy_ns == r.channel_busy_ns
        assert back.telemetry == r.telemetry
        assert math.isnan(back.fault_records[0].recovery_ns)
        assert back.fault_records[0].time_ns == r.fault_records[0].time_ns
        # Everything else field by field, via a second encode.
        assert json.dumps(store.encode_result(back), sort_keys=True, allow_nan=True) == \
            json.dumps(doc, sort_keys=True, allow_nan=True)

    def test_numpy_values_become_plain_json(self):
        r = _sample_result()
        r.latencies_ns = [np.float64(1.5)]
        r.hop_counts = [np.int64(3)]
        r.telemetry = {"arr": np.arange(3), "scalar": np.float32(2.0)}
        doc = json.loads(json.dumps(store.encode_result(r), allow_nan=True))
        assert doc["latencies_ns"] == [1.5]
        assert doc["hop_counts"] == [3]
        assert doc["telemetry"]["arr"] == [0, 1, 2]
        assert doc["telemetry"]["scalar"] == 2.0

    def test_unknown_codec_version_is_a_miss(self):
        doc = store.encode_result(_sample_result())
        doc["codec"] = store.CODEC_VERSION + 1
        assert store.decode_result(doc) is None


class TestKeys:
    def test_canonical_payload_order(self):
        a = store.run_key("t", {"a": 1, "b": 2.5})
        b = store.run_key("t", {"b": 2.5, "a": 1})
        assert a.digest == b.digest
        assert a.payload == b.payload

    def test_namespace_and_payload_distinguish(self):
        base = store.run_key("t", {"a": 1})
        assert store.run_key("u", {"a": 1}).digest != base.digest
        assert store.run_key("t", {"a": 2}).digest != base.digest

    def test_sim_key_stable_across_topology_rebuilds(self):
        cfg = SimConfig(seed=3)
        a = store.sim_run_key(DSNTopology(16), "adaptive", "uniform", 2.0, cfg, 1)
        b = store.sim_run_key(DSNTopology(16), "adaptive", "uniform", 2.0, cfg, 1)
        assert a == b

    def test_sim_key_sensitive_to_every_axis(self):
        cfg = SimConfig(seed=3)
        topo = DSNTopology(16)
        base = store.sim_run_key(topo, "adaptive", "uniform", 2.0, cfg, 1)
        variants = [
            store.sim_run_key(DSNTopology(64), "adaptive", "uniform", 2.0, cfg, 1),
            store.sim_run_key(topo, "updown", "uniform", 2.0, cfg, 1),
            store.sim_run_key(topo, "adaptive", "bit_reversal", 2.0, cfg, 1),
            store.sim_run_key(topo, "adaptive", "uniform", 4.0, cfg, 1),
            store.sim_run_key(topo, "adaptive", "uniform", 2.0, SimConfig(seed=4), 1),
            store.sim_run_key(topo, "adaptive", "uniform", 2.0, cfg, 2),
            store.sim_run_key(topo, "adaptive", "uniform", 2.0, cfg, 1, engine="flit"),
            store.sim_run_key(topo, "adaptive", "uniform", 2.0, cfg, 1, buffer_flits=2),
        ]
        digests = {v.digest for v in variants}
        assert base.digest not in digests
        assert len(digests) == len(variants)

    def test_engine_normalization_collapses_flit_spellings(self):
        assert store.normalize_engine("flit") == "flit"
        assert store.normalize_engine("flit:event") == "flit"
        assert store.normalize_engine("flit:cycle") == "flit"
        assert store.normalize_engine(" Flit ") == "flit"
        # The packet-level simulator stays its own namespace.
        assert store.normalize_engine("network") == "network"

    def test_sim_key_shared_across_flit_run_loops(self):
        """The flit run loops are bit-identical by contract, so they must
        address the same stored entry; the packet-level sim must not."""
        cfg = SimConfig(seed=3)
        topo = DSNTopology(16)
        keys = [
            store.sim_run_key(topo, "adaptive", "uniform", 2.0, cfg, 1, engine=e)
            for e in ("flit", "flit:event", "flit:cycle")
        ]
        assert len({k.digest for k in keys}) == 1
        net = store.sim_run_key(topo, "adaptive", "uniform", 2.0, cfg, 1)
        assert net.digest != keys[0].digest

    def test_warm_hit_served_across_flit_engines(self):
        """A point stored under one flit spelling is a hit under any other."""
        cfg = SimConfig(seed=3)
        topo = DSNTopology(16)
        key_a = store.sim_run_key(topo, "adaptive", "uniform", 2.0, cfg, 1, engine="flit:cycle")
        store.cached_value(key_a, lambda: {"v": 7})
        store.reset_store_stats()
        key_b = store.sim_run_key(topo, "adaptive", "uniform", 2.0, cfg, 1, engine="flit:event")
        assert store.cached_value(key_b, lambda: {"v": -1}) == {"v": 7}
        assert store.store_stats().memory_hits == 1

    def test_schedule_fingerprint_ignores_labels(self):
        from repro.faults import FaultSchedule, FaultSet
        from repro.faults.schedule import FaultEvent

        a = FaultSchedule([FaultEvent(100.0, FaultSet(dead_links=((1, 2),), label="x"))])
        b = FaultSchedule([FaultEvent(100.0, FaultSet(dead_links=((1, 2),), label="y"))])
        assert store.schedule_fingerprint(a) == store.schedule_fingerprint(b)
        assert store.schedule_fingerprint(None) is None


class TestMemoryTier:
    def test_get_or_run_computes_once(self):
        key = store.run_key("t", {"x": 1})
        calls = []
        for _ in range(3):
            v = store.cached_value(key, lambda: calls.append(1) or {"v": 42})
            assert v == {"v": 42}
        assert len(calls) == 1
        s = store.store_stats()
        assert s.misses == 1 and s.memory_hits == 2 and s.disk_hits == 0

    def test_hits_are_decoded_fresh(self):
        """A caller mutating a returned value must not pollute later hits."""
        key = store.run_key("t", {"x": 2})
        first = store.cached_value(key, lambda: {"v": [1, 2]})
        first["v"].append(99)
        second = store.cached_value(key, lambda: {"v": [1, 2]})
        assert second == {"v": [1, 2]}

    def test_lru_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_MEM", "2")
        keys = [store.run_key("t", {"i": i}) for i in range(3)]
        for i, k in enumerate(keys):
            store.cached_value(k, lambda i=i: {"i": i})
        # key 0 was evicted; keys 2 and 1 are resident (probe most-recent
        # first so the probes themselves don't evict anything).
        store.reset_store_stats()
        for i in (2, 1, 0):
            store.cached_value(keys[i], lambda i=i: {"i": i})
        s = store.store_stats()
        assert s.misses == 1 and s.memory_hits == 2

    def test_disabled_bypasses_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        key = store.run_key("t", {"x": 3})
        calls = []
        for _ in range(2):
            store.cached_value(key, lambda: calls.append(1) or {"v": 1})
        assert len(calls) == 2
        s = store.store_stats()
        assert s.hits == 0 and s.misses == 0


class TestDiskTier:
    def test_round_trip_and_backfill(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        key = store.run_key("t", {"x": 1})
        store.cached_value(key, lambda: {"v": 7})
        entry = store.find_disk_entry(key)
        assert entry is not None and entry == store.disk_entry_path(key)
        doc = json.loads(open(entry).read())
        assert doc["ns"] == "t" and doc["key"] == key.payload and doc["result"] == {"v": 7}

        store.clear_store()  # drop memory: next get must come from disk
        store.reset_store_stats()
        assert store.cached_value(key, lambda: pytest.fail("should not run")) == {"v": 7}
        s = store.store_stats()
        assert s.disk_hits == 1 and s.bytes_read > 0
        # The disk hit backfilled memory.
        assert store.cached_value(key, lambda: pytest.fail("nope")) == {"v": 7}
        assert store.store_stats().memory_hits == 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        key = store.run_key("t", {"x": 1})
        store.cached_value(key, lambda: {"v": 7})
        with open(store.find_disk_entry(key), "w") as fh:
            fh.write("{not json")
        store.clear_store()
        assert store.get(key) is None

    def test_wrong_payload_degrades_to_miss(self, tmp_path, monkeypatch):
        """A digest collision (or edited file) must never serve a wrong
        result: the stored canonical payload is checked against the key."""
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        key = store.run_key("t", {"x": 1})
        other = store.run_key("t", {"x": 2})
        doc = {"ns": "t", "key": other.payload, "result": {"v": 666}}
        path = store.disk_entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write(json.dumps(doc))
        assert store.get(key) is None

    def test_clear_store_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        key = store.run_key("t", {"x": 1})
        store.cached_value(key, lambda: {"v": 7})
        store.clear_store(disk=True)
        assert _entry_files(tmp_path) == []

    def test_sim_result_disk_round_trip_bit_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        key = store.run_key("simtest", {"x": 1})
        r = _sample_result()
        store.put(key, r, encode=store.encode_result)
        store.clear_store()
        back = store.get(key, decode=store.decode_result)
        assert json.dumps(store.encode_result(back), sort_keys=True, allow_nan=True) == \
            json.dumps(store.encode_result(r), sort_keys=True, allow_nan=True)


class TestDedupMap:
    def test_duplicates_run_once_order_preserved(self):
        calls = []

        def fn(x):
            calls.append(x)
            return x * 10

        out = store.dedup_map(fn, [3, 1, 3, 2, 1, 3])
        assert out == [30, 10, 30, 20, 10, 30]
        assert calls == [3, 1, 2]
        assert store.store_stats().inflight_dedup == 3

    def test_no_duplicates_no_accounting(self):
        assert store.dedup_map(lambda x: x, [1, 2, 3]) == [1, 2, 3]
        assert store.store_stats().inflight_dedup == 0


# ----------------------------------------------------------------------
# concurrency: threads and processes racing on the same entry
# ----------------------------------------------------------------------
def _race_worker(args):
    """Compute-and-publish one point; returns the value and the stats
    this worker observed. Every actual compute appends one line to
    ``log_path``, so the parent can count computes across processes."""
    store_dir, salt, log_path = args
    os.environ["REPRO_STORE_DIR"] = store_dir
    from repro import store as st

    st.clear_store()
    st.reset_store_stats()
    key = st.run_key("race", {"point": 1})

    def compute():
        import time

        with open(log_path, "a") as fh:
            fh.write(f"compute:{os.getpid()}\n")
        time.sleep(0.05)  # widen the race window
        return {"value": 1234, "salt_ignored": salt % 1}

    value = st.cached_value(key, compute)
    s = st.store_stats()
    return value, s.stores, s.misses, s.lock_waits, s.disk_hits


class TestConcurrency:
    def test_two_processes_race_one_compute(self, tmp_path):
        """Two processes racing one cold key coalesce on the per-entry
        lock: exactly one compute, one publish, and both decode the
        same stored bytes (ISSUE 7 coalescing contract)."""
        log = tmp_path / "computes.log"
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(2) as pool:
            results = pool.map(
                _race_worker,
                [(str(tmp_path), 1, str(log)), (str(tmp_path), 2, str(log))],
            )
        values = [r[0] for r in results]
        assert values[0] == values[1] == {"value": 1234, "salt_ignored": 0}
        # Exactly one compute happened, cluster-wide.
        assert len(log.read_text().splitlines()) == 1
        # Exactly one writer published; the loser waited out the lock
        # and was served the leader's entry as a disk hit.
        assert sum(r[1] for r in results) == 1
        assert sum(r[2] for r in results) == 1  # misses
        assert sum(r[3] for r in results) <= 1  # lock_waits (timing-dependent)
        assert sum(r[4] for r in results) == 1  # disk_hits
        key = store.run_key("race", {"point": 1})
        entries = _entry_files(tmp_path)
        assert [os.path.basename(e) for e in entries] == [key.stem + ".json"]
        doc = json.loads(open(entries[0]).read())
        assert doc["key"] == key.payload and doc["result"]["value"] == 1234
        # Byte-identical decoded results in both racers.
        assert json.dumps(values[0], sort_keys=True) == json.dumps(values[1], sort_keys=True)
        # The compute lock was reaped after the publish.
        assert list(store_shards_mod.iter_stale_locks(str(tmp_path))) == []
        # A third, warm lookup sees the entry without computing.
        value, *_ = _race_worker((str(tmp_path), 3, str(log)))
        assert value == {"value": 1234, "salt_ignored": 0}
        assert len(log.read_text().splitlines()) == 1

    def test_two_threads_race_one_compute(self):
        """Two threads racing one cold key coalesce on the in-process
        single-flight latch: one compute, byte-identical results."""
        import time

        key = store.run_key("t", {"x": "threads"})
        started = threading.Event()
        release = threading.Event()
        calls = []

        def compute():
            calls.append(1)
            started.set()
            release.wait(5.0)
            return {"v": [3, 1]}

        results = []

        def worker():
            results.append(store.cached_value(key, compute))

        t1 = threading.Thread(target=worker)
        t1.start()
        assert started.wait(5.0)  # leader is inside compute()
        t2 = threading.Thread(target=worker)
        t2.start()
        deadline = time.monotonic() + 5.0
        while store.store_stats().thread_coalesced < 1:  # t2 on the latch
            assert time.monotonic() < deadline
            time.sleep(0.005)
        release.set()
        t1.join(5.0)
        t2.join(5.0)
        assert len(calls) == 1
        assert results[0] == results[1] == {"v": [3, 1]}
        assert json.dumps(results[0], sort_keys=True) == json.dumps(results[1], sort_keys=True)
        s = store.store_stats()
        assert s.misses == 1 and s.thread_coalesced == 1 and s.memory_hits == 1

    def test_failed_leader_hands_off_to_waiter(self):
        """A waiter must not hang (or inherit the error) when the
        computing leader raises: it re-runs the compute itself."""
        key = store.run_key("t", {"x": "fail"})
        started = threading.Event()
        release = threading.Event()
        outcome = {}

        def bad_compute():
            started.set()
            release.wait(5.0)
            raise RuntimeError("leader died")

        def leader():
            try:
                store.cached_value(key, bad_compute)
            except RuntimeError as exc:
                outcome["leader"] = str(exc)

        def waiter():
            outcome["waiter"] = store.cached_value(key, lambda: {"v": 9})

        t1 = threading.Thread(target=leader)
        t1.start()
        assert started.wait(5.0)
        t2 = threading.Thread(target=waiter)
        t2.start()
        import time

        deadline = time.monotonic() + 5.0
        while store.store_stats().thread_coalesced < 1:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        release.set()
        t1.join(5.0)
        t2.join(5.0)
        assert outcome["leader"] == "leader died"
        assert outcome["waiter"] == {"v": 9}


# ----------------------------------------------------------------------
# experiment wiring: warm curves, resume, saturation
# ----------------------------------------------------------------------
CFG = SimConfig(warmup_ns=2000, measure_ns=6000, drain_ns=12000, seed=3)


def _encode_curve(curve):
    return json.dumps(
        [store.encode_result(p) for p in curve.points],
        sort_keys=True,
        allow_nan=True,
    )


class TestExperimentWiring:
    def test_run_curve_warm_hits(self):
        from repro.experiments.latency import run_curve

        cold = run_curve("dsn", "uniform", loads=(1.0, 2.0), n=16, config=CFG, seed=1)
        assert store.store_stats().misses == 2
        warm = run_curve("dsn", "uniform", loads=(1.0, 2.0), n=16, config=CFG, seed=1)
        s = store.store_stats()
        assert s.memory_hits == 2 and s.misses == 2
        assert _encode_curve(cold) == _encode_curve(warm)

    def test_duplicate_loads_run_once(self):
        from repro.experiments.latency import run_curve

        curve = run_curve("dsn", "uniform", loads=(1.0, 1.0, 1.0), n=16, config=CFG, seed=1)
        s = store.store_stats()
        assert s.inflight_dedup == 2 and s.misses == 1
        assert len(curve.points) == 3
        assert curve.points[0] is curve.points[1] is curve.points[2]

    def test_resume_killed_sweep_byte_identical(self, tmp_path, monkeypatch):
        """A sweep that died after two points resumes from the store:
        only the missing points simulate, and the final curve is
        byte-identical to a never-interrupted run."""
        from repro.experiments.latency import run_curve

        loads = (1.0, 2.0, 4.0)
        # The reference: one uninterrupted, store-less run.
        monkeypatch.setenv("REPRO_STORE", "off")
        reference = run_curve("dsn", "uniform", loads=loads, n=16, config=CFG, seed=1)
        monkeypatch.delenv("REPRO_STORE")

        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        # "Killed" sweep: only the first two points ever ran.
        run_curve("dsn", "uniform", loads=loads[:2], n=16, config=CFG, seed=1)
        assert len(_entry_files(tmp_path)) == 2

        # Resume in a "fresh process": empty memory tier, zeroed stats.
        store.clear_store()
        store.reset_store_stats()
        resumed = run_curve("dsn", "uniform", loads=loads, n=16, config=CFG, seed=1)
        s = store.store_stats()
        assert s.disk_hits == 2 and s.misses == 1
        assert _encode_curve(resumed) == _encode_curve(reference)

    def test_sweep_leaves_no_stale_locks(self, tmp_path, monkeypatch):
        """Regression (ISSUE 7): the disk tier used to leave one
        ``.lock`` file per entry forever; per-entry compute locks are
        now reaped after a successful publish, and the only lock files
        left are the fixed dot-prefixed shard/layout locks."""
        from repro.experiments.latency import run_curve

        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        run_curve("dsn", "uniform", loads=(1.0, 2.0, 4.0), n=16, config=CFG, seed=1)
        assert len(_entry_files(tmp_path)) == 3
        assert list(store_shards_mod.iter_stale_locks(str(tmp_path))) == []
        leftover = [p for p in tmp_path.rglob("*.lock") if not p.name.startswith(".")]
        assert leftover == []

    def test_saturation_search_warm_no_misses(self):
        from repro.experiments.latency import saturation_search

        first = saturation_search("dsn", "uniform", n=16, config=CFG, seed=1,
                                  workers=1, max_gbps=16.0)
        store.reset_store_stats()
        second = saturation_search("dsn", "uniform", n=16, config=CFG, seed=1,
                                   workers=1, max_gbps=16.0)
        assert store.store_stats().misses == 0
        assert second == first

    def test_fault_trial_store_backed(self, tmp_path, monkeypatch):
        from repro.faults.degradation import degradation_point

        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        a = degradation_point("dsn", 64, 0.05, trials=2, seed=0, workers=1)
        store.clear_store()
        store.reset_store_stats()
        b = degradation_point("dsn", 64, 0.05, trials=2, seed=0, workers=1)
        assert store.store_stats().disk_hits == 2
        assert a == b

    def test_fault_table_store_backed(self):
        from repro.experiments.robustness import fault_table

        table_a, stats_a = fault_table(n=64, fractions=(0.05,), trials=2, seed=0)
        misses = store.store_stats().misses
        assert misses == 3  # one per trio topology
        table_b, stats_b = fault_table(n=64, fractions=(0.05,), trials=2, seed=0)
        assert store.store_stats().misses == misses
        assert table_a == table_b and stats_a == stats_b


class TestGcStore:
    def _populate(self, tmp_path, count):
        """Write `count` distinct entries, oldest first, with distinct
        mtimes; returns their paths in write (= mtime) order."""
        paths = []
        for i in range(count):
            key = store.run_key("gc", {"i": i})
            store.cached_value(key, lambda i=i: {"v": "x" * 50, "i": i})
            path = store.find_disk_entry(key)
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
            paths.append(path)
        return paths

    def test_evicts_oldest_first_until_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        paths = self._populate(tmp_path, 6)
        sizes = [os.path.getsize(p) for p in paths]
        budget = sum(sizes[2:])  # exactly the four newest
        report = store.gc_store(str(tmp_path), max_bytes=budget)
        assert report.ok
        assert report.scanned == 6 and report.evicted == 2
        assert report.evicted_bytes == sum(sizes[:2])
        assert report.kept_bytes == budget
        assert [p for p in paths if os.path.exists(p)] == paths[2:]
        assert "2/6 entries evicted" in report.summary()

    def test_evicted_entries_leave_memory_tier_too(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        self._populate(tmp_path, 3)
        report = store.gc_store(str(tmp_path), max_bytes=0)
        assert report.evicted == 3 and report.kept_bytes == 0
        # Neither tier serves an evicted digest: the next get recomputes.
        assert store.get(store.run_key("gc", {"i": 0})) is None
        calls = []
        store.cached_value(
            store.run_key("gc", {"i": 0}), lambda: calls.append(1) or {"v": 0}
        )
        assert calls == [1]

    def test_within_budget_is_a_no_op(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        paths = self._populate(tmp_path, 3)
        report = store.gc_store(str(tmp_path), max_bytes=10**9)
        assert report.evicted == 0 and report.evicted_bytes == 0
        assert all(os.path.exists(p) for p in paths)

    def test_missing_and_empty_dirs(self, tmp_path):
        report = store.gc_store(str(tmp_path / "never-created"), max_bytes=10)
        assert report.ok and report.scanned == 0
        with pytest.raises(ValueError):
            store.gc_store(str(tmp_path), max_bytes=-1)
        with pytest.raises(ValueError):
            store.gc_store(None, max_bytes=10)  # no dir configured

    def test_gc_leaves_no_stale_locks(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        self._populate(tmp_path, 4)
        store.gc_store(str(tmp_path), max_bytes=0)
        assert list(store_shards_mod.iter_stale_locks(str(tmp_path))) == []
