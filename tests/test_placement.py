"""Tests for the cabinet-placement optimizer."""

import numpy as np
import pytest

from repro.core import DSNTopology
from repro.layout import (
    Floorplan,
    optimize_placement,
    placement_cable_total,
    total_cable_length,
)
from repro.topologies import Link, LinkClass, RingTopology, Topology


class TestPlacementCost:
    def test_conventional_matches_cable_accounting(self):
        topo = DSNTopology(64)
        fp = Floorplan(64)
        assignment = np.array([fp.cabinet_of(v) for v in range(64)])
        assert placement_cable_total(topo, assignment, fp) == pytest.approx(
            total_cable_length(topo, floorplan=fp, include_parallel=False)
        )


class TestOptimizer:
    def test_never_worse_than_conventional(self):
        for n in (64, 128):
            r = optimize_placement(DSNTopology(n), iterations=3000, seed=0)
            assert r.optimized_total_m <= r.conventional_total_m + 1e-6

    def test_result_total_is_exact(self):
        topo = DSNTopology(64)
        fp = Floorplan(64)
        r = optimize_placement(topo, floorplan=fp, iterations=3000, seed=1)
        assert r.optimized_total_m == pytest.approx(
            placement_cable_total(topo, r.assignment, fp)
        )

    def test_assignment_preserves_cabinet_capacity(self):
        topo = DSNTopology(128)
        fp = Floorplan(128)
        r = optimize_placement(topo, floorplan=fp, iterations=2000, seed=0)
        counts = np.bincount(r.assignment, minlength=fp.num_cabinets)
        assert counts.max() <= fp.config.switches_per_cabinet

    def test_recovers_scrambled_ring(self):
        """A ring numbered with a large stride has terrible conventional
        placement; the optimizer must recover most of the penalty."""
        n = 64
        stride = 27  # coprime with 64 -> a scrambled ring
        links = [
            Link((i * stride) % n, ((i + 1) * stride) % n, LinkClass.LOCAL)
            for i in range(n)
        ]
        scrambled = Topology(n, links, name="scrambled-ring")
        good = RingTopology(n)
        fp = Floorplan(n)
        r = optimize_placement(scrambled, floorplan=fp, iterations=40_000, seed=0)
        ideal = total_cable_length(good, floorplan=fp)
        assert r.conventional_total_m > 1.5 * ideal  # scrambling hurt
        recovered = (r.conventional_total_m - r.optimized_total_m) / (
            r.conventional_total_m - ideal
        )
        assert recovered > 0.5

    def test_deterministic(self):
        a = optimize_placement(DSNTopology(64), iterations=2000, seed=7)
        b = optimize_placement(DSNTopology(64), iterations=2000, seed=7)
        assert a.optimized_total_m == b.optimized_total_m

    def test_gain_property(self):
        r = optimize_placement(DSNTopology(64), iterations=500, seed=0)
        assert 0.0 <= r.gain < 1.0


class TestThesis:
    def test_dsn_conventional_near_optimal(self):
        """The layout-aware claim: optimizing placement buys DSN almost
        nothing because its conventional layout is already good."""
        r = optimize_placement(DSNTopology(128), iterations=10_000, seed=0)
        assert r.gain < 0.05
