"""Tests for the collective/stencil traffic generators."""

import numpy as np
import pytest

from repro.traffic import (
    AllToAllTraffic,
    ButterflyTraffic,
    HaloExchangeTraffic,
    RingAllreduceTraffic,
    make_collective,
)

RNG = np.random.default_rng(0)


class TestHaloExchange:
    def test_cycles_through_neighbors(self):
        p = HaloExchangeTraffic(64)
        interior = p.cols + 1  # an interior rank
        seq = [p.destination(interior, RNG) for _ in range(8)]
        assert seq[:4] == seq[4:]  # round-robin period 4
        assert len(set(seq[:4])) == 4

    def test_neighbors_are_grid_adjacent(self):
        p = HaloExchangeTraffic(64)
        for h in range(64):
            r, c = divmod(h, p.cols)
            for d in {p.destination(h, RNG) for _ in range(4)}:
                dr, dc = divmod(d, p.cols)
                assert abs(dr - r) + abs(dc - c) == 1

    def test_corner_rank_has_two_neighbors(self):
        p = HaloExchangeTraffic(64)
        dsts = {p.destination(0, RNG) for _ in range(6)}
        assert len(dsts) == 2


class TestRingAllreduce:
    def test_always_next_rank(self):
        p = RingAllreduceTraffic(16)
        for h in range(16):
            assert p.destination(h, RNG) == (h + 1) % 16
            assert p.destination(h, RNG) == (h + 1) % 16


class TestButterfly:
    def test_stage_partners(self):
        p = ButterflyTraffic(16)
        seq = [p.destination(5, RNG) for _ in range(4)]
        assert seq == [5 ^ 1, 5 ^ 2, 5 ^ 4, 5 ^ 8]

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            ButterflyTraffic(24)


class TestAllToAll:
    def test_covers_everyone_without_self(self):
        p = AllToAllTraffic(8)
        dsts = [p.destination(3, RNG) for _ in range(7)]
        assert sorted(dsts) == [0, 1, 2, 4, 5, 6, 7]

    def test_staggered_start(self):
        """Rank p starts at p+1: no two ranks hit the same destination
        in the same step (the congestion-avoiding schedule)."""
        p = AllToAllTraffic(8)
        first = [p.destination(src, RNG) for src in range(8)]
        assert len(set(first)) == 8


class TestFactory:
    @pytest.mark.parametrize("name", ["halo_exchange", "ring_allreduce", "butterfly", "all_to_all"])
    def test_make(self, name):
        assert make_collective(name, 64).name == name

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_collective("barrier", 64)


class TestInSimulator:
    def test_halo_exchange_simulates(self):
        from repro.core import DSNTopology
        from repro.routing import DuatoAdaptiveRouting
        from repro.sim import AdaptiveEscapeAdapter, NetworkSimulator, SimConfig

        cfg = SimConfig(warmup_ns=2000, measure_ns=6000, drain_ns=12000)
        topo = DSNTopology(16)
        ad = AdaptiveEscapeAdapter(DuatoAdaptiveRouting(topo), 4, np.random.default_rng(0))
        r = NetworkSimulator(topo, ad, HaloExchangeTraffic(64), 4.0, cfg).run()
        assert r.delivered_fraction == 1.0
