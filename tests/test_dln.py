"""Tests for DLN-x and the random-shortcut DLN-x-y (the paper's RANDOM)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import diameter
from repro.topologies import DLNRandomTopology, DLNTopology, LinkClass
from repro.util import ceil_div


class TestDLN:
    def test_dln2_is_plain_ring(self):
        t = DLNTopology(32, 2)
        assert t.num_links == 32
        assert t.degree_census() == {2: 32}

    def test_shortcut_spans(self):
        n, x = 64, 5
        t = DLNTopology(n, x)
        spans = {ceil_div(n, 2**k) for k in range(1, x - 1)}
        shortcut_spans = {
            min((l.v - l.u) % n, (l.u - l.v) % n)
            for l in t.links_of_class(LinkClass.SHORTCUT)
        }
        for s in spans:
            assert min(s, n - s) in shortcut_spans

    def test_dln_logn_logarithmic_diameter(self):
        # DLN-log n has logarithmic diameter (Section IV-A)
        n = 128
        t = DLNTopology(n, 7)
        assert diameter(t) <= 2 * 7

    def test_rejects_small_x(self):
        with pytest.raises(ValueError):
            DLNTopology(32, 1)


class TestDLNRandom:
    def test_exact_degree_4(self):
        """DLN-2-2 is the paper's RANDOM: ring + 2 random endpoints = exact degree 4."""
        t = DLNRandomTopology(64, 2, 2, seed=0)
        assert t.degree_census() == {4: 64}

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_exact_degree_any_seed(self, seed):
        t = DLNRandomTopology(32, 2, 2, seed=seed)
        assert t.degree_census() == {4: 32}

    def test_seed_reproducible(self):
        a = DLNRandomTopology(64, seed=42)
        b = DLNRandomTopology(64, seed=42)
        assert a.links == b.links

    def test_different_seeds_differ(self):
        a = DLNRandomTopology(64, seed=1)
        b = DLNRandomTopology(64, seed=2)
        assert a.links != b.links

    def test_random_links_avoid_base(self):
        t = DLNRandomTopology(64, seed=3)
        ring = {(l.u, l.v) for l in t.links_of_class(LinkClass.LOCAL)}
        rand = {(l.u, l.v) for l in t.links_of_class(LinkClass.RANDOM)}
        assert not ring & rand

    def test_low_diameter_vs_ring(self):
        t = DLNRandomTopology(256, seed=0)
        assert diameter(t) <= 10  # vs 128 for the plain ring

    def test_odd_product_rejected(self):
        with pytest.raises(ValueError):
            DLNRandomTopology(33, 2, 1, seed=0)
