"""Tests for the serving tier (repro.serve).

The daemon's contract: a served answer is the stored document --
byte-identical to a direct in-process ``get_or_run`` -- warm hits
never compute, concurrent identical queries coalesce onto one fill,
and a saturated fill queue answers 429 instead of buffering without
bound.
"""

import json
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro import serve, store
from repro.serve import handlers
from repro.serve.daemon import Daemon, ServeConfig, ServerThread
from repro.store import shards as store_shards_mod


@pytest.fixture(autouse=True)
def fresh_store(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
    monkeypatch.delenv("REPRO_STORE_SHARDS", raising=False)
    store_shards_mod.invalidate_layout_cache()
    store.clear_store()
    store.reset_store_stats()
    yield
    store.clear_store()
    store.reset_store_stats()


def _get(url: str):
    """(status, headers, json_body) for one GET; errors don't raise."""
    try:
        with urllib.request.urlopen(url) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        body = exc.read()
        return exc.code, dict(exc.headers), json.loads(body) if body else {}


def _path_job(path: str) -> tuple:
    target, _, query = path.partition("?")
    params = {k: v[-1] for k, v in urllib.parse.parse_qs(query).items()}
    return handlers.parse_query(target, params)


# Small, fast queries used throughout (n=16, quick sim config).
TOPO_PATH = "/v1/topology?kind=dsn&n=16&seed=1"
LAT_PATH = ("/v1/latency?kind=dsn&pattern=uniform&load=1"
            "&n=16&seed=1&routing=adaptive&engine=network")


class TestQueryModel:
    def test_parse_round_trips_job_path(self):
        for job in (
            handlers.latency_job("dsn", "uniform", 2.0, n=16, seed=3),
            handlers.latency_job("torus", "bit_reversal", 4.0, n=64,
                                 routing="dor", engine="flit", full=True),
            handlers.topology_job("random", n=32, seed=7),
        ):
            assert _path_job(handlers.job_path(job)) == job

    def test_parse_rejects_garbage(self):
        cases = [
            ("/v1/latency", {}),  # missing everything
            ("/v1/latency", {"kind": "nope", "pattern": "uniform", "load": "1"}),
            ("/v1/latency", {"kind": "dsn", "pattern": "uniform", "load": "-3"}),
            ("/v1/latency", {"kind": "dsn", "pattern": "uniform", "load": "1",
                             "n": "999999"}),
            ("/v1/topology", {"kind": "dsn", "n": "abc"}),
            ("/v2/latency", {"kind": "dsn", "pattern": "uniform", "load": "1"}),
        ]
        for path, params in cases:
            with pytest.raises(handlers.QueryError):
                handlers.parse_query(path, params)

    def test_latency_key_matches_experiment_driver(self):
        """The daemon must share store entries with ``run_curve``."""
        from repro.experiments.latency import _sim_topology

        job = handlers.latency_job("dsn", "uniform", 1.0, n=16, seed=1)
        topo = _sim_topology("dsn", 16, 1, "adaptive")
        expected = store.sim_run_key(
            topo, "adaptive", "uniform", 1.0, handlers.sim_config(False), 1,
            engine="network",
        )
        assert handlers.job_key(job).digest == expected.digest

    def test_compute_job_equals_stored_document(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        job = _path_job(TOPO_PATH)
        doc = handlers.compute_job(job)
        stored = store.get(handlers.job_key(job))
        assert handlers.result_text(doc) == handlers.result_text(stored)

    def test_safe_compute_job_contains_errors(self):
        status, payload = handlers.safe_compute_job(("latency", "dsn", "uniform",
                                                     1.0, -5, 1, "adaptive",
                                                     "network", False))
        assert status == "error" and payload


class TestDaemon:
    def test_endpoints_and_sources(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        direct = handlers.compute_job(_path_job(TOPO_PATH))
        with ServerThread(ServeConfig(port=0)) as srv:
            status, _, body = _get(srv.url + "/healthz")
            assert status == 200 and body == {"ok": True}

            # Warm hit: served from the store, byte-identical to direct.
            status, headers, body = _get(srv.url + TOPO_PATH)
            assert status == 200
            assert headers["X-Repro-Source"] == body["source"] == "memory"
            assert handlers.result_text(body["result"]) == handlers.result_text(direct)

            # After dropping the memory tier the same query is a disk hit.
            store.clear_store()
            status, headers, body = _get(srv.url + TOPO_PATH)
            assert status == 200 and body["source"] == "disk"

            # Cold query: computed exactly once, then memory on re-query.
            cold = "/v1/topology?kind=torus&n=16&seed=1"
            status, _, body = _get(srv.url + cold)
            assert status == 200 and body["source"] == "computed"
            status, _, body = _get(srv.url + cold)
            assert status == 200 and body["source"] == "memory"

            # Unknown paths 400, non-GET 405.
            status, _, body = _get(srv.url + "/v1/nope")
            assert status == 400 and "error" in body
            req = urllib.request.Request(srv.url + "/healthz", method="POST")
            try:
                urllib.request.urlopen(req)
                status = 200
            except urllib.error.HTTPError as exc:
                status = exc.code
            assert status == 405

            # /stats reflects the traffic above.
            status, _, body = _get(srv.url + "/stats")
            assert status == 200
            assert body["serve"]["computed"] == 1
            assert body["serve"]["bad_requests"] == 1
            assert body["store"]["misses"] >= 1

    def test_design_endpoint(self, tmp_path, monkeypatch):
        """/v1/design serves precomputed frontiers: cold fill once,
        then warm hits byte-identical to the direct computation."""
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        path = "/v1/design?n=16&budget=5&seeds=1&sources=16"
        direct = handlers.compute_job(handlers.design_job(16, seeds=1, sources=16))
        with ServerThread(ServeConfig(port=0)) as srv:
            status, headers, body = _get(srv.url + path)
            assert status == 200
            assert headers["X-Repro-Source"] in ("memory", "disk")
            assert handlers.result_text(body["result"]) == handlers.result_text(direct)
            assert body["result"]["pareto"]

            status, _, body = _get(srv.url + "/v1/design?n=15")
            assert status == 400 and "error" in body

    def test_metrics_exports_store_counters(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        handlers.compute_job(_path_job(TOPO_PATH))
        with ServerThread(ServeConfig(port=0)) as srv:
            _get(srv.url + TOPO_PATH)
            with urllib.request.urlopen(srv.url + "/metrics") as resp:
                text = resp.read().decode()
        lines = {l.split()[0]: l.split()[1] for l in text.splitlines()
                 if l and not l.startswith("#")}
        # StoreStats bridged into the registry (satellite: cache
        # effectiveness on /metrics for free).
        assert float(lines["repro_store_hits"]) >= 1
        assert float(lines["repro_store_memory_hits"]) >= 1
        assert "repro_store_misses" in lines
        assert float(lines["repro_store_bytes_written"]) > 0
        assert float(lines["repro_serve_requests"]) >= 1

    def test_coalescing_concurrent_identical_queries(self, tmp_path, monkeypatch):
        """N concurrent requests for one cold key: one compute, the
        rest coalesce (shared future), every body identical."""
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        fanin = 6
        with ServerThread(ServeConfig(port=0)) as srv:
            report = serve.run_loadtest(
                "127.0.0.1", srv.port, [TOPO_PATH] * fanin,
                concurrency=fanin, capture=True,
            )
            _, _, stats = _get(srv.url + "/stats")
        assert report.errors == 0
        assert stats["serve"]["computed"] == 1
        assert stats["store"]["misses"] == 1
        by = report.by_source
        assert by.get("computed", 0) == 1
        assert sum(by.values()) == fanin

    def test_backpressure_429_with_retry_after(self, tmp_path, monkeypatch):
        """With a zero-length fill queue every *distinct* cold query
        after the first is rejected with 429 + Retry-After."""
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        cfg = ServeConfig(port=0, queue_limit=1, retry_after_s=2.5)
        paths = [
            f"/v1/topology?kind=dsn&n={n}&seed=1" for n in (16, 20, 24, 28, 32, 36)
        ]
        rejected = 0
        with ServerThread(cfg) as srv:
            report = serve.run_loadtest(
                "127.0.0.1", srv.port, paths, concurrency=len(paths)
            )
            rejected = report.rejected
            # A direct probe sees the header when the queue is busy.
            deep = "/v1/topology?kind=random&n=40&seed=1"
            status, headers, _ = _get(srv.url + deep)
            if status == 429:
                assert headers["Retry-After"] == "2.5"
        # Backpressure engaged at least once across the burst (the
        # filler drains fast, so not every request can be rejected).
        assert rejected + (1 if status == 429 else 0) >= 1
        assert report.errors == rejected  # 429s are the only failures

    def test_daemon_shutdown_fails_pending_waiters(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        srv = ServerThread(ServeConfig(port=0)).start()
        srv.stop()
        with pytest.raises((ConnectionError, urllib.error.URLError, OSError)):
            urllib.request.urlopen(srv.url + "/healthz", timeout=2)


class TestLoadtest:
    def test_percentile(self):
        xs = [float(i) for i in range(1, 101)]
        assert serve.percentile(xs, 0.0) == 1.0
        assert serve.percentile(xs, 0.50) == 51.0
        assert serve.percentile(xs, 0.99) == 99.0
        assert serve.percentile(xs, 1.0) == 100.0
        assert serve.percentile([], 0.5) == 0.0

    def test_build_mix_deterministic_and_skewed(self):
        candidates = [f"/v1/topology?kind=dsn&n={n}&seed=1" for n in range(16, 48)]
        mix_a = serve.build_mix(candidates, 500, skew=1.2, seed=9)
        mix_b = serve.build_mix(candidates, 500, skew=1.2, seed=9)
        assert mix_a == mix_b  # seeded: replays are reproducible
        assert set(mix_a) <= set(candidates)
        counts = sorted(
            (mix_a.count(c) for c in set(mix_a)), reverse=True
        )
        # Zipf skew: the hottest key dominates a uniform share.
        assert counts[0] > 500 / len(candidates) * 3

    def test_build_mix_rejects_empty(self):
        with pytest.raises(ValueError):
            serve.build_mix([], 10)

    def test_replay_warm_after_populate(self, tmp_path, monkeypatch):
        """The CI smoke contract, in-process: populate, replay, 100%
        warm hits, zero errors, bodies byte-identical to direct."""
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        candidates = serve.default_candidates(
            n=16, kinds=("dsn",), patterns=("uniform",), loads=(1.0, 2.0)
        )
        serve.populate(candidates)
        direct = {p: handlers.compute_job(_path_job(p)) for p in candidates}
        mix = serve.build_mix(candidates, 60, skew=1.1, seed=2)
        with ServerThread(ServeConfig(port=0)) as srv:
            report = serve.run_loadtest(
                "127.0.0.1", srv.port, mix, concurrency=4, capture=True
            )
        assert report.requests == 60
        assert report.errors == 0
        assert report.warm_hit_rate == 1.0
        assert report.warm_p50_ms > 0 and report.warm_p99_ms >= report.warm_p50_ms
        assert report.throughput_rps > 0
        for path, body in report.bodies.items():
            assert handlers.result_text(body["result"]) == handlers.result_text(
                direct[path]
            )

    def test_report_dict_and_summary(self):
        report = serve.LoadtestReport(
            requests=10, errors=1, rejected=1,
            by_source={"memory": 7, "disk": 1, "computed": 1},
            warm_p50_ms=1.0, warm_p99_ms=2.0, miss_p99_ms=30.0,
            wall_s=0.5, throughput_rps=20.0,
        )
        assert report.warm_hits == 8
        assert report.warm_hit_rate == 0.8
        d = report.as_dict()
        assert d["warm_hit_rate"] == 0.8 and "bodies" not in d
        assert "warm hit rate 80.0%" in report.summary()
