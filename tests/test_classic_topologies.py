"""Tests for the related-work topologies (Section III comparators)."""

import pytest

from repro.analysis import diameter
from repro.topologies import (
    CubeConnectedCyclesTopology,
    DeBruijnTopology,
    HypercubeTopology,
    KautzTopology,
    KleinbergTopology,
    RandomRegularTopology,
    greedy_route,
)


class TestDeBruijn:
    def test_size(self):
        t = DeBruijnTopology(2, 4)
        assert t.n == 16

    def test_degree_bound(self):
        t = DeBruijnTopology(2, 5)
        assert t.max_degree <= 4  # 2b, minus merged self-shift duplicates

    def test_diameter_equals_k(self):
        # Directed de Bruijn has diameter k; undirected is <= k.
        t = DeBruijnTopology(2, 5)
        assert diameter(t) <= 5

    def test_connected(self):
        assert DeBruijnTopology(3, 3).is_connected()


class TestKautz:
    def test_size(self):
        # (b+1) * b^k nodes
        t = KautzTopology(2, 3)
        assert t.n == 3 * 2**3

    def test_diameter_le_string_length(self):
        # vertices are strings s_0..s_k (length k+1), so the directed --
        # and hence undirected -- diameter is at most k+1
        assert diameter(KautzTopology(2, 3)) <= 4

    def test_connected(self):
        assert KautzTopology(2, 4).is_connected()


class TestCCC:
    def test_size_and_constant_degree(self):
        t = CubeConnectedCyclesTopology(3)
        assert t.n == 3 * 8
        assert t.degree_census() == {3: 24}

    def test_connected(self):
        assert CubeConnectedCyclesTopology(4).is_connected()

    def test_rejects_small_k(self):
        with pytest.raises(ValueError):
            CubeConnectedCyclesTopology(2)


class TestHypercube:
    def test_structure(self):
        t = HypercubeTopology(4)
        assert t.n == 16
        assert t.degree_census() == {4: 16}
        assert diameter(t) == 4


class TestRandomRegular:
    def test_connected_regular(self):
        t = RandomRegularTopology(50, 4, seed=0)
        assert t.degree_census() == {4: 50}
        assert t.is_connected()

    def test_rejects_odd_product(self):
        with pytest.raises(ValueError):
            RandomRegularTopology(9, 3, seed=0)


class TestKleinberg:
    def test_construction(self):
        t = KleinbergTopology(6, q=1, seed=0)
        assert t.n == 36
        assert t.is_connected()

    def test_lattice_distance(self):
        t = KleinbergTopology(5, q=0, seed=0)
        assert t.lattice_distance(0, 24) == 8  # corner to corner on 5x5

    def test_greedy_route_reaches(self):
        t = KleinbergTopology(8, q=1, seed=1)
        path = greedy_route(t, 0, t.n - 1)
        assert path[0] == 0 and path[-1] == t.n - 1
        # each step strictly decreases lattice distance
        dists = [t.lattice_distance(u, t.n - 1) for u in path]
        assert all(a > b for a, b in zip(dists, dists[1:]))

    def test_greedy_trivial(self):
        t = KleinbergTopology(4, q=0, seed=0)
        assert greedy_route(t, 5, 5) == [5]

    def test_q0_is_plain_grid(self):
        t = KleinbergTopology(4, q=0, seed=0)
        assert t.num_links == 2 * 4 * 3  # mesh links only


class TestHypernet:
    def test_size_and_degree(self):
        from repro.topologies import HypernetTopology

        t = HypernetTopology(4, 8)
        assert t.n == 8 * 16
        # attachment nodes carry one extra inter-subnet link
        assert t.max_degree == 5
        assert t.min_degree == 4

    def test_connected_and_low_diameter(self):
        from repro.analysis import diameter
        from repro.topologies import HypernetTopology

        t = HypernetTopology(4, 8)
        assert t.is_connected()
        # <= intra (k) + 1 inter + intra (k) with slack for attachment walks
        assert diameter(t) <= 2 * 4 + 2

    def test_rejects_too_many_subnets(self):
        from repro.topologies import HypernetTopology

        with pytest.raises(ValueError):
            HypernetTopology(2, 8)  # 4-node subnets cannot host 7 links
