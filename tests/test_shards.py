"""Tests for the sharded run-store disk layout (repro.store.shards).

The layout contract: the ``.shards`` marker -- not the environment --
decides where entries live, legacy flat stores stay readable without
migration, and ``migrate_store`` moves bytes without ever changing
them.
"""

import json
import os

import pytest

from repro import store
from repro.store import shards


@pytest.fixture(autouse=True)
def fresh_store(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
    monkeypatch.delenv("REPRO_STORE_SHARDS", raising=False)
    shards.invalidate_layout_cache()
    store.clear_store()
    store.reset_store_stats()
    yield
    store.clear_store()
    store.reset_store_stats()


def _store_state(root):
    """(relative path -> bytes) for every entry file under ``root``."""
    return {
        os.path.relpath(p, root): open(p).read()
        for p in shards.iter_entry_paths(str(root))
    }


class TestLayout:
    def test_shard_index_stable_and_in_range(self):
        import hashlib

        digests = [hashlib.sha256(str(i).encode()).hexdigest()[:32] for i in range(100)]
        for d in digests:
            idx = shards.shard_index(d, 16)
            assert 0 <= idx < 16
            assert idx == shards.shard_index(d, 16)  # pure function
        # Prefix keying spreads hex digests across many shards.
        assert len({shards.shard_index(d, 16) for d in digests}) > 8

    def test_env_controls_new_store_layout(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SHARDS", "4")
        assert shards.effective_shards(str(tmp_path), create=True) == 4
        assert (tmp_path / ".shards").read_text().strip() == "4"

    def test_marker_beats_env(self, tmp_path, monkeypatch):
        (tmp_path / ".shards").write_text("8\n")
        monkeypatch.setenv("REPRO_STORE_SHARDS", "32")
        assert shards.effective_shards(str(tmp_path)) == 8
        # Still 8 after a cache invalidation (re-read from disk).
        shards.invalidate_layout_cache()
        assert shards.effective_shards(str(tmp_path), create=True) == 8

    def test_zero_shards_is_flat_layout(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SHARDS", "0")
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        key = store.run_key("flat", {"x": 1})
        store.put(key, {"v": 1})
        assert (tmp_path / (key.stem + ".json")).exists()
        assert store.get(key) == {"v": 1}

    def test_sharded_put_lands_in_shard_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        key = store.run_key("sharded", {"x": 1})
        store.put(key, {"v": 2})
        home = store.find_disk_entry(key)
        rel = os.path.relpath(home, tmp_path)
        idx = shards.shard_index(key.digest, shards.effective_shards(str(tmp_path)))
        assert rel == os.path.join(f"s{idx:03d}", key.stem + ".json")

    def test_legacy_flat_store_read_through(self, tmp_path, monkeypatch):
        """Entries written by the pre-shard layout keep serving hits in
        a sharded store with no migration step."""
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        key = store.run_key("legacy", {"x": 9})
        doc = {"ns": key.namespace, "key": key.payload, "result": {"v": 99}}
        (tmp_path / (key.stem + ".json")).write_text(json.dumps(doc))
        (tmp_path / ".shards").write_text("16\n")
        assert store.get(key) == {"v": 99}
        assert store.store_stats().disk_hits == 1

    def test_infrastructure_files_are_not_entries(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        key = store.run_key("walk", {"x": 1})
        store.put(key, {"v": 1})
        names = {os.path.basename(p) for p in shards.iter_entry_paths(str(tmp_path))}
        assert names == {key.stem + ".json"}
        # Marker and shard locks exist but are never walked as entries.
        assert (tmp_path / ".shards").exists()
        assert any(f.name.startswith(".shard-") for f in tmp_path.iterdir())
        assert list(shards.iter_stale_locks(str(tmp_path))) == []


class TestMigrate:
    def _populate(self, tmp_path, monkeypatch, shard_env, count=12):
        monkeypatch.setenv("REPRO_STORE_SHARDS", shard_env)
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        keys = []
        for i in range(count):
            key = store.run_key("mig", {"i": i})
            store.put(key, {"v": i, "blob": "x" * i})
            keys.append(key)
        return keys

    def test_flat_to_sharded_round_trip_byte_identical(self, tmp_path, monkeypatch):
        keys = self._populate(tmp_path, monkeypatch, "0")
        before = _store_state(tmp_path)
        assert all(os.sep not in rel for rel in before)  # flat to start

        report = shards.migrate_store(str(tmp_path), shards=16)
        assert report.ok and report.moved == len(keys)
        sharded = _store_state(tmp_path)
        assert sorted(os.path.basename(p) for p in sharded) == sorted(before)
        assert all(os.sep in rel for rel in sharded)

        report = shards.migrate_store(str(tmp_path), shards=0)
        assert report.ok and report.moved == len(keys)
        assert _store_state(tmp_path) == before  # same names, same bytes
        # Empty shard dirs are gone after flattening.
        assert not [d for d in os.listdir(tmp_path) if d.startswith("s0")]

    def test_migrated_entries_stay_readable(self, tmp_path, monkeypatch):
        keys = self._populate(tmp_path, monkeypatch, "0")
        shards.migrate_store(str(tmp_path), shards=8)
        store.clear_store()  # force disk reads
        for i, key in enumerate(keys):
            assert store.get(key) == {"v": i, "blob": "x" * i}

    def test_migrate_is_idempotent(self, tmp_path, monkeypatch):
        self._populate(tmp_path, monkeypatch, "4")
        before = _store_state(tmp_path)
        report = shards.migrate_store(str(tmp_path), shards=4)
        assert report.ok and report.moved == 0 and report.kept == len(before)
        assert _store_state(tmp_path) == before

    def test_migrate_reaps_stale_locks(self, tmp_path, monkeypatch):
        self._populate(tmp_path, monkeypatch, "0")
        (tmp_path / "mig-deadbeef00.lock").write_text("")
        report = shards.migrate_store(str(tmp_path), shards=16)
        assert report.reaped_locks == 1
        assert list(shards.iter_stale_locks(str(tmp_path))) == []

    def test_migrate_drops_duplicates_keeping_destination(self, tmp_path, monkeypatch):
        keys = self._populate(tmp_path, monkeypatch, "0", count=1)
        key = keys[0]
        # The same digest already published at its sharded home: the
        # content-addressed invariant says both copies hold one content.
        dest = shards.entry_path(str(tmp_path), key.stem, key.digest, 16)
        os.makedirs(os.path.dirname(dest), exist_ok=True)
        flat = tmp_path / (key.stem + ".json")
        with open(dest, "w") as fh:
            fh.write(flat.read_text())
        report = shards.migrate_store(str(tmp_path), shards=16)
        assert report.ok and report.duplicates == 1 and not flat.exists()

    def test_migrate_missing_dir_errors(self, tmp_path):
        report = shards.migrate_store(str(tmp_path / "nope"))
        assert not report.ok

    def test_cli_wrapper_requires_dir(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        with pytest.raises(ValueError):
            store.migrate_store()

    def test_processes_with_different_env_agree_via_marker(self, tmp_path, monkeypatch):
        """A writer created the store with 4 shards; a reader whose env
        says 32 must still find the entries (marker wins)."""
        keys = self._populate(tmp_path, monkeypatch, "4")
        monkeypatch.setenv("REPRO_STORE_SHARDS", "32")
        shards.invalidate_layout_cache()  # simulate a fresh process
        store.clear_store()
        assert store.get(keys[0]) == {"v": 0, "blob": ""}
