"""Tests for dimension-order routing and minimal routing tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import ShortestPathTable, assert_deadlock_free, build_cdg, find_cycle
from repro.routing.dor import dor_channels, dor_next_hop, dor_path
from repro.core import DSNTopology
from repro.topologies import MeshTopology, TorusTopology


class TestDOR:
    def test_path_length_is_manhattan(self):
        t = TorusTopology((6, 6))
        for s in range(0, 36, 5):
            for d in range(0, 36, 7):
                if s == d:
                    continue
                cs, cd = t.coordinates(s), t.coordinates(d)
                expected = sum(min((a - b) % k, (b - a) % k) for a, b, k in zip(cs, cd, t.dims))
                assert len(dor_path(t, s, d)) - 1 == expected

    def test_mesh_path(self):
        m = MeshTopology((4, 4))
        p = dor_path(m, 0, 15)
        assert len(p) - 1 == 6

    def test_dimension_order_respected(self):
        t = TorusTopology((4, 4))
        p = dor_path(t, 0, 10)
        # first hops correct dim 0, later dim 1 -- axis changes only once
        axes = []
        for a, b in zip(p, p[1:]):
            ca, cb = t.coordinates(a), t.coordinates(b)
            axes.append(0 if ca[0] != cb[0] else 1)
        assert axes == sorted(axes)

    def test_next_hop_errors_at_dest(self):
        t = TorusTopology((4, 4))
        with pytest.raises(ValueError):
            dor_next_hop(t, 3, 3)

    def test_torus_2vc_dateline_acyclic(self):
        t = TorusTopology((4, 8))
        routes = [
            dor_channels(t, s, d) for s in range(t.n) for d in range(t.n) if s != d
        ]
        assert_deadlock_free(routes)

    def test_torus_1vc_cyclic(self):
        t = TorusTopology((4, 4))
        routes = [
            [(a, b, "one") for a, b, _ in dor_channels(t, s, d)]
            for s in range(t.n)
            for d in range(t.n)
            if s != d
        ]
        assert find_cycle(build_cdg(routes)) is not None

    def test_mesh_single_vc_acyclic(self):
        m = MeshTopology((4, 4))
        routes = [
            dor_channels(m, s, d) for s in range(m.n) for d in range(m.n) if s != d
        ]
        assert_deadlock_free(routes)


class TestShortestPathTable:
    @pytest.fixture(scope="class")
    def table(self):
        return ShortestPathTable(DSNTopology(64))

    def test_next_hops_reduce_distance(self, table):
        n = table.topo.n
        for s in range(0, n, 5):
            for t in range(0, n, 3):
                if s == t:
                    continue
                for v in table.next_hops(s, t):
                    assert table.distance(v, t) == table.distance(s, t) - 1

    def test_path_is_minimal(self, table):
        for s in range(0, 64, 7):
            for t in range(0, 64, 9):
                p = table.path(s, t)
                assert len(p) - 1 == table.distance(s, t)

    def test_randomized_path_still_minimal(self, table):
        p = table.path(0, 40, seed=5)
        assert len(p) - 1 == table.distance(0, 40)

    def test_next_hops_empty_at_dest(self, table):
        assert table.next_hops(3, 3) == []

    def test_path_count_positive_and_symmetricish(self):
        t = ShortestPathTable(TorusTopology((4, 4)))
        counts = t.path_count_matrix()
        assert (counts > 0).all()
        # torus symmetry: counts depend only on the coordinate offset
        assert counts[0, 5] == counts[5, 0]

    def test_path_count_known_torus(self):
        t = ShortestPathTable(TorusTopology((4, 4)))
        counts = t.path_count_matrix()
        # (0,0) -> (1,1): two minimal orders (x-then-y, y-then-x)
        assert counts[0, 5] == 2
