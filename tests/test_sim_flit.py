"""Tests for the cycle-driven flit-level reference simulator."""

import numpy as np
import pytest

from repro.core import DSNTopology
from repro.routing import DuatoAdaptiveRouting
from repro.sim import (
    AdaptiveEscapeAdapter,
    FlitLevelSimulator,
    NetworkSimulator,
    SimConfig,
)
from repro.topologies import TorusTopology
from repro.traffic import make_pattern

CFG = SimConfig(warmup_ns=2000, measure_ns=6000, drain_ns=12000, seed=3)


def run_flit(topo, load, buffer_flits=None, cfg=CFG, seed=0, pattern="uniform"):
    routing = DuatoAdaptiveRouting(topo)
    adapter = AdaptiveEscapeAdapter(routing, cfg.num_vcs, np.random.default_rng(seed))
    pat = make_pattern(pattern, topo.n * cfg.hosts_per_switch)
    return FlitLevelSimulator(topo, adapter, pat, load, cfg, buffer_flits=buffer_flits).run()


def run_event(topo, load, cfg=CFG, seed=0, pattern="uniform"):
    routing = DuatoAdaptiveRouting(topo)
    adapter = AdaptiveEscapeAdapter(routing, cfg.num_vcs, np.random.default_rng(seed))
    pat = make_pattern(pattern, topo.n * cfg.hosts_per_switch)
    return NetworkSimulator(topo, adapter, pat, load, cfg).run()


class TestCrossValidation:
    """The flit engine and the event engine must agree where their
    models coincide (VCT, low load)."""

    def test_zero_load_latency_agreement(self):
        topo = DSNTopology(16)
        rf = run_flit(topo, 0.5)
        re = run_event(topo, 0.5)
        assert rf.avg_latency_ns == pytest.approx(re.avg_latency_ns, rel=0.05)

    def test_zero_load_matches_analytic(self):
        topo = DSNTopology(16)
        r = run_flit(topo, 0.5)
        predicted = CFG.zero_load_latency_ns(r.avg_hops)
        # cycle quantization rounds the router/link delays up slightly
        assert r.avg_latency_ns == pytest.approx(predicted, rel=0.05)

    def test_hop_agreement(self):
        topo = TorusTopology((4, 4))
        rf = run_flit(topo, 1.0)
        re = run_event(topo, 1.0)
        assert rf.avg_hops == pytest.approx(re.avg_hops, abs=0.25)


class TestDelivery:
    def test_all_measured_delivered(self):
        r = run_flit(DSNTopology(16), 2.0)
        assert r.delivered_fraction == 1.0
        assert r.generated_measured > 0

    def test_flit_conservation_under_load(self):
        """No flits lost even at high load (every measured packet that
        is delivered has exactly the configured size accounted)."""
        r = run_flit(DSNTopology(16), 10.0)
        assert r.delivered_fraction == 1.0

    def test_deterministic(self):
        a = run_flit(DSNTopology(16), 3.0, seed=5)
        b = run_flit(DSNTopology(16), 3.0, seed=5)
        assert a.avg_latency_ns == b.avg_latency_ns


class TestWormhole:
    def test_small_buffers_increase_latency(self):
        """Buffers below the credit round trip stretch serialization --
        the classic wormhole stall."""
        topo = DSNTopology(16)
        vct = run_flit(topo, 6.0, buffer_flits=33)
        worm = run_flit(topo, 6.0, buffer_flits=4)
        assert worm.avg_latency_ns > vct.avg_latency_ns

    def test_wormhole_still_delivers(self):
        r = run_flit(DSNTopology(16), 8.0, buffer_flits=4)
        assert r.delivered_fraction == 1.0

    def test_buffer_validation(self):
        topo = DSNTopology(16)
        routing = DuatoAdaptiveRouting(topo)
        adapter = AdaptiveEscapeAdapter(routing, 4, np.random.default_rng(0))
        pat = make_pattern("uniform", 64)
        with pytest.raises(ValueError):
            FlitLevelSimulator(topo, adapter, pat, 1.0, CFG, buffer_flits=0)


class TestValidation:
    def test_pattern_mismatch(self):
        topo = DSNTopology(16)
        routing = DuatoAdaptiveRouting(topo)
        adapter = AdaptiveEscapeAdapter(routing, 4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            FlitLevelSimulator(topo, adapter, make_pattern("uniform", 32), 1.0, CFG)


class TestFastForward:
    """The idle fast-forward must be invisible: jumping over cycles in
    which the network would do nothing cannot change any result."""

    @staticmethod
    def _run(load, ff, buffer_flits=None, pattern="uniform"):
        topo = DSNTopology(16)
        routing = DuatoAdaptiveRouting(topo)
        adapter = AdaptiveEscapeAdapter(routing, CFG.num_vcs, np.random.default_rng(0))
        pat = make_pattern(pattern, topo.n * CFG.hosts_per_switch)
        sim = FlitLevelSimulator(topo, adapter, pat, load, CFG, buffer_flits=buffer_flits)
        sim._fast_forward = ff
        return sim.run(), sim._ff_cycles_skipped

    @pytest.mark.parametrize("load", [0.25, 1.0, 4.0])
    def test_bit_identical_to_linear_scan(self, load):
        linear, _ = self._run(load, False)
        fast, skipped = self._run(load, True)
        assert fast.latencies_ns == linear.latencies_ns
        assert fast.hop_counts == linear.hop_counts
        assert fast.generated_measured == linear.generated_measured
        assert fast.delivered_measured == linear.delivered_measured
        assert fast.delivered_in_window_bits == linear.delivered_in_window_bits
        assert fast.delivered_in_window_count == linear.delivered_in_window_count
        assert fast.channel_busy_ns == linear.channel_busy_ns
        if load <= 1.0:
            assert skipped > 0  # low load actually has idle stretches

    def test_bit_identical_wormhole(self):
        linear, _ = self._run(1.0, False, buffer_flits=4)
        fast, _ = self._run(1.0, True, buffer_flits=4)
        assert fast.latencies_ns == linear.latencies_ns
        assert fast.channel_busy_ns == linear.channel_busy_ns

    def test_linear_scan_never_skips(self):
        _, skipped = self._run(0.25, False)
        assert skipped == 0

    def test_fast_forward_is_default(self):
        assert FlitLevelSimulator._fast_forward is True
