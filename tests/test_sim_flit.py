"""Tests for the flit-level simulator: model behavior, plus the
bit-identity contract between its event-driven run loop (default) and
the linear cycle scan it replaced."""

import dataclasses

import numpy as np
import pytest

from repro.core import DSNTopology
from repro.routing import DuatoAdaptiveRouting
from repro.sim import (
    AdaptiveEscapeAdapter,
    FlitLevelSimulator,
    NetworkSimulator,
    SimConfig,
)
from repro.topologies import TorusTopology
from repro.traffic import make_pattern

CFG = SimConfig(warmup_ns=2000, measure_ns=6000, drain_ns=12000, seed=3)


def run_flit(topo, load, buffer_flits=None, cfg=CFG, seed=0, pattern="uniform",
             engine=None):
    routing = DuatoAdaptiveRouting(topo)
    adapter = AdaptiveEscapeAdapter(routing, cfg.num_vcs, np.random.default_rng(seed))
    pat = make_pattern(pattern, topo.n * cfg.hosts_per_switch)
    return FlitLevelSimulator(
        topo, adapter, pat, load, cfg, buffer_flits=buffer_flits, engine=engine
    ).run()


def run_event(topo, load, cfg=CFG, seed=0, pattern="uniform"):
    routing = DuatoAdaptiveRouting(topo)
    adapter = AdaptiveEscapeAdapter(routing, cfg.num_vcs, np.random.default_rng(seed))
    pat = make_pattern(pattern, topo.n * cfg.hosts_per_switch)
    return NetworkSimulator(topo, adapter, pat, load, cfg).run()


class TestCrossValidation:
    """The flit engine and the event engine must agree where their
    models coincide (VCT, low load)."""

    def test_zero_load_latency_agreement(self):
        topo = DSNTopology(16)
        rf = run_flit(topo, 0.5)
        re = run_event(topo, 0.5)
        assert rf.avg_latency_ns == pytest.approx(re.avg_latency_ns, rel=0.05)

    def test_zero_load_matches_analytic(self):
        topo = DSNTopology(16)
        r = run_flit(topo, 0.5)
        predicted = CFG.zero_load_latency_ns(r.avg_hops)
        # cycle quantization rounds the router/link delays up slightly
        assert r.avg_latency_ns == pytest.approx(predicted, rel=0.05)

    def test_hop_agreement(self):
        topo = TorusTopology((4, 4))
        rf = run_flit(topo, 1.0)
        re = run_event(topo, 1.0)
        assert rf.avg_hops == pytest.approx(re.avg_hops, abs=0.25)


class TestDelivery:
    def test_all_measured_delivered(self):
        r = run_flit(DSNTopology(16), 2.0)
        assert r.delivered_fraction == 1.0
        assert r.generated_measured > 0

    def test_flit_conservation_under_load(self):
        """No flits lost even at high load (every measured packet that
        is delivered has exactly the configured size accounted)."""
        r = run_flit(DSNTopology(16), 10.0)
        assert r.delivered_fraction == 1.0

    def test_deterministic(self):
        a = run_flit(DSNTopology(16), 3.0, seed=5)
        b = run_flit(DSNTopology(16), 3.0, seed=5)
        assert a.avg_latency_ns == b.avg_latency_ns


class TestWormhole:
    def test_small_buffers_increase_latency(self):
        """Buffers below the credit round trip stretch serialization --
        the classic wormhole stall."""
        topo = DSNTopology(16)
        vct = run_flit(topo, 6.0, buffer_flits=33)
        worm = run_flit(topo, 6.0, buffer_flits=4)
        assert worm.avg_latency_ns > vct.avg_latency_ns

    def test_wormhole_still_delivers(self):
        r = run_flit(DSNTopology(16), 8.0, buffer_flits=4)
        assert r.delivered_fraction == 1.0

    def test_buffer_validation(self):
        topo = DSNTopology(16)
        routing = DuatoAdaptiveRouting(topo)
        adapter = AdaptiveEscapeAdapter(routing, 4, np.random.default_rng(0))
        pat = make_pattern("uniform", 64)
        with pytest.raises(ValueError):
            FlitLevelSimulator(topo, adapter, pat, 1.0, CFG, buffer_flits=0)


class TestValidation:
    def test_pattern_mismatch(self):
        topo = DSNTopology(16)
        routing = DuatoAdaptiveRouting(topo)
        adapter = AdaptiveEscapeAdapter(routing, 4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            FlitLevelSimulator(topo, adapter, make_pattern("uniform", 32), 1.0, CFG)


class TestFastForward:
    """The idle fast-forward must be invisible: jumping over cycles in
    which the network would do nothing cannot change any result."""

    @staticmethod
    def _run(load, ff, buffer_flits=None, pattern="uniform"):
        topo = DSNTopology(16)
        routing = DuatoAdaptiveRouting(topo)
        adapter = AdaptiveEscapeAdapter(routing, CFG.num_vcs, np.random.default_rng(0))
        pat = make_pattern(pattern, topo.n * CFG.hosts_per_switch)
        # The fast-forward flag only concerns the linear cycle scan;
        # the event engine never visits idle cycles in the first place.
        sim = FlitLevelSimulator(
            topo, adapter, pat, load, CFG, buffer_flits=buffer_flits, engine="cycle"
        )
        sim._fast_forward = ff
        return sim.run(), sim._ff_cycles_skipped

    @pytest.mark.parametrize("load", [0.25, 1.0, 4.0])
    def test_bit_identical_to_linear_scan(self, load):
        linear, _ = self._run(load, False)
        fast, skipped = self._run(load, True)
        assert fast.latencies_ns == linear.latencies_ns
        assert fast.hop_counts == linear.hop_counts
        assert fast.generated_measured == linear.generated_measured
        assert fast.delivered_measured == linear.delivered_measured
        assert fast.delivered_in_window_bits == linear.delivered_in_window_bits
        assert fast.delivered_in_window_count == linear.delivered_in_window_count
        assert fast.channel_busy_ns == linear.channel_busy_ns
        if load <= 1.0:
            assert skipped > 0  # low load actually has idle stretches

    def test_bit_identical_wormhole(self):
        linear, _ = self._run(1.0, False, buffer_flits=4)
        fast, _ = self._run(1.0, True, buffer_flits=4)
        assert fast.latencies_ns == linear.latencies_ns
        assert fast.channel_busy_ns == linear.channel_busy_ns

    def test_linear_scan_never_skips(self):
        _, skipped = self._run(0.25, False)
        assert skipped == 0

    def test_fast_forward_is_default(self):
        assert FlitLevelSimulator._fast_forward is True


def _as_dict(result):
    """Every SimResult field (nested dataclasses included) for exact
    byte-for-byte comparison."""
    return dataclasses.asdict(result)


class TestEngineEquivalence:
    """The tentpole contract: the event-driven run loop must produce
    byte-identical SimResults to the linear cycle scan across the whole
    configuration matrix -- loads from near-zero to saturation, VCT and
    wormhole, mid-run faults, telemetry sampling, and tracing."""

    @staticmethod
    def _pair(load, buffer_flits=None, pattern="uniform", cfg=CFG, seed=0, **kw):
        topo = DSNTopology(16)

        def run(engine):
            routing = DuatoAdaptiveRouting(topo)
            adapter = AdaptiveEscapeAdapter(
                routing, cfg.num_vcs, np.random.default_rng(seed)
            )
            pat = make_pattern(pattern, topo.n * cfg.hosts_per_switch)
            return FlitLevelSimulator(
                topo, adapter, pat, load, cfg,
                buffer_flits=buffer_flits, engine=engine, **kw,
            ).run()

        return run("cycle"), run("event")

    @pytest.mark.parametrize("load", [0.05, 0.5, 2.0, 8.0])
    def test_bit_identical_vct(self, load):
        cyc, evt = self._pair(load)
        assert _as_dict(cyc) == _as_dict(evt)

    @pytest.mark.parametrize("load", [0.5, 4.0])
    def test_bit_identical_wormhole(self, load):
        cyc, evt = self._pair(load, buffer_flits=4)
        assert _as_dict(cyc) == _as_dict(evt)

    def test_bit_identical_nonuniform_pattern(self):
        cyc, evt = self._pair(2.0, pattern="neighboring")
        assert _as_dict(cyc) == _as_dict(evt)

    def test_bit_identical_zero_traffic(self):
        """A horizon with no measured deliveries still terminates the
        same way (drain probes are events too)."""
        cyc, evt = self._pair(0.001)
        assert _as_dict(cyc) == _as_dict(evt)

    def test_bit_identical_with_midrun_faults(self):
        from repro.faults import adaptive_escape_factory, random_link_schedule

        topo = DSNTopology(32)
        sched = random_link_schedule(topo, [3000.0, 5000.0], 0.04, seed=11)
        factory = adaptive_escape_factory(CFG)
        pat = make_pattern("uniform", topo.n * CFG.hosts_per_switch)

        def run(engine):
            return FlitLevelSimulator(
                topo, factory(topo), pat, 4.0, CFG,
                fault_schedule=sched, adapter_factory=factory, engine=engine,
            ).run()

        cyc, evt = run("cycle"), run("event")
        d_cyc, d_evt = _as_dict(cyc), _as_dict(evt)
        for d in (d_cyc, d_evt):
            for record in d["fault_records"]:
                # Wall-clock self-measurement of the adapter rebuild;
                # everything simulated must still match exactly.
                record.pop("reroute_wall_s")
        assert d_cyc == d_evt
        assert cyc.fault_records  # the schedule actually fired

    def test_bit_identical_with_sampler(self):
        from repro import telemetry

        was = telemetry.enabled()
        telemetry.enable()
        try:
            cyc, evt = self._pair(2.0)
        finally:
            if not was:
                telemetry.disable()
        assert cyc.telemetry  # sampler actually attached
        d_cyc, d_evt = _as_dict(cyc), _as_dict(evt)
        # Wall-clock self-measurements legitimately differ between runs.
        for d in (d_cyc, d_evt):
            d["telemetry"] = {
                k: v for k, v in d["telemetry"].items() if "wall" not in k
            }
        assert d_cyc == d_evt

    def test_bit_identical_with_tracer(self):
        from repro.sim.trace import TraceRecorder

        traces = {}

        def run(engine):
            topo = DSNTopology(16)
            routing = DuatoAdaptiveRouting(topo)
            adapter = AdaptiveEscapeAdapter(routing, CFG.num_vcs, np.random.default_rng(0))
            pat = make_pattern("uniform", topo.n * CFG.hosts_per_switch)
            tracer = TraceRecorder()
            res = FlitLevelSimulator(
                topo, adapter, pat, 2.0, CFG, tracer=tracer, engine=engine
            ).run()
            traces[engine] = tracer.events
            return res

        cyc, evt = run("cycle"), run("event")
        assert _as_dict(cyc) == _as_dict(evt)
        assert traces["cycle"] == traces["event"]

    def test_bit_identical_cycle_without_fast_forward(self):
        """The event engine matches the plain linear scan too, not just
        the fast-forwarding one."""
        topo = DSNTopology(16)

        def run(engine, ff):
            routing = DuatoAdaptiveRouting(topo)
            adapter = AdaptiveEscapeAdapter(routing, CFG.num_vcs, np.random.default_rng(0))
            pat = make_pattern("uniform", topo.n * CFG.hosts_per_switch)
            sim = FlitLevelSimulator(topo, adapter, pat, 0.5, CFG, engine=engine)
            sim._fast_forward = ff
            return sim.run()

        assert _as_dict(run("cycle", False)) == _as_dict(run("event", True))


class TestEngineSelection:
    def test_default_is_event(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLIT_ENGINE", raising=False)
        topo = DSNTopology(16)
        routing = DuatoAdaptiveRouting(topo)
        adapter = AdaptiveEscapeAdapter(routing, CFG.num_vcs, np.random.default_rng(0))
        pat = make_pattern("uniform", topo.n * CFG.hosts_per_switch)
        assert FlitLevelSimulator(topo, adapter, pat, 1.0, CFG).engine == "event"

    def test_env_selects_cycle(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIT_ENGINE", "cycle")
        topo = DSNTopology(16)
        routing = DuatoAdaptiveRouting(topo)
        adapter = AdaptiveEscapeAdapter(routing, CFG.num_vcs, np.random.default_rng(0))
        pat = make_pattern("uniform", topo.n * CFG.hosts_per_switch)
        assert FlitLevelSimulator(topo, adapter, pat, 1.0, CFG).engine == "cycle"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIT_ENGINE", "cycle")
        topo = DSNTopology(16)
        routing = DuatoAdaptiveRouting(topo)
        adapter = AdaptiveEscapeAdapter(routing, CFG.num_vcs, np.random.default_rng(0))
        pat = make_pattern("uniform", topo.n * CFG.hosts_per_switch)
        sim = FlitLevelSimulator(topo, adapter, pat, 1.0, CFG, engine="event")
        assert sim.engine == "event"

    def test_invalid_engine_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIT_ENGINE", "warp")
        topo = DSNTopology(16)
        routing = DuatoAdaptiveRouting(topo)
        adapter = AdaptiveEscapeAdapter(routing, CFG.num_vcs, np.random.default_rng(0))
        pat = make_pattern("uniform", topo.n * CFG.hosts_per_switch)
        with pytest.raises(ValueError, match="REPRO_FLIT_ENGINE"):
            FlitLevelSimulator(topo, adapter, pat, 1.0, CFG)

    def test_env_default_and_override_agree_bitwise(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIT_ENGINE", "cycle")
        via_env = run_flit(DSNTopology(16), 1.0)
        monkeypatch.delenv("REPRO_FLIT_ENGINE")
        via_default = run_flit(DSNTopology(16), 1.0)
        assert _as_dict(via_env) == _as_dict(via_default)


class TestBusyUnits:
    """The incremental sorted busy set must track a plain sorted set
    exactly under any interleaving of adds and discards."""

    def test_matches_reference_under_random_ops(self):
        from repro.sim.flitsim import _BusyUnits

        rng = np.random.default_rng(42)
        busy = _BusyUnits()
        ref: set[int] = set()
        for _ in range(3000):
            uid = int(rng.integers(0, 64))
            if rng.random() < 0.55:
                busy.add(uid)
                ref.add(uid)
            else:
                busy.discard(uid)
                ref.discard(uid)
            assert bool(busy) == bool(ref)
        assert list(busy.snapshot()) == sorted(ref)
        assert list(busy) == sorted(ref)

    def test_snapshot_is_stable_while_mutating(self):
        from repro.sim.flitsim import _BusyUnits

        busy = _BusyUnits()
        for uid in (5, 1, 9):
            busy.add(uid)
        snap = busy.snapshot()
        busy.discard(1)
        busy.add(7)
        assert list(snap) == [1, 5, 9]  # the iteration copy is immutable
        assert list(busy.snapshot()) == [5, 7, 9]
