"""Tests for up*/down* routing (legality, reachability, deadlock freedom)."""

import pytest

from repro.analysis import shortest_path_matrix
from repro.core import DSNTopology
from repro.routing import UpDownRouting, assert_deadlock_free
from repro.topologies import RingTopology, TorusTopology


@pytest.fixture(scope="module")
def dsn64_ud():
    return UpDownRouting(DSNTopology(64))


class TestChannelOrientation:
    def test_antisymmetric(self, dsn64_ud):
        topo = dsn64_ud.topo
        for link in topo.links:
            assert dsn64_ud.is_up(link.u, link.v) != dsn64_ud.is_up(link.v, link.u)

    def test_root_has_no_up_out(self, dsn64_ud):
        root = dsn64_ud.root
        for v in dsn64_ud.topo.neighbors(root):
            assert not dsn64_ud.is_up(root, v)
            assert dsn64_ud.is_up(v, root)


class TestPaths:
    def test_all_pairs_legal(self, dsn64_ud):
        n = dsn64_ud.topo.n
        for s in range(n):
            for t in range(n):
                if s == t:
                    continue
                p = dsn64_ud.path(s, t)
                assert p[0] == s and p[-1] == t
                gone_down = False
                for a, b in zip(p, p[1:]):
                    up = dsn64_ud.is_up(a, b)
                    assert not (up and gone_down), (s, t, p)
                    gone_down = gone_down or not up

    def test_at_least_graph_distance(self, dsn64_ud):
        dist = shortest_path_matrix(dsn64_ud.topo)
        n = dsn64_ud.topo.n
        for s in range(0, n, 7):
            for t in range(0, n, 5):
                if s != t:
                    assert dsn64_ud.distance(s, t) >= dist[s, t]

    def test_average_ge_minimal(self, dsn64_ud):
        from repro.analysis import average_shortest_path_length

        assert dsn64_ud.average_path_length() >= average_shortest_path_length(dsn64_ud.topo)

    def test_next_hops_progress(self, dsn64_ud):
        n = dsn64_ud.topo.n
        for s in range(0, n, 9):
            for t in range(0, n, 11):
                if s == t:
                    continue
                hops = dsn64_ud.next_hops(s, t)
                assert hops
                for v, down in hops:
                    assert dsn64_ud.topo.has_link(s, v)


class TestDeadlockFreedom:
    @pytest.mark.parametrize("topo_factory", [
        lambda: DSNTopology(64),
        lambda: TorusTopology((8, 8)),
        lambda: RingTopology(16),
    ])
    def test_cdg_acyclic(self, topo_factory):
        topo = topo_factory()
        ud = UpDownRouting(topo)
        routes = []
        for s in range(topo.n):
            for t in range(topo.n):
                if s != t:
                    p = ud.path(s, t)
                    routes.append([(a, b, "ud") for a, b in zip(p, p[1:])])
        assert_deadlock_free(routes)


class TestConfiguration:
    def test_explicit_root(self):
        ud = UpDownRouting(RingTopology(8), root=3)
        assert ud.root == 3

    def test_bad_root(self):
        with pytest.raises(ValueError):
            UpDownRouting(RingTopology(8), root=8)

    def test_disconnected_rejected(self):
        from repro.topologies import Topology

        t = Topology(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            UpDownRouting(t)
