"""Tests for the super-graph collapse (Fig. 1(c)) and the cost model."""

import pytest

from repro.core import (
    DSNTopology,
    super_graph,
    super_shortcut_spans,
    verify_dln_collapse,
)
from repro.layout import CostModel, interconnect_cost
from repro.topologies import LinkClass


class TestSuperGraph:
    def test_collapse_verified_aligned_sizes(self):
        """The paper's Fig. 1(c) claim holds exactly when p | n."""
        for n in (112, 1020):  # p=7 | 112, p=10 | 1020
            verify_dln_collapse(DSNTopology(n))

    def test_requires_aligned_size(self):
        with pytest.raises(ValueError):
            verify_dln_collapse(DSNTopology(100))  # r = 2

    def test_super_graph_size(self):
        d = DSNTopology(1024)
        g = super_graph(d)
        assert g.n == d.num_super_nodes

    def test_super_ring_links_present(self):
        d = DSNTopology(112)
        g = super_graph(d)
        m = g.n
        for k in range(m):
            assert g.has_link(k, (k + 1) % m)

    def test_super_spans_halve_per_level(self):
        d = DSNTopology(1020)
        m = d.num_super_nodes
        spans = super_shortcut_spans(d)
        means = {l: sum(v) / len(v) for l, v in spans.items()}
        # each level's span is ~half the previous level's, while spans
        # are still >= 2 super nodes (below that, integer quantization
        # of the landing super node dominates)
        for l in sorted(means):
            if l + 1 in means and means[l + 1] >= 2:
                assert means[l + 1] == pytest.approx(means[l] / 2, rel=0.35)
        # the top level jumps half the super ring
        assert means[1] == pytest.approx(m / 2, rel=0.1)

    def test_super_graph_keeps_shortcut_class(self):
        g = super_graph(DSNTopology(112))
        assert g.links_of_class(LinkClass.SHORTCUT)


class TestCostModel:
    def test_breakdown_sums(self):
        c = interconnect_cost(DSNTopology(256))
        assert c.total == pytest.approx(
            c.switches + c.cables_material + c.cables_fixed + c.installation
        )

    def test_switch_cost_topology_independent(self):
        from repro.experiments import paper_trio

        costs = [interconnect_cost(t) for t in paper_trio(256)]
        assert len({c.switches for c in costs}) == 1

    def test_dsn_cable_cost_below_random(self):
        from repro.experiments import paper_trio

        torus, random_, dsn = (interconnect_cost(t) for t in paper_trio(1024))
        assert dsn.cables_material < random_.cables_material
        # the Section VI-B economy claim, in currency
        assert dsn.total < random_.total

    def test_custom_prices(self):
        expensive_cable = CostModel(cable_cost_per_m=1000.0)
        c1 = interconnect_cost(DSNTopology(256))
        c2 = interconnect_cost(DSNTopology(256), model=expensive_cable)
        assert c2.cable_share > c1.cable_share
