"""Smoke tests: every example script runs end to end.

Examples are user-facing documentation; a broken one is a broken
deliverable. Each runs in a subprocess with a small argument where the
script accepts one.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "32")
        assert "DSN-4-32" in out and "route" in out

    def test_topology_comparison_small(self):
        out = run_example("topology_comparison.py")
        assert "Figure 7" in out and "Figure 9" in out

    def test_deadlock_analysis(self):
        out = run_example("deadlock_analysis.py", "32")
        assert "DEADLOCK RISK" in out
        assert "acyclic = True" in out

    def test_layout_planner(self):
        out = run_example("layout_planner.py", "128")
        assert "Cabling bill of materials" in out

    def test_flexible_growth(self):
        out = run_example("flexible_growth.py")
        assert "1020" in out and "growing the machine" in out

    def test_switching_modes(self):
        out = run_example("switching_modes.py")
        assert "wormhole" in out and "VCT" in out

    def test_simulate_traffic_quick(self):
        out = run_example("simulate_traffic.py", "uniform")
        assert "Figure 10" in out and "reduces low-load latency" in out

    def test_collective_workloads(self):
        out = run_example("collective_workloads.py")
        assert "ring_allreduce" in out

    def test_analytic_model(self):
        out = run_example("analytic_model.py")
        assert "predicted saturation" in out

    def test_fault_tolerance(self):
        out = run_example("fault_tolerance.py")
        assert "Timed link failures" in out
        assert "recovery_ns" in out
        assert "rebuilds minimal-adaptive" in out

    def test_telemetry_dashboard(self, tmp_path):
        # Runs in a scratch cwd (the example writes its export files
        # there), so a relative PYTHONPATH must be made absolute.
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = str(EXAMPLES.parent / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "telemetry_dashboard.py"), "32"],
            capture_output=True,
            text=True,
            timeout=240,
            cwd=tmp_path,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "Hottest links" in proc.stdout
        assert "<- fault" in proc.stdout
        assert (tmp_path / "TELEMETRY_dashboard.jsonl").stat().st_size > 0
        assert (tmp_path / "TELEMETRY_dashboard.prom").stat().st_size > 0
