"""Tests for synthetic traffic patterns (Section VII-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (
    BitComplementTraffic,
    BitReversalTraffic,
    HotspotTraffic,
    NeighboringTraffic,
    TransposeTraffic,
    UniformTraffic,
    make_pattern,
)
from repro.util import bit_reverse


class TestUniform:
    def test_never_self(self):
        p = UniformTraffic(16)
        rng = np.random.default_rng(0)
        for _ in range(500):
            src = int(rng.integers(16))
            assert p.destination(src, rng) != src

    def test_covers_all_destinations(self):
        p = UniformTraffic(8)
        rng = np.random.default_rng(0)
        seen = {p.destination(0, rng) for _ in range(500)}
        assert seen == set(range(1, 8))


class TestBitReversal:
    def test_fixed_permutation(self):
        p = BitReversalTraffic(256)
        rng = np.random.default_rng(0)
        for src in range(256):
            if bit_reverse(src, 8) != src:
                assert p.destination(src, rng) == bit_reverse(src, 8)

    def test_palindromes_fall_back_to_uniform(self):
        p = BitReversalTraffic(16)
        rng = np.random.default_rng(0)
        # 0b0000 reverses to itself
        assert p.destination(0, rng) != 0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BitReversalTraffic(100)


class TestBitComplement:
    def test_permutation(self):
        p = BitComplementTraffic(64)
        rng = np.random.default_rng(0)
        assert p.destination(0, rng) == 63
        assert p.destination(21, rng) == 42


class TestTranspose:
    def test_permutation(self):
        p = TransposeTraffic(16)  # 4-bit addresses, halves of 2
        rng = np.random.default_rng(0)
        # src = 0b0110 -> 0b1001
        assert p.destination(0b0110, rng) == 0b1001

    def test_rejects_odd_width(self):
        with pytest.raises(ValueError):
            TransposeTraffic(32)  # 5 bits


class TestNeighboring:
    def test_layout_dimensions(self):
        p = NeighboringTraffic(256)
        assert p.rows * p.cols == 256

    def test_mostly_local(self):
        p = NeighboringTraffic(256, local_fraction=0.9)
        rng = np.random.default_rng(1)
        local = 0
        trials = 2000
        src = 100
        r, c = divmod(src, p.cols)
        neighbors = set(p._neighbors[src])
        for _ in range(trials):
            if p.destination(src, rng) in neighbors:
                local += 1
        assert local / trials > 0.85

    def test_neighbors_are_adjacent(self):
        p = NeighboringTraffic(64)
        for h in range(64):
            r, c = divmod(h, p.cols)
            for nb in p._neighbors[h]:
                nr, nc = divmod(nb, p.cols)
                assert abs(nr - r) + abs(nc - c) == 1

    def test_local_fraction_validation(self):
        with pytest.raises(ValueError):
            NeighboringTraffic(64, local_fraction=1.5)


class TestHotspot:
    def test_hotspot_receives_extra(self):
        p = HotspotTraffic(64, hotspots=[7], fraction=0.5)
        rng = np.random.default_rng(0)
        hits = sum(p.destination(3, rng) == 7 for _ in range(1000))
        assert hits > 400

    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotTraffic(16, hotspots=[16])
        with pytest.raises(ValueError):
            HotspotTraffic(16, fraction=2.0)


class TestFactory:
    @pytest.mark.parametrize("name", ["uniform", "bit_reversal", "neighboring", "transpose"])
    def test_known_names(self, name):
        p = make_pattern(name, 256)
        assert p.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown traffic pattern"):
            make_pattern("nope", 64)

    @settings(max_examples=20)
    @given(st.sampled_from(["uniform", "neighboring"]), st.integers(min_value=2, max_value=500))
    def test_destination_in_range(self, name, hosts):
        p = make_pattern(name, hosts)
        rng = np.random.default_rng(0)
        for _ in range(20):
            src = int(rng.integers(hosts))
            dst = p.destination(src, rng)
            assert 0 <= dst < hosts and dst != src
