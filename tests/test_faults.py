"""Tests for the fault-injection subsystem (repro.faults).

The contracts under test, in order of importance:

1. every fault model is a pure function of (topology, params, seed);
2. a degraded topology can never be served the intact network's cached
   routing artifacts (fingerprint-keyed invalidation);
3. the flit simulator under a fault schedule is deterministic, drops
   only what sat on dead links, reroutes the rest, and its results are
   invariant to ``REPRO_WORKERS`` / ``REPRO_BFS_BLOCK``.
"""

import numpy as np
import pytest

from repro import cache
from repro.core import DSNTopology
from repro.faults import (
    FaultEvent,
    FaultSchedule,
    FaultSet,
    adaptive_escape_factory,
    bernoulli_link_faults,
    bernoulli_switch_faults,
    cabinet_burst_faults,
    cabinet_faults,
    degradation_point,
    induced_survivor,
    random_link_schedule,
    run_with_faults,
    sample_link_faults,
)
from repro.sim import SimConfig
from repro.topologies import RingTopology, TorusTopology


@pytest.fixture(autouse=True)
def fresh_cache(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    cache.clear_cache()
    yield
    cache.clear_cache()


QUICK = SimConfig(warmup_ns=2000, measure_ns=6000, drain_ns=12000, seed=3)


class TestFaultSet:
    def test_canonical_form(self):
        fs = FaultSet(dead_links=((5, 2), (1, 3), (2, 5)), dead_switches=(4, 4, 1))
        assert fs.dead_links == ((1, 3), (2, 5))
        assert fs.dead_switches == (1, 4)

    def test_apply_removes_links_keeps_nodes(self):
        t = DSNTopology(32)
        fs = sample_link_faults(t, 0.1, seed=0)
        s = fs.apply(t)
        assert s.n == t.n
        assert s.num_links == t.num_links - fs.num_dead_links
        for u, v in fs.dead_links:
            assert not s.has_link(u, v)

    def test_apply_rejects_unknown_elements(self):
        t = RingTopology(8)
        with pytest.raises(ValueError):
            FaultSet(dead_links=((0, 4),)).apply(t)  # not a ring link
        with pytest.raises(ValueError):
            FaultSet(dead_switches=(99,)).apply(t)

    def test_dead_switch_kills_incident_links(self):
        t = RingTopology(8)
        fs = FaultSet(dead_switches=(3,))
        s = fs.apply(t)
        assert s.num_links == 6  # ring loses both links at node 3
        assert s.degree(3) == 0

    def test_induced_survivor_excludes_dead_switches(self):
        t = RingTopology(8)
        surv, live = induced_survivor(t, FaultSet(dead_switches=(3,)))
        assert surv.n == 7
        assert 3 not in live.tolist()
        # path 2-3-4 is rerouted the long way round, so still connected
        assert surv.is_connected()


class TestModelDeterminism:
    @pytest.mark.parametrize("model,kwargs", [
        (bernoulli_link_faults, {"p": 0.08}),
        (bernoulli_switch_faults, {"p": 0.08}),
        (sample_link_faults, {"fail_fraction": 0.08}),
        (cabinet_burst_faults, {"bursts": 2}),
    ])
    def test_seed_stable(self, model, kwargs):
        t = DSNTopology(64)
        assert model(t, seed=7, **kwargs) == model(t, seed=7, **kwargs)
        # a different seed must (for these sizes) give a different set
        assert model(t, seed=7, **kwargs) != model(t, seed=8, **kwargs)

    def test_sample_exact_count(self):
        t = DSNTopology(64)
        fs = sample_link_faults(t, 0.1, seed=1)
        assert fs.num_dead_links == round(0.1 * t.num_links)

    def test_burst_is_spatially_clustered(self):
        """A burst's dead links concentrate around few cabinets; the
        same count of uniform faults spreads across many more."""
        from repro.layout import Floorplan

        t = TorusTopology.square(256, 2)
        burst = cabinet_burst_faults(t, seed=3, bursts=1, radius_m=2.0, decay_m=None)
        assert burst.num_dead_links > 0
        plan = Floorplan(t.n)
        cabs = {plan.cabinet_of(u) for u, v in burst.dead_links} | {
            plan.cabinet_of(v) for u, v in burst.dead_links
        }
        frac = round(burst.num_dead_links / t.num_links, 3)
        unif = sample_link_faults(t, frac, seed=3)
        cabs_u = {plan.cabinet_of(u) for u, v in unif.dead_links} | {
            plan.cabinet_of(v) for u, v in unif.dead_links
        }
        assert len(cabs) < len(cabs_u)

    def test_cabinet_faults_deterministic_kill(self):
        from repro.layout import Floorplan

        t = TorusTopology.square(64, 2)
        fs = cabinet_faults(t, [0])
        plan = Floorplan(t.n)
        for link in t.links:
            touching = plan.cabinet_of(link.u) == 0 or plan.cabinet_of(link.v) == 0
            assert fs.kills_link(link.u, link.v) == touching


class TestSchedule:
    def test_sorted_and_cumulative(self):
        t = DSNTopology(32)
        l0, l1 = t.links[0].endpoints(), t.links[5].endpoints()
        sched = FaultSchedule([
            FaultEvent(2000.0, FaultSet(dead_links=(l1,))),
            FaultEvent(1000.0, FaultSet(dead_links=(l0,))),
        ])
        assert [e.time_ns for e in sched] == [1000.0, 2000.0]
        assert sched.cumulative().dead_links == tuple(sorted((l0, l1)))

    def test_validate_rejects_duplicate_link(self):
        t = DSNTopology(32)
        l0 = t.links[0].endpoints()
        sched = FaultSchedule([
            FaultEvent(1000.0, FaultSet(dead_links=(l0,))),
            FaultEvent(2000.0, FaultSet(dead_links=(l0,))),
        ])
        with pytest.raises(ValueError, match="two events"):
            sched.validate(t)

    def test_validate_rejects_disconnection(self):
        r = RingTopology(8)
        sched = FaultSchedule([
            FaultEvent(1000.0, FaultSet(dead_links=(r.links[0].endpoints(),))),
            FaultEvent(2000.0, FaultSet(dead_links=(r.links[4].endpoints(),))),
        ])
        with pytest.raises(ValueError, match="disconnects"):
            sched.validate(r)

    def test_random_schedule_deterministic_and_disjoint(self):
        t = DSNTopology(64)
        a = random_link_schedule(t, [1000.0, 2000.0], 0.03, seed=9)
        b = random_link_schedule(t, [1000.0, 2000.0], 0.03, seed=9)
        assert [e.faults for e in a] == [e.faults for e in b]
        all_links = [l for e in a for l in e.faults.dead_links]
        assert len(all_links) == len(set(all_links))
        assert a.final_topology(t).is_connected()


class TestCacheInvalidation:
    """A degraded topology must never be served stale routing tables."""

    def test_survivor_fingerprint_differs(self):
        t = DSNTopology(64)
        fs = sample_link_faults(t, 0.05, seed=2)
        assert cache.topology_fingerprint(t) != cache.topology_fingerprint(fs.apply(t))

    def test_next_hops_avoid_dead_links(self, tmp_path, monkeypatch):
        """With both cache tiers hot for the intact network, the
        survivor's tables must be freshly derived: no next hop may use
        a dead link, in either the shortest-path or up*/down* tables."""
        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        t = DSNTopology(64)
        cache.shortest_path_table(t)  # populate both tiers for the intact graph
        cache.updown_routing(t)

        fs = sample_link_faults(t, 0.05, seed=4)
        survivor = fs.apply(t)
        assert survivor.is_connected()
        dead = set(fs.dead_links)

        spt = cache.shortest_path_table(survivor)
        for dst in range(0, survivor.n, 7):
            for src in range(survivor.n):
                if src == dst:
                    continue
                for nh in spt.next_hops_array(src, dst):
                    pair = (src, int(nh)) if src < int(nh) else (int(nh), src)
                    assert pair not in dead, f"stale next hop {src}->{int(nh)}"

        ud = cache.updown_routing(survivor)
        for src in range(0, survivor.n, 5):
            for dst in range(0, survivor.n, 5):
                if src == dst:
                    continue
                path = ud.path(src, dst)
                for a, b in zip(path, path[1:]):
                    pair = (a, b) if a < b else (b, a)
                    assert pair not in dead, f"stale up*/down* hop {a}->{b}"


class TestDynamicFaults:
    def _run(self, seed=5, offered=4.0, schedule_seed=11):
        topo = DSNTopology(32)
        sched = random_link_schedule(
            topo, [3000.0, 5000.0], 0.04, seed=schedule_seed
        )
        return run_with_faults(topo, sched, offered_gbps=offered, config=QUICK), sched

    def test_requires_factory(self):
        from repro.sim import FlitLevelSimulator
        from repro.traffic import make_pattern

        topo = DSNTopology(32)
        sched = random_link_schedule(topo, [3000.0], 0.04, seed=1)
        factory = adaptive_escape_factory(QUICK)
        pattern = make_pattern("uniform", topo.n * QUICK.hosts_per_switch)
        with pytest.raises(ValueError, match="adapter_factory"):
            FlitLevelSimulator(
                topo, factory(topo), pattern, 2.0, QUICK, fault_schedule=sched
            )

    def test_rejects_switch_faults(self):
        from repro.sim import FlitLevelSimulator
        from repro.traffic import make_pattern

        topo = DSNTopology(32)
        sched = FaultSchedule([FaultEvent(1000.0, FaultSet(dead_switches=(3,)))])
        factory = adaptive_escape_factory(QUICK)
        pattern = make_pattern("uniform", topo.n * QUICK.hosts_per_switch)
        with pytest.raises(ValueError, match="link faults only"):
            FlitLevelSimulator(
                topo, factory(topo), pattern, 2.0, QUICK,
                fault_schedule=sched, adapter_factory=factory,
            )

    def test_deterministic_across_runs(self):
        r1, _ = self._run()
        r2, _ = self._run()
        assert r1.delivered_measured == r2.delivered_measured
        assert r1.packets_dropped == r2.packets_dropped
        assert r1.flits_dropped == r2.flits_dropped
        assert r1.latencies_ns == r2.latencies_ns
        assert [f.recovery_ns for f in r1.fault_records] == [
            f.recovery_ns for f in r2.fault_records
        ]

    def test_worker_env_invariant(self, monkeypatch):
        """The engine is single-process by design; REPRO_WORKERS must
        not leak into its results."""
        monkeypatch.setenv("REPRO_WORKERS", "1")
        r1, _ = self._run()
        monkeypatch.setenv("REPRO_WORKERS", "4")
        r2, _ = self._run()
        assert r1.latencies_ns == r2.latencies_ns
        assert r1.packets_dropped == r2.packets_dropped

    def test_every_measured_packet_accounted(self):
        r, sched = self._run()
        assert r.delivered_measured + r.dropped_measured == r.generated_measured
        assert len(r.fault_records) == len(sched.events)

    def test_recovery_and_post_fault_metrics(self):
        r, _ = self._run()
        for f in r.fault_records:
            assert f.links_failed > 0
            assert f.in_flight_at_fault >= 0
            # recovery resolved (the run drains fully at this load)
            assert f.recovery_ns == f.recovery_ns
            assert f.recovery_ns >= 0.0
        assert r.post_fault_window_ns > 0
        assert r.post_fault_accepted_gbps > 0

    def test_faults_actually_drop_at_high_load(self):
        r, _ = self._run(offered=8.0, schedule_seed=13)
        # At saturation the dead links are busy; something must die.
        assert r.packets_dropped > 0
        assert r.flits_dropped >= r.packets_dropped

    def test_no_faults_matches_plain_run(self):
        """An empty schedule must not perturb the engine."""
        from repro.sim import FlitLevelSimulator
        from repro.traffic import make_pattern

        topo = DSNTopology(32)
        factory = adaptive_escape_factory(QUICK)
        pattern = make_pattern("uniform", topo.n * QUICK.hosts_per_switch)
        plain = FlitLevelSimulator(topo, factory(topo), pattern, 4.0, QUICK).run()
        empty = FlitLevelSimulator(
            topo, factory(topo), pattern, 4.0, QUICK,
            fault_schedule=FaultSchedule([]), adapter_factory=factory,
        ).run()
        assert plain.latencies_ns == empty.latencies_ns
        assert plain.delivered_measured == empty.delivered_measured
        assert empty.packets_dropped == 0


class TestDegradationExperiment:
    def test_worker_invariant(self):
        a = degradation_point("dsn", 64, 0.05, trials=3, seed=0, workers=1)
        b = degradation_point("dsn", 64, 0.05, trials=3, seed=0, workers=2)
        assert a == b

    def test_block_size_invariant(self, monkeypatch):
        monkeypatch.setenv("REPRO_BFS_BLOCK", "17")
        a = degradation_point("torus", 64, 0.05, trials=3, seed=0)
        monkeypatch.setenv("REPRO_BFS_BLOCK", "64")
        b = degradation_point("torus", 64, 0.05, trials=3, seed=0)
        assert a == b

    def test_zero_fraction_is_baseline(self):
        from repro.analysis import analyze

        pt = degradation_point("dsn", 64, 0.0, trials=2, seed=0, workers=1)
        m = analyze(DSNTopology(64))
        assert pt.connected_fraction == 1.0
        assert pt.mean_diameter == m.diameter
        assert pt.mean_aspl == pytest.approx(m.aspl)
        assert pt.throughput_retention == pytest.approx(1.0)

    def test_trials_env_knob(self, monkeypatch):
        from repro.faults import default_trials

        monkeypatch.setenv("REPRO_FAULT_TRIALS", "4")
        assert default_trials() == 4
        monkeypatch.setenv("REPRO_FAULT_TRIALS", "junk")
        assert default_trials() == 10
        monkeypatch.delenv("REPRO_FAULT_TRIALS")
        assert default_trials() == 10

    def test_artifact_roundtrip(self, tmp_path):
        import json

        from repro.faults import degradation_artifact

        out = tmp_path / "deg.json"
        _, points = degradation_artifact(
            out, n=64, fractions=(0.0, 0.05), trials=2, kinds=("dsn",), workers=1
        )
        data = json.loads(out.read_text())
        assert data["engine"] == "streaming_hop_stats"
        assert len(data["points"]) == len(points) == 2
        assert data["points"][1]["fail_fraction"] == 0.05
