"""Tests for the experiment drivers (figure/table regeneration)."""

import pytest

from repro.experiments import (
    PAPER_SIZES,
    check_degrees,
    check_line_cable,
    check_routing,
    compare_balance,
    dsn6_vs_torus3d,
    fig7_diameter,
    fig8_aspl,
    fig9_cable,
    format_balance,
    format_cable_sweep,
    format_hop_sweep,
    make_topology,
    paper_trio,
)

SMALL = (32, 64, 128)


class TestFactory:
    @pytest.mark.parametrize(
        "kind", ["dsn", "dsn_e", "dsn_v", "dsn_d", "torus", "mesh", "random", "ring", "hypercube"]
    )
    def test_kinds_build(self, kind):
        t = make_topology(kind, 64)
        assert t.n == 64

    def test_torus3d(self):
        assert make_topology("torus3d", 512).dims == (8, 8, 8)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_topology("wormhole", 64)

    def test_paper_trio(self):
        trio = paper_trio(64)
        assert [t.name for t in trio] == ["Torus-8x8", "DLN-2-2-64", "DSN-5-64"]

    def test_paper_sizes(self):
        assert PAPER_SIZES == (32, 64, 128, 256, 512, 1024, 2048)


class TestFig7and8:
    def test_fig7_ordering(self):
        rows = fig7_diameter(sizes=SMALL)
        for row in rows:
            assert row.values["random"] <= row.values["dsn"] + 2
            if row.n >= 64:
                assert row.values["dsn"] < row.values["torus"]

    def test_fig8_ordering_and_64switch_values(self):
        rows = fig8_aspl(sizes=(64,))
        v = rows[0].values
        # Section VII-B quotes 3.2 / 3.2 / 4.1 (DSN / RANDOM / torus)
        assert v["dsn"] == pytest.approx(3.49, abs=0.05)
        assert v["random"] == pytest.approx(3.2, abs=0.2)
        assert v["torus"] == pytest.approx(4.06, abs=0.05)

    def test_improvement_grows_with_size(self):
        rows = fig8_aspl(sizes=(64, 512))
        small_gain = rows[0].values["torus"] / rows[0].values["dsn"]
        big_gain = rows[1].values["torus"] / rows[1].values["dsn"]
        assert big_gain > small_gain

    def test_formatting(self):
        rows = fig7_diameter(sizes=(32,))
        out = format_hop_sweep(rows, "Fig 7")
        assert "Fig 7" in out and "dsn" in out


class TestFig9:
    def test_dsn_tracks_torus_random_grows(self):
        rows = fig9_cable(sizes=(64, 1024))
        small, big = rows
        assert big.values["random"] > 1.5 * small.values["random"]
        assert big.values["dsn"] < big.values["random"]
        assert big.values["dsn"] < 1.5 * big.values["torus"]

    def test_formatting(self):
        out = format_cable_sweep(fig9_cable(sizes=(32,)), "Fig 9")
        assert "Fig 9" in out

    def test_dsn6_vs_torus3d(self):
        dsn6, torus3 = dsn6_vs_torus3d(n=512)
        assert dsn6.average_m < 2.0 * torus3.average_m


class TestTheoryChecks:
    @pytest.mark.parametrize("n", [64, 100, 250])
    def test_degree_check(self, n):
        assert check_degrees(n).ok

    @pytest.mark.parametrize("n", [64, 128])
    def test_routing_check_exhaustive(self, n):
        chk = check_routing(n)
        assert chk.ok
        assert chk.pairs_checked == n * (n - 1)

    def test_routing_check_sampled(self):
        chk = check_routing(1024, sample_pairs=300)
        assert chk.ok
        assert chk.pairs_checked == 300

    @pytest.mark.parametrize("n", [64, 250, 1020])
    def test_line_cable_check(self, n):
        chk = check_line_cable(n)
        assert chk.ok
        # the p/3 saving materializes within a factor ~2
        assert chk.savings_factor > chk.savings_factor_expected / 2


class TestBalance:
    def test_custom_more_balanced_than_updown(self):
        cmp = compare_balance(64)
        assert cmp.custom_beats_updown
        out = format_balance(cmp)
        assert "up*/down*" in out
