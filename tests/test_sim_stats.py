"""Tests for simulator channel-utilization instrumentation and the
pure up*/down* (escape-only) routing mode."""

import numpy as np
import pytest

from repro.core import DSNTopology
from repro.routing import DuatoAdaptiveRouting
from repro.sim import AdaptiveEscapeAdapter, NetworkSimulator, SimConfig
from repro.traffic import make_pattern

CFG = SimConfig(warmup_ns=2000, measure_ns=8000, drain_ns=16000, seed=4)


def run(topo, load, escape_only=False, collect=True, seed=0):
    routing = DuatoAdaptiveRouting(topo)
    adapter = AdaptiveEscapeAdapter(
        routing, CFG.num_vcs, np.random.default_rng(seed), escape_only=escape_only
    )
    pat = make_pattern("uniform", topo.n * CFG.hosts_per_switch)
    return NetworkSimulator(
        topo, adapter, pat, load, CFG, collect_channel_stats=collect
    ).run()


class TestChannelStats:
    def test_utilization_bounded(self):
        r = run(DSNTopology(16), 4.0)
        u = r.channel_utilization()
        assert (u >= 0).all() and (u <= 1.0 + 1e-9).all()

    def test_utilization_scales_with_load(self):
        t = DSNTopology(16)
        low = run(t, 1.0).channel_utilization().mean()
        high = run(t, 6.0).channel_utilization().mean()
        assert high > 2 * low

    def test_requires_collection_flag(self):
        r = run(DSNTopology(16), 1.0, collect=False)
        with pytest.raises(ValueError):
            r.channel_utilization()

    def test_all_channels_tracked(self):
        t = DSNTopology(16)
        r = run(t, 2.0)
        assert len(r.channel_busy_ns) == 2 * t.num_links


class TestEscapeOnlyMode:
    def test_pure_updown_delivers(self):
        r = run(DSNTopology(16), 2.0, escape_only=True)
        assert r.delivered_fraction == 1.0

    def test_pure_updown_longer_paths(self):
        """up*/down* paths are at least as long as adaptive-minimal ones."""
        t = DSNTopology(64)
        adaptive = run(t, 1.0, escape_only=False)
        updown = run(t, 1.0, escape_only=True)
        assert updown.avg_hops >= adaptive.avg_hops - 0.05

    def test_pure_updown_less_balanced(self):
        """Dynamic confirmation of E13: up*/down* concentrates load at
        the tree root compared to adaptive routing."""
        t = DSNTopology(64)
        adaptive = run(t, 6.0, escape_only=False)
        updown = run(t, 6.0, escape_only=True)
        assert updown.utilization_imbalance() > adaptive.utilization_imbalance()
