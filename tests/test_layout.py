"""Tests for the machine-room floorplan and cable accounting (Fig. 9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DSNETopology, DSNTopology
from repro.layout import (
    Floorplan,
    FloorplanConfig,
    average_cable_length,
    cable_lengths,
    cable_report,
    linear_cable_stats,
    total_cable_length,
)
from repro.topologies import RingTopology, TorusTopology


class TestFloorplanGeometry:
    def test_paper_dimensions(self):
        fp = Floorplan(2048)
        assert fp.num_cabinets == 128
        assert fp.rows == 12
        assert fp.per_row == 11

    @given(st.integers(min_value=1, max_value=5000))
    def test_all_cabinets_placed(self, m_switches):
        fp = Floorplan(m_switches)
        assert fp.rows * fp.per_row >= fp.num_cabinets
        # last position valid
        fp.cabinet_position(fp.num_cabinets - 1)

    @given(st.integers(min_value=17, max_value=4000))
    def test_rows_near_square(self, n):
        fp = Floorplan(n)
        assert (fp.rows - 1) ** 2 < fp.num_cabinets <= fp.rows**2

    def test_cabinet_of(self):
        fp = Floorplan(64)
        assert fp.cabinet_of(0) == 0
        assert fp.cabinet_of(15) == 0
        assert fp.cabinet_of(16) == 1
        with pytest.raises(ValueError):
            fp.cabinet_of(64)

    def test_manhattan_distance(self):
        fp = Floorplan(16 * 6)  # 6 cabinets: 3 rows x 2
        assert fp.rows == 3 and fp.per_row == 2
        # cabinet 0 at (0, 0); cabinet 3 at (col 1, row 1) = (0.6, 2.1)
        assert fp.cabinet_distance(0, 3) == pytest.approx(0.6 + 2.1)

    def test_cable_length_rules(self):
        fp = Floorplan(64)
        assert fp.cable_length(0, 15) == 2.0  # intra-cabinet
        inter = fp.cable_length(0, 16)  # adjacent cabinets
        assert inter == pytest.approx(0.6 + 4.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FloorplanConfig(switches_per_cabinet=0)

    def test_custom_overhead(self):
        cfg = FloorplanConfig(overhead_per_cabinet_m=1.0)
        fp = Floorplan(64, cfg)
        assert fp.cable_length(0, 16) == pytest.approx(0.6 + 2.0)


class TestCableAccounting:
    def test_lengths_vector(self):
        t = RingTopology(32)
        lengths = cable_lengths(t)
        assert len(lengths) == t.num_links
        assert (lengths >= 2.0).all()

    def test_total_is_sum(self):
        t = TorusTopology((8, 8))
        assert total_cable_length(t) == pytest.approx(cable_lengths(t).sum())

    def test_fig9_shape_at_2048(self):
        """Fig. 9: DSN average cable close to torus, far below RANDOM."""
        from repro.topologies import DLNRandomTopology

        n = 2048
        torus = average_cable_length(TorusTopology.square(n))
        rnd = average_cable_length(DLNRandomTopology(n, seed=0))
        dsn = average_cable_length(DSNTopology(n))
        assert dsn < rnd
        assert (rnd - dsn) / rnd > 0.25  # paper: up to 38% shorter
        assert dsn < 1.6 * torus

    def test_report_classes(self):
        rep = cable_report(DSNTopology(256))
        assert "local" in rep.per_class and "shortcut" in rep.per_class
        n_local, avg_local = rep.per_class["local"]
        assert n_local == 256
        assert avg_local < rep.per_class["shortcut"][1]

    def test_parallel_links_counted(self):
        e = DSNETopology(64)
        base = DSNTopology(64)
        assert cable_report(e).num_cables > cable_report(base).num_cables
        assert cable_report(e, include_parallel=False).num_cables == base.num_links


class TestLinearLayout:
    def test_ring_excludes_wrap(self):
        stats = linear_cable_stats(RingTopology(16))
        assert stats.total == 15  # unit links, no wrap

    def test_theorem2b_bounds(self):
        """Theorem 2(b): the exact (slack-corrected) bounds always hold,
        and the paper's asymptotic constants are approached at large n."""
        from repro.core import dsn_theory

        for n in (64, 256, 1020, 2048):
            th = dsn_theory(n)
            stats = linear_cable_stats(DSNTopology(n))
            assert stats.total <= th.total_cable_bound_exact
            assert stats.average_shortcut <= th.average_shortcut_length_bound_exact
        # asymptotics: within 15% of the paper's n/p, n^2/p + 2n at n=2048
        th = dsn_theory(2048)
        stats = linear_cable_stats(DSNTopology(2048))
        assert stats.total <= 1.15 * th.total_cable_bound
        assert stats.average_shortcut <= 1.15 * th.average_shortcut_length_bound

    def test_dln22_shortcut_mean_near_n_over_4(self):
        """DLN-2-2's random chords average ~ n/4 in arc measure (the
        paper's n/3 is the same quantity in line measure)."""
        from repro.core import dln22_average_shortcut_length
        from repro.topologies import DLNRandomTopology

        n = 1024
        stats = linear_cable_stats(DLNRandomTopology(n, seed=0))
        assert stats.average_shortcut == pytest.approx(
            dln22_average_shortcut_length(n, "arc"), rel=0.15
        )
        assert dln22_average_shortcut_length(n, "line") == pytest.approx(n / 3)
