"""Docs hygiene: no dead relative links in README or docs/*.md.

Every ``[text](target)`` whose target is not an absolute URL must
resolve to a file that exists, relative to the file containing the
link. This is the test the CI docs-link step runs; it keeps README's
subsystem section honest as docs pages come and go.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])

# [text](target) -- excluding images is unnecessary; they must exist too.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _relative_links(path: Path) -> list[str]:
    links = []
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target.split("#", 1)[0])  # drop section anchors
    return links


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_no_dead_relative_links(doc):
    missing = [t for t in _relative_links(doc)
               if not (doc.parent / t).exists()]
    assert not missing, f"{doc.relative_to(REPO)} has dead links: {missing}"


def test_readme_links_every_docs_page():
    """README's subsystem section must point at every docs page."""
    readme = (REPO / "README.md").read_text()
    pages = sorted(p.name for p in (REPO / "docs").glob("*.md"))
    assert pages, "docs/ is empty?"
    not_linked = [p for p in pages if f"docs/{p}" not in readme]
    assert not not_linked, f"README does not link: {not_linked}"
