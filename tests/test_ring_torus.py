"""Tests for ring, line, mesh and torus topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze, diameter
from repro.topologies import LineTopology, MeshTopology, RingTopology, TorusTopology, balanced_dims


class TestRing:
    def test_structure(self):
        r = RingTopology(8)
        assert r.num_links == 8
        assert r.degree_census() == {2: 8}
        assert r.succ(7) == 0 and r.pred(0) == 7

    def test_diameter_closed_form(self):
        for n in (5, 8, 13):
            assert diameter(RingTopology(n)) == n // 2

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            RingTopology(2)


class TestLine:
    def test_structure_and_diameter(self):
        l = LineTopology(6)
        assert l.num_links == 5
        assert diameter(l) == 5


class TestBalancedDims:
    @given(st.integers(min_value=5, max_value=12))
    def test_power_of_two_2d(self, e):
        a, b = balanced_dims(2**e, 2)
        assert a * b == 2**e
        assert a // b in (1, 2)

    def test_3d(self):
        dims = balanced_dims(512, 3)
        assert dims == (8, 8, 8)
        assert balanced_dims(2048, 3) == (16, 16, 8)

    def test_non_power_of_two(self):
        dims = balanced_dims(36, 2)
        assert dims[0] * dims[1] == 36

    def test_one_dim(self):
        assert balanced_dims(7, 1) == (7,)

    def test_rejects_bad_ndims(self):
        with pytest.raises(ValueError):
            balanced_dims(8, 0)


class TestTorus:
    def test_degree_regular(self):
        t = TorusTopology((4, 4))
        assert t.degree_census() == {4: 16}

    def test_2x_dims_no_duplicate(self):
        t = TorusTopology((2, 4))
        # dimension of size 2 contributes one link, not two parallel ones
        assert t.degree(0) == 3

    @settings(max_examples=20)
    @given(st.integers(min_value=3, max_value=8), st.integers(min_value=3, max_value=8))
    def test_diameter_closed_form(self, a, b):
        t = TorusTopology((a, b))
        assert diameter(t) == t.theoretical_diameter() == a // 2 + b // 2

    def test_square_factory(self):
        t = TorusTopology.square(2048)
        assert t.dims == (64, 32)
        assert t.n == 2048

    def test_coordinates_roundtrip(self):
        t = TorusTopology((4, 8))
        for node in range(t.n):
            assert t.node_at(t.coordinates(node)) == node

    def test_node_at_validates(self):
        t = TorusTopology((4, 4))
        with pytest.raises(ValueError):
            t.node_at((4, 0))
        with pytest.raises(ValueError):
            t.node_at((1,))

    def test_aspl_known_8x8(self):
        # Fig. 8 text: torus ASPL at 64 switches is ~4.1
        m = analyze(TorusTopology((8, 8)))
        assert m.aspl == pytest.approx(4.063, abs=0.01)


class TestMesh:
    def test_diameter_closed_form(self):
        m = MeshTopology((3, 5))
        assert diameter(m) == m.theoretical_diameter() == 2 + 4

    def test_corner_degrees(self):
        m = MeshTopology((3, 3))
        assert m.degree(0) == 2  # corner
        assert m.degree(4) == 4  # center
