"""Tests for DSN-E / DSN-V / DSN-D extensions (Sections V-A, V-B)."""

import pytest

from repro.core import (
    DSNDTopology,
    DSNETopology,
    DSNTopology,
    DSNVTopology,
    dsn_route,
    dsn_route_extended,
    dsn_theory,
    dsnd_route,
)
from repro.core.routing import HopKind, Phase
from repro.analysis import diameter
from repro.topologies import LinkClass


class TestDSNE:
    def test_parallel_links(self):
        e = DSNETopology(64)
        assert len(e.up_links) == 64  # one Up link per node
        assert len(e.extra_links) == 2 * e.p
        # parallel links don't change the simple graph
        assert e.num_links == DSNTopology(64).num_links

    def test_x_fixed_full(self):
        e = DSNETopology(100)
        assert e.x == e.p - 1

    def test_total_degree_counts_parallel(self):
        e = DSNETopology(64)
        # every node has 2 extra Up endpoints; dateline nodes more
        for v in range(20, 40):
            assert e.total_degree(v) == e.degree(v) + 2

    def test_extended_routing_same_hop_sequence(self):
        """The extended routing changes channels, not the node path, so
        the Fact 2 diameter bound carries over (Theorem 3)."""
        e = DSNETopology(64)
        b = DSNTopology(64)
        for s in range(0, 64, 3):
            for t in range(0, 64, 5):
                assert dsn_route_extended(e, s, t).path == dsn_route(b, s, t).path

    def test_extended_routing_channel_discipline(self):
        e = DSNETopology(100)
        region = 2 * e.p
        for s in range(0, 100, 3):
            for t in range(0, 100, 7):
                r = dsn_route_extended(e, s, t)
                for h in r.hops:
                    if h.phase is Phase.PREWORK:
                        assert h.kind is HopKind.UP
                    elif h.phase is Phase.MAIN:
                        assert h.kind in (HopKind.SUCC, HopKind.SHORTCUT)
                    else:  # FINISH rides Pred/Up outside, Extra inside the region
                        assert h.kind in (HopKind.PRED, HopKind.UP, HopKind.EXTRA)
                        if h.kind is HopKind.EXTRA:
                            assert 0 <= t < region

    def test_finish_never_uses_ring_pred_in_region_when_dest_in_region(self):
        """The dateline rule: FINISH pred-moves inside [1, 2p] ride Extra
        whenever the destination lies in [0, 2p) -- the gap that makes the
        dependency graph acyclic."""
        e = DSNETopology(64)
        region = 2 * e.p
        for s in range(64):
            for t in range(region):
                r = dsn_route_extended(e, s, t)
                for h in r.hops:
                    if h.phase is Phase.FINISH and 1 <= max(h.src, h.dst) <= region:
                        if (h.src - h.dst) % e.n == 1:  # pred move inside region
                            assert h.kind is HopKind.EXTRA


class TestDSNV:
    def test_same_graph_as_basic(self):
        v = DSNVTopology(64)
        b = DSNTopology(64)
        assert v.links == b.links
        assert not hasattr(v, "parallel_links")

    def test_policy_available(self):
        v = DSNVTopology(64)
        r = dsn_route_extended(v, 0, 33)
        r.validate()


class TestDSND:
    def test_construction(self):
        d = DSNDTopology(256, d=2)
        assert d.q == -(-d.p // 2)
        assert d.links_of_class(LinkClass.EXPRESS)
        assert all(s % d.q == 0 for s in d.express_stops)

    def test_truncated_shortcut_set(self):
        d = DSNDTopology(256, d=2)
        base = DSNTopology(256)
        assert d.x < base.x  # the log p lowest levels are dropped

    def test_diameter_improves_on_same_x_base(self):
        """The express ring must beat the truncated base it extends."""
        d = DSNDTopology(512, d=2)
        base = DSNTopology(512, x=d.x)
        assert diameter(d) < diameter(base)

    def test_dsnd2_diameter_near_7_4p(self):
        """Section V-B: DSN-D-2 diameter ~ (7/4) p."""
        d = DSNDTopology(1024, d=2)
        assert diameter(d) <= 1.75 * d.p + d.r + 2

    def test_routing_valid_and_short(self):
        d = DSNDTopology(256, d=2)
        th = dsn_theory(256, d.x)
        for s in range(0, 256, 3):
            for t in range(0, 256, 5):
                r = dsnd_route(d, s, t)
                r.validate()
                # Section V-B: routing diameter improves to ~2p
                assert r.length <= 2 * d.p + d.r + 2

    def test_routing_never_longer_than_plain_walks(self):
        """The express rewrite only replaces a local walk when shorter."""
        d = DSNDTopology(256, d=2)
        for s in range(0, 256, 11):
            for t in range(0, 256, 13):
                assert dsnd_route(d, s, t).length <= dsn_route(d, s, t).length

    def test_rejects_bad_density(self):
        with pytest.raises(ValueError):
            DSNDTopology(256, d=0)
        with pytest.raises(ValueError):
            DSNDTopology(256, d=8)  # d >= p

    def test_express_neighbors(self):
        d = DSNDTopology(256, d=2)
        s0 = d.express_stops[0]
        assert d.express_next(d.express_prev(s0)) == s0
