"""Unit tests for the Topology kernel."""

import networkx as nx
import pytest

from repro.topologies import Link, LinkClass, Topology
from repro.topologies.base import directed_channels


def triangle():
    return Topology(3, [(0, 1), (1, 2), (0, 2)], name="triangle")


class TestLink:
    def test_canonical_order(self):
        l = Link(5, 2)
        assert (l.u, l.v) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Link(3, 3)

    def test_other(self):
        l = Link(1, 4)
        assert l.other(1) == 4
        assert l.other(4) == 1
        with pytest.raises(ValueError):
            l.other(2)

    def test_equality_includes_class(self):
        assert Link(0, 1, LinkClass.LOCAL) != Link(0, 1, LinkClass.SHORTCUT)
        assert Link(0, 1) == Link(1, 0)


class TestTopologyConstruction:
    def test_basic_properties(self):
        t = triangle()
        assert t.n == 3
        assert t.num_links == 3
        assert t.average_degree == 2.0
        assert t.degree_census() == {2: 3}

    def test_duplicate_links_collapse_first_class_wins(self):
        t = Topology(3, [(0, 1, LinkClass.LOCAL), (1, 0, LinkClass.SHORTCUT), (1, 2)])
        assert t.num_links == 2
        assert t.link_class(0, 1) is LinkClass.LOCAL

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(ValueError):
            Topology(3, [(0, 3)])

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            Topology(1, [])

    def test_neighbors_sorted_and_ports(self):
        t = Topology(4, [(2, 0), (0, 3), (0, 1)])
        assert t.neighbors(0) == (1, 2, 3)
        assert t.port_of(0, 2) == 1
        with pytest.raises(ValueError):
            t.port_of(1, 2)

    def test_has_link(self):
        t = triangle()
        assert t.has_link(0, 2) and t.has_link(2, 0)
        t2 = Topology(4, [(0, 1), (2, 3)])
        assert not t2.has_link(0, 2)


class TestTopologyExports:
    def test_adjacency_csr_symmetric(self):
        t = triangle()
        a = t.adjacency_csr
        assert (a != a.T).nnz == 0
        assert a.sum() == 2 * t.num_links

    def test_to_networkx_preserves_classes(self):
        t = Topology(3, [(0, 1, LinkClass.SHORTCUT), (1, 2)])
        g = t.to_networkx()
        assert isinstance(g, nx.Graph)
        assert g.edges[0, 1]["cls"] == "shortcut"
        assert g.number_of_nodes() == 3

    def test_is_connected(self):
        assert triangle().is_connected()
        assert not Topology(4, [(0, 1), (2, 3)]).is_connected()

    def test_directed_channels(self):
        chans = directed_channels(triangle())
        assert len(chans) == 6
        assert (0, 1) in chans and (1, 0) in chans

    def test_links_of_class(self):
        t = Topology(4, [(0, 1, LinkClass.LOCAL), (1, 2, LinkClass.SHORTCUT), (2, 3, LinkClass.SHORTCUT)])
        assert len(t.links_of_class(LinkClass.SHORTCUT)) == 2
        assert len(t.links_of_class(LinkClass.RANDOM)) == 0

    def test_iteration_and_repr(self):
        t = triangle()
        assert list(t) == [0, 1, 2]
        assert "triangle" in repr(t)
