"""Tests for the claims registry and the super-node size override."""

import pytest

from repro.core import DSNTopology, dsn_route
from repro.experiments import all_claims
from repro.experiments.claims import ClaimResult, format_claims


class TestClaimsRegistry:
    def test_ids_unique_and_ordered(self):
        claims = all_claims()
        ids = [c.claim_id for c in claims]
        assert len(set(ids)) == len(ids)
        assert ids == sorted(ids, key=lambda s: int(s[1:]))

    def test_grades_valid(self):
        for c in all_claims():
            assert c.grade in ("EXACT", "SHAPE")
            assert c.source and c.statement and c.paper_value

    def test_cheap_claims_measurable(self):
        """The graph-analysis claims (no simulation) run and pass."""
        by_id = {c.claim_id: c for c in all_claims()}
        for cid in ("C5", "C6", "C7", "C8"):
            measured, ok = by_id[cid].measure()
            assert ok, (cid, measured)

    def test_format(self):
        c = all_claims()[0]
        out = format_claims([ClaimResult(claim=c, measured=0.75, ok=True)])
        assert "PASS" in out and "C1" in out


class TestSupernodeOverride:
    def test_default_matches_natural(self):
        assert DSNTopology(512).p == 9
        assert DSNTopology(512, p=9).name == DSNTopology(512).name

    def test_override_changes_name(self):
        t = DSNTopology(512, p=7)
        assert "(p=7)" in t.name
        assert t.p == 7
        assert t.x == 6

    def test_levels_follow_override(self):
        t = DSNTopology(256, p=12)
        assert t.level(11) == 12
        assert t.level(12) == 1
        assert t.r == 256 % 12

    def test_routing_works_with_override(self):
        for p in (6, 12):
            t = DSNTopology(256, p=p)
            for s in range(0, 256, 17):
                for d in range(0, 256, 19):
                    dsn_route(t, s, d).validate()

    def test_validation(self):
        with pytest.raises(ValueError):
            DSNTopology(256, p=1)
        with pytest.raises(ValueError):
            DSNTopology(256, p=129)

    def test_degree_bounds_still_hold(self):
        """Fact 1's degree-5 cap is a structural property independent of
        the p choice."""
        for p in (6, 9, 14):
            t = DSNTopology(512, p=p)
            assert t.max_degree <= 5
            assert t.average_degree <= 4.0 + 1e-9
