"""Tests for the simulation trace recorder."""

import json

import numpy as np
import pytest

from repro.core import DSNTopology
from repro.routing import DuatoAdaptiveRouting
from repro.sim import (
    AdaptiveEscapeAdapter,
    NetworkSimulator,
    SimConfig,
    TraceRecorder,
)
from repro.traffic import make_pattern

CFG = SimConfig(warmup_ns=1000, measure_ns=4000, drain_ns=8000, seed=8)


def run_traced(max_events=100_000):
    topo = DSNTopology(16)
    adapter = AdaptiveEscapeAdapter(
        DuatoAdaptiveRouting(topo), CFG.num_vcs, np.random.default_rng(0)
    )
    tracer = TraceRecorder(max_events=max_events)
    result = NetworkSimulator(
        topo, adapter, make_pattern("uniform", 64), 2.0, CFG, tracer=tracer
    ).run()
    return result, tracer


class TestTraceRecorder:
    def test_per_packet_times_monotone(self):
        """Events carry effect-time stamps; within one packet they must
        be non-decreasing (inject -> hops -> deliver)."""
        _, tracer = run_traced()
        assert len(tracer) > 0
        by_pid = {}
        for e in tracer.events:
            by_pid.setdefault(e.pid, []).append(e.time_ns)
        for times in by_pid.values():
            assert times == sorted(times)

    def test_every_delivery_has_inject(self):
        result, tracer = run_traced()
        injected = {e.pid for e in tracer.events if e.kind == "inject"}
        delivered = {e.pid for e in tracer.events if e.kind == "deliver"}
        assert delivered <= injected

    def test_packet_events_complete_lifecycle(self):
        _, tracer = run_traced()
        pid = next(e.pid for e in tracer.events if e.kind == "deliver")
        evs = tracer.packet_events(pid)
        assert evs[0].kind == "inject"
        assert evs[-1].kind == "deliver"
        hops = [e for e in evs if e.kind == "hop"]
        # hop chain is contiguous through switches
        at = evs[0].at
        for h in hops:
            assert int(h.detail.split()[0].split("=")[1]) == at
            at = h.at

    def test_latency_breakdown(self):
        _, tracer = run_traced()
        pid = next(e.pid for e in tracer.events if e.kind == "deliver")
        bd = tracer.packet_latency_breakdown(pid)
        assert bd["total_ns"] > 0
        assert bd["hops"] >= 0

    def test_breakdown_requires_complete_trace(self):
        tracer = TraceRecorder()
        with pytest.raises(ValueError):
            tracer.packet_latency_breakdown(99)

    def test_truncation(self):
        _, tracer = run_traced(max_events=10)
        assert len(tracer) == 10
        assert tracer.truncated

    def test_save_jsonl(self, tmp_path):
        _, tracer = run_traced()
        path = tmp_path / "trace.jsonl"
        tracer.save_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(tracer)
        rec = json.loads(lines[0])
        assert {"t", "kind", "pid", "at", "detail"} <= set(rec)
