"""Tests for the per-topology artifact cache (repro.cache).

The cache must be invisible: every artifact it returns -- distance
matrices, next-hop tables, path counts, up*/down* tables, simulation
results built on them -- must be identical whether it came from a fresh
computation, the in-process tier, or the on-disk tier, serially or in
worker processes.
"""

import numpy as np
import pytest

from repro import cache
from repro.analysis import analyze
from repro.core import DSNTopology
from repro.experiments import make_topology
from repro.routing.table import ShortestPathTable
from repro.routing.updown import UpDownRouting
from repro.topologies import DLNRandomTopology, TorusTopology


@pytest.fixture(autouse=True)
def fresh_cache(monkeypatch):
    """Each test starts with empty tiers and zeroed counters, no disk."""
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    cache.clear_cache()
    cache.reset_cache_stats()
    yield
    cache.clear_cache()
    cache.reset_cache_stats()


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        a = DSNTopology(64)
        b = DSNTopology(64)
        assert a is not b
        assert cache.topology_fingerprint(a) == cache.topology_fingerprint(b)

    def test_stable_across_seeded_rebuilds(self):
        a = DLNRandomTopology(64, 2, 2, seed=5)
        b = DLNRandomTopology(64, 2, 2, seed=5)
        assert cache.topology_fingerprint(a) == cache.topology_fingerprint(b)

    def test_seed_changes_fingerprint(self):
        a = DLNRandomTopology(64, 2, 2, seed=5)
        b = DLNRandomTopology(64, 2, 2, seed=6)
        assert cache.topology_fingerprint(a) != cache.topology_fingerprint(b)

    def test_distinct_topologies_distinct(self):
        assert cache.topology_fingerprint(DSNTopology(64)) != cache.topology_fingerprint(
            TorusTopology.square(64, 2)
        )
        assert cache.topology_fingerprint(DSNTopology(64)) != cache.topology_fingerprint(
            DSNTopology(128)
        )


class TestAccounting:
    def test_miss_then_memory_hit(self):
        topo = DSNTopology(32)
        d1 = cache.distance_matrix(topo)
        s = cache.cache_stats()
        assert (s.misses, s.memory_hits) == (1, 0)
        d2 = cache.distance_matrix(topo)
        s = cache.cache_stats()
        assert (s.misses, s.memory_hits) == (1, 1)
        # The resident entry is the int16 pack; callers get equal fresh
        # float64 views unpacked from it, not one shared mutable array.
        np.testing.assert_array_equal(d1, d2)
        assert d1.dtype == d2.dtype == np.float64

    def test_rebuilt_topology_hits_by_fingerprint(self):
        d1 = cache.distance_matrix(DSNTopology(32))
        d2 = cache.distance_matrix(DSNTopology(32))
        assert cache.cache_stats().memory_hits == 1
        np.testing.assert_array_equal(d1, d2)

    def test_memory_tier_holds_int16_pack(self):
        topo = DSNTopology(32)
        cache.distance_matrix(topo)
        entry = cache._peek((cache.topology_fingerprint(topo), "dist"))
        assert entry is not None
        assert entry["dist_i16"].dtype == np.int16

    def test_disabled_bypasses_and_counts_nothing(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        topo = DSNTopology(32)
        d1 = cache.distance_matrix(topo)
        d2 = cache.distance_matrix(topo)
        assert d1 is not d2
        np.testing.assert_array_equal(d1, d2)
        s = cache.cache_stats()
        assert (s.misses, s.memory_hits, s.disk_hits) == (0, 0, 0)

    def test_lru_eviction(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MEM", "2")
        for n in (16, 32, 64):
            cache.distance_matrix(DSNTopology(n))
        assert cache.cache_stats().evictions == 1
        # The evicted (oldest) entry recomputes; the newest still hits.
        cache.distance_matrix(DSNTopology(64))
        assert cache.cache_stats().memory_hits == 1
        cache.distance_matrix(DSNTopology(16))
        assert cache.cache_stats().misses == 4


class TestDiskTier:
    def test_round_trip(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        topo = DSNTopology(32)
        d1 = cache.distance_matrix(topo)
        assert cache.cache_stats().disk_stores == 1
        assert list(tmp_path.glob("*.npz"))

        cache.clear_cache()  # drop the memory tier only
        d2 = cache.distance_matrix(DSNTopology(32))
        s = cache.cache_stats()
        assert s.disk_hits == 1 and s.misses == 1
        np.testing.assert_array_equal(d1, d2)
        assert d2.dtype == np.float64

    def test_corrupt_entry_recomputes(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        topo = DSNTopology(32)
        d1 = cache.distance_matrix(topo)
        (path,) = tmp_path.glob("*.npz")
        path.write_bytes(b"not a zipfile")
        cache.clear_cache()
        d2 = cache.distance_matrix(DSNTopology(32))
        np.testing.assert_array_equal(d1, d2)
        assert cache.cache_stats().disk_hits == 0

    def test_next_hop_and_updown_round_trip(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        topo = DSNTopology(32)
        t1 = cache.shortest_path_table(topo)
        u1 = cache.updown_routing(topo)
        cache.clear_cache()
        t2 = cache.shortest_path_table(DSNTopology(32))
        u2 = cache.updown_routing(DSNTopology(32))
        assert t1 is not t2 and u1 is not u2
        p1, i1 = t1.next_hop_arrays()
        p2, i2 = t2.next_hop_arrays()
        np.testing.assert_array_equal(p1, p2)
        np.testing.assert_array_equal(i1, i2)
        for s, t in ((0, 17), (5, 30), (31, 1)):
            assert t1.next_hops(s, t) == t2.next_hops(s, t)
            assert u1.next_hops(s, t) == u2.next_hops(s, t)
            assert u1.distance(s, t) == u2.distance(s, t)
            assert u1.path(s, t) == u2.path(s, t)


class TestArtifactsMatchFresh:
    """Cached artifacts == independently computed ones (the cache must
    never change numbers)."""

    def test_distance_matrix_matches_fresh(self, monkeypatch):
        topo = DSNTopology(48)
        cached = cache.distance_matrix(topo)
        monkeypatch.setenv("REPRO_CACHE", "off")
        from repro.analysis.metrics import shortest_path_matrix

        np.testing.assert_array_equal(cached, shortest_path_matrix(topo))

    def test_next_hops_match_brute_force(self):
        topo = DSNTopology(24)
        table = cache.shortest_path_table(topo)
        dist = cache.distance_matrix(topo)
        neighbors = {u: sorted(topo.neighbors(u)) for u in range(topo.n)}
        for u in range(topo.n):
            for t in range(topo.n):
                expect = (
                    []
                    if u == t
                    else [v for v in neighbors[u] if dist[v, t] == dist[u, t] - 1]
                )
                assert table.next_hops(u, t) == expect, (u, t)

    def test_path_counts_match_brute_force(self):
        topo = DSNTopology(24)
        counts = cache.path_count_matrix(topo)
        dist = cache.distance_matrix(topo)
        n = topo.n
        # Sequential DP over increasing distance, one source at a time.
        expect = np.zeros((n, n))
        for s in range(n):
            expect[s, s] = 1.0
            order = sorted(range(n), key=lambda v: dist[s, v])
            for v in order:
                if v == s:
                    continue
                expect[s, v] = sum(
                    expect[s, w] for w in topo.neighbors(v) if dist[s, w] == dist[s, v] - 1
                )
        np.testing.assert_array_equal(counts, expect)

    def test_updown_rehydration_equals_fresh(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        topo = DSNTopology(32)
        cache.updown_routing(topo)
        cache.clear_cache()
        restored = cache.updown_routing(DSNTopology(32))
        monkeypatch.setenv("REPRO_CACHE", "off")
        fresh = UpDownRouting(topo)
        assert restored.root == fresh.root
        assert restored.average_path_length() == fresh.average_path_length()
        for s in range(topo.n):
            for t in range(topo.n):
                if s != t:
                    assert restored.path(s, t) == fresh.path(s, t)


class TestMemoTopology:
    def test_same_recipe_same_object(self):
        a = make_topology("dsn", 64)
        b = make_topology("dsn", 64)
        assert a is b

    def test_different_recipe_different_object(self):
        assert make_topology("dsn", 64) is not make_topology("dsn", 128)
        assert make_topology("random", 64, seed=1) is not make_topology(
            "random", 64, seed=2
        )

    def test_disabled_rebuilds(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert make_topology("dsn", 64) is not make_topology("dsn", 64)


class TestDeterminism:
    """Cold (cache off) and warm (cache on, disk-backed) runs must
    produce byte-identical results."""

    def test_graph_metrics_cold_vs_warm(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "off")
        cold = [analyze(make_topology(k, 64)) for k in ("dsn", "torus", "random")]
        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        warm1 = [analyze(make_topology(k, 64)) for k in ("dsn", "torus", "random")]
        cache.clear_cache()  # second warm pass reads the disk tier
        warm2 = [analyze(make_topology(k, 64)) for k in ("dsn", "torus", "random")]
        assert cold == warm1 == warm2
        assert cache.cache_stats().disk_hits > 0

    def test_sim_result_cold_vs_warm(self, monkeypatch, tmp_path):
        from repro.routing import DuatoAdaptiveRouting
        from repro.sim import AdaptiveEscapeAdapter, NetworkSimulator, SimConfig
        from repro.traffic import make_pattern

        cfg = SimConfig(warmup_ns=2000, measure_ns=6000, drain_ns=12000, seed=3)

        def run():
            topo = make_topology("dsn", 16)
            routing = DuatoAdaptiveRouting(topo)
            adapter = AdaptiveEscapeAdapter(routing, cfg.num_vcs, np.random.default_rng(0))
            pattern = make_pattern("uniform", topo.n * cfg.hosts_per_switch)
            return NetworkSimulator(topo, adapter, pattern, 4.0, cfg).run()

        monkeypatch.setenv("REPRO_CACHE", "off")
        cold = run()
        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        run()  # populate both tiers
        cache.clear_cache()
        warm = run()  # rehydrated from disk
        assert cold.latencies_ns == warm.latencies_ns
        assert cold.hop_counts == warm.hop_counts
        assert cold.delivered_in_window_bits == warm.delivered_in_window_bits
        assert cold.generated_measured == warm.generated_measured


class TestSharedTable:
    def test_shortest_path_table_reused_across_call_sites(self):
        topo = make_topology("dsn", 32)
        from repro.routing.adaptive import DuatoAdaptiveRouting

        r1 = DuatoAdaptiveRouting(topo)
        r2 = DuatoAdaptiveRouting(topo)
        assert r1.table is r2.table
        assert r1.updown is r2.updown
        assert r1.table is cache.shortest_path_table(topo)

    def test_fresh_table_matches_cached(self):
        topo = DSNTopology(24)
        cached = cache.shortest_path_table(topo)
        fresh = ShortestPathTable(topo)
        p1, i1 = cached.next_hop_arrays()
        p2, i2 = fresh.next_hop_arrays()
        np.testing.assert_array_equal(p1, p2)
        np.testing.assert_array_equal(i1, i2)
