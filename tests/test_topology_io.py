"""Tests for topology JSON serialization."""

import json

import pytest

from repro.core import DSNTopology
from repro.topologies import (
    DLNRandomTopology,
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)


class TestRoundTrip:
    def test_dsn_round_trip(self, tmp_path):
        topo = DSNTopology(64)
        path = tmp_path / "dsn.json"
        save_topology(topo, path)
        back = load_topology(path)
        assert back.links == topo.links
        assert back.n == topo.n
        assert back.name == topo.name

    def test_random_baseline_pinning(self, tmp_path):
        """The point of the format: persist the exact random baseline."""
        topo = DLNRandomTopology(64, seed=123)
        path = tmp_path / "rand.json"
        save_topology(topo, path)
        assert load_topology(path).links == topo.links

    def test_dict_round_trip_preserves_classes(self):
        topo = DSNTopology(32)
        back = topology_from_dict(topology_to_dict(topo))
        from repro.topologies import LinkClass

        assert len(back.links_of_class(LinkClass.SHORTCUT)) == len(
            topo.links_of_class(LinkClass.SHORTCUT)
        )


class TestIntegrity:
    def test_checksum_detects_tampering(self, tmp_path):
        topo = DSNTopology(32)
        path = tmp_path / "t.json"
        save_topology(topo, path)
        data = json.loads(path.read_text())
        data["links"][0][1] = 5  # rewire a link
        with pytest.raises(ValueError, match="checksum"):
            topology_from_dict(data)

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            topology_from_dict({"format": "something-else"})

    def test_missing_checksum_tolerated(self):
        topo = DSNTopology(32)
        data = topology_to_dict(topo)
        del data["sha256"]
        assert topology_from_dict(data).n == 32
