"""Tests for the event queue and port primitives."""

import pytest

from repro.sim import EventQueue, OutPort, Packet


class TestEventQueue:
    def test_time_order(self):
        eq = EventQueue()
        log = []
        eq.schedule(5.0, log.append, "b")
        eq.schedule(1.0, log.append, "a")
        eq.schedule(9.0, log.append, "c")
        eq.run(until=10.0)
        assert log == ["a", "b", "c"]

    def test_fifo_at_equal_times(self):
        eq = EventQueue()
        log = []
        for i in range(5):
            eq.schedule(1.0, log.append, i)
        eq.run(until=2.0)
        assert log == [0, 1, 2, 3, 4]

    def test_run_until_stops(self):
        eq = EventQueue()
        log = []
        eq.schedule(1.0, log.append, "x")
        eq.schedule(5.0, log.append, "y")
        eq.run(until=3.0)
        assert log == ["x"]
        assert eq.now == 3.0
        eq.run(until=6.0)
        assert log == ["x", "y"]

    def test_cascading_events(self):
        eq = EventQueue()
        log = []

        def fire(k):
            log.append(k)
            if k < 3:
                eq.schedule_in(1.0, fire, k + 1)

        eq.schedule(0.0, fire, 0)
        eq.run(until=10.0)
        assert log == [0, 1, 2, 3]

    def test_rejects_past_schedule(self):
        eq = EventQueue()
        eq.schedule(5.0, lambda: None)
        eq.run(until=6.0)
        with pytest.raises(ValueError):
            eq.schedule(1.0, lambda: None)

    def test_peek(self):
        eq = EventQueue()
        assert eq.peek_time() is None
        eq.schedule(2.0, lambda: None)
        assert eq.peek_time() == 2.0


def _mk_packet(pid=0):
    return Packet(pid, 0, 1, 0, 1, 33, 0.0)


class TestOutPort:
    def test_reserve_release(self):
        p = OutPort(("sw", 0, 1), 4)
        pkt = _mk_packet()
        p.reserve(2, pkt)
        assert p.free_vcs(range(4)) == [0, 1, 3]
        p.release(2, pkt)
        assert p.free_vcs(range(4)) == [0, 1, 2, 3]

    def test_double_reserve_fails(self):
        p = OutPort(("sw", 0, 1), 2)
        p.reserve(0, _mk_packet(1))
        with pytest.raises(AssertionError):
            p.reserve(0, _mk_packet(2))

    def test_release_wrong_owner_fails(self):
        p = OutPort(("sw", 0, 1), 2)
        p.reserve(0, _mk_packet(1))
        with pytest.raises(AssertionError):
            p.release(0, _mk_packet(2))

    def test_free_vcs_subset(self):
        p = OutPort(("sw", 0, 1), 4)
        p.reserve(1, _mk_packet())
        assert p.free_vcs((0, 1)) == [0]


class TestPacket:
    def test_latency_requires_delivery(self):
        pkt = _mk_packet()
        with pytest.raises(ValueError):
            _ = pkt.latency_ns
        pkt.time_delivered = 100.0
        assert pkt.latency_ns == 100.0

    def test_repr(self):
        assert "Packet 0" in repr(_mk_packet())
