"""Tests for the event queue and port primitives."""

import pytest

from repro.sim import CycleEventQueue, EventQueue, OutPort, Packet


class TestEventQueue:
    def test_time_order(self):
        eq = EventQueue()
        log = []
        eq.schedule(5.0, log.append, "b")
        eq.schedule(1.0, log.append, "a")
        eq.schedule(9.0, log.append, "c")
        eq.run(until=10.0)
        assert log == ["a", "b", "c"]

    def test_fifo_at_equal_times(self):
        eq = EventQueue()
        log = []
        for i in range(5):
            eq.schedule(1.0, log.append, i)
        eq.run(until=2.0)
        assert log == [0, 1, 2, 3, 4]

    def test_run_until_stops(self):
        eq = EventQueue()
        log = []
        eq.schedule(1.0, log.append, "x")
        eq.schedule(5.0, log.append, "y")
        eq.run(until=3.0)
        assert log == ["x"]
        assert eq.now == 3.0
        eq.run(until=6.0)
        assert log == ["x", "y"]

    def test_cascading_events(self):
        eq = EventQueue()
        log = []

        def fire(k):
            log.append(k)
            if k < 3:
                eq.schedule_in(1.0, fire, k + 1)

        eq.schedule(0.0, fire, 0)
        eq.run(until=10.0)
        assert log == [0, 1, 2, 3]

    def test_rejects_past_schedule(self):
        eq = EventQueue()
        eq.schedule(5.0, lambda: None)
        eq.run(until=6.0)
        with pytest.raises(ValueError):
            eq.schedule(1.0, lambda: None)

    def test_peek(self):
        eq = EventQueue()
        assert eq.peek_time() is None
        eq.schedule(2.0, lambda: None)
        assert eq.peek_time() == 2.0


def _mk_packet(pid=0):
    return Packet(pid, 0, 1, 0, 1, 33, 0.0)


class TestOutPort:
    def test_reserve_release(self):
        p = OutPort(("sw", 0, 1), 4)
        pkt = _mk_packet()
        p.reserve(2, pkt)
        assert p.free_vcs(range(4)) == [0, 1, 3]
        p.release(2, pkt)
        assert p.free_vcs(range(4)) == [0, 1, 2, 3]

    def test_double_reserve_fails(self):
        p = OutPort(("sw", 0, 1), 2)
        p.reserve(0, _mk_packet(1))
        with pytest.raises(AssertionError):
            p.reserve(0, _mk_packet(2))

    def test_release_wrong_owner_fails(self):
        p = OutPort(("sw", 0, 1), 2)
        p.reserve(0, _mk_packet(1))
        with pytest.raises(AssertionError):
            p.release(0, _mk_packet(2))

    def test_free_vcs_subset(self):
        p = OutPort(("sw", 0, 1), 4)
        p.reserve(1, _mk_packet())
        assert p.free_vcs((0, 1)) == [0]


class TestPacket:
    def test_latency_requires_delivery(self):
        pkt = _mk_packet()
        with pytest.raises(ValueError):
            _ = pkt.latency_ns
        pkt.time_delivered = 100.0
        assert pkt.latency_ns == 100.0

    def test_repr(self):
        assert "Packet 0" in repr(_mk_packet())


class TestCycleEventQueue:
    """The integer-cycle heap behind the flit simulator's event loop."""

    def test_payloads_pop_in_cycle_then_fifo_order(self):
        q = CycleEventQueue()
        q.schedule(7, "late")
        q.schedule(3, "first")
        q.schedule(3, "second")
        assert q.payloads_pending == 3
        assert q.pop_due(3) == ["first", "second"]
        assert q.payloads_pending == 1
        assert q.pop_due(10) == ["late"]
        assert q.payloads_pending == 0

    def test_wakes_are_deduplicated_per_cycle(self):
        q = CycleEventQueue()
        for _ in range(5):
            q.wake(12)
        assert len(q) == 1
        q.wake(13)
        assert len(q) == 2
        # A consumed wake cycle can be re-armed afterwards.
        assert q.pop_due(12) == []
        q.wake(12)
        assert q.peek(0) == 12

    def test_pop_due_consumes_wakes_silently(self):
        q = CycleEventQueue()
        q.wake(4)
        q.schedule(4, "payload")
        assert q.pop_due(4) == ["payload"]
        assert len(q) == 0

    def test_peek_skips_stale_wakes(self):
        q = CycleEventQueue()
        q.wake(2)
        q.wake(5)
        q.wake(9)
        assert q.peek(6) == 9  # 2 and 5 dropped lazily
        assert len(q) == 1

    def test_peek_does_not_consume_future_events(self):
        q = CycleEventQueue()
        q.schedule(8, "x")
        assert q.peek(0) == 8
        assert q.peek(8) == 8
        assert q.pop_due(8) == ["x"]

    def test_jumped_payload_is_an_error(self):
        q = CycleEventQueue()
        q.schedule(5, "must-not-skip")
        with pytest.raises(RuntimeError, match="jumped"):
            q.peek(6)

    def test_empty_queue(self):
        q = CycleEventQueue()
        assert q.peek(0) is None
        assert q.pop_due(100) == []
        assert len(q) == 0
