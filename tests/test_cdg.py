"""Tests for channel-dependency-graph deadlock verification (Theorem 3)."""

import pytest

from repro.core import DSNETopology, DSNTopology, DSNVTopology, dsn_route, dsn_route_extended
from repro.routing import assert_deadlock_free, build_cdg, find_cycle, route_channels


class TestPrimitives:
    def test_find_cycle_on_known_cycle(self):
        a, b, c = (0, 1, "x"), (1, 2, "x"), (2, 0, "x")
        cdg = build_cdg([[a, b], [b, c], [c, a]])
        cycle = find_cycle(cdg)
        assert cycle is not None
        assert set(cycle) <= {a, b, c}

    def test_acyclic_chain(self):
        chain = [(i, i + 1, "x") for i in range(5)]
        assert find_cycle(build_cdg([chain])) is None

    def test_single_channel_route(self):
        cdg = build_cdg([[(0, 1, "x")]])
        assert cdg.number_of_nodes() == 1

    def test_assert_raises_with_cycle(self):
        a, b = (0, 1, "x"), (1, 0, "x")
        with pytest.raises(AssertionError, match="cycle"):
            assert_deadlock_free([[a, b], [b, a]])


class TestTheorem3:
    """Computational verification of Theorem 3 (experiment E11)."""

    @pytest.mark.parametrize("n", [64, 100, 112])
    def test_extended_routing_acyclic(self, n):
        topo = DSNETopology(n)
        routes = [
            route_channels(dsn_route_extended(topo, s, t))
            for s in range(n)
            for t in range(n)
            if s != t
        ]
        assert_deadlock_free(routes)

    def test_dsnv_virtual_channel_form_acyclic(self):
        """DSN-V: same discipline as virtual channels on ring links."""
        topo = DSNVTopology(64)
        # VC name = hop kind; physical link shared (encoded in src/dst)
        routes = [
            route_channels(dsn_route_extended(topo, s, t))
            for s in range(64)
            for t in range(64)
            if s != t
        ]
        assert_deadlock_free(routes)

    def test_basic_routing_has_cycles(self):
        """The motivation for Section V-A: basic DSN-Routing's shared use
        of pred channels in PRE-WORK and FINISH closes dependency loops."""
        topo = DSNTopology(64)
        routes = [
            route_channels(dsn_route(topo, s, t))
            for s in range(64)
            for t in range(64)
            if s != t
        ]
        assert find_cycle(build_cdg(routes)) is not None

    def test_custom_vc_mapping(self):
        """route_channels honors a custom VC naming function."""
        topo = DSNETopology(64)
        r = dsn_route_extended(topo, 0, 33)
        chans = route_channels(r, vc_of=lambda h: f"vc{h.phase.value}")
        assert all(c[2].startswith("vc") for c in chans)
