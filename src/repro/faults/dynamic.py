"""Live rerouting: adapter factories and a fault-run convenience.

The flit-level simulator reacts to a mid-run link failure by rebuilding
its routing adapter on the survivor graph. It cannot do that alone --
adapters are built from a *routing* (Duato adaptive + up*/down* escape,
DSN-Routing, ...) that itself derives tables from a topology -- so the
simulator takes an ``adapter_factory``: a callable mapping a survivor
:class:`~repro.topologies.base.Topology` to a fresh
:class:`~repro.sim.adapters.RoutingAdapter`. This module provides the
standard factories plus :func:`run_with_faults`, the one-call way to
run a fault schedule.

Every factory routes table derivation through :mod:`repro.cache`.
Because a survivor topology's edge list differs from the intact
network's, its fingerprint differs too, and the cache *derives* fresh
tables rather than serving the intact network's -- stale next-hop
tables for a degraded graph are impossible by construction (tested in
``tests/test_faults.py``).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro import telemetry
from repro.faults.schedule import FaultSchedule
from repro.topologies.base import Topology

# The sim/routing imports stay inside the functions: this module is
# re-exported by ``repro.faults``, which ``repro.analysis.faults`` (and
# through it ``repro.routing.table``) imports at module level -- pulling
# ``repro.routing.adaptive`` in here at import time would close that
# loop into a circular import.
if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.adapters import RoutingAdapter
    from repro.sim.config import SimConfig
    from repro.sim.metrics import SimResult
    from repro.traffic.patterns import TrafficPattern

__all__ = [
    "adaptive_escape_factory",
    "dsn_custom_factory",
    "run_with_faults",
]

AdapterFactory = Callable[[Topology], "RoutingAdapter"]


def adaptive_escape_factory(
    config: SimConfig | None = None,
    seed: int = 0,
    escape_only: bool = False,
) -> AdapterFactory:
    """Factory for the paper's reference routing: minimal-adaptive VCs
    over an up*/down* escape VC (Duato's methodology, Section VII-A).

    Each call of the returned factory re-derives shortest-path and
    up*/down* tables on the topology it is given and reseeds the
    adaptive tie-break RNG with ``seed``, so a rebuild after a fault is
    deterministic: same survivor graph, same seed, same adapter.
    """
    from repro.routing.adaptive import DuatoAdaptiveRouting
    from repro.sim.adapters import AdaptiveEscapeAdapter
    from repro.sim.config import SimConfig

    cfg = config or SimConfig()

    def build(topo: Topology) -> RoutingAdapter:
        return AdaptiveEscapeAdapter(
            DuatoAdaptiveRouting(topo),
            cfg.num_vcs,
            np.random.default_rng(seed),
            escape_only=escape_only,
        )

    return build


def dsn_custom_factory(
    config: SimConfig | None = None,
    seed: int = 0,
) -> AdapterFactory:
    """Factory for the DSN custom routing: minimal-adaptive VCs over
    the deadlock-free extended DSN-Routing escape (paper Section V).

    Note the DSN escape walks tree/shortcut link classes; a survivor
    graph keeps every surviving link's class, so the rebuilt escape is
    well-defined as long as the tree stays connected -- prefer
    :func:`adaptive_escape_factory` for aggressive fault fractions.
    """
    from repro.sim.adapters import MinimalCustomEscapeAdapter
    from repro.sim.config import SimConfig

    cfg = config or SimConfig()

    def build(topo: Topology) -> RoutingAdapter:
        return MinimalCustomEscapeAdapter(
            topo, cfg.num_vcs, np.random.default_rng(seed)
        )

    return build


def run_with_faults(
    topo: Topology,
    schedule: FaultSchedule,
    pattern: TrafficPattern | str = "uniform",
    offered_gbps: float = 2.0,
    config: SimConfig | None = None,
    factory: AdapterFactory | None = None,
    buffer_flits: int | None = None,
) -> SimResult:
    """Run the flit simulator under a timed fault schedule.

    Builds the initial adapter with ``factory`` (default
    :func:`adaptive_escape_factory`) on the intact ``topo``, hands the
    same factory to the engine for post-fault rebuilds, and returns the
    :class:`~repro.sim.metrics.SimResult` -- whose ``fault_records``,
    ``dropped_fraction`` and ``post_fault_accepted_gbps`` carry the
    resilience story. Deterministic for fixed inputs: the engine is
    single-process, so ``REPRO_WORKERS`` cannot change the outcome.
    """
    from repro.sim.config import SimConfig
    from repro.sim.flitsim import FlitLevelSimulator
    from repro.traffic.patterns import make_pattern

    cfg = config or SimConfig()
    if isinstance(pattern, str):
        pattern = make_pattern(pattern, topo.n * cfg.hosts_per_switch)
    factory = factory or adaptive_escape_factory(cfg)
    with telemetry.span("faults.run_with_faults"):
        sim = FlitLevelSimulator(
            topo,
            factory(topo),
            pattern,
            offered_gbps,
            config=cfg,
            buffer_flits=buffer_flits,
            fault_schedule=schedule,
            adapter_factory=factory,
        )
        result = sim.run()
    for rec in result.fault_records:
        if math.isfinite(rec.recovery_ns):
            telemetry.observe("faults.recovery_ns", rec.recovery_ns, edges=(
                1e2, 1e3, 1e4, 1e5, 1e6, 1e7))
    return result
