"""Timed fault schedules: *when* the failures of a run happen.

A :class:`FaultSchedule` is an immutable, time-sorted sequence of
:class:`FaultEvent` -- each a simulation timestamp plus a
:class:`~repro.faults.models.FaultSet` that becomes true at that
instant. The flit-level simulator consumes schedules directly
(``FlitLevelSimulator(..., fault_schedule=...)``): at each event it
drops the in-flight flits on the dead links, rebuilds the routing
tables on the survivor graph and reroutes everything still in the
network (see :mod:`repro.faults.dynamic` and ``docs/resilience.md``).

Builders here compose the static models into schedules. All of them
inherit the models' determinism: a schedule is a pure function of
``(topology, parameters, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.faults.models import FaultSet
from repro.topologies.base import Topology
from repro.util import make_rng, sample_indices

__all__ = ["FaultEvent", "FaultSchedule", "random_link_schedule"]


@dataclass(frozen=True)
class FaultEvent:
    """One failure instant: at ``time_ns``, ``faults`` become true."""

    time_ns: float
    faults: FaultSet

    def __post_init__(self) -> None:
        if self.time_ns < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time_ns}")


class FaultSchedule:
    """Immutable time-sorted sequence of fault events.

    Events sharing a timestamp are merged in order, so the simulator
    applies at most one table rebuild per instant.
    """

    def __init__(self, events: Iterable[FaultEvent]):
        self._events = tuple(sorted(events, key=lambda e: e.time_ns))

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def cumulative(self) -> FaultSet:
        """Every link/switch that is dead once the schedule completes."""
        total = FaultSet(label="cum")
        for e in self._events:
            total = total.union(e.faults)
        return FaultSet(total.dead_links, total.dead_switches, label="cum")

    def final_topology(self, topo: Topology) -> Topology:
        """The survivor graph after the last event."""
        return self.cumulative().apply(topo)

    def validate(self, topo: Topology) -> None:
        """Check every event kills existing elements, no link twice,
        and the final survivor stays connected (the regime in which
        mid-run rerouting is well-defined)."""
        seen: set[tuple[int, int]] = set()
        for e in self._events:
            for u, v in e.faults.dead_links:
                if not topo.has_link(u, v):
                    raise ValueError(f"event at {e.time_ns}ns kills nonexistent link ({u}, {v})")
                if (u, v) in seen:
                    raise ValueError(f"link ({u}, {v}) fails in two events")
                seen.add((u, v))
        if not self.final_topology(topo).is_connected():
            raise ValueError(
                "schedule disconnects the network; mid-run rerouting is undefined"
            )


def random_link_schedule(
    topo: Topology,
    times_ns: Iterable[float],
    fraction_per_event: float,
    seed: int | np.random.Generator | None = 0,
    require_connected: bool = True,
) -> FaultSchedule:
    """Uniform link failures split across timed events, disjointly.

    Each event kills ``round(fraction_per_event * num_links)`` links
    sampled (without replacement, via :func:`repro.util.sample_indices`)
    from the links still alive before it, so no link dies twice. With
    ``require_connected`` (the default) the draw is retried -- with
    fresh, still-deterministic randomness -- until the *final* survivor
    graph is connected, raising after 64 attempts.
    """
    times = sorted(float(t) for t in times_ns)
    rng = make_rng(seed)
    k = round(fraction_per_event * topo.num_links)
    for _ in range(64):
        alive = list(range(topo.num_links))
        events = []
        for i, t in enumerate(times):
            idx = sample_indices(len(alive), k, rng)
            chosen = [alive[int(j)] for j in idx]
            alive = [j for j in alive if j not in set(chosen)]
            dead = tuple(topo.links[j].endpoints() for j in chosen)
            events.append(FaultEvent(t, FaultSet(dead_links=dead, label=f"t{i}")))
        schedule = FaultSchedule(events)
        if not require_connected or schedule.final_topology(topo).is_connected():
            return schedule
    raise ValueError(
        f"could not draw a connected {fraction_per_event:.0%}/event schedule "
        f"for {topo.name} in 64 attempts"
    )
