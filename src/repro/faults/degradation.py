"""Degradation curves: metric decay of the paper trio under link loss.

The `python -m repro faults` experiment. For each topology kind in the
paper's Fig. 7-10 comparison set (torus / RANDOM / DSN) and each fail
fraction in the sweep, it injects :func:`repro.faults.models.sample_link_faults`
trials and reports:

* ``connected_fraction`` -- how often the survivor graph holds together;
* ``mean_diameter`` / ``mean_aspl`` -- hop metrics over connected trials;
* ``throughput_retention`` -- the uniform-traffic capacity proxy
  ``theta = 2 * links / (n * aspl)`` of the survivor relative to the
  intact network (every delivered packet occupies ``aspl`` of the
  ``2 * links`` directed channels on average, so ``theta`` bounds the
  per-node injection rate; the ratio cancels the units).

Metrics always go through :func:`repro.analysis.blocked.streaming_hop_stats`,
the O(n)-memory blocked bit-parallel BFS -- the curves run at n = 4096
and beyond without ever allocating an n x n matrix, and the statistics
are bit-identical for every ``REPRO_BFS_BLOCK`` and worker count.

Determinism: trial ``t`` of (kind, fraction) draws its fault set from a
``SeedSequence([seed, kind_index, fraction_index, t])``-derived stream,
so results are independent of how trials are distributed over
``REPRO_WORKERS`` processes (``parallel_map`` preserves input order).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro import store
from repro.analysis.blocked import streaming_hop_stats
from repro.faults.models import sample_link_faults
from repro.util import format_table

__all__ = [
    "DegradationPoint",
    "DEFAULT_FRACTIONS",
    "default_trials",
    "degradation_point",
    "degradation_curves",
    "degradation_artifact",
]

#: Fail fractions of the default sweep (0 anchors the intact baseline).
DEFAULT_FRACTIONS = (0.0, 0.01, 0.02, 0.05, 0.10)

_DEFAULT_TRIALS = 10


def default_trials() -> int:
    """Trials per sweep point: ``REPRO_FAULT_TRIALS`` or 10.

    A knob rather than an argument-only default so CI and batch jobs
    can cheapen/deepen every fault sweep without touching call sites
    (same spirit as ``REPRO_WORKERS``); results stay deterministic for
    a fixed value because trial seeds depend only on the trial index.
    """
    raw = os.environ.get("REPRO_FAULT_TRIALS", "").strip()
    try:
        trials = int(raw) if raw else _DEFAULT_TRIALS
    except ValueError:
        return _DEFAULT_TRIALS
    return max(1, trials)


@dataclass(frozen=True)
class DegradationPoint:
    """One (topology, fail fraction) point of a degradation curve."""

    name: str
    kind: str
    n: int
    fail_fraction: float
    trials: int
    connected_fraction: float
    mean_diameter: float  #: over connected trials (nan if none)
    mean_aspl: float  #: over connected trials (nan if none)
    #: mean survivor capacity proxy relative to the intact network,
    #: over connected trials (nan if none).
    throughput_retention: float

    def row(self) -> list:
        def fmt(x: float, nd: int) -> object:
            return round(x, nd) if x == x else "-"

        return [
            self.name,
            self.fail_fraction,
            round(self.connected_fraction, 3),
            fmt(self.mean_diameter, 2),
            fmt(self.mean_aspl, 3),
            fmt(self.throughput_retention, 3),
        ]


def _trial(args: tuple) -> tuple[bool, float, float, float]:
    """One fault trial; module-level for process-pool pickling.

    ``args`` is ``(kind, n, topo_seed, fraction, trial_entropy)``;
    returns ``(connected, diameter, aspl, links_kept_fraction)``. The
    topology is rebuilt in the worker (memoized per process) so only
    scalars cross the IPC boundary. Each trial is deterministic in its
    args (the entropy key fully seeds its RNG), so the result is
    store-backed (:mod:`repro.store`): resumed or repeated sweeps skip
    completed trials.
    """

    def compute() -> list:
        from repro.experiments.sweeps import make_topology

        kind, n, topo_seed, fraction, entropy = args
        topo = make_topology(kind, n, seed=topo_seed)
        rng = np.random.default_rng(np.random.SeedSequence(list(entropy)))
        faults = sample_link_faults(topo, fraction, seed=rng)
        survivor = faults.apply(topo)
        if not survivor.is_connected():
            return [False, float("nan"), float("nan"), float("nan")]
        # Streaming engine: O(n) memory, exact, block/worker invariant.
        # Workers=1 inside the trial -- the fan-out is over trials.
        stats = streaming_hop_stats(survivor, workers=1)
        kept = survivor.num_links / topo.num_links
        return [True, float(stats.diameter), stats.aspl, kept]

    if not store.store_enabled():
        return tuple(compute())
    kind, n, topo_seed, fraction, entropy = args
    key = store.run_key(
        "fault_trial",
        {
            "kind": kind,
            "n": int(n),
            "topo_seed": int(topo_seed),
            "fraction": float(fraction),
            "entropy": [int(e) for e in entropy],
        },
    )
    connected, diameter, aspl, kept = store.cached_value(key, compute)
    return bool(connected), float(diameter), float(aspl), float(kept)


def _entropy(seed: int, kind_idx: int, frac_idx: int, trial: int) -> tuple:
    """Stable per-trial SeedSequence entropy key."""
    return (seed, kind_idx, frac_idx, trial)


def degradation_point(
    kind: str,
    n: int,
    fail_fraction: float,
    trials: int | None = None,
    seed: int = 0,
    kind_idx: int = 0,
    frac_idx: int = 0,
    workers: int | None = None,
) -> DegradationPoint:
    """Aggregate ``trials`` fault trials at one (kind, fraction) point."""
    from repro.experiments.sweeps import make_topology

    trials = default_trials() if trials is None else trials
    topo = make_topology(kind, n, seed=seed)
    base = streaming_hop_stats(topo, workers=workers)
    jobs = [
        (kind, n, seed, fail_fraction, _entropy(seed, kind_idx, frac_idx, t))
        for t in range(trials)
    ]
    # dedup_map: identical trial jobs collapse before dispatch, and the
    # store-backed _trial makes a killed sweep resume where it died.
    results = store.dedup_map(_trial, jobs, workers=workers)

    ok = [r for r in results if r[0]]
    diams = [r[1] for r in ok]
    aspls = [r[2] for r in ok]
    # theta_f / theta_0 = (links_f * aspl_0) / (links_0 * aspl_f)
    retention = [r[3] * base.aspl / r[2] for r in ok]
    return DegradationPoint(
        name=topo.name,
        kind=kind,
        n=n,
        fail_fraction=fail_fraction,
        trials=trials,
        connected_fraction=len(ok) / trials,
        mean_diameter=float(np.mean(diams)) if diams else float("nan"),
        mean_aspl=float(np.mean(aspls)) if aspls else float("nan"),
        throughput_retention=float(np.mean(retention)) if retention else float("nan"),
    )


def degradation_curves(
    n: int = 1024,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    trials: int | None = None,
    seed: int = 0,
    kinds: tuple[str, ...] | None = None,
    workers: int | None = None,
) -> tuple[str, list[DegradationPoint]]:
    """Full degradation sweep: kinds x fractions, formatted + raw."""
    from repro.experiments.sweeps import PAPER_TRIO

    trials = default_trials() if trials is None else trials
    kinds = tuple(kinds) if kinds else PAPER_TRIO
    points: list[DegradationPoint] = []
    for ki, kind in enumerate(kinds):
        for fi, frac in enumerate(fractions):
            points.append(
                degradation_point(
                    kind, n, frac, trials=trials, seed=seed,
                    kind_idx=ki, frac_idx=fi, workers=workers,
                )
            )
    table = format_table(
        ["topology", "fail_frac", "P(connected)", "diameter", "aspl", "thr_retention"],
        [p.row() for p in points],
        title=f"Degradation curves at n={n} ({trials} trials/point, streaming metrics)",
    )
    return table, points


def degradation_artifact(
    path: str | Path,
    n: int = 1024,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    trials: int | None = None,
    seed: int = 0,
    kinds: tuple[str, ...] | None = None,
    workers: int | None = None,
) -> tuple[str, list[DegradationPoint]]:
    """Run :func:`degradation_curves` and write the JSON artifact."""
    trials = default_trials() if trials is None else trials
    table, points = degradation_curves(
        n=n, fractions=fractions, trials=trials, seed=seed,
        kinds=kinds, workers=workers,
    )
    payload = {
        "experiment": "degradation_curves",
        "n": n,
        "fractions": list(fractions),
        "trials": trials,
        "seed": seed,
        "engine": "streaming_hop_stats",
        "points": [asdict(p) for p in points],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return table, points
