"""Fault injection: deterministic fault models, timed schedules and
live rerouting in the flit-level simulator.

See ``docs/resilience.md`` for the full story. Quick use::

    from repro.core import DSNTopology
    from repro.faults import FaultSet, random_link_schedule, run_with_faults

    topo = DSNTopology(64)
    schedule = random_link_schedule(
        topo, times_ns=[4000.0, 8000.0], fraction_per_event=0.02, seed=7)
    result = run_with_faults(topo, schedule, offered_gbps=2.0)
    print(result.dropped_fraction, result.fault_records)
"""

from repro.faults.degradation import (
    DEFAULT_FRACTIONS,
    DegradationPoint,
    default_trials,
    degradation_artifact,
    degradation_curves,
    degradation_point,
)
from repro.faults.dynamic import (
    adaptive_escape_factory,
    dsn_custom_factory,
    run_with_faults,
)
from repro.faults.models import (
    FaultSet,
    bernoulli_link_faults,
    bernoulli_switch_faults,
    induced_survivor,
    sample_link_faults,
)
from repro.faults.percolation import (
    DEFAULT_PERC_FRACTIONS,
    PercolationPoint,
    link_field,
    percolation_artifact,
    percolation_sweep,
    percolation_trial,
    slot_tables,
)
from repro.faults.schedule import FaultEvent, FaultSchedule, random_link_schedule
from repro.faults.spatial import cabinet_burst_faults, cabinet_faults

__all__ = [
    "FaultSet",
    "FaultEvent",
    "FaultSchedule",
    "bernoulli_link_faults",
    "bernoulli_switch_faults",
    "sample_link_faults",
    "induced_survivor",
    "cabinet_burst_faults",
    "cabinet_faults",
    "random_link_schedule",
    "adaptive_escape_factory",
    "dsn_custom_factory",
    "run_with_faults",
    "DegradationPoint",
    "DEFAULT_FRACTIONS",
    "default_trials",
    "degradation_point",
    "degradation_curves",
    "degradation_artifact",
    "PercolationPoint",
    "DEFAULT_PERC_FRACTIONS",
    "link_field",
    "slot_tables",
    "percolation_trial",
    "percolation_sweep",
    "percolation_artifact",
]
