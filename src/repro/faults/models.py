"""Deterministic fault models: which links/switches fail, and why.

The paper motivates low-degree topologies partly by "their simple
management mechanisms for faults" (Section I); the related small-world
fault-tolerance literature (Demichev et al., arXiv:1312.0510) shows
that *degradation under failure* is where small-world regular networks
differentiate. This module is the single place fault sets come from:

* :func:`bernoulli_link_faults` / :func:`bernoulli_switch_faults` --
  i.i.d. failures with probability ``p`` per element;
* :func:`sample_link_faults` -- exactly ``round(fraction * L)`` links,
  uniform without replacement (the classic sweep knob);
* :func:`repro.faults.spatial.cabinet_burst_faults` -- spatially
  correlated bursts driven by the cabinet floorplan coordinates.

Every model is a pure function of ``(topology, parameters, rng
state)``: links are always visited in the topology's canonical sorted
link order and sampling goes through :func:`repro.util.rng` helpers,
so the same seed yields the same :class:`FaultSet` on every machine,
worker count and block size. A :class:`FaultSet` is itself immutable
and hashable; applying it produces a *new* :class:`Topology` whose
edge list (and therefore :func:`repro.cache.topology_fingerprint`)
differs from the intact network, which is what guarantees the artifact
cache can never serve stale routing tables for a degraded graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topologies.base import Link, Topology
from repro.util import make_rng, sample_indices

__all__ = [
    "FaultSet",
    "bernoulli_link_faults",
    "bernoulli_switch_faults",
    "sample_link_faults",
    "induced_survivor",
]


@dataclass(frozen=True)
class FaultSet:
    """An immutable set of failed links and switches.

    ``dead_links`` holds canonical ``(u, v)`` endpoint pairs with
    ``u < v``, sorted; ``dead_switches`` is sorted too. A failed switch
    implicitly fails every incident link (:meth:`apply` removes them),
    but the switch ids are kept so analysis can distinguish "isolated
    by link loss" from "the switch itself is gone".
    """

    dead_links: tuple[tuple[int, int], ...] = ()
    dead_switches: tuple[int, ...] = ()
    label: str = "faults"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "dead_links",
            tuple(sorted({(u, v) if u < v else (v, u) for u, v in self.dead_links})),
        )
        object.__setattr__(self, "dead_switches", tuple(sorted(set(self.dead_switches))))

    # ------------------------------------------------------------------
    @property
    def num_dead_links(self) -> int:
        return len(self.dead_links)

    @property
    def num_dead_switches(self) -> int:
        return len(self.dead_switches)

    def is_empty(self) -> bool:
        return not self.dead_links and not self.dead_switches

    def union(self, other: "FaultSet") -> "FaultSet":
        """Combined fault set (links and switches of both)."""
        return FaultSet(
            self.dead_links + other.dead_links,
            self.dead_switches + other.dead_switches,
            label=f"{self.label}+{other.label}",
        )

    def kills_link(self, u: int, v: int) -> bool:
        key = (u, v) if u < v else (v, u)
        dead = set(self.dead_links)
        return key in dead or u in self.dead_switches or v in self.dead_switches

    def dead_link_set(self, topo: Topology) -> set[tuple[int, int]]:
        """Every link of ``topo`` this fault set removes, as canonical
        endpoint pairs -- explicit link faults plus all links incident
        to a dead switch."""
        dead = set(self.dead_links)
        if self.dead_switches:
            gone = set(self.dead_switches)
            for link in topo.links:
                if link.u in gone or link.v in gone:
                    dead.add(link.endpoints())
        return dead

    def apply(self, topo: Topology) -> Topology:
        """Survivor topology: ``topo`` minus every dead link.

        All ``n`` switch ids are kept (a switch with no surviving link
        becomes isolated), so node identities -- and the simulator's
        host addressing -- are stable across fault application. The
        survivor's name embeds the fault label and count; its edge list
        differs from the intact network, so its topology fingerprint
        (and every cached routing artifact) is distinct by construction.
        """
        dead = self.dead_link_set(topo)
        for u, v in self.dead_links:
            if not topo.has_link(u, v):
                raise ValueError(f"fault set kills nonexistent link ({u}, {v}) of {topo.name}")
        for s in self.dead_switches:
            if not (0 <= s < topo.n):
                raise ValueError(f"fault set kills nonexistent switch {s} of {topo.name}")
        kept = [l for l in topo.links if l.endpoints() not in dead]
        return Topology(
            topo.n, kept, name=f"{topo.name}!{self.label}-{len(dead)}"
        )


def bernoulli_link_faults(
    topo: Topology,
    p: float,
    seed: int | np.random.Generator | None = 0,
    label: str = "bern",
) -> FaultSet:
    """Each link fails independently with probability ``p``.

    Deterministic: one uniform draw per link in canonical link order.
    """
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"failure probability must be in [0, 1], got {p}")
    rng = make_rng(seed)
    draws = rng.random(topo.num_links)
    dead = tuple(l.endpoints() for l, x in zip(topo.links, draws) if x < p)
    return FaultSet(dead_links=dead, label=label)


def bernoulli_switch_faults(
    topo: Topology,
    p: float,
    seed: int | np.random.Generator | None = 0,
    label: str = "swbern",
) -> FaultSet:
    """Each switch fails independently with probability ``p`` (taking
    all its incident links down with it)."""
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"failure probability must be in [0, 1], got {p}")
    rng = make_rng(seed)
    draws = rng.random(topo.n)
    return FaultSet(dead_switches=tuple(np.flatnonzero(draws < p).tolist()), label=label)


def sample_link_faults(
    topo: Topology,
    fail_fraction: float,
    seed: int | np.random.Generator | None = 0,
    label: str = "unif",
) -> FaultSet:
    """Exactly ``round(fail_fraction * num_links)`` links, uniform
    without replacement -- the sweep model of the degradation curves."""
    if not (0.0 <= fail_fraction < 1.0):
        raise ValueError(f"fail_fraction must be in [0, 1), got {fail_fraction}")
    rng = make_rng(seed)
    k = round(fail_fraction * topo.num_links)
    idx = sample_indices(topo.num_links, k, rng)
    links = topo.links
    return FaultSet(
        dead_links=tuple(links[int(i)].endpoints() for i in idx), label=label
    )


def induced_survivor(
    topo: Topology, faults: FaultSet
) -> tuple[Topology | None, np.ndarray]:
    """Survivor graph induced on the *live* switches, compactly relabeled.

    Returns ``(survivor, live_ids)`` where ``live_ids[i]`` is the
    original id of survivor node ``i``. Dead switches are excluded from
    the node set entirely (a dead switch should not count against
    connectivity); nodes isolated by pure link loss are kept, so a
    link-fault-only analysis still sees them as disconnected. Returns
    ``(None, live_ids)`` when fewer than two switches survive.
    """
    gone = set(faults.dead_switches)
    live = np.array([v for v in range(topo.n) if v not in gone], dtype=np.int64)
    if live.size < 2:
        return None, live
    remap = {int(old): new for new, old in enumerate(live.tolist())}
    dead = faults.dead_link_set(topo)
    kept = [
        Link(remap[l.u], remap[l.v], l.cls)
        for l in topo.links
        if l.endpoints() not in dead
    ]
    name = f"{topo.name}!{faults.label}-live{live.size}"
    return Topology(int(live.size), kept, name=name), live
