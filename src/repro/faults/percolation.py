"""Incremental link-percolation engine: resilience sweeps in one BFS.

The ``python -m repro percolation`` experiment, and the compute layer
behind the ROADMAP's stochastic-vs-regular resilience study (the
question Demichev et al., arXiv:1312.0510, ask of large small-world
fabrics): as links fail, which topology keeps a giant component, short
paths and routable pair coverage the longest?

**Coupled monotone sampling.** Each trial draws *one* uniform value per
link (:func:`link_field`, seeded by ``(seed, trial)`` only). A fail
fraction ``f`` is then a threshold: link ``e`` is dead iff
``field[e] < f``. Fault sets therefore *nest* across fractions -- the
survivor at ``f2 > f1`` is the survivor at ``f1`` minus a delta -- and
every fraction of a trial shares one seed-stable random field. This is
classic common-random-numbers coupling: per-fraction curves from the
same trial are perfectly correlated, so the *differences* between
fractions (where resilience lives) carry far less sampling noise than
independently-drawn points would.

**Fused multi-fraction BFS.** Nesting is also what makes the sweep
cheap. Instead of rebuilding a survivor CSR and re-running blocked BFS
per fraction, the incremental engine gives each fraction a group of
whole uint64 words in the bit-parallel frontier and applies the fault
delta as a per-edge *prefix mask*: with fractions ascending, edge ``e``
is alive for exactly the first ``t(e)`` groups where ``t(e)`` counts
fractions ``<= field[e]``, so its mask is all-ones on a word prefix and
zero after. One gather/OR-reduce pass then advances *all* fractions at
once, amortizing the per-level numpy dispatch (the cost floor of
:mod:`repro.analysis.blocked`) across the whole fraction axis. Source
chunks shrink so the working set stays within the blocked-BFS envelope
(``REPRO_BFS_BLOCK``) -- nothing n x n is ever allocated.

**Exact, engine-invariant metrics.** Per (trial, fraction) every
statistic is derived from integer counters (per-source reach sizes via
bit unpacking, per-level pair counts), so the fused engine is
*byte-identical* to the naive per-point path (sample faults, apply a
:class:`~repro.faults.models.FaultSet`, BFS the rebuilt survivor) for
every block size, worker count and ``REPRO_SHM`` setting -- the
``percolation_sweep_speedup`` bench gate pins all of it. Disconnection
is expected here, not an error: metrics are defined over reachable
pairs, with largest-component and component-count tracking alongside.

Trials fan out through :func:`repro.store.dedup_map` with the slot
tables broadcast over shared memory, and each (topology, trial-seed,
fraction) point is store-backed under engine-independent keys, so
killed sweeps resume and the naive baseline can validate stored
incremental results byte-for-byte.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro import store
from repro.analysis.blocked import default_block_rows, padded_neighbors, popcount_u64
from repro.faults.models import FaultSet
from repro.topologies.base import Topology
from repro.util import format_table
from repro.util import shm
from repro.util.parallel import parallel_map

__all__ = [
    "DEFAULT_PERC_FRACTIONS",
    "PercolationPoint",
    "link_field",
    "slot_tables",
    "percolation_trial",
    "percolation_sweep",
    "percolation_artifact",
]

#: Default fail-fraction grid (0 anchors the intact baseline; the tail
#: reaches past the paper trio's typical disconnection onset).
DEFAULT_PERC_FRACTIONS = (0.0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20)

#: Broadcast-name prefix for per-kind slot tables in sweep fan-out.
_BC_PREFIX = "perc"

_ENGINES = ("incremental", "naive")


# ----------------------------------------------------------------------
# coupled sampling + slot tables
# ----------------------------------------------------------------------
def link_field(num_links: int, seed: int, trial: int) -> np.ndarray:
    """The trial's uniform random field, one value per canonical link.

    Seeded by ``(seed, trial)`` only -- *not* by the fraction -- so all
    fractions of a trial threshold the same field (monotone coupling)
    and the field is independent of sweep composition and worker count.
    """
    rng = np.random.default_rng(np.random.SeedSequence([int(seed), int(trial)]))
    return rng.random(int(num_links))


def canonical_links(topo: Topology) -> np.ndarray:
    """Canonical ``(u, v)`` link endpoints, ``u < v``, sorted: the link
    indexing :func:`link_field` is defined over."""
    uv = np.array(
        [(l.u, l.v) if l.u < l.v else (l.v, l.u) for l in topo.links],
        dtype=np.int64,
    ).reshape(-1, 2)
    order = np.argsort(uv[:, 0] * topo.n + uv[:, 1], kind="stable")
    return uv[order]


def slot_tables(topo: Topology) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(pad, uv, eidx)`` for the fused kernel.

    ``pad`` is the blocked engine's padded neighbor table; ``uv`` the
    canonical link list; ``eidx[v, k]`` the canonical link index of the
    edge behind neighbor slot ``(v, k)``, with padded slots mapped to
    ``len(uv)`` (a sentinel whose mask is always all-ones -- harmless,
    because the pad row of the frontier is always zero).
    """
    n = topo.n
    pad = padded_neighbors(topo)
    uv = canonical_links(topo)
    ukey = uv[:, 0] * n + uv[:, 1]  # ascending by construction
    nbr = pad.astype(np.int64)
    node = np.arange(n, dtype=np.int64)[:, None]
    key = np.minimum(node, nbr) * n + np.maximum(node, nbr)
    pos = np.searchsorted(ukey, key)
    pos = np.clip(pos, 0, len(ukey) - 1) if len(ukey) else pos
    valid = (nbr < n) & (len(ukey) > 0)
    match = np.zeros_like(valid)
    if len(ukey):
        match = ukey[pos] == key
    eidx = np.where(valid & match, pos, len(ukey)).astype(np.int64)
    return pad, uv, eidx


# ----------------------------------------------------------------------
# fused multi-fraction kernel
# ----------------------------------------------------------------------
def _block_budget() -> int:
    """Raw block-row budget (``REPRO_BFS_BLOCK`` or 2048), *not*
    clamped to n: the fused kernel divides it across fraction groups,
    so clamping early would shred small-n sweeps into 64-source
    slivers."""
    return default_block_rows(1 << 30)


def _group_words(block_rows: int, num_fractions: int, n: int) -> int:
    """Frontier words per fraction group: the block-row budget divided
    across fractions (so the gather working set matches a plain
    blocked-BFS run at ``block_rows``), capped at the words ``n``
    sources can actually fill."""
    budget = max(1, block_rows // 64)
    need = (n + 63) // 64
    return max(1, min(budget // max(1, num_fractions), need))


def _prefix_masks(num_fractions: int, ws: int) -> np.ndarray:
    """``PREFIX[t]``: all-ones on the first ``t`` groups' words, zero
    after -- the per-edge aliveness mask under monotone coupling."""
    w = num_fractions * ws
    prefix = np.zeros((num_fractions + 1, w), dtype=np.uint64)
    for t in range(1, num_fractions + 1):
        prefix[t, : t * ws] = np.uint64(0xFFFFFFFFFFFFFFFF)
    return prefix


def _chunk_kernel(
    pad: np.ndarray,
    tslot: np.ndarray | None,
    n: int,
    num_fractions: int,
    ws: int,
    start: int,
    stop: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Fused BFS of sources ``[start, stop)`` across all fraction groups.

    ``tslot[v, k]`` is the alive-prefix length of neighbor slot
    ``(v, k)`` (``None`` = every slot alive, the naive-survivor path).
    Returns ``(counts, sizes)``: ``counts[level, j]`` ordered pairs of
    group ``j`` first reached at ``level`` (row 0 is zero), ``sizes[j,
    i]`` the component size (incl. self) of local source ``i`` under
    group ``j``'s fault set. All entries are exact integers, so results
    are invariant to chunking, blocking and worker count.
    """
    b = stop - start
    w = num_fractions * ws
    maxdeg = pad.shape[1]
    one = np.uint64(1)
    # One alive-mask per neighbor slot, built once per chunk; the
    # per-level pull below works slot-by-slot on (n, w) operands, so no
    # (n, maxdeg, w) temporary is ever allocated -- the masks are the
    # kernel's whole large-array footprint (the blocked-BFS envelope).
    pads = [np.ascontiguousarray(pad[:, k]) for k in range(maxdeg)]
    masks = None
    if tslot is not None:
        prefix = _prefix_masks(num_fractions, ws)
        masks = [prefix[tslot[:, k]] for k in range(maxdeg)]
    # Row n is the pad sentinel: always zero, so padded slots are no-ops.
    frontier = np.zeros((n + 1, w), dtype=np.uint64)
    visited = np.zeros((n, w), dtype=np.uint64)
    loc = np.arange(b)
    srcs = np.arange(start, stop)
    words = loc // 64
    bits = one << (loc % 64).astype(np.uint64)
    for j in range(num_fractions):
        frontier[srcs, j * ws + words] = bits
        visited[srcs, j * ws + words] = bits

    counts = [np.zeros(num_fractions, dtype=np.int64)]  # level 0: self pairs
    nxt = np.empty((n, w), dtype=np.uint64)
    lo = 0  # groups < lo have an empty frontier: retired from the pull
    while True:
        # Retired groups form a word *prefix* (fractions ascend, and
        # the intact/low-f groups usually converge first), so dropping
        # them is just an offset into the word axis -- their visited
        # words are frozen and never read again.
        off = lo * ws
        # Pull step, accumulated slot-by-slot: a node's next-frontier
        # word is the OR of its (alive) neighbors' current words.
        nv = nxt[:, off:]
        nv[:] = 0
        for k in range(maxdeg):
            tmp = frontier[:, off:][pads[k]]
            if masks is not None:
                tmp &= masks[k][:, off:]
            nv |= tmp
        new = nv & ~visited[:, off:]
        grp = np.zeros(num_fractions, dtype=np.int64)
        grp[lo:] = (
            popcount_u64(new)
            .sum(axis=0, dtype=np.int64)
            .reshape(num_fractions - lo, ws)
            .sum(axis=1)
        )
        if not grp.any():
            break
        visited[:, off:] |= new
        counts.append(grp)
        frontier[:n, off:] = new
        # An empty frontier stays empty: retire converged leading groups.
        while lo < num_fractions and grp[lo] == 0:
            lo += 1

    # Per-source component sizes: column-sum the visited bit matrix of
    # each group, in row chunks so the unpacked bytes stay bounded.
    sizes = np.zeros((num_fractions, b), dtype=np.int64)
    bit_cols = ws * 64
    step = max(1, (1 << 22) // bit_cols)
    for j in range(num_fractions):
        seg = visited[:, j * ws : (j + 1) * ws]
        for r0 in range(0, n, step):
            blk = np.unpackbits(
                np.ascontiguousarray(seg[r0 : r0 + step]).view(np.uint8),
                bitorder="little",
            ).reshape(-1, bit_cols)
            sizes[j] += blk.sum(axis=0, dtype=np.int64)[:b]
    return np.vstack(counts), sizes


def _chunk_job(args: tuple) -> tuple[np.ndarray, np.ndarray]:
    """One source chunk; module-level for pool pickling. The (large)
    ``pad``/``tslot`` tables arrive as broadcast arrays, not in the
    task tuple."""
    n, num_fractions, ws, start, stop, masked = args
    pad = shm.get(f"{_BC_PREFIX}.pad")
    tslot = shm.get(f"{_BC_PREFIX}.tslot") if masked else None
    return _chunk_kernel(pad, tslot, n, num_fractions, ws, start, stop)


def _run_chunks(
    pad: np.ndarray,
    tslot: np.ndarray | None,
    n: int,
    num_fractions: int,
    block_rows: int,
    workers: int | None,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """All source chunks of one fused BFS; returns ``(hist, sizes)``
    with ``hist[level, j]`` summed over chunks and ``sizes`` the
    per-chunk per-source size arrays (in source order)."""
    ws = _group_words(block_rows, num_fractions, n)
    span = ws * 64
    chunks = [
        (n, num_fractions, ws, s, min(s + span, n), tslot is not None)
        for s in range(0, n, span)
    ]
    broadcast = {f"{_BC_PREFIX}.pad": pad}
    if tslot is not None:
        broadcast[f"{_BC_PREFIX}.tslot"] = tslot
    parts = parallel_map(_chunk_job, chunks, workers=workers, broadcast=broadcast)
    depth = max(p[0].shape[0] for p in parts)
    hist = np.zeros((depth, num_fractions), dtype=np.int64)
    for counts, _sizes in parts:
        hist[: counts.shape[0]] += counts
    return hist, [p[1] for p in parts]


def _fraction_metrics(
    hist: np.ndarray,
    sizes: list[np.ndarray],
    field: np.ndarray,
    fractions: tuple[float, ...],
    n: int,
    num_links: int,
    j: int | None = None,
) -> list[dict]:
    """Exact per-fraction metric dicts from kernel outputs.

    ``j=None`` means ``hist``/``sizes`` carry all fractions (fused
    engine); an integer selects the single group of a naive run.
    """
    out = []
    for fi, frac in enumerate(fractions):
        g = fi if j is None else j
        levels = np.arange(hist.shape[0], dtype=np.int64)
        total_hops = int((levels * hist[:, g]).sum())
        nz = np.nonzero(hist[:, g])[0]
        diameter = int(nz[-1]) if len(nz) else 0
        chunk_sizes = [s[g] for s in sizes]
        lcc = max(int(s.max()) for s in chunk_sizes)
        reached = sum(int(s.sum()) for s in chunk_sizes)
        ncomp = int(round(sum(float((1.0 / s).sum()) for s in chunk_sizes)))
        reachable_pairs = reached - n
        dead = int((field < frac).sum())
        out.append(
            {
                "fraction": float(frac),
                "dead_links": dead,
                "kept_links": int(num_links - dead),
                "lcc": lcc,
                "ncomp": ncomp,
                "reachable_pairs": int(reachable_pairs),
                "total_hops": total_hops,
                "diameter": diameter,
                "aspl": (total_hops / reachable_pairs) if reachable_pairs > 0 else None,
            }
        )
    return out


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------
def _incremental_trial(
    topo: Topology,
    tables: tuple[np.ndarray, np.ndarray, np.ndarray],
    fractions: tuple[float, ...],
    seed: int,
    trial: int,
    block_rows: int,
    workers: int | None,
) -> list[dict]:
    """All fractions of one trial in a single fused BFS pass."""
    pad, uv, eidx = tables
    field = link_field(len(uv), seed, trial)
    fr = np.asarray(fractions, dtype=np.float64)
    if not np.all(np.diff(fr) > 0):
        raise ValueError("fractions must be strictly ascending")
    # t(e): how many fractions keep edge e alive (field >= f). The
    # eidx sentinel (padded slots) maps past the field to t = F.
    t_of_link = np.concatenate(
        [np.searchsorted(fr, field, side="right"), [len(fr)]]
    ).astype(np.int64)
    tslot = t_of_link[eidx]
    hist, sizes = _run_chunks(pad, tslot, topo.n, len(fr), block_rows, workers)
    return _fraction_metrics(hist, sizes, field, fractions, topo.n, len(uv))


def _naive_trial(
    topo: Topology,
    tables: tuple[np.ndarray, np.ndarray, np.ndarray],
    fractions: tuple[float, ...],
    seed: int,
    trial: int,
    block_rows: int,
    workers: int | None,
) -> list[dict]:
    """The baseline the bench gate compares against: per fraction,
    materialize the :class:`FaultSet`, rebuild the survivor topology
    and its CSR/neighbor table, and BFS it from scratch."""
    _pad, uv, _eidx = tables
    field = link_field(len(uv), seed, trial)
    out = []
    for fi, frac in enumerate(fractions):
        dead = uv[field < frac]
        faults = FaultSet(
            dead_links=tuple((int(u), int(v)) for u, v in dead), label="percolation"
        )
        survivor = faults.apply(topo)
        pad_s = padded_neighbors(survivor)
        hist, sizes = _run_chunks(pad_s, None, topo.n, 1, block_rows, workers)
        out.extend(
            _fraction_metrics(
                hist, sizes, field, (frac,), topo.n, len(uv), j=0
            )
        )
        out[-1]["fraction"] = float(frac)
    return out


def percolation_trial(
    kind: str,
    n: int,
    fractions: tuple[float, ...] = DEFAULT_PERC_FRACTIONS,
    seed: int = 0,
    trial: int = 0,
    topo_seed: int = 0,
    engine: str = "incremental",
    block_rows: int | None = None,
    workers: int | None = None,
) -> list[dict]:
    """One trial's per-fraction metric dicts (store-backed, resumable).

    Every (kind, n, topo_seed, seed, trial, fraction) point has its own
    engine-independent store key: a resumed or re-ordered sweep reuses
    exactly the points it already computed, and a naive validation run
    hits the same entries the incremental engine published.
    """
    from repro.experiments.sweeps import make_topology

    if engine not in _ENGINES:
        raise ValueError(f"unknown percolation engine {engine!r}")
    fractions = tuple(float(f) for f in fractions)
    keys = [
        _percolation_key(kind, n, topo_seed, seed, trial, f) for f in fractions
    ]
    if store.store_enabled():
        stored = [store.get(k) for k in keys]
        if all(v is not None for v in stored):
            return stored
    topo = make_topology(kind, n, seed=topo_seed)
    tables = slot_tables(topo)
    rows = _block_budget() if block_rows is None else max(1, int(block_rows))
    run = _incremental_trial if engine == "incremental" else _naive_trial
    values = run(topo, tables, fractions, seed, trial, rows, workers)
    if store.store_enabled():
        for key, value in zip(keys, values):
            store.put(key, value)
    return values


def _percolation_key(
    kind: str, n: int, topo_seed: int, seed: int, trial: int, fraction: float
):
    """Engine-independent store key of one (trial, fraction) point."""
    return store.run_key(
        "percolation",
        {
            "kind": kind,
            "n": int(n),
            "topo_seed": int(topo_seed),
            "seed": int(seed),
            "trial": int(trial),
            "fraction": float(fraction),
        },
    )


def _naive_point_job(args: tuple) -> dict:
    """One standalone (trial, fraction) point: the sweep shape this PR
    replaces. Every job re-derives the link list, materializes the
    :class:`FaultSet`, rebuilds the survivor topology + CSR + neighbor
    table and BFSes it from scratch -- per point, which is exactly what
    the fused engine amortizes away."""
    kind, n, topo_seed, seed, trial, fraction = args
    from repro.experiments.sweeps import make_topology

    key = _percolation_key(kind, n, topo_seed, seed, trial, fraction)
    if store.store_enabled():
        stored = store.get(key)
        if stored is not None:
            return stored
    topo = make_topology(kind, n, seed=topo_seed)
    uv = canonical_links(topo)
    field = link_field(len(uv), seed, trial)
    dead = uv[field < fraction]
    faults = FaultSet(
        dead_links=tuple((int(u), int(v)) for u, v in dead), label="percolation"
    )
    survivor = faults.apply(topo)
    pad_s = padded_neighbors(survivor)
    hist, sizes = _run_chunks(pad_s, None, n, 1, _block_budget(), workers=1)
    value = _fraction_metrics(hist, sizes, field, (fraction,), n, len(uv), j=0)[0]
    value["fraction"] = float(fraction)
    if store.store_enabled():
        store.put(key, value)
    return value


def _trial_job(args: tuple) -> list[dict]:
    """One sweep trial; module-level for pool pickling. Rebuilds only
    scalars' worth of state: slot tables ride in as broadcast arrays
    when the sweep published them (``perc.<kind>.*``), else are rebuilt
    locally (single-trial calls, cold workers)."""
    kind, n, topo_seed, seed, trial, fractions, engine = args
    from repro.experiments.sweeps import make_topology

    fractions = tuple(fractions)
    keys = [
        _percolation_key(kind, n, topo_seed, seed, trial, f) for f in fractions
    ]
    if store.store_enabled():
        stored = [store.get(k) for k in keys]
        if all(v is not None for v in stored):
            return stored
    topo = make_topology(kind, n, seed=topo_seed)
    try:
        tables = (
            shm.get(f"{_BC_PREFIX}.{kind}.pad"),
            shm.get(f"{_BC_PREFIX}.{kind}.uv"),
            shm.get(f"{_BC_PREFIX}.{kind}.eidx"),
        )
    except KeyError:
        tables = slot_tables(topo)
    rows = _block_budget()
    run = _incremental_trial if engine == "incremental" else _naive_trial
    # The fan-out is over trials: the inner kernel stays serial.
    values = run(topo, tables, fractions, seed, trial, rows, workers=1)
    if store.store_enabled():
        for key, value in zip(keys, values):
            store.put(key, value)
    return values


# ----------------------------------------------------------------------
# sweep + artifact
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PercolationPoint:
    """Trial-aggregated percolation statistics at one (kind, fraction)."""

    name: str
    kind: str
    n: int
    fraction: float
    trials: int
    connected_fraction: float  #: trials whose survivor stayed connected
    mean_lcc_fraction: float  #: largest component / n
    mean_components: float
    mean_reachable: float  #: reachable ordered pairs / (n * (n - 1))
    mean_aspl: float  #: over reachable pairs; nan if nothing reachable
    mean_diameter: float  #: max finite hop distance
    #: capacity proxy retention vs the f=0 baseline, discounted by pair
    #: coverage: kept_links * (aspl_0 / aspl_f) * reachable_f.
    throughput_retention: float

    def row(self) -> list:
        def fmt(x: float, nd: int) -> object:
            return round(x, nd) if x == x else "-"

        return [
            self.name,
            self.fraction,
            round(self.connected_fraction, 3),
            round(self.mean_lcc_fraction, 4),
            fmt(self.mean_components, 1),
            round(self.mean_reachable, 4),
            fmt(self.mean_aspl, 3),
            fmt(self.mean_diameter, 2),
            fmt(self.throughput_retention, 3),
        ]


def _aggregate(
    name: str,
    kind: str,
    n: int,
    fractions: tuple[float, ...],
    per_trial: list[list[dict]],
) -> list[PercolationPoint]:
    """Fold per-trial metric dicts into one point per fraction."""
    points = []
    trials = len(per_trial)
    # Per-trial intact baselines (the coupling makes ratios against
    # them low-variance); only available when the sweep anchors f = 0.
    base_aspl = None
    if fractions and fractions[0] == 0.0:
        base_aspl = [t[0]["aspl"] for t in per_trial]
    denom = n * (n - 1)
    for fi, frac in enumerate(fractions):
        rows = [t[fi] for t in per_trial]
        aspls = [r["aspl"] for r in rows if r["aspl"] is not None]
        retention = float("nan")
        if base_aspl is not None:
            ret = [
                (r["kept_links"] / (r["kept_links"] + r["dead_links"]))
                * (b / r["aspl"])
                * (r["reachable_pairs"] / denom)
                for r, b in zip(rows, base_aspl)
                if r["aspl"] is not None and b is not None
            ]
            retention = float(np.mean(ret)) if ret else float("nan")
        points.append(
            PercolationPoint(
                name=name,
                kind=kind,
                n=n,
                fraction=float(frac),
                trials=trials,
                connected_fraction=sum(r["lcc"] == n for r in rows) / trials,
                mean_lcc_fraction=float(np.mean([r["lcc"] for r in rows])) / n,
                mean_components=float(np.mean([r["ncomp"] for r in rows])),
                mean_reachable=float(np.mean([r["reachable_pairs"] for r in rows])) / denom,
                mean_aspl=float(np.mean(aspls)) if aspls else float("nan"),
                mean_diameter=float(np.mean([r["diameter"] for r in rows])),
                throughput_retention=retention,
            )
        )
    return points


def default_perc_trials() -> int:
    """Trials per (kind, fraction): shares ``REPRO_FAULT_TRIALS`` with
    the degradation sweep (one knob for the whole fault axis)."""
    from repro.faults.degradation import default_trials

    return default_trials()


def percolation_sweep(
    n: int = 1024,
    fractions: tuple[float, ...] = DEFAULT_PERC_FRACTIONS,
    trials: int | None = None,
    seed: int = 0,
    kinds: tuple[str, ...] | None = None,
    workers: int | None = None,
    engine: str = "incremental",
) -> tuple[str, list[PercolationPoint], dict]:
    """Full percolation sweep: kinds x trials, all fractions per pass.

    Returns ``(formatted table, aggregated points, raw per-trial
    dicts)``. With the incremental engine, *trials* fan out through
    :func:`repro.store.dedup_map` (store-backed, resumable) with each
    kind's slot tables broadcast once over shared memory, and each job
    settles every fraction in one fused BFS. With the naive engine,
    every (trial, fraction) point is its own job rebuilding everything
    from scratch -- the pre-fused sweep shape, kept as the bench gate's
    baseline and a byte-identical validator of stored results.
    """
    from repro.experiments.sweeps import PAPER_TRIO, make_topology

    if engine not in _ENGINES:
        raise ValueError(f"unknown percolation engine {engine!r}")
    fractions = tuple(float(f) for f in fractions)
    trials = default_perc_trials() if trials is None else max(1, int(trials))
    kinds = tuple(kinds) if kinds else PAPER_TRIO
    topos = {kind: make_topology(kind, n, seed=seed) for kind in kinds}
    if engine == "incremental":
        broadcast = {}
        for kind, topo in topos.items():
            pad, uv, eidx = slot_tables(topo)
            broadcast[f"{_BC_PREFIX}.{kind}.pad"] = pad
            broadcast[f"{_BC_PREFIX}.{kind}.uv"] = uv
            broadcast[f"{_BC_PREFIX}.{kind}.eidx"] = eidx
        jobs = [
            (kind, n, seed, seed, t, fractions, engine)
            for kind in kinds
            for t in range(trials)
        ]
        results = store.dedup_map(
            _trial_job, jobs, workers=workers, broadcast=broadcast
        )
    else:
        point_jobs = [
            (kind, n, seed, seed, t, f)
            for kind in kinds
            for t in range(trials)
            for f in fractions
        ]
        flat = store.dedup_map(_naive_point_job, point_jobs, workers=workers)
        nf = len(fractions)
        results = [flat[i : i + nf] for i in range(0, len(flat), nf)]

    points: list[PercolationPoint] = []
    raw: dict = {}
    for ki, kind in enumerate(kinds):
        per_trial = results[ki * trials : (ki + 1) * trials]
        points.extend(_aggregate(topos[kind].name, kind, n, fractions, per_trial))
        raw[kind] = per_trial
    table = format_table(
        [
            "topology",
            "fail_frac",
            "P(connected)",
            "lcc/n",
            "components",
            "reach",
            "aspl",
            "diameter",
            "thr_retention",
        ],
        [p.row() for p in points],
        title=(
            f"Percolation sweep at n={n} "
            f"({trials} coupled trials/kind, {engine} engine)"
        ),
    )
    return table, points, raw


def percolation_artifact(
    path: str | Path,
    n: int = 1024,
    fractions: tuple[float, ...] = DEFAULT_PERC_FRACTIONS,
    trials: int | None = None,
    seed: int = 0,
    kinds: tuple[str, ...] | None = None,
    workers: int | None = None,
    engine: str = "incremental",
) -> tuple[str, list[PercolationPoint]]:
    """Run :func:`percolation_sweep` and write the JSON artifact.

    The document is deterministic for fixed inputs (no timestamps) and
    its ``points``/``raw`` sections are engine-independent, which is
    what lets CI ``cmp`` two runs under different ``REPRO_SHM`` /
    worker settings.
    """
    trials = default_perc_trials() if trials is None else max(1, int(trials))
    table, points, raw = percolation_sweep(
        n=n, fractions=fractions, trials=trials, seed=seed,
        kinds=kinds, workers=workers, engine=engine,
    )
    payload = {
        "experiment": "percolation_sweep",
        "n": n,
        "fractions": [float(f) for f in fractions],
        "trials": trials,
        "seed": seed,
        "engine": engine,
        "kinds": sorted(raw),
        "points": [asdict(p) for p in points],
        "raw": raw,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return table, points
