"""Spatially correlated fault models driven by the cabinet floorplan.

Real failures cluster: a PDU trip, a cooling event or a maintenance
accident takes out a *region* of the machine room, not a uniform
sample of links. The paper's deployment model (Section VI-B) places
switches into cabinets on a 2-D grid -- :class:`repro.layout.Floorplan`
-- and this module reuses those physical coordinates to build burst
fault sets:

* :func:`cabinet_burst_faults` -- one or more burst epicenters at
  random cabinets; a link fails with probability ``p_near`` when its
  nearest endpoint cabinet lies within ``radius_m`` of an epicenter,
  decaying exponentially with the extra distance beyond the radius
  (scale ``decay_m``; ``decay_m=None`` gives a hard cutoff).
* :func:`cabinet_faults` -- deterministically kill every link with an
  endpoint in the given cabinets (the "the whole rack went dark" case).

Determinism matches :mod:`repro.faults.models`: epicenters are drawn
first, then one uniform per link in canonical link order, so a fault
set is a pure function of ``(topology, parameters, seed)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.faults.models import FaultSet
from repro.layout import Floorplan, FloorplanConfig
from repro.topologies.base import Topology
from repro.util import make_rng

__all__ = ["cabinet_burst_faults", "cabinet_faults"]


def _cabinet_positions(plan: Floorplan) -> np.ndarray:
    return np.array(
        [plan.cabinet_position(c) for c in range(plan.num_cabinets)], dtype=float
    )


def cabinet_burst_faults(
    topo: Topology,
    seed: int | np.random.Generator | None = 0,
    bursts: int = 1,
    radius_m: float = 2.0,
    p_near: float = 0.9,
    decay_m: float | None = 1.0,
    config: FloorplanConfig | None = None,
    label: str = "burst",
) -> FaultSet:
    """Correlated link failures around random cabinet epicenters.

    Each of the ``bursts`` epicenters is a cabinet chosen uniformly.
    For every link, ``d`` is the smallest Manhattan distance (meters)
    from either endpoint's cabinet to any epicenter; the link fails
    independently with probability::

        p_near                                   if d <= radius_m
        p_near * exp(-(d - radius_m) / decay_m)  otherwise (decay_m set)
        0                                        otherwise (hard cutoff)

    Intra-cabinet links at an epicenter fail with ``p_near``; the decay
    makes adjacent cabinets suffer too, which is what distinguishes a
    burst from the same expected number of uniform failures.
    """
    if bursts < 1:
        raise ValueError(f"bursts must be >= 1, got {bursts}")
    if not (0.0 <= p_near <= 1.0):
        raise ValueError(f"p_near must be in [0, 1], got {p_near}")
    rng = make_rng(seed)
    plan = Floorplan(topo.n, config)
    pos = _cabinet_positions(plan)
    centers = pos[rng.integers(0, plan.num_cabinets, size=bursts)]

    # Distance of each cabinet to its nearest epicenter (Manhattan).
    d_cab = np.abs(pos[:, None, :] - centers[None, :, :]).sum(axis=2).min(axis=1)

    dead: list[tuple[int, int]] = []
    draws = rng.random(topo.num_links)
    for link, x in zip(topo.links, draws):
        d = min(d_cab[plan.cabinet_of(link.u)], d_cab[plan.cabinet_of(link.v)])
        if d <= radius_m:
            p = p_near
        elif decay_m is not None:
            p = p_near * math.exp(-(d - radius_m) / decay_m)
        else:
            p = 0.0
        if x < p:
            dead.append(link.endpoints())
    return FaultSet(dead_links=tuple(dead), label=label)


def cabinet_faults(
    topo: Topology,
    cabinets: tuple[int, ...] | list[int],
    config: FloorplanConfig | None = None,
    label: str = "cabinet",
) -> FaultSet:
    """Kill every link with an endpoint in the given cabinets.

    Deterministic (no randomness): the model for "this rack lost
    power". Switches themselves are left alive so host addressing is
    stable; use :func:`repro.faults.models.bernoulli_switch_faults`
    for dead-switch semantics.
    """
    plan = Floorplan(topo.n, config)
    chosen = set(int(c) for c in cabinets)
    for c in chosen:
        if not (0 <= c < plan.num_cabinets):
            raise ValueError(f"cabinet {c} out of range [0, {plan.num_cabinets})")
    dead = tuple(
        l.endpoints()
        for l in topo.links
        if plan.cabinet_of(l.u) in chosen or plan.cabinet_of(l.v) in chosen
    )
    return FaultSet(dead_links=dead, label=label)
