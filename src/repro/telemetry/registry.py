"""Process-local metrics registry: counters, gauges, histograms.

The registry is the substrate every other telemetry piece builds on.
Design constraints, in order of importance:

1. **Near-zero overhead when disabled.** Hot paths go through the
   module-level helpers (:func:`count`, :func:`gauge_set`,
   :func:`observe`), whose first statement is a plain module-global
   bool check -- no registry lookup, no allocation, no lock. The
   per-cycle simulator paths avoid even that by attaching a sampler
   only when telemetry is on (see :mod:`repro.telemetry.samplers`).
2. **Deterministic and side-effect free.** Metrics only *observe*;
   nothing in this package feeds back into simulation state or RNG
   draws, so results with telemetry on and off are bit-identical
   (pinned by ``tests/test_telemetry.py`` and the bench gate).
3. **Picklable snapshots.** Worker processes report back through
   :mod:`repro.telemetry.merge`, so every metric reduces to plain
   ints/floats/tuples.

Telemetry is enabled by setting ``REPRO_TELEMETRY=1`` in the
environment (read once at import, re-read via :func:`refresh_from_env`)
or by calling :func:`enable` at runtime.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TelemetryRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "enabled",
    "enable",
    "disable",
    "refresh_from_env",
    "get_registry",
    "count",
    "gauge_set",
    "observe",
]

_TRUE_VALUES = ("1", "on", "true", "yes")

#: Default histogram edges for wall-clock durations in seconds
#: (1 us .. 100 s, roughly logarithmic; values above the last edge land
#: in the implicit +Inf bucket).
DEFAULT_SECONDS_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 100.0
)


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TELEMETRY", "").strip().lower() in _TRUE_VALUES


_enabled = _env_enabled()


def enabled() -> bool:
    """Whether telemetry collection is currently on."""
    return _enabled


def enable() -> None:
    """Turn telemetry collection on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn telemetry collection off for this process."""
    global _enabled
    _enabled = False


def refresh_from_env() -> bool:
    """Re-read ``REPRO_TELEMETRY`` (tests toggle the env mid-process)."""
    global _enabled
    _enabled = _env_enabled()
    return _enabled


# ----------------------------------------------------------------------
# metric types
# ----------------------------------------------------------------------
class Counter:
    """A monotonically increasing integer/float total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value; merges last-write-wins with a worker tag."""

    __slots__ = ("name", "value", "tag")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self.tag: str | None = None

    def set(self, value: float, tag: str | None = None) -> None:
        self.value = value
        self.tag = tag


class Histogram:
    """A fixed-bucket histogram (Prometheus ``le`` semantics).

    ``edges`` are inclusive upper bounds; an implicit +Inf bucket
    catches everything above the last edge, so ``counts`` has
    ``len(edges) + 1`` cells. Fixed edges are what makes cross-process
    merging exact (bucket counts simply add).
    """

    __slots__ = ("name", "edges", "counts", "sum", "count")

    def __init__(self, name: str, edges: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS):
        self.name = name
        self.edges = tuple(float(e) for e in edges)
        if list(self.edges) != sorted(self.edges):
            raise ValueError("histogram edges must be sorted ascending")
        self.counts = [0] * (len(self.edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TelemetryRegistry:
    """Create-or-get store of named metrics.

    Metric names are dotted lowercase paths (``cache.memory_hits``,
    ``sim.flit.link_util_max``). Creation is locked; updates on the
    returned metric objects are plain attribute arithmetic (the
    GIL-protected single-writer pattern every caller here follows).
    """

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- create-or-get --------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            with self._lock:
                c = self.counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            with self._lock:
                g = self.gauges.setdefault(name, Gauge(name))
        return g

    def histogram(self, name: str, edges: tuple[float, ...] | None = None) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            with self._lock:
                h = self.histograms.setdefault(
                    name, Histogram(name, edges or DEFAULT_SECONDS_BUCKETS)
                )
        return h

    # -- bulk views ------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)


_registry = TelemetryRegistry()


def get_registry() -> TelemetryRegistry:
    """The process-local default registry."""
    return _registry


# ----------------------------------------------------------------------
# module-level fast-path helpers (the only API hot code should call)
# ----------------------------------------------------------------------
def count(name: str, n: int | float = 1) -> None:
    """Increment counter ``name`` by ``n``; no-op when disabled."""
    if not _enabled:
        return
    _registry.counter(name).inc(n)


def gauge_set(name: str, value: float, tag: str | None = None) -> None:
    """Set gauge ``name``; no-op when disabled."""
    if not _enabled:
        return
    _registry.gauge(name).set(value, tag)


def observe(name: str, value: float, edges: tuple[float, ...] | None = None) -> None:
    """Observe ``value`` into histogram ``name``; no-op when disabled."""
    if not _enabled:
        return
    _registry.histogram(name, edges).observe(value)
