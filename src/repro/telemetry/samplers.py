"""Periodic in-simulation sampling: link utilization, queue occupancy.

Deng et al. (arXiv:1904.00513) make the case that interconnect
behaviour is diagnosed from *per-link* utilization and queue-occupancy
time series, not end-to-end aggregates; this module provides the
sampler both simulation engines attach when telemetry is enabled.

A :class:`SimSampler` is strictly an observer. The engines hand it
cumulative per-channel activity (flit counts for the cycle-driven
engine, busy-ns for the event-driven one) plus instantaneous buffer
occupancy at each sampling instant; the sampler differences
consecutive snapshots into per-interval records. It never touches
simulator state or RNG streams, which is what keeps results with
telemetry on and off bit-identical (the determinism contract pinned by
``tests/test_telemetry.py``).

The sampling period is ``REPRO_TELEMETRY_INTERVAL_NS`` (default 500 ns
of simulated time). Fault events (PR 3's :class:`~repro.sim.metrics.
FaultRecord` timestamps) are recorded as epoch markers so the exported
series can be split into pre/post-fault regimes.
"""

from __future__ import annotations

import os

import numpy as np

from repro.telemetry import registry as _registry

__all__ = ["SimSampler", "default_interval_ns", "DEFAULT_INTERVAL_NS"]

#: Default simulated-time sampling period.
DEFAULT_INTERVAL_NS = 500.0


def default_interval_ns() -> float:
    """Sampling period from ``REPRO_TELEMETRY_INTERVAL_NS`` (ns)."""
    raw = os.environ.get("REPRO_TELEMETRY_INTERVAL_NS", "").strip()
    try:
        value = float(raw) if raw else DEFAULT_INTERVAL_NS
    except ValueError:
        value = DEFAULT_INTERVAL_NS
    return value if value > 0 else DEFAULT_INTERVAL_NS


class SimSampler:
    """Collects periodic per-link/per-queue snapshots of one sim run.

    Parameters
    ----------
    channels:
        Directed switch-to-switch channels ``(u, v)`` in the engine's
        canonical order; all per-channel arrays use this indexing.
    num_hosts:
        Host count, for per-host Gbit/s normalization.
    flit_time_ns:
        Serialization time of one flit; converts cumulative flit counts
        to busy time for the cycle-driven engine.
    interval_ns:
        Sampling period in simulated ns (default
        :func:`default_interval_ns`).
    engine:
        Label stored in the summary (``"flit"`` / ``"event"``).
    """

    def __init__(
        self,
        channels,
        num_hosts: int,
        flit_time_ns: float = 1.0,
        interval_ns: float | None = None,
        engine: str = "sim",
    ):
        self.channels = [tuple(ch) for ch in channels]
        self.num_hosts = num_hosts
        self.flit_time_ns = flit_time_ns
        self.interval_ns = interval_ns if interval_ns else default_interval_ns()
        self.engine = engine
        self.samples: list[dict] = []
        self.fault_marks: list[dict] = []
        c = len(self.channels)
        self._last_t = 0.0
        self._last_busy = np.zeros(c)
        self._last_delivered_bits = 0.0
        self._last_offered_bits = 0.0
        self._total_busy = np.zeros(c)  # cumulative busy-ns per channel
        self._occ_max = 0.0
        self._occ_mean_sum = 0.0

    # ------------------------------------------------------------------
    def sample(
        self,
        t_ns: float,
        *,
        chan_flits: np.ndarray | None = None,
        chan_busy_ns: np.ndarray | None = None,
        occupancy: np.ndarray | None = None,
        delivered_bits: float = 0.0,
        offered_bits: float = 0.0,
    ) -> None:
        """Record one sampling instant.

        ``chan_flits`` (cumulative flits sent per channel) or
        ``chan_busy_ns`` (cumulative busy-ns per channel) supplies the
        utilization source; ``occupancy`` is the instantaneous buffered
        amount per channel (flits, or reserved VCs); ``delivered_bits``
        and ``offered_bits`` are cumulative since the run started.
        """
        dt = t_ns - self._last_t
        if dt <= 0:
            return
        if chan_busy_ns is None:
            chan_busy_ns = (
                np.asarray(chan_flits, dtype=np.float64) * self.flit_time_ns
                if chan_flits is not None
                else np.zeros(len(self.channels))
            )
        busy = np.asarray(chan_busy_ns, dtype=np.float64)
        util = (busy - self._last_busy) / dt
        occ = (
            np.asarray(occupancy, dtype=np.float64)
            if occupancy is not None
            else np.zeros(len(self.channels))
        )
        accepted = (delivered_bits - self._last_delivered_bits) / (dt * self.num_hosts)
        offered = (offered_bits - self._last_offered_bits) / (dt * self.num_hosts)
        rec = {
            "t_ns": float(t_ns),
            "link_util": np.round(util, 5).tolist(),
            "queue_occ": np.round(occ, 3).tolist(),
            "util_mean": float(util.mean()) if util.size else 0.0,
            "util_max": float(util.max()) if util.size else 0.0,
            "occ_mean": float(occ.mean()) if occ.size else 0.0,
            "occ_max": float(occ.max()) if occ.size else 0.0,
            "accepted_gbps": float(accepted),
            "offered_gbps": float(offered),
        }
        self.samples.append(rec)
        self._total_busy = busy.copy()
        self._last_busy = busy.copy()
        self._last_t = t_ns
        self._last_delivered_bits = delivered_bits
        self._last_offered_bits = offered_bits
        self._occ_max = max(self._occ_max, rec["occ_max"])
        self._occ_mean_sum += rec["occ_mean"]

    def on_fault(self, time_ns: float, links_failed: int) -> None:
        """Mark a fault epoch so the series can be split around it."""
        self.fault_marks.append(
            {"t_ns": float(time_ns), "links_failed": int(links_failed)}
        )

    # ------------------------------------------------------------------
    def hot_links(self, k: int = 5) -> list[tuple[int, int, float]]:
        """Top-``k`` channels by whole-run mean utilization."""
        if not self.samples:
            return []
        span_ns = self.samples[-1]["t_ns"]
        if span_ns <= 0:
            return []
        mean_util = self._total_busy / span_ns
        order = np.argsort(mean_util)[::-1][:k]
        return [
            (self.channels[i][0], self.channels[i][1], float(mean_util[i]))
            for i in order
        ]

    def summary(self) -> dict:
        """Compact run-level digest (merged into ``SimResult.telemetry``)."""
        n = len(self.samples)
        span_ns = self.samples[-1]["t_ns"] if n else 0.0
        mean_util = (
            float((self._total_busy / span_ns).mean()) if n and span_ns > 0 else 0.0
        )
        max_util = max((s["util_max"] for s in self.samples), default=0.0)
        return {
            "engine": self.engine,
            "interval_ns": self.interval_ns,
            "num_samples": n,
            "num_channels": len(self.channels),
            "link_util": {
                "mean": mean_util,
                "max": max_util,
                "hot": [[u, v, round(x, 5)] for u, v, x in self.hot_links()],
            },
            "queue_occupancy": {
                "mean": self._occ_mean_sum / n if n else 0.0,
                "max": self._occ_max,
            },
            "accepted_gbps_last": self.samples[-1]["accepted_gbps"] if n else 0.0,
            "offered_gbps_last": self.samples[-1]["offered_gbps"] if n else 0.0,
            "faults": list(self.fault_marks),
        }

    def finalize(self, prefix: str) -> dict:
        """Publish the run digest as registry gauges and return it."""
        s = self.summary()
        _registry.gauge_set(f"{prefix}.samples", s["num_samples"])
        _registry.gauge_set(f"{prefix}.link_util_mean", s["link_util"]["mean"])
        _registry.gauge_set(f"{prefix}.link_util_max", s["link_util"]["max"])
        _registry.gauge_set(f"{prefix}.queue_occ_mean", s["queue_occupancy"]["mean"])
        _registry.gauge_set(f"{prefix}.queue_occ_max", s["queue_occupancy"]["max"])
        _registry.gauge_set(f"{prefix}.accepted_gbps", s["accepted_gbps_last"])
        _registry.count(f"{prefix}.fault_marks", len(self.fault_marks))
        return s

    def records(self) -> list[dict]:
        """Per-interval records (JSON-ready), for the JSONL exporter."""
        return list(self.samples)
