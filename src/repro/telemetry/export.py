"""Telemetry exporters: JSONL, Prometheus text, and compact summaries.

Three consumers, three shapes:

* :func:`write_jsonl` -- one JSON object per line (counters, gauges,
  histograms, spans, then any per-interval sampler records), the
  dashboard-ingestion format;
* :func:`prometheus_text` -- the Prometheus text exposition format
  (metric names are ``repro_`` + the dotted name with dots mapped to
  underscores; histograms expand to ``_bucket``/``_sum``/``_count``);
* :func:`run_summary` -- a compact plain dict for embedding in
  ``SimResult.telemetry`` mirrors and ``BENCH_*.json`` evidence files,
  and :func:`summary_table` -- its human-readable table for
  ``python -m repro telemetry --summary``.

All exporters read a :class:`~repro.telemetry.registry.
TelemetryRegistry` snapshot; none mutate it, so exporting twice is
idempotent.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry import spans as _spans
from repro.telemetry.registry import TelemetryRegistry, get_registry

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "prometheus_text",
    "run_summary",
    "summary_table",
]


def _metric_name(dotted: str) -> str:
    out = []
    for ch in dotted:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    name = "".join(out)
    return "repro_" + name


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(
    path: str | Path,
    registry: TelemetryRegistry | None = None,
    extra_records: list[dict] | None = None,
) -> int:
    """Write the registry (and optional sampler records) as ndjson.

    Returns the number of lines written. Record types: ``counter``,
    ``gauge``, ``histogram``, ``span``, plus whatever dicts are passed
    in ``extra_records`` (sampler intervals carry ``t_ns`` and are
    tagged ``sample`` if untyped).
    """
    reg = get_registry() if registry is None else registry
    lines = 0
    with open(path, "w") as fh:
        for c in reg.counters.values():
            fh.write(json.dumps({"type": "counter", "name": c.name, "value": c.value}))
            fh.write("\n")
            lines += 1
        for g in reg.gauges.values():
            fh.write(json.dumps(
                {"type": "gauge", "name": g.name, "value": g.value, "tag": g.tag}
            ))
            fh.write("\n")
            lines += 1
        for h in reg.histograms.values():
            fh.write(json.dumps({
                "type": "histogram", "name": h.name, "edges": list(h.edges),
                "counts": list(h.counts), "sum": h.sum, "count": h.count,
            }))
            fh.write("\n")
            lines += 1
        for spath, seconds, count in _spans.span_rows():
            fh.write(json.dumps({
                "type": "span", "name": spath, "seconds": seconds, "count": count,
            }))
            fh.write("\n")
            lines += 1
        for rec in extra_records or ():
            if "type" not in rec:
                rec = {"type": "sample", **rec}
            fh.write(json.dumps(rec))
            fh.write("\n")
            lines += 1
    return lines


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse a :func:`write_jsonl` file back into records."""
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def prometheus_text(registry: TelemetryRegistry | None = None) -> str:
    """The registry in the Prometheus text format (version 0.0.4)."""
    reg = get_registry() if registry is None else registry
    out: list[str] = []
    for c in sorted(reg.counters.values(), key=lambda m: m.name):
        name = _metric_name(c.name)
        out.append(f"# TYPE {name} counter")
        out.append(f"{name} {c.value}")
    for g in sorted(reg.gauges.values(), key=lambda m: m.name):
        name = _metric_name(g.name)
        out.append(f"# TYPE {name} gauge")
        label = f'{{worker="{g.tag}"}}' if g.tag else ""
        out.append(f"{name}{label} {g.value}")
    for h in sorted(reg.histograms.values(), key=lambda m: m.name):
        name = _metric_name(h.name)
        out.append(f"# TYPE {name} histogram")
        cum = 0
        for edge, cnt in zip(h.edges, h.counts):
            cum += cnt
            out.append(f'{name}_bucket{{le="{edge}"}} {cum}')
        cum += h.counts[-1]
        out.append(f'{name}_bucket{{le="+Inf"}} {cum}')
        out.append(f"{name}_sum {h.sum}")
        out.append(f"{name}_count {h.count}")
    for spath, seconds, count in _spans.span_rows():
        name = _metric_name("span." + spath.replace("/", "."))
        out.append(f'{name}_seconds_total {seconds}')
        out.append(f'{name}_calls_total {count}')
    return "\n".join(out) + ("\n" if out else "")


# ----------------------------------------------------------------------
# compact summaries
# ----------------------------------------------------------------------
def run_summary(registry: TelemetryRegistry | None = None) -> dict:
    """Compact digest of the registry, for embedding in result docs."""
    reg = get_registry() if registry is None else registry
    return {
        "counters": {c.name: c.value for c in reg.counters.values()},
        "gauges": {g.name: g.value for g in reg.gauges.values()},
        "histograms": {
            h.name: {"count": h.count, "sum": round(h.sum, 6),
                     "mean": round(h.mean, 6) if h.count else None}
            for h in reg.histograms.values()
        },
        "spans": {
            spath: {"seconds": round(seconds, 6), "count": count}
            for spath, seconds, count in _spans.span_rows()
        },
    }


def summary_table(registry: TelemetryRegistry | None = None) -> str:
    """Human-readable summary (the ``--summary`` CLI view)."""
    from repro.util import format_table

    reg = get_registry() if registry is None else registry
    blocks: list[str] = []
    if reg.counters:
        rows = [[c.name, c.value] for c in sorted(reg.counters.values(), key=lambda m: m.name)]
        blocks.append(format_table(["counter", "value"], rows, title="Counters"))
    if reg.gauges:
        rows = [
            [g.name, round(g.value, 6), g.tag or ""]
            for g in sorted(reg.gauges.values(), key=lambda m: m.name)
        ]
        blocks.append(format_table(["gauge", "value", "tag"], rows, title="Gauges"))
    if reg.histograms:
        rows = [
            [h.name, h.count, round(h.sum, 6), round(h.mean, 6) if h.count else ""]
            for h in sorted(reg.histograms.values(), key=lambda m: m.name)
        ]
        blocks.append(format_table(
            ["histogram", "count", "sum", "mean"], rows, title="Histograms"
        ))
    span_rows = _spans.span_rows()
    if span_rows:
        rows = [[p, round(s, 6), c] for p, s, c in span_rows]
        blocks.append(format_table(["span", "seconds", "calls"], rows, title="Spans"))
    if not blocks:
        return "(no telemetry recorded -- set REPRO_TELEMETRY=1 or use "\
               "`python -m repro telemetry <command>`)"
    return "\n\n".join(blocks)
