"""Unified telemetry: metrics registry, spans, samplers, exporters.

The observability subsystem every layer of the stack reports through:

``repro.telemetry.registry``
    Process-local counters / gauges / fixed-bucket histograms with a
    near-zero-overhead no-op fast path when disabled.
``repro.telemetry.spans``
    Nested wall-clock spans (context manager + decorator) building a
    run-scoped trace tree; :class:`repro.util.profiling.StageTimer`
    delegates here.
``repro.telemetry.samplers``
    Periodic in-simulation sampling (per-link utilization, queue
    occupancy, accepted-vs-offered load, fault-epoch markers) attached
    by both simulation engines when telemetry is on.
``repro.telemetry.export``
    JSONL and Prometheus-text exporters plus compact run summaries.
``repro.telemetry.merge``
    Snapshot/delta/merge so ``parallel_map`` workers report telemetry
    back to the parent (counters sum, histograms add, gauges
    last-write-wins with a worker tag).

Enable with ``REPRO_TELEMETRY=1``, :func:`enable`, or the CLI wrapper
``python -m repro telemetry <command>``. With telemetry disabled every
hook is a module-global bool check, and simulation results are
bit-identical to a build without the hooks (pinned by the bench gate).
See ``docs/observability.md`` for the architecture tour.
"""

from repro.telemetry import export, merge, registry, samplers, spans
from repro.telemetry.export import (
    prometheus_text,
    read_jsonl,
    run_summary,
    summary_table,
    write_jsonl,
)
from repro.telemetry.merge import merge_snapshot, snapshot
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    TelemetryRegistry,
    count,
    disable,
    enable,
    enabled,
    gauge_set,
    get_registry,
    observe,
    refresh_from_env,
)
from repro.telemetry.samplers import SimSampler, default_interval_ns
from repro.telemetry.spans import Span, span, span_rows, timed, trace_tree

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TelemetryRegistry",
    "SimSampler",
    "Span",
    "count",
    "gauge_set",
    "observe",
    "enabled",
    "enable",
    "disable",
    "refresh_from_env",
    "get_registry",
    "reset",
    "span",
    "timed",
    "span_rows",
    "trace_tree",
    "snapshot",
    "merge_snapshot",
    "write_jsonl",
    "read_jsonl",
    "prometheus_text",
    "run_summary",
    "summary_table",
    "default_interval_ns",
    "export",
    "merge",
    "registry",
    "samplers",
    "spans",
]


def reset() -> None:
    """Clear the default registry and the span trace tree."""
    get_registry().clear()
    spans.clear()
