"""Nested wall-clock spans forming a run-scoped trace tree.

A :class:`Span` always measures wall time (cheap: two
``perf_counter`` calls), so callers like
:class:`repro.util.profiling.StageTimer` can delegate to it whether or
not telemetry is enabled. When telemetry *is* enabled, the span also
attaches itself to a process-local trace tree: same-named spans under
the same parent accumulate (seconds sum, count increments), so loops
produce one bounded node instead of one node per iteration.

Use as a context manager or decorator::

    with span("sweep.fig7") as sp:
        run_sweep()
    print(sp.seconds)

    @timed("routing.table_build")
    def build(): ...

The tree is exported by :mod:`repro.telemetry.export` (JSONL records
and a flattened ``span`` table) and cleared with :func:`clear`.
"""

from __future__ import annotations

import functools
import threading
import time

from repro.telemetry import registry as _registry

__all__ = ["Span", "span", "timed", "trace_tree", "span_rows", "clear"]


class _Node:
    """One accumulated trace-tree node."""

    __slots__ = ("name", "seconds", "count", "children")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.count = 0
        self.children: dict[str, _Node] = {}

    def as_dict(self) -> dict:
        d = {"name": self.name, "seconds": self.seconds, "count": self.count}
        if self.children:
            d["children"] = [c.as_dict() for c in self.children.values()]
        return d


_roots: dict[str, _Node] = {}
_local = threading.local()


def _stack() -> list[_Node]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


class Span:
    """Times one ``with`` block; attaches to the trace tree when enabled."""

    __slots__ = ("name", "seconds", "_t0", "_pushed")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self._t0 = 0.0
        self._pushed = False

    def __enter__(self) -> "Span":
        if _registry.enabled():
            stack = _stack()
            parent = stack[-1].children if stack else _roots
            node = parent.get(self.name)
            if node is None:
                node = parent[self.name] = _Node(self.name)
            stack.append(node)
            self._pushed = True
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._t0
        if self._pushed:
            node = _stack().pop()
            node.seconds += self.seconds
            node.count += 1
            self._pushed = False
        return None


def span(name: str) -> Span:
    """A fresh :class:`Span` (context manager) named ``name``."""
    return Span(name)


def timed(name: str | None = None):
    """Decorator wrapping a function call in a span (default: qualname)."""

    def deco(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with Span(label):
                return fn(*args, **kwargs)

        return wrapper

    return deco


def trace_tree() -> list[dict]:
    """The accumulated trace tree as JSON-ready dicts."""
    return [n.as_dict() for n in _roots.values()]


def span_rows() -> list[tuple[str, float, int]]:
    """Flattened ``(path, seconds, count)`` rows, depth-first."""
    rows: list[tuple[str, float, int]] = []

    def walk(node: _Node, prefix: str) -> None:
        path = f"{prefix}/{node.name}" if prefix else node.name
        rows.append((path, node.seconds, node.count))
        for child in node.children.values():
            walk(child, path)

    for root in _roots.values():
        walk(root, "")
    return rows


def clear() -> None:
    """Drop the trace tree (open spans keep timing but re-root)."""
    _roots.clear()
    if getattr(_local, "stack", None):
        _local.stack = []
