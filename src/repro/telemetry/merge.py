"""Cross-process telemetry: snapshot, delta, and merge.

``repro.util.parallel.parallel_map`` fans work out to worker
processes; each worker's telemetry would otherwise die with the
process. The contract here:

* the worker wraps every task with :func:`begin_task` /
  :func:`end_task`, shipping back a picklable **delta** snapshot (what
  the task itself recorded -- robust against fork-inherited parent
  counts and against multiple tasks sharing one worker process);
* the parent calls :func:`merge_snapshot` per returned delta.

Merge semantics (the issue's contract, pinned by
``tests/test_telemetry.py``): counters **sum**, histograms **add**
bucket-wise (fixed edges make this exact), gauges are
**last-write-wins** and keep the reporting worker's tag. Spans are
process-local by design and do not cross the boundary.

Because counter/histogram merging is commutative and associative, the
merged totals are invariant across ``REPRO_WORKERS`` -- a serial run
and any pool width agree exactly (given per-item deterministic
instrumentation).
"""

from __future__ import annotations

import os

from repro.telemetry.registry import TelemetryRegistry, get_registry

__all__ = ["snapshot", "delta", "merge_snapshot", "begin_task", "end_task"]

_task_baseline: dict | None = None


def snapshot(registry: TelemetryRegistry | None = None) -> dict:
    """Picklable copy of the registry's counters/gauges/histograms."""
    reg = get_registry() if registry is None else registry
    return {
        "worker": os.getpid(),
        "counters": {c.name: c.value for c in reg.counters.values()},
        "gauges": {g.name: (g.value, g.tag) for g in reg.gauges.values()},
        "histograms": {
            h.name: {
                "edges": h.edges,
                "counts": list(h.counts),
                "sum": h.sum,
                "count": h.count,
            }
            for h in reg.histograms.values()
        },
    }


def delta(current: dict, baseline: dict) -> dict:
    """What ``current`` recorded beyond ``baseline`` (counters and
    histogram contents subtract; gauges keep their current value)."""
    base_c = baseline["counters"]
    base_h = baseline["histograms"]
    counters = {}
    for name, value in current["counters"].items():
        d = value - base_c.get(name, 0)
        if d:
            counters[name] = d
    histograms = {}
    for name, h in current["histograms"].items():
        b = base_h.get(name)
        if b is None:
            histograms[name] = h
            continue
        counts = [c - bc for c, bc in zip(h["counts"], b["counts"])]
        if any(counts):
            histograms[name] = {
                "edges": h["edges"],
                "counts": counts,
                "sum": h["sum"] - b["sum"],
                "count": h["count"] - b["count"],
            }
    return {
        "worker": current["worker"],
        "counters": counters,
        "gauges": dict(current["gauges"]),
        "histograms": histograms,
    }


def merge_snapshot(
    snap: dict | None,
    registry: TelemetryRegistry | None = None,
    worker: str | None = None,
) -> None:
    """Fold one snapshot/delta into ``registry``.

    Counters sum; histograms add bucket-wise (edges must match -- a
    mismatch raises, since silently re-bucketing would corrupt the
    distribution); gauges last-write-wins, tagged with ``worker`` (or
    the snapshot's origin pid).
    """
    if not snap:
        return
    reg = get_registry() if registry is None else registry
    tag = worker if worker is not None else f"pid{snap.get('worker', '?')}"
    for name, value in snap["counters"].items():
        reg.counter(name).inc(value)
    for name, (value, gtag) in snap["gauges"].items():
        reg.gauge(name).set(value, gtag or tag)
    for name, h in snap["histograms"].items():
        hist = reg.histogram(name, tuple(h["edges"]))
        if hist.edges != tuple(h["edges"]):
            raise ValueError(
                f"histogram {name!r}: bucket edges differ between processes"
            )
        for i, c in enumerate(h["counts"]):
            hist.counts[i] += c
        hist.sum += h["sum"]
        hist.count += h["count"]


# ----------------------------------------------------------------------
# worker-side task bracketing
# ----------------------------------------------------------------------
def begin_task() -> None:
    """Mark the telemetry baseline before running one mapped task."""
    global _task_baseline
    _task_baseline = snapshot()


def end_task() -> dict:
    """Delta recorded since :func:`begin_task` (ships to the parent)."""
    global _task_baseline
    base = _task_baseline
    _task_baseline = None
    cur = snapshot()
    if base is None:
        return cur
    return delta(cur, base)
