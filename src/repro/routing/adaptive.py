"""Duato-style topology-agnostic adaptive routing (paper ref [24]).

The paper's simulation uses "the topology-agnostic adaptive routing
scheme described in [24], with up*/down* routing for the escape paths"
(Section VII-A). The scheme:

* **adaptive channels** -- a packet may take *any* neighbor on a minimal
  path toward its destination, on any of the adaptive virtual channels;
* **escape channel** -- one virtual channel is reserved for up*/down*
  routing; whenever every adaptive candidate is blocked, the packet can
  always fall back to the (deadlock-free) escape channel, and Duato's
  theorem makes the whole network deadlock-free.

This module supplies the candidate sets; the simulator
(:mod:`repro.sim`) applies the selection policy cycle by cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import cache
from repro.routing.table import ShortestPathTable  # noqa: F401 (re-exported for callers)
from repro.topologies.base import Topology

__all__ = ["RouteCandidate", "DuatoAdaptiveRouting"]


@dataclass(frozen=True)
class RouteCandidate:
    """One legal output option for a packet at a switch."""

    next_node: int
    escape: bool  #: True -> must use the escape VC (up*/down* legality)
    down_only: bool  #: up*/down* phase after this hop (escape candidates)


class DuatoAdaptiveRouting:
    """Minimal-adaptive routing with an up*/down* escape layer."""

    def __init__(self, topo: Topology, root: int | None = None):
        self.topo = topo
        self.table = cache.shortest_path_table(topo)
        self.updown = cache.updown_routing(topo, root=root)

    def candidates(self, u: int, t: int, down_only: bool) -> list[RouteCandidate]:
        """All legal options at switch ``u`` for a packet headed to ``t``.

        ``down_only`` is the packet's up*/down* phase state, which
        matters only for the escape options. Adaptive (minimal)
        candidates are listed first; escape candidates last, so a
        selection policy that scans in order prefers adaptive progress.
        """
        if u == t:
            return []
        out = [
            RouteCandidate(v, escape=False, down_only=down_only)
            for v in self.table.next_hops(u, t)
        ]
        for v, nxt_down in self.updown.next_hops(u, t, down_only=down_only):
            out.append(RouteCandidate(v, escape=True, down_only=nxt_down))
        if not out:
            raise AssertionError(f"no route candidate from {u} to {t}")
        return out

    def escape_path(self, s: int, t: int) -> list[int]:
        """The pure-escape (up*/down*) route, for analysis."""
        return self.updown.path(s, t)

    def minimal_path(self, s: int, t: int, seed: int | None = None) -> list[int]:
        """A minimal route ignoring the escape layer, for analysis."""
        return self.table.path(s, t, seed=seed)
