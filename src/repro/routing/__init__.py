"""Routing substrates: up*/down*, Duato adaptive, DOR, minimal tables, CDG."""

from repro.routing.adaptive import DuatoAdaptiveRouting, RouteCandidate
from repro.routing.cdg import (
    ChannelId,
    assert_deadlock_free,
    build_cdg,
    find_cycle,
    route_channels,
)
from repro.routing.dor import dor_channels, dor_next_hop, dor_path
from repro.routing.lash import LashLayering, lash_adapter, lash_layering
from repro.routing.table import ShortestPathTable
from repro.routing.updown import UpDownRouting

__all__ = [
    "DuatoAdaptiveRouting",
    "RouteCandidate",
    "ChannelId",
    "assert_deadlock_free",
    "build_cdg",
    "find_cycle",
    "route_channels",
    "dor_channels",
    "dor_next_hop",
    "dor_path",
    "LashLayering",
    "lash_adapter",
    "lash_layering",
    "ShortestPathTable",
    "UpDownRouting",
]
