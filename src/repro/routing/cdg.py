"""Channel dependency graphs and deadlock-freedom verification.

Dally & Seitz: a routing function is deadlock-free on a network iff its
channel dependency graph (CDG) -- vertices are *channels* (directed
link, virtual-channel class), edges connect consecutively held channels
of some route -- is acyclic.

The paper's Theorem 3 argues DSN-E/DSN-V's extended routing is
deadlock-free by grouping channels (Up | Succ+Shortcut | Pred+Extra)
and showing each group and the inter-group graph acyclic (Fig. 6).
Here we verify the theorem *computationally*: enumerate every route the
routing function can produce, build the exact CDG, and search for
cycles (experiment E11). The same machinery checks up*/down* and DOR.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import networkx as nx

from repro.core.routing import RouteHop, RouteResult

__all__ = [
    "ChannelId",
    "build_cdg",
    "find_cycle",
    "route_channels",
    "assert_deadlock_free",
]

#: A channel: (source node, target node, virtual-channel / link class).
ChannelId = tuple[int, int, str]


def route_channels(
    route: RouteResult,
    vc_of: Callable[[RouteHop], str] | None = None,
) -> list[ChannelId]:
    """Channel sequence of a route.

    By default the channel class is the hop kind (pred / succ /
    shortcut / up / extra), which models the DSN-E *physical-link*
    discipline; pass ``vc_of`` to model virtual-channel schemes such as
    DSN-V (e.g. mapping kinds to VC names on shared physical links).
    """
    if vc_of is None:
        vc_of = lambda hop: hop.kind.value
    return [(h.src, h.dst, vc_of(h)) for h in route.hops]


def build_cdg(channel_routes: Iterable[Sequence[ChannelId]]) -> nx.DiGraph:
    """Build the CDG from channel sequences of all possible routes."""
    g = nx.DiGraph()
    for seq in channel_routes:
        for a, b in zip(seq, seq[1:]):
            g.add_edge(a, b)
        if len(seq) == 1:
            g.add_node(seq[0])
    return g


def find_cycle(cdg: nx.DiGraph) -> list[ChannelId] | None:
    """Return one dependency cycle as a channel list, or ``None``."""
    try:
        cycle_edges = nx.find_cycle(cdg, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    return [edge[0] for edge in cycle_edges]


def assert_deadlock_free(channel_routes: Iterable[Sequence[ChannelId]]) -> nx.DiGraph:
    """Build the CDG and raise ``AssertionError`` with the offending
    cycle if it is not acyclic. Returns the CDG for further inspection."""
    cdg = build_cdg(channel_routes)
    cycle = find_cycle(cdg)
    if cycle is not None:
        preview = " -> ".join(map(str, cycle[:8]))
        raise AssertionError(
            f"channel dependency cycle of length {len(cycle)}: {preview} ..."
        )
    return cdg
