"""Dimension-order routing (DOR) for mesh and torus topologies.

The classic e-cube scheme: correct coordinates one dimension at a time,
taking the minimal direction around each ring. Deadlock-free on a mesh
as-is; on a torus each dimension needs two virtual channels with a
dateline (Dally & Seitz), which :func:`dor_channel` exposes for the
CDG analysis and the simulator.
"""

from __future__ import annotations

from repro.topologies.torus import MeshTopology, TorusTopology

__all__ = ["dor_path", "dor_next_hop", "dor_channel", "dor_channels"]


def dor_next_hop(topo: TorusTopology | MeshTopology, u: int, t: int) -> int:
    """Next node after ``u`` on the dimension-ordered route to ``t``."""
    if u == t:
        raise ValueError("already at destination")
    cu = list(topo.coordinates(u))
    ct = topo.coordinates(t)
    wrap = isinstance(topo, TorusTopology)
    for axis, (a, b, size) in enumerate(zip(cu, ct, topo.dims)):
        if a == b:
            continue
        fwd = (b - a) % size
        bwd = (a - b) % size
        if wrap and size > 2:
            step = 1 if fwd <= bwd else -1
        else:
            step = 1 if b > a else -1
        cu[axis] = (a + step) % size
        return topo.node_at(cu)
    raise AssertionError("coordinates equal but nodes differ")


def dor_path(topo: TorusTopology | MeshTopology, s: int, t: int) -> list[int]:
    """Full dimension-ordered route ``[s, ..., t]``."""
    path = [s]
    u = s
    while u != t:
        u = dor_next_hop(topo, u, t)
        path.append(u)
    return path


def dor_channel(
    topo: TorusTopology | MeshTopology, u: int, v: int, crossed_dateline: bool
) -> tuple[int, int, str]:
    """Channel id for the DOR hop ``u -> v``.

    On a torus, hops in each dimension use VC class ``"dor0"`` until the
    route crosses that ring's dateline (the wrap between coordinate
    ``size-1`` and ``0``) and ``"dor1"`` afterwards -- the Dally-Seitz
    scheme that breaks each ring's cyclic dependency. On a mesh the VC
    class is always ``"dor0"``.
    """
    return (u, v, "dor1" if crossed_dateline else "dor0")


def dor_channels(topo: TorusTopology | MeshTopology, s: int, t: int) -> list[tuple[int, int, str]]:
    """Channel sequence of the DOR route, with per-dimension datelines."""
    path = dor_path(topo, s, t)
    channels = []
    crossed = [False] * len(topo.dims)
    for a, b in zip(path, path[1:]):
        ca, cb = topo.coordinates(a), topo.coordinates(b)
        axis = next(i for i in range(len(ca)) if ca[i] != cb[i])
        size = topo.dims[axis]
        # A wrap hop (size-1 <-> 0) crosses the dateline of this ring.
        if {ca[axis], cb[axis]} == {0, size - 1} and size > 2:
            crossed[axis] = True
        channels.append(dor_channel(topo, a, b, crossed[axis]))
    return channels
