"""Up*/down* routing (Silla & Duato, the paper's refs [13], [24]).

The topology-agnostic deadlock-free routing used by the paper's
simulation (Section VII-A) as the escape path. A BFS spanning tree
orients every channel either *up* (toward the root: to a node of
smaller BFS depth, ties broken by smaller id) or *down*; a legal route
never takes an up channel after a down channel, which makes the channel
dependency graph acyclic.

Because legality depends on the up/down history, the next-hop tables
are indexed by ``(phase, node, destination)`` where phase records
whether up channels are still allowed. Tables are built with one
backward BFS per destination over the 2n-state phase graph.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.topologies.base import Topology

__all__ = ["UpDownRouting"]

_UP_OK = 0  #: phase: up channels still permitted
_DOWN_ONLY = 1  #: phase: a down channel was taken; only down permitted


class UpDownRouting:
    """Deadlock-free up*/down* routing over an arbitrary topology.

    Parameters
    ----------
    topo:
        Any connected topology.
    root:
        Root of the BFS spanning tree. Defaults to a minimum-eccentricity
        node approximation: the node with the highest degree (a common
        heuristic; the paper does not specify its root choice).
    """

    def __init__(self, topo: Topology, root: int | None = None):
        self.topo = topo
        if root is None:
            root = int(np.argmax(topo.degrees))
        if not (0 <= root < topo.n):
            raise ValueError(f"root {root} out of range")
        self.root = root
        self._depth = self._bfs_depths(topo, root)
        # next_hop[phase][u][t] = (next node, next phase) or None
        self._next, self._dist = self._build_tables()

    # ------------------------------------------------------------------
    @staticmethod
    def _bfs_depths(topo: Topology, root: int) -> np.ndarray:
        depth = np.full(topo.n, -1, dtype=np.int64)
        depth[root] = 0
        q = deque([root])
        while q:
            u = q.popleft()
            for v in topo.neighbors(u):
                if depth[v] < 0:
                    depth[v] = depth[u] + 1
                    q.append(v)
        if (depth < 0).any():
            raise ValueError("topology is disconnected; up*/down* undefined")
        return depth

    def is_up(self, u: int, v: int) -> bool:
        """True iff the directed channel ``u -> v`` is an *up* channel."""
        du, dv = self._depth[u], self._depth[v]
        return bool(dv < du or (dv == du and v < u))

    # ------------------------------------------------------------------
    def _build_tables(self):
        """Backward BFS per destination over (node, phase) states.

        Forward transitions: from ``(u, UP_OK)`` an up channel keeps
        ``UP_OK`` and a down channel moves to ``DOWN_ONLY``; from
        ``(u, DOWN_ONLY)`` only down channels are legal.
        """
        topo = self.topo
        n = topo.n
        # dist[phase][u][t], next_node[phase][u][t], next_phase[...]
        dist = np.full((2, n, n), -1, dtype=np.int32)
        next_node = np.full((2, n, n), -1, dtype=np.int32)
        next_phase = np.full((2, n, n), -1, dtype=np.int8)

        # Reverse transitions into state (v, ph_v):
        #   up channel u->v:   (u, UP_OK) -> (v, UP_OK)         [ph_v == UP_OK]
        #   down channel u->v: (u, UP_OK) -> (v, DOWN_ONLY)
        #                      (u, DOWN_ONLY) -> (v, DOWN_ONLY) [ph_v == DOWN_ONLY]
        for t in range(n):
            q: deque[tuple[int, int]] = deque()
            for ph in (_UP_OK, _DOWN_ONLY):
                dist[ph][t][t] = 0
                q.append((t, ph))
            while q:
                v, ph_v = q.popleft()
                d = dist[ph_v][v][t]
                for u in topo.neighbors(v):
                    if self.is_up(u, v):
                        preds = [(u, _UP_OK)] if ph_v == _UP_OK else []
                    else:
                        preds = [(u, _UP_OK), (u, _DOWN_ONLY)] if ph_v == _DOWN_ONLY else []
                    for pu, pph in preds:
                        if dist[pph][pu][t] < 0:
                            dist[pph][pu][t] = d + 1
                            next_node[pph][pu][t] = v
                            next_phase[pph][pu][t] = ph_v
                            q.append((pu, pph))
        if (dist[_UP_OK] < 0).any():
            raise AssertionError("up*/down* failed to reach some pair; tree broken")
        self._next_node = next_node
        self._next_phase = next_phase
        return (next_node, next_phase), dist

    @classmethod
    def _restore(
        cls,
        topo: Topology,
        root: int,
        depth: np.ndarray,
        next_node: np.ndarray,
        next_phase: np.ndarray,
        dist: np.ndarray,
    ) -> "UpDownRouting":
        """Rehydrate from precomputed tables (the artifact cache's disk
        tier) without rerunning the per-destination BFS."""
        obj = cls.__new__(cls)
        obj.topo = topo
        obj.root = int(root)
        obj._depth = depth
        obj._next_node = next_node
        obj._next_phase = next_phase
        obj._next = (next_node, next_phase)
        obj._dist = dist
        return obj

    # ------------------------------------------------------------------
    def distance(self, s: int, t: int) -> int:
        """Length of the shortest *legal* path (>= graph distance)."""
        return int(self._dist[_UP_OK][s][t])

    def path(self, s: int, t: int) -> list[int]:
        """One shortest legal path (deterministic)."""
        path = [s]
        u, ph = s, _UP_OK
        while u != t:
            v = int(self._next_node[ph][u][t])
            ph = int(self._next_phase[ph][u][t])
            if v < 0:
                raise AssertionError(f"no legal up*/down* step from {u} to {t}")
            path.append(v)
            u = v
        return path

    def next_hops(self, u: int, t: int, down_only: bool = False) -> list[tuple[int, bool]]:
        """All legal next hops from ``u`` toward ``t`` that lie on *some*
        shortest legal path, as ``(neighbor, next_down_only)`` tuples."""
        ph = _DOWN_ONLY if down_only else _UP_OK
        if u == t:
            return []
        d = int(self._dist[ph][u][t])
        out = []
        for v in self.topo.neighbors(u):
            if self.is_up(u, v):
                if ph != _UP_OK:
                    continue
                nph = _UP_OK
            else:
                nph = _DOWN_ONLY
            if int(self._dist[nph][v][t]) == d - 1:
                out.append((v, nph == _DOWN_ONLY))
        return out

    def average_path_length(self) -> float:
        """Mean legal-path length over all ordered pairs (s != t).

        Exact: the integer distance total over the ordered-pair count
        (the all-zero diagonal contributes nothing), with no n x n
        temporary -- the old mask-based mean allocated two."""
        d = self._dist[_UP_OK]
        n = self.topo.n
        return float(d.sum(dtype=np.int64)) / (n * (n - 1))
