"""LASH: LAyered SHortest-path routing (Skeie/Lysne/Theiss).

The classic answer to "up*/down* paths are not minimal": keep one
deterministic *minimal* path per source-destination pair, and partition
the pairs into virtual-channel layers such that each layer's channel
dependency graph stays acyclic. Deadlock-free because a packet never
leaves its layer; minimal by construction. The open question per
topology is *how many layers* (VCs) it takes -- which is exactly what
our experiment measures for DSN vs torus vs RANDOM, since the paper's
setup has 4 VCs to spend.

Greedy first-fit assignment: pairs are processed in a deterministic
order; each pair's path goes to the first layer that stays acyclic
after adding its dependencies (checked incrementally with a cycle
search), opening a new layer when none fits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro import cache
from repro.topologies.base import Topology

__all__ = ["LashLayering", "lash_layering", "lash_adapter"]


@dataclass
class LashLayering:
    """Result of a LASH layer assignment."""

    topo: Topology
    num_layers: int
    layer_of: dict[tuple[int, int], int]  #: (s, t) -> layer index
    paths: dict[tuple[int, int], list[int]] = field(repr=False, default_factory=dict)

    def path(self, s: int, t: int) -> list[int]:
        return self.paths[(s, t)]

    def layer(self, s: int, t: int) -> int:
        return self.layer_of[(s, t)]

    def layer_sizes(self) -> list[int]:
        sizes = [0] * self.num_layers
        for l in self.layer_of.values():
            sizes[l] += 1
        return sizes

    def verify(self) -> None:
        """Recheck every layer's CDG acyclicity from scratch."""
        from repro.routing.cdg import assert_deadlock_free

        for layer in range(self.num_layers):
            routes = [
                [(a, b, f"lash{layer}") for a, b in zip(p, p[1:])]
                for (s, t), p in self.paths.items()
                if self.layer_of[(s, t)] == layer
            ]
            assert_deadlock_free(routes)


def lash_layering(
    topo: Topology,
    max_layers: int = 8,
    pairs: list[tuple[int, int]] | None = None,
) -> LashLayering:
    """Compute a LASH layer assignment for (all) ordered pairs.

    Raises ``RuntimeError`` if more than ``max_layers`` layers would be
    needed (i.e. the topology cannot be LASH-routed minimally within
    the available VCs).
    """
    table = cache.shortest_path_table(topo)
    if pairs is None:
        pairs = [(s, t) for s in range(topo.n) for t in range(topo.n) if s != t]
    # Longest paths first: they carry the most dependencies and are the
    # hardest to place (standard LASH ordering heuristic).
    pairs = sorted(pairs, key=lambda st: (-table.distance(st[0], st[1]), st))

    layers: list[nx.DiGraph] = []
    layer_of: dict[tuple[int, int], int] = {}
    paths: dict[tuple[int, int], list[int]] = {}

    for s, t in pairs:
        path = table.path(s, t)
        paths[(s, t)] = path
        deps = [
            ((path[i], path[i + 1]), (path[i + 1], path[i + 2]))
            for i in range(len(path) - 2)
        ]
        placed = False
        for li, g in enumerate(layers):
            added = []
            ok = True
            for a, b in deps:
                if g.has_edge(a, b):
                    continue
                # Adding a -> b creates a cycle iff a is already
                # reachable from b (incremental check: far cheaper than
                # a whole-graph cycle search per pair).
                if g.has_node(b) and g.has_node(a) and nx.has_path(g, b, a):
                    ok = False
                    break
                g.add_edge(a, b)
                added.append((a, b))
            if ok:
                layer_of[(s, t)] = li
                placed = True
                break
            g.remove_edges_from(added)
        if not placed:
            if len(layers) >= max_layers:
                raise RuntimeError(
                    f"LASH needs more than {max_layers} layers on {topo.name}"
                )
            g = nx.DiGraph()
            g.add_edges_from(deps)
            layers.append(g)
            layer_of[(s, t)] = len(layers) - 1

    return LashLayering(
        topo=topo, num_layers=len(layers), layer_of=layer_of, paths=paths
    )


def lash_adapter(layering: LashLayering):
    """Simulation adapter: source-routed LASH with VC = layer index.

    Deadlock-free because packets never change layer and each layer's
    CDG is acyclic (``layering.verify()``); minimal by construction.
    Requires ``SimConfig.num_vcs >= layering.num_layers``.
    """
    from repro.sim.adapters import SourceRoutedAdapter

    def route_fn(s: int, t: int) -> list[tuple[int, int]]:
        if s == t:  # same-switch traffic ejects without network hops
            return []
        path = layering.path(s, t)
        vc = layering.layer(s, t)
        return [(nxt, vc) for nxt in path[1:]]

    return SourceRoutedAdapter(route_fn)
