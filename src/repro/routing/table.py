"""All-pairs minimal routing tables.

``ShortestPathTable`` precomputes, for every (node, destination) pair,
the set of neighbors that lie on a minimal path -- the candidate set
the Duato-style adaptive routing draws from, and the "ideal minimal
routing" baseline of the balance analysis. Distances come from one
vectorized csgraph BFS (no per-pair Python search).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import shortest_path_matrix
from repro.topologies.base import Topology
from repro.util import make_rng

__all__ = ["ShortestPathTable"]


class ShortestPathTable:
    """Minimal next-hop sets for every ordered pair of a topology."""

    def __init__(self, topo: Topology):
        self.topo = topo
        self.dist = shortest_path_matrix(topo).astype(np.int32)

    def distance(self, s: int, t: int) -> int:
        return int(self.dist[s, t])

    def next_hops(self, u: int, t: int) -> list[int]:
        """Neighbors of ``u`` on a minimal path to ``t`` (sorted)."""
        if u == t:
            return []
        d = self.dist[u, t]
        return [v for v in self.topo.neighbors(u) if self.dist[v, t] == d - 1]

    def path(self, s: int, t: int, seed: int | None = None) -> list[int]:
        """One minimal path; deterministic lowest-id tie-break by default,
        or a uniform random choice among minimal next hops if ``seed``
        is given (used to spread load in the balance analysis)."""
        rng = make_rng(seed) if seed is not None else None
        path = [s]
        u = s
        while u != t:
            hops = self.next_hops(u, t)
            u = hops[int(rng.integers(len(hops)))] if rng is not None else hops[0]
            path.append(u)
        return path

    def path_count_matrix(self) -> np.ndarray:
        """Number of distinct minimal paths for every ordered pair.

        Path diversity is one of the small-world selling points the
        paper mentions ("short routes ... are abundantly provided").
        Computed by dynamic programming over increasing distance.
        """
        n = self.topo.n
        counts = np.zeros((n, n), dtype=np.float64)
        np.fill_diagonal(counts, 1.0)
        maxd = int(self.dist.max())
        for d in range(1, maxd + 1):
            for s in range(n):
                for v in self.topo.neighbors(s):
                    sel = self.dist[s] == d
                    onpath = sel & (self.dist[v] == d - 1)
                    counts[s, onpath] += counts[v, onpath]
        return counts
