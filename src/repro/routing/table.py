"""All-pairs minimal routing tables.

``ShortestPathTable`` precomputes, for every (node, destination) pair,
the set of neighbors that lie on a minimal path -- the candidate set
the Duato-style adaptive routing draws from, and the "ideal minimal
routing" baseline of the balance analysis. Distances come from one
vectorized csgraph BFS (no per-pair Python search); the minimal
next-hop sets are materialized once into a CSR-style int32 array (one
vectorized pass over ``dist`` and the adjacency structure), so the
per-packet lookups on the simulator hot path are plain array slices.

Tables are expensive to build and immutable once built -- prefer
:func:`repro.cache.shortest_path_table` over constructing one directly
when the same topology is analyzed or simulated more than once.
"""

from __future__ import annotations

import time

import numpy as np

from repro import telemetry
from repro.analysis.metrics import shortest_path_matrix
from repro.topologies.base import Topology
from repro.util import make_rng

__all__ = ["ShortestPathTable", "build_next_hop_csr"]


def build_next_hop_csr(topo: Topology, dist: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Minimal next-hop sets for all ordered pairs, as one CSR table.

    Returns ``(indptr, indices)``: the minimal next hops of pair
    ``(u, t)`` are ``indices[indptr[u * n + t] : indptr[u * n + t + 1]]``
    (int32, ascending). Built with one vectorized comparison over all
    directed edges x destinations instead of a per-pair Python scan.
    """
    n = topo.n
    adj = topo.adjacency_csr
    degs = np.diff(adj.indptr)
    rows = np.repeat(np.arange(n, dtype=np.int32), degs)
    cols = adj.indices.astype(np.int32, copy=False)

    # ok[e, t]: edge e = (rows[e] -> cols[e]) is a minimal step toward t.
    ok = dist[cols, :] == dist[rows, :] - 1

    counts = np.zeros((n, n), dtype=np.int64)
    np.add.at(counts, rows, ok)
    indptr = np.zeros(n * n + 1, dtype=np.int64)
    np.cumsum(counts.ravel(), out=indptr[1:])

    # indices ordered by (u, t, neighbor); neighbors stay ascending
    # because adjacency rows are sorted.
    parts = []
    for u in range(n):
        s, e = adj.indptr[u], adj.indptr[u + 1]
        sel = ok[s:e, :].T  # (n, deg)
        parts.append(np.broadcast_to(cols[s:e], sel.shape)[sel])
    indices = np.concatenate(parts) if parts else np.zeros(0, dtype=np.int32)
    return indptr, np.ascontiguousarray(indices, dtype=np.int32)


class ShortestPathTable:
    """Minimal next-hop sets for every ordered pair of a topology."""

    def __init__(self, topo: Topology, dist: np.ndarray | None = None):
        self.topo = topo
        if dist is None:
            dist = shortest_path_matrix(topo)
        self.dist = np.asarray(dist).astype(np.int32, copy=False)
        self._nh_indptr: np.ndarray | None = None
        self._nh_indices: np.ndarray | None = None

    # ------------------------------------------------------------------
    # next-hop table (built lazily; injectable from the artifact cache)
    # ------------------------------------------------------------------
    def _ensure_next_hops(self) -> None:
        if self._nh_indptr is None:
            t0 = time.perf_counter()
            self._nh_indptr, self._nh_indices = build_next_hop_csr(self.topo, self.dist)
            telemetry.observe("routing.next_hop_build_s", time.perf_counter() - t0)
            telemetry.count("routing.next_hop_builds")
            telemetry.gauge_set(
                "routing.next_hop_csr_bytes",
                float(self._nh_indptr.nbytes + self._nh_indices.nbytes),
            )
            telemetry.gauge_set("routing.next_hop_entries", float(len(self._nh_indices)))

    def next_hop_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The raw ``(indptr, indices)`` CSR next-hop table."""
        self._ensure_next_hops()
        return self._nh_indptr, self._nh_indices

    def set_next_hop_arrays(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        """Install a precomputed next-hop table (cache rehydration)."""
        self._nh_indptr = np.asarray(indptr, dtype=np.int64)
        self._nh_indices = np.asarray(indices, dtype=np.int32)

    # ------------------------------------------------------------------
    def distance(self, s: int, t: int) -> int:
        return int(self.dist[s, t])

    def next_hops_array(self, u: int, t: int) -> np.ndarray:
        """Neighbors of ``u`` on a minimal path to ``t`` (int32 view,
        ascending; empty when ``u == t``). The hot-path lookup."""
        self._ensure_next_hops()
        base = u * self.topo.n + t
        return self._nh_indices[self._nh_indptr[base] : self._nh_indptr[base + 1]]

    def next_hops(self, u: int, t: int) -> list[int]:
        """Neighbors of ``u`` on a minimal path to ``t`` (sorted)."""
        if u == t:
            return []
        return self.next_hops_array(u, t).tolist()

    def path(self, s: int, t: int, seed: int | None = None) -> list[int]:
        """One minimal path; deterministic lowest-id tie-break by default,
        or a uniform random choice among minimal next hops if ``seed``
        is given (used to spread load in the balance analysis)."""
        self._ensure_next_hops()
        rng = make_rng(seed) if seed is not None else None
        n = self.topo.n
        indptr, indices = self._nh_indptr, self._nh_indices
        path = [s]
        u = s
        while u != t:
            lo, hi = indptr[u * n + t], indptr[u * n + t + 1]
            u = int(indices[lo + rng.integers(hi - lo)]) if rng is not None else int(indices[lo])
            path.append(u)
        return path

    def path_count_matrix(self) -> np.ndarray:
        """Number of distinct minimal paths for every ordered pair.

        Path diversity is one of the small-world selling points the
        paper mentions ("short routes ... are abundantly provided").
        Computed by dynamic programming over increasing distance, with
        each distance round batched over all directed edges at once.
        """
        n = self.topo.n
        adj = self.topo.adjacency_csr
        rows = np.repeat(np.arange(n, dtype=np.int32), np.diff(adj.indptr))
        cols = adj.indices.astype(np.int32, copy=False)
        dist = self.dist
        counts = np.zeros((n, n), dtype=np.float64)
        np.fill_diagonal(counts, 1.0)
        maxd = int(dist.max())
        for d in range(1, maxd + 1):
            # Pairs finalized this round read only round d-1 values, so
            # the batched scatter-add equals the sequential DP exactly.
            onpath = (dist[rows, :] == d) & (dist[cols, :] == d - 1)
            np.add.at(counts, rows, np.where(onpath, counts[cols, :], 0.0))
        return counts
