"""Load-test harness for the serving daemon: ``python -m repro loadtest``.

Replays a query mix against a running daemon (or one it spawns with
``--spawn``) and reports warm/miss latency percentiles and sustained
throughput -- the numbers the ``serve_latency`` bench gate pins.

The mix models the mass-evaluation workloads the serving tier exists
for (thousands of overlapping candidate evaluations): a fixed
candidate set of query paths is sampled with **zipfian hot-key skew**
(request probability of the rank-``r`` candidate is proportional to
``1 / r**s``), so a handful of hot keys dominate -- exactly the
distribution request coalescing and the memory LRU are supposed to
win on. Sampling is seeded and deterministic: the same
``(candidates, requests, skew, seed)`` always replays the same mix.

The client is plain asyncio over keep-alive sockets -- ``concurrency``
connections each draining a shard of the mix -- so the harness needs
nothing beyond the standard library and measures the daemon, not an
HTTP client stack.
"""

from __future__ import annotations

import asyncio
import json
import signal
import subprocess
import sys
import time
import urllib.parse
from dataclasses import dataclass, field

import numpy as np

from repro.serve import handlers

__all__ = [
    "LoadtestReport",
    "default_candidates",
    "build_mix",
    "run_loadtest",
    "percentile",
    "spawn_daemon",
]

#: Warm sources (no compute happened on the request path).
WARM_SOURCES = ("memory", "disk")


def percentile(values: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) by nearest-rank; 0.0 for empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


# ----------------------------------------------------------------------
# mix construction
# ----------------------------------------------------------------------
def default_candidates(
    n: int = 16,
    seed: int = 1,
    kinds: tuple[str, ...] = ("dsn", "torus", "random"),
    patterns: tuple[str, ...] = ("uniform", "bit_reversal"),
    loads: tuple[float, ...] = (1.0, 2.0, 4.0),
) -> list[str]:
    """The stock candidate set: every latency point of a small
    kinds x patterns x loads grid (quick config) plus one topology-
    metrics query per kind -- a miniature cluster-comparison study."""
    paths = [
        handlers.job_path(handlers.latency_job(kind, pattern, load, n=n, seed=seed))
        for kind in kinds
        for pattern in patterns
        for load in loads
    ]
    paths.extend(handlers.job_path(handlers.topology_job(kind, n=n, seed=seed))
                 for kind in kinds)
    return paths


def build_mix(candidates: list[str], requests: int, skew: float = 1.1,
              seed: int = 0) -> list[str]:
    """Sample ``requests`` paths from ``candidates`` with zipfian skew.

    ``skew=0`` degenerates to uniform. Rank order is a seeded shuffle
    of the candidate list, so which keys are "hot" is deterministic but
    not just "first in the grid".
    """
    if not candidates:
        raise ValueError("empty candidate set")
    rng = np.random.default_rng(seed)
    ranked = list(candidates)
    rng.shuffle(ranked)
    weights = 1.0 / np.arange(1, len(ranked) + 1, dtype=float) ** skew
    weights /= weights.sum()
    picks = rng.choice(len(ranked), size=requests, p=weights)
    return [ranked[i] for i in picks]


# ----------------------------------------------------------------------
# the client
# ----------------------------------------------------------------------
@dataclass
class LoadtestReport:
    """What one replay measured."""

    requests: int = 0
    errors: int = 0  #: non-200 responses and transport failures
    rejected: int = 0  #: 429 backpressure responses (subset of non-200)
    by_source: dict = field(default_factory=dict)  #: source -> count
    warm_p50_ms: float = 0.0
    warm_p99_ms: float = 0.0
    miss_p99_ms: float = 0.0
    wall_s: float = 0.0
    throughput_rps: float = 0.0
    bodies: dict = field(default_factory=dict)  #: path -> first body (capture=True)

    @property
    def warm_hits(self) -> int:
        return sum(self.by_source.get(s, 0) for s in WARM_SOURCES)

    @property
    def warm_hit_rate(self) -> float:
        return self.warm_hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "rejected": self.rejected,
            "by_source": dict(self.by_source),
            "warm_hit_rate": round(self.warm_hit_rate, 4),
            "warm_p50_ms": round(self.warm_p50_ms, 3),
            "warm_p99_ms": round(self.warm_p99_ms, 3),
            "miss_p99_ms": round(self.miss_p99_ms, 3),
            "wall_s": round(self.wall_s, 3),
            "throughput_rps": round(self.throughput_rps, 1),
        }

    def summary(self) -> str:
        return (
            f"{self.requests} requests in {self.wall_s:.2f}s "
            f"({self.throughput_rps:.0f} req/s), {self.errors} error(s), "
            f"{self.rejected} rejected, warm hit rate "
            f"{100 * self.warm_hit_rate:.1f}%, warm p50/p99 "
            f"{self.warm_p50_ms:.2f}/{self.warm_p99_ms:.2f} ms, "
            f"miss p99 {self.miss_p99_ms:.2f} ms"
        )


async def _get(reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
               host: str, path: str) -> tuple[int, dict, bytes]:
    """One GET on an open keep-alive connection."""
    writer.write(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        if ":" in line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers.get("content-length", "0")))
    return status, headers, body


async def _worker(host: str, port: int, paths: list[str], timeout: float,
                  samples: list, bodies: dict | None) -> None:
    """One connection draining its shard of the mix in order."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for path in paths:
            t0 = time.perf_counter()
            try:
                status, headers, body = await asyncio.wait_for(
                    _get(reader, writer, host, path), timeout=timeout
                )
            except (asyncio.TimeoutError, ConnectionError, asyncio.IncompleteReadError):
                samples.append((path, 0, "transport", time.perf_counter() - t0))
                reader, writer = await asyncio.open_connection(host, port)
                continue
            source = headers.get("x-repro-source", "")
            samples.append((path, status, source, time.perf_counter() - t0))
            if bodies is not None and status == 200 and path not in bodies:
                bodies[path] = json.loads(body.decode())
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _replay(host: str, port: int, mix: list[str], concurrency: int,
                  timeout: float, capture: bool):
    samples: list = []
    bodies: dict | None = {} if capture else None
    shards: list[list[str]] = [[] for _ in range(max(1, concurrency))]
    for i, path in enumerate(mix):
        shards[i % len(shards)].append(path)
    t0 = time.perf_counter()
    await asyncio.gather(*(
        _worker(host, port, shard, timeout, samples, bodies)
        for shard in shards if shard
    ))
    return samples, bodies, time.perf_counter() - t0


def run_loadtest(host: str, port: int, mix: list[str], concurrency: int = 8,
                 timeout: float = 120.0, capture: bool = False) -> LoadtestReport:
    """Replay ``mix`` against a running daemon and measure it.

    ``capture=True`` keeps the first 200-response body per path (the
    bench gate compares them byte-for-byte against direct in-process
    computes). Latencies are split by the ``X-Repro-Source`` header:
    memory/disk responses are *warm*, computed/coalesced are *miss*.
    """
    samples, bodies, wall = asyncio.run(
        _replay(host, port, mix, concurrency, timeout, capture)
    )
    report = LoadtestReport(requests=len(samples), wall_s=wall)
    warm_ms: list[float] = []
    miss_ms: list[float] = []
    for _path, status, source, dt in samples:
        if status != 200:
            report.errors += 1
            if status == 429:
                report.rejected += 1
            continue
        report.by_source[source] = report.by_source.get(source, 0) + 1
        (warm_ms if source in WARM_SOURCES else miss_ms).append(dt * 1000.0)
    report.warm_p50_ms = percentile(warm_ms, 0.50)
    report.warm_p99_ms = percentile(warm_ms, 0.99)
    report.miss_p99_ms = percentile(miss_ms, 0.99)
    report.throughput_rps = report.requests / wall if wall > 0 else 0.0
    if bodies is not None:
        report.bodies = bodies
    return report


def populate(paths: list[str]) -> int:
    """Compute every distinct query directly in-process (publishing to
    the active ``REPRO_STORE_DIR``), so a subsequent replay is warm.
    Returns the number of distinct queries computed."""
    unique = list(dict.fromkeys(paths))
    for path in unique:
        target, _, query = path.partition("?")
        params = {k: v[-1] for k, v in urllib.parse.parse_qs(query).items()}
        handlers.compute_job(handlers.parse_query(target, params))
    return len(unique)


# ----------------------------------------------------------------------
# daemon spawning (CLI --spawn and the CI smoke step)
# ----------------------------------------------------------------------
class spawn_daemon:
    """Context manager running ``python -m repro serve`` as a child.

    Parses the daemon's ``serving on http://host:port`` announce line
    for the bound port, and on exit sends SIGTERM and checks the child
    exits cleanly (returncode 0) -- the CI smoke step's shutdown
    assertion."""

    def __init__(self, extra_args: list[str] | None = None, startup_timeout: float = 60.0):
        self.args = extra_args or []
        self.startup_timeout = startup_timeout
        self.proc: subprocess.Popen | None = None
        self.host = "127.0.0.1"
        self.port = 0
        self.clean_exit: bool | None = None

    def __enter__(self) -> "spawn_daemon":
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", *self.args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        deadline = time.monotonic() + self.startup_timeout
        while True:
            if time.monotonic() > deadline:
                self.proc.kill()
                raise RuntimeError("spawned daemon never announced its port")
            line = self.proc.stdout.readline()
            if not line and self.proc.poll() is not None:
                raise RuntimeError(f"daemon exited at startup (rc={self.proc.returncode})")
            if line.startswith("serving on http://"):
                hostport = line.strip().rsplit("/", 1)[-1]
                self.host, port = hostport.rsplit(":", 1)
                self.port = int(port)
                return self

    def __exit__(self, *exc) -> None:
        if self.proc is None:
            return
        self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=10.0)
        self.clean_exit = self.proc.returncode == 0
