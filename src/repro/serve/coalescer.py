"""Request coalescing for the serving daemon.

The store already coalesces *computes* (thread single-flight,
per-entry locks, batch dedup -- :mod:`repro.store.runstore`); this
module adds the missing asyncio layer above it: concurrent HTTP
requests for the same key digest share one pending fill instead of
each enqueueing their own job. The first requester of a digest is the
*leader* (it enqueues the compute job); everyone who arrives while the
future is pending is a *follower* and just awaits the same future.

All methods run on the event loop thread, so a plain dict is race-free
-- there is never an ``await`` between :meth:`claim` and the caller's
enqueue decision.
"""

from __future__ import annotations

import asyncio

__all__ = ["QueueSaturated", "Coalescer"]


class QueueSaturated(RuntimeError):
    """The miss-fill queue is full; the caller should answer 429."""


class Coalescer:
    """Digest -> pending-result future; one fill per distinct query."""

    def __init__(self) -> None:
        self._futures: dict[str, asyncio.Future] = {}

    def __len__(self) -> int:
        return len(self._futures)

    def claim(self, digest: str) -> tuple[asyncio.Future, bool]:
        """Join the pending fill for ``digest``; returns ``(future,
        leader)`` where ``leader`` is True for the requester that must
        enqueue the compute job."""
        fut = self._futures.get(digest)
        if fut is not None:
            return fut, False
        fut = asyncio.get_running_loop().create_future()
        self._futures[digest] = fut
        return fut, True

    def abandon(self, digest: str) -> None:
        """Leader backed out before enqueueing (queue saturated): drop
        the future. No follower can exist yet -- there was no ``await``
        since :meth:`claim` -- so cancelling is silent."""
        fut = self._futures.pop(digest, None)
        if fut is not None and not fut.done():
            fut.cancel()

    def resolve(self, digest: str, result) -> None:
        fut = self._futures.pop(digest, None)
        if fut is not None and not fut.done():
            fut.set_result(result)

    def fail(self, digest: str, exc: BaseException) -> None:
        fut = self._futures.pop(digest, None)
        if fut is not None and not fut.done():
            fut.set_exception(exc)

    def fail_all(self, exc: BaseException) -> None:
        """Shutdown path: wake every waiter with ``exc``."""
        for digest in list(self._futures):
            self.fail(digest, exc)
