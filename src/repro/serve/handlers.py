"""Query model for the serving daemon: parse, key, compute.

A *job* is a flat hashable tuple fully determining one answer --
exactly the contract :func:`repro.store.dedup_map` requires -- and
every layer (HTTP handler, load-test client, bench gate, direct
in-process calls) goes through the same three functions, which is what
makes the byte-identity acceptance check meaningful rather than
circular:

* :func:`latency_job` / :func:`topology_job` build the job tuple;
* :func:`job_key` maps a job to its :class:`~repro.store.keys.RunKey`
  -- for latency queries this is *the same* ``sim_run_key`` the
  experiment drivers use, so the daemon serves entries a sweep
  published and vice versa;
* :func:`compute_job` computes (and publishes) the encoded result
  document for a job, module-level so a process pool can pickle it.

Latency queries default to the reduced ``quick`` simulation
configuration (CI-sized warmup/measure/drain); ``full=1`` selects the
paper's full :class:`~repro.sim.config.SimConfig`.
"""

from __future__ import annotations

import json

from repro import store
from repro.sim import SimConfig
from repro.store.codec import encode_result

__all__ = [
    "QueryError",
    "KINDS",
    "PATTERNS",
    "ROUTINGS",
    "ENGINES",
    "sim_config",
    "latency_job",
    "topology_job",
    "design_job",
    "parse_query",
    "job_path",
    "job_key",
    "compute_job",
    "safe_compute_job",
    "result_text",
]

#: Accepted values per query field (closed vocabularies: a typo is a
#: 400, never a surprise cache entry).
KINDS = (
    "dsn", "dsn_e", "dsn_v", "dsn_d", "torus", "torus3d", "mesh", "random",
    "dln", "random_regular", "kleinberg", "ring", "hypercube", "debruijn", "ccc",
)
PATTERNS = ("uniform", "bit_reversal", "bit_complement", "transpose", "neighbor")
ROUTINGS = ("adaptive", "updown", "dor", "custom", "minimal_custom")
ENGINES = ("network", "flit")

#: Reduced simulation windows for interactive serving (mirrors the
#: bench/test quick config; ``full=1`` selects the paper's defaults).
QUICK_CONFIG_KWARGS = dict(warmup_ns=2_000.0, measure_ns=6_000.0, drain_ns=12_000.0)


class QueryError(ValueError):
    """Malformed query: the daemon answers 400 with this message."""


def sim_config(full: bool = False) -> SimConfig:
    """The simulation configuration a latency query runs under."""
    return SimConfig() if full else SimConfig(**QUICK_CONFIG_KWARGS)


# ----------------------------------------------------------------------
# job construction / parsing
# ----------------------------------------------------------------------
def latency_job(
    kind: str,
    pattern: str,
    load: float,
    n: int = 64,
    seed: int = 0,
    routing: str = "adaptive",
    engine: str = "network",
    full: bool = False,
) -> tuple:
    """One latency-curve point as a hashable, picklable job tuple."""
    return ("latency", kind, pattern, float(load), int(n), int(seed),
            routing, engine, bool(full))


def topology_job(kind: str, n: int = 64, seed: int = 0) -> tuple:
    """One topology-metrics query as a job tuple."""
    return ("topo", kind, int(n), int(seed))


def design_job(n: int, budget: int = 5, seeds: int = 2, sources: int | None = None) -> tuple:
    """One design-frontier query as a job tuple.

    The answer is the whole frontier artifact for ``(n, budget,
    seeds)`` -- the read path over frontiers a ``python -m repro
    design`` run (or a cold fill here) precomputed.
    """
    if sources is None:
        from repro.design.objectives import design_sources

        sources = design_sources()
    return ("design", int(n), int(budget), int(seeds), int(sources))


def _field(params: dict, name: str, default=None, cast=str, choices=None):
    raw = params.get(name)
    if raw is None or raw == "":
        if default is None:
            raise QueryError(f"missing required parameter {name!r}")
        value = default
    else:
        try:
            value = cast(raw)
        except (TypeError, ValueError):
            raise QueryError(f"bad value for {name!r}: {raw!r}")
    if choices is not None and value not in choices:
        raise QueryError(f"unknown {name} {value!r} (choose from {', '.join(choices)})")
    return value


def _flag(params: dict, name: str) -> bool:
    return str(params.get(name, "")).strip().lower() in ("1", "true", "yes", "on")


def parse_query(path: str, params: dict) -> tuple:
    """Map an endpoint path + query parameters to a job tuple.

    Raises :class:`QueryError` on unknown paths or malformed fields.
    """
    if path == "/v1/latency":
        n = _field(params, "n", default=64, cast=int)
        if not 2 <= n <= 4096:
            raise QueryError(f"n out of range: {n}")
        load = _field(params, "load", cast=float)
        if not 0.0 < load <= 1024.0:
            raise QueryError(f"load out of range: {load}")
        return latency_job(
            kind=_field(params, "kind", choices=KINDS),
            pattern=_field(params, "pattern", choices=PATTERNS),
            load=load,
            n=n,
            seed=_field(params, "seed", default=0, cast=int),
            routing=_field(params, "routing", default="adaptive", choices=ROUTINGS),
            engine=_field(params, "engine", default="network", choices=ENGINES),
            full=_flag(params, "full"),
        )
    if path == "/v1/topology":
        n = _field(params, "n", default=64, cast=int)
        if not 2 <= n <= 65536:
            raise QueryError(f"n out of range: {n}")
        return topology_job(
            kind=_field(params, "kind", choices=KINDS),
            n=n,
            seed=_field(params, "seed", default=0, cast=int),
        )
    if path == "/v1/design":
        from repro.design.space import MIN_DESIGN_N

        n = _field(params, "n", default=64, cast=int)
        if not MIN_DESIGN_N <= n <= 65536:
            raise QueryError(f"n out of range: {n}")
        budget = _field(params, "budget", default=5, cast=int)
        if not 2 <= budget <= 64:
            raise QueryError(f"budget out of range: {budget}")
        seeds = _field(params, "seeds", default=2, cast=int)
        if not 1 <= seeds <= 16:
            raise QueryError(f"seeds out of range: {seeds}")
        sources = _field(params, "sources", default=0, cast=int) or None
        return design_job(n, budget=budget, seeds=seeds, sources=sources)
    raise QueryError(f"unknown query path {path!r}")


def job_path(job: tuple) -> str:
    """The HTTP path+query that parses back to ``job`` (for load-test
    mixes and docs; inverse of :func:`parse_query`)."""
    if job[0] == "latency":
        _, kind, pattern, load, n, seed, routing, engine, full = job
        path = (f"/v1/latency?kind={kind}&pattern={pattern}&load={load:g}"
                f"&n={n}&seed={seed}&routing={routing}&engine={engine}")
        return path + ("&full=1" if full else "")
    if job[0] == "topo":
        _, kind, n, seed = job
        return f"/v1/topology?kind={kind}&n={n}&seed={seed}"
    if job[0] == "design":
        _, n, budget, seeds, sources = job
        return f"/v1/design?n={n}&budget={budget}&seeds={seeds}&sources={sources}"
    raise ValueError(f"not a job tuple: {job!r}")


# ----------------------------------------------------------------------
# keys and computes
# ----------------------------------------------------------------------
def job_key(job: tuple) -> store.RunKey:
    """The store key a job's answer lives under.

    Latency jobs key through the experiment drivers'
    :func:`~repro.store.keys.sim_run_key` (same topology fingerprint,
    same config fingerprint), so the daemon and ``run_curve`` share
    entries. Topology construction is memoized in-process
    (:mod:`repro.cache`), so repeated keying of a hot kind is cheap.
    """
    if job[0] == "latency":
        from repro.experiments.latency import _sim_topology

        _, kind, pattern, load, n, seed, routing, engine, full = job
        topo = _sim_topology(kind, n, seed, routing)
        return store.sim_run_key(
            topo, routing, pattern, load, sim_config(full), seed, engine=engine
        )
    if job[0] == "topo":
        _, kind, n, seed = job
        return store.run_key("topo_metrics", {"kind": kind, "n": n, "seed": seed, "v": 1})
    if job[0] == "design":
        from repro.design.frontier import frontier_key

        _, n, budget, seeds, sources = job
        return frontier_key(n, budget, seeds, sources)
    raise ValueError(f"not a job tuple: {job!r}")


def _topo_metrics(kind: str, n: int, seed: int) -> dict:
    from repro.analysis.metrics import analyze
    from repro.experiments.sweeps import make_topology

    m = analyze(make_topology(kind, n, seed=seed))
    return {
        "name": m.name,
        "n": m.n,
        "num_links": m.num_links,
        "diameter": m.diameter,
        "aspl": m.aspl,
        "average_degree": m.average_degree,
        "min_degree": m.min_degree,
        "max_degree": m.max_degree,
    }


def compute_job(job: tuple) -> dict:
    """Compute one job and return its *encoded result document* -- the
    very dict stored under the job's key, so a computed answer is
    byte-identical to the warm hit the next request gets.

    Goes through the store (:func:`~repro.store.cached_sim` /
    :func:`~repro.store.cached_value`), so the result is published for
    every later reader and concurrent computes coalesce on the store's
    per-entry locks. Module-level and tuple-argumented: picklable for
    ``dedup_map``'s process pool.
    """
    if job[0] == "latency":
        from repro.experiments.latency import _curve_point

        _, kind, pattern, load, n, seed, routing, engine, full = job
        result = _curve_point(
            (kind, pattern, load, n, sim_config(full), seed, routing, engine)
        )
        return encode_result(result)
    if job[0] == "topo":
        _, kind, n, seed = job
        return store.cached_value(job_key(job), lambda: _topo_metrics(kind, n, seed))
    if job[0] == "design":
        from repro.design.frontier import compute_frontier

        _, n, budget, seeds, sources = job
        # compute_frontier memoizes under job_key(job) itself; fills
        # run the evaluations serially (workers=0) inside the daemon's
        # fill pool rather than forking a nested pool per request.
        return compute_frontier(n, degree_budget=budget, seeds=seeds,
                                sources=sources, workers=0)
    raise ValueError(f"not a job tuple: {job!r}")


def safe_compute_job(job: tuple) -> tuple:
    """:func:`compute_job` that returns ``("ok", doc)`` or ``("error",
    message)`` instead of raising -- one bad job in a fill batch must
    not take down its batchmates (or the daemon's filler task)."""
    try:
        return "ok", compute_job(job)
    except Exception as exc:  # noqa: BLE001 - daemon robustness boundary
        return "error", f"{type(exc).__name__}: {exc}"


def result_text(doc: dict) -> str:
    """Canonical JSON for identity checks (sorted keys, no whitespace)."""
    return json.dumps(doc, sort_keys=True, allow_nan=True)
