"""Serving tier: HTTP daemon over the sharded run store.

``python -m repro serve`` answers topology-metric and latency-curve
queries out of :mod:`repro.store` -- warm hits are one store lookup,
misses coalesce (asyncio futures in the daemon, per-entry locks across
processes) and fill through a bounded ``parallel_map`` worker pool,
and a saturated queue answers 429 + Retry-After instead of buffering
unboundedly. ``python -m repro loadtest`` replays a zipf-skewed query
mix against the daemon and reports warm/miss p50/p99 and throughput
(pinned by the ``serve_latency`` bench gate). See ``docs/serving.md``.
"""

from repro.serve.coalescer import Coalescer, QueueSaturated
from repro.serve.daemon import Daemon, ServeConfig, ServerThread, serve_forever
from repro.serve.handlers import (
    QueryError,
    compute_job,
    design_job,
    job_key,
    job_path,
    latency_job,
    parse_query,
    result_text,
    sim_config,
    topology_job,
)
from repro.serve.loadtest import (
    LoadtestReport,
    build_mix,
    default_candidates,
    percentile,
    populate,
    run_loadtest,
    spawn_daemon,
)

__all__ = [
    "Coalescer",
    "Daemon",
    "LoadtestReport",
    "QueryError",
    "QueueSaturated",
    "ServeConfig",
    "ServerThread",
    "build_mix",
    "compute_job",
    "default_candidates",
    "job_key",
    "job_path",
    "design_job",
    "latency_job",
    "parse_query",
    "percentile",
    "populate",
    "result_text",
    "run_loadtest",
    "serve_forever",
    "sim_config",
    "spawn_daemon",
    "topology_job",
]
