"""The serving daemon: ``python -m repro serve``.

A long-lived asyncio HTTP/1.1 server answering topology-metric and
latency-curve queries out of the run store -- the "mass candidate
evaluation" tier the ROADMAP's cluster-comparison workloads need. The
hot path is read-mostly: a warm query is one store lookup (memory LRU,
then sharded disk) and never simulates. Misses flow through three
stages of coalescing:

1. the asyncio :class:`~repro.serve.coalescer.Coalescer` collapses
   concurrent identical requests onto one pending future;
2. the leader enqueues its job on a *bounded* queue; a single filler
   task drains the queue in batches and runs them through
   :func:`repro.store.dedup_map` (which fans out via ``parallel_map``
   with ``fill_workers`` workers) in a thread executor, keeping the
   event loop responsive while simulations run;
3. the store's own per-entry locks coalesce computes against other
   processes sharing ``REPRO_STORE_DIR``.

When the queue is full the daemon answers **429 + Retry-After**
instead of buffering unboundedly -- backpressure, not collapse.
Responses carry ``X-Repro-Source: memory|disk|computed|coalesced`` so
clients (and the load-test harness) can split warm/miss latencies.
``/metrics`` exports the telemetry registry as Prometheus text; the
store's stats are bridged into that registry, so cache effectiveness
comes for free. SIGTERM/SIGINT shut the daemon down cleanly (pending
waiters are failed, the socket closes, ``serve()`` returns).
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
import urllib.parse
from dataclasses import dataclass

from repro import store, telemetry
from repro.serve import handlers
from repro.serve.coalescer import Coalescer, QueueSaturated

__all__ = ["ServeConfig", "Daemon", "ServerThread", "serve_forever"]

_MAX_HEADER_BYTES = 32 * 1024


@dataclass
class ServeConfig:
    """Daemon knobs (CLI flags / ``REPRO_SERVE_*`` env map onto these)."""

    host: str = "127.0.0.1"
    port: int = 8351  #: 0 = ephemeral (bound port via ``Daemon.port``)
    fill_workers: int = 1  #: parallel_map workers for miss fills
    fill_batch: int = 8  #: max jobs drained into one fill batch
    queue_limit: int = 64  #: pending miss jobs before 429
    retry_after_s: float = 1.0  #: hint sent with 429 responses
    enable_telemetry: bool = True  #: turn the registry on at startup


class Daemon:
    """One serving instance; :meth:`serve` runs the full lifecycle."""

    def __init__(self, config: ServeConfig | None = None):
        self.cfg = config or ServeConfig()
        self.coalescer = Coalescer()
        self.port: int | None = None  #: bound port, set once listening
        #: always-on request accounting (exposed at ``/stats``; the
        #: telemetry registry mirrors these when enabled)
        self.counters = {
            "requests": 0, "memory": 0, "disk": 0, "computed": 0,
            "coalesced": 0, "rejected": 0, "errors": 0, "bad_requests": 0,
        }
        self._queue: asyncio.Queue | None = None
        self._stop: asyncio.Event | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def serve(self, ready=None, install_signals: bool = False) -> None:
        """Listen, answer, and block until :meth:`shutdown` (or a
        signal, with ``install_signals=True``). ``ready(port)`` fires
        once the socket is bound."""
        if self.cfg.enable_telemetry:
            telemetry.enable()
        self._stop = asyncio.Event()
        self._queue = asyncio.Queue(maxsize=self.cfg.queue_limit)
        loop = asyncio.get_running_loop()
        if install_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, self._stop.set)
        server = await asyncio.start_server(self._handle_conn, self.cfg.host, self.cfg.port)
        self.port = server.sockets[0].getsockname()[1]
        filler = asyncio.create_task(self._filler())
        if ready is not None:
            ready(self.port)
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            filler.cancel()
            try:
                await filler
            except asyncio.CancelledError:
                pass
            self.coalescer.fail_all(RuntimeError("daemon shutting down"))
            if install_signals:
                for sig in (signal.SIGTERM, signal.SIGINT):
                    loop.remove_signal_handler(sig)

    def shutdown(self) -> None:
        if self._stop is not None:
            self._stop.set()

    # ------------------------------------------------------------------
    # miss filling
    # ------------------------------------------------------------------
    async def _filler(self) -> None:
        """Drain the miss queue in batches through the worker pool.

        One fill batch = one ``dedup_map`` call (batch-level dedup plus
        ``parallel_map`` fan-out), run in a thread executor so the loop
        keeps serving warm hits while simulations run.
        """
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.cfg.fill_batch and not self._queue.empty():
                batch.append(self._queue.get_nowait())
            jobs = [job for job, _ in batch]
            telemetry.count("serve.fill_batches")
            t0 = time.perf_counter()
            try:
                outcomes = await loop.run_in_executor(
                    None, _fill_batch, jobs, self.cfg.fill_workers
                )
            except Exception as exc:  # noqa: BLE001 - keep the filler alive
                for _, digest in batch:
                    self.coalescer.fail(digest, exc)
            else:
                for (_, digest), (status, payload) in zip(batch, outcomes):
                    if status == "ok":
                        self.coalescer.resolve(digest, payload)
                    else:
                        self.coalescer.fail(digest, RuntimeError(payload))
            telemetry.observe("serve.fill_batch_s", time.perf_counter() - t0)
            for _ in batch:
                self._queue.task_done()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                method, target, headers = request
                path, params = _split_target(target)
                t0 = time.perf_counter()
                status, body, ctype, extra = await self._dispatch(method, path, params)
                telemetry.observe("serve.request_s", time.perf_counter() - t0)
                keep_alive = headers.get("connection", "").lower() != "close"
                payload = body.encode()
                head = [
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
                    f"Content-Type: {ctype}",
                    f"Content-Length: {len(payload)}",
                    f"Connection: {'keep-alive' if keep_alive else 'close'}",
                ]
                head.extend(f"{k}: {v}" for k, v in extra)
                writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, method: str, path: str, params: dict):
        """Route one request; returns ``(status, body, ctype, extra_headers)``."""
        self.counters["requests"] += 1
        telemetry.count("serve.requests")
        if method != "GET":
            return 405, _err("method not allowed"), "application/json", []
        if path == "/healthz":
            return 200, json.dumps({"ok": True}), "application/json", []
        if path == "/metrics":
            return 200, telemetry.prometheus_text(), "text/plain; version=0.0.4", []
        if path == "/stats":
            body = json.dumps({
                "serve": dict(self.counters),
                "store": store.store_stats().as_dict(),
                "queue_depth": self._queue.qsize() if self._queue else 0,
                "pending_fills": len(self.coalescer),
            })
            return 200, body, "application/json", []
        try:
            job = handlers.parse_query(path, params)
        except handlers.QueryError as exc:
            self.counters["bad_requests"] += 1
            telemetry.count("serve.bad_requests")
            return 400, _err(str(exc)), "application/json", []
        return await self._answer(job)

    async def _answer(self, job: tuple):
        """The query path: store lookup, then coalesced fill on a miss."""
        key = handlers.job_key(job)
        doc, tier = store.fetch(key)
        if doc is not None:
            source = tier  # "memory" | "disk"
        else:
            fut, leader = self.coalescer.claim(key.digest)
            if leader:
                try:
                    self._queue.put_nowait((job, key.digest))
                except asyncio.QueueFull:
                    self.coalescer.abandon(key.digest)
                    self.counters["rejected"] += 1
                    telemetry.count("serve.rejected")
                    retry = f"{self.cfg.retry_after_s:g}"
                    return (429, _err("fill queue saturated; retry later"),
                            "application/json", [("Retry-After", retry)])
            try:
                doc = await asyncio.shield(fut)
            except QueueSaturated:
                self.counters["rejected"] += 1
                telemetry.count("serve.rejected")
                return (429, _err("fill queue saturated; retry later"),
                        "application/json", [("Retry-After", f"{self.cfg.retry_after_s:g}")])
            except Exception as exc:  # noqa: BLE001 - compute failed
                self.counters["errors"] += 1
                telemetry.count("serve.errors")
                return 500, _err(str(exc)), "application/json", []
            source = "computed" if leader else "coalesced"
        self.counters[source] += 1
        telemetry.count(f"serve.{source}")
        body = json.dumps(
            {"source": source, "digest": key.digest, "result": doc}, allow_nan=True
        )
        return 200, body, "application/json", [("X-Repro-Source", source)]


def _fill_batch(jobs: list, workers: int) -> list:
    """One queue drain -> one deduped, fanned-out compute batch."""
    with telemetry.span("serve.fill"):
        telemetry.count("serve.fill_jobs", len(jobs))
        return store.dedup_map(handlers.safe_compute_job, jobs, workers=workers)


def _err(message: str) -> str:
    return json.dumps({"error": message})


_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    429: "Too Many Requests", 500: "Internal Server Error",
}


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request head; ``None`` on clean EOF. GET-only server:
    bodies are not read (none of the endpoints accept one)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise
    if len(head) > _MAX_HEADER_BYTES:
        raise ConnectionError("oversized request head")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise ConnectionError(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers = {}
    for line in lines[1:]:
        if ":" in line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    return method.upper(), target, headers


def _split_target(target: str) -> tuple[str, dict]:
    parsed = urllib.parse.urlsplit(target)
    params = {k: v[-1] for k, v in urllib.parse.parse_qs(parsed.query).items()}
    return parsed.path, params


# ----------------------------------------------------------------------
# embedding helpers
# ----------------------------------------------------------------------
class ServerThread:
    """A daemon on a background thread -- tests and the bench gate run
    a real socket server in-process::

        with ServerThread(ServeConfig(port=0)) as srv:
            urllib.request.urlopen(srv.url + "/healthz")
    """

    def __init__(self, config: ServeConfig | None = None):
        self.daemon = Daemon(config)
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None

    @property
    def port(self) -> int:
        return self.daemon.port or 0

    @property
    def url(self) -> str:
        return f"http://{self.daemon.cfg.host}:{self.port}"

    def start(self) -> "ServerThread":
        def _run():
            loop = asyncio.new_event_loop()
            self._loop = loop
            try:
                loop.run_until_complete(
                    self.daemon.serve(ready=lambda _port: self._ready.set())
                )
            finally:
                loop.close()

        self._thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("serve daemon failed to start")
        return self

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.daemon.shutdown)
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_forever(config: ServeConfig | None = None, announce=print) -> None:
    """CLI entry: run until SIGTERM/SIGINT. Prints one machine-readable
    ``serving on http://host:port`` line once bound (the load-test
    ``--spawn`` mode parses it)."""
    daemon = Daemon(config)

    def _ready(port: int) -> None:
        announce(f"serving on http://{daemon.cfg.host}:{port}", flush=True)

    asyncio.run(daemon.serve(ready=_ready, install_signals=True))
