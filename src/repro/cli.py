"""Command-line interface: ``python -m repro <command>``.

Exposes every reproduction experiment as a subcommand so figures can be
regenerated without writing code:

= =========== =====================================================
  info         inspect one topology (metrics, degrees, cable)
  fig7         diameter vs network size
  fig8         average shortest path length vs network size
  fig9         average cable length vs network size (floorplan model)
  fig10        latency vs accepted traffic (network simulation)
  router-sweep pipelined-router design space (VCs x buffers x depths)
  sweep        resumable fig10 sweep through the persistent run store
  theory       validate the Fact 1-3 / Theorem 1-2 bounds
  balance      custom routing vs up*/down* channel loads (E13)
  related      related-work diameter-and-degree + DLN-x + greedy tables
  robustness   link-failure degradation and bisection bounds
  faults       degradation curves under link loss (streaming metrics)
  percolation  coupled link-percolation sweep (fused incremental BFS)
  placement    cabinet-placement optimization gains (refs [7], [11])
  claims       machine-checked scorecard of every quantitative claim
  bench        benchmark smoke: timed sweep + cache/engine regression gate
  telemetry    run any subcommand with telemetry on, then export/summarize
  serve        HTTP daemon answering queries from the run store
  loadtest     replay a zipf-skewed query mix against the daemon
  store        run-store maintenance (migrate shard layouts, info, gc)
  design       multi-objective topology design-space optimizer
= =========== =====================================================
"""

from __future__ import annotations

import argparse
import sys

from repro.util import format_table

__all__ = ["main", "build_parser"]


def _sizes(arg: str) -> tuple[int, ...]:
    return tuple(int(s) for s in arg.split(","))


def _workers(arg: str) -> int:
    if arg.strip().lower() == "auto":
        import os

        return os.cpu_count() or 1
    return max(0, int(arg))


def _byte_size(arg: str) -> int:
    """Parse a byte budget like '512M', '2G', '100K' or a plain integer."""
    s = arg.strip().lower()
    scale = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}.get(s[-1:], 1)
    if scale != 1:
        s = s[:-1]
    try:
        return int(float(s) * scale)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid byte size: {arg!r}") from None


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Distributed Shortcut Networks (ICPP 2013)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="inspect one topology")
    info.add_argument("n", type=int)
    info.add_argument("--kind", default="dsn")
    info.add_argument("--seed", type=int, default=0)

    for name, help_ in (
        ("fig7", "diameter vs network size"),
        ("fig8", "average shortest path length vs network size"),
        ("fig9", "average cable length vs network size"),
    ):
        sp = sub.add_parser(name, help=help_)
        sp.add_argument("--sizes", type=_sizes, default=(32, 64, 128, 256, 512, 1024, 2048))
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--workers", type=_workers, default=None,
                        help="process-pool size (or 'auto'); default REPRO_WORKERS")

    f10 = sub.add_parser("fig10", help="latency vs accepted traffic (simulation)")
    f10.add_argument("--pattern", default="uniform",
                     choices=["uniform", "bit_reversal", "neighboring"])
    f10.add_argument("--loads", type=lambda s: tuple(float(x) for x in s.split(",")),
                     default=(1.0, 4.0, 8.0, 12.0))
    f10.add_argument("--n", type=int, default=64)
    f10.add_argument("--full", action="store_true", help="paper-scale windows")
    f10.add_argument("--seed", type=int, default=1)
    f10.add_argument("--workers", type=_workers, default=None,
                     help="process-pool size (or 'auto'); default REPRO_WORKERS")
    f10.add_argument("--engine", default="network", choices=["network", "flit"],
                     dest="sim_engine",
                     help="simulator: packet-level 'network' (default) or the "
                          "flit-level credit/crossbar model (run loop via "
                          "REPRO_FLIT_ENGINE)")
    f10.add_argument("--router", default=None, choices=["ideal", "pipelined"],
                     help="flit-engine router model: lumped-delay 'ideal' "
                          "(default, REPRO_ROUTER) or the staged RC/VA/SA/ST "
                          "'pipelined' microarchitecture; 'pipelined' implies "
                          "--engine flit")

    rs = sub.add_parser(
        "router-sweep",
        help="pipelined-router design space: VCs x buffer depth x pipeline depth",
        description="Sweep the pipelined router microarchitecture "
                    "(repro.sim.router) over virtual-channel count, per-VC "
                    "buffer depth and per-hop pipeline depth on the DSN-V "
                    "custom routing, at one offered load. One ideal-router "
                    "reference point per VC count anchors the overhead "
                    "columns. Writes a ROUTER_SWEEP.json artifact with --out.",
    )
    rs.add_argument("--vcs", type=_sizes, default=(4, 8),
                    help="virtual channels per link (comma list; DSN-V needs >= 4)")
    rs.add_argument("--buffers", type=_sizes, default=(8, 33),
                    help="per-VC buffer depths in flits (comma list)")
    rs.add_argument("--depths", type=_sizes, default=(2, 10, 38),
                    help="per-hop header lags in cycles (comma list; the "
                         "paper's 100 ns router is 38 cycles)")
    rs.add_argument("--load", type=float, default=4.0,
                    help="offered load Gbit/s/host (default 4)")
    rs.add_argument("--pattern", default="uniform",
                    choices=["uniform", "bit_reversal", "neighboring"])
    rs.add_argument("--n", type=int, default=16)
    rs.add_argument("--full", action="store_true", help="paper-scale windows")
    rs.add_argument("--seed", type=int, default=0)
    rs.add_argument("--workers", type=_workers, default=None,
                    help="process-pool size (or 'auto'); default REPRO_WORKERS")
    rs.add_argument("--out", default=None, metavar="FILE",
                    help="write the sweep artifact JSON to FILE")

    sw = sub.add_parser(
        "sweep",
        help="resumable latency sweep through the persistent run store",
        description="Run (or resume) a Fig. 10-style sweep: kinds x patterns x "
                    "loads, every point routed through repro.store. With "
                    "--resume (or --store-dir) results persist on disk, so a "
                    "killed or repeated sweep only simulates what is missing.",
    )
    sw.add_argument("--patterns", type=lambda s: tuple(s.split(",")),
                    default=("uniform",),
                    help="comma-separated traffic patterns (default uniform)")
    sw.add_argument("--kinds", type=lambda s: tuple(s.split(",")), default=None,
                    help="topology kinds (default the paper trio)")
    sw.add_argument("--loads", type=lambda s: tuple(float(x) for x in s.split(",")),
                    default=None, help="offered loads Gbit/s/host (default the "
                                       "paper's 1,2,4,6,8,10,12)")
    sw.add_argument("--n", type=int, default=64)
    sw.add_argument("--seed", type=int, default=1)
    sw.add_argument("--full", action="store_true", help="paper-scale windows")
    sw.add_argument("--workers", type=_workers, default=None,
                    help="process-pool size (or 'auto'); default REPRO_WORKERS")
    sw.add_argument("--store-dir", default=None, dest="store_dir", metavar="DIR",
                    help="persist results under DIR (sets REPRO_STORE_DIR)")
    sw.add_argument("--resume", action="store_true",
                    help="shorthand for --store-dir .repro-store: reuse every "
                         "previously stored point and persist new ones")
    sw.add_argument("--no-store", action="store_true", dest="no_store",
                    help="bypass the run store entirely (REPRO_STORE=off)")
    sw.add_argument("--store-stats", action="store_true", dest="store_stats",
                    help="print hit/miss/bytes counters after the sweep "
                         "(this process only; pool workers count their own)")
    sw.add_argument("--out", default=None, metavar="PATH",
                    help="write the full curves as a JSON artifact")

    bench = sub.add_parser("bench", help="benchmark smoke: timed sweep + regression checks")
    bench.add_argument("--quick", action="store_true",
                       help="small sizes only (the CI configuration)")
    bench.add_argument("--out", default="BENCH_pr.json", help="where to write the timings")
    bench.add_argument("--workers", type=_workers, default=None,
                       help="process-pool size for the parallel identity check")
    bench.add_argument("--tier1", action="store_true",
                       help="also run the tier-1 pytest suite and fail on regressions")
    bench.add_argument("--large-n", type=int, default=None, dest="large_n",
                       help="size of the out-of-process streaming-BFS gate "
                            "(default 65536, or 8192 with --quick; 0 skips it)")
    bench.add_argument("--compare", nargs=2, default=None, metavar=("OLD", "NEW"),
                       help="diff two BENCH_*.json files (per-stage speedup table "
                            "and check regressions) instead of running the bench")

    th = sub.add_parser("theory", help="validate Section IV-C bounds")
    th.add_argument("--sizes", type=_sizes, default=(64, 100, 250, 1024))

    bal = sub.add_parser("balance", help="routing balance comparison (E13)")
    bal.add_argument("--n", type=int, default=64)

    sub.add_parser("related", help="related-work comparison tables")

    rob = sub.add_parser("robustness", help="fault tolerance + bisection")
    rob.add_argument("--n", type=int, default=128)
    rob.add_argument("--trials", type=int, default=10)

    fl = sub.add_parser(
        "faults",
        help="degradation curves under link failures (writes a JSON artifact)",
    )
    fl.add_argument("--n", type=int, default=1024)
    fl.add_argument("--fractions", type=lambda s: tuple(float(x) for x in s.split(",")),
                    default=None, help="fail fractions (default 0,0.01,0.02,0.05,0.10)")
    fl.add_argument("--trials", type=int, default=None,
                    help="trials per point (default REPRO_FAULT_TRIALS or 10)")
    fl.add_argument("--kinds", type=lambda s: tuple(s.split(",")), default=None,
                    help="topology kinds (default the paper trio)")
    fl.add_argument("--seed", type=int, default=0)
    fl.add_argument("--out", default="DEGRADATION.json", help="artifact path")
    fl.add_argument("--workers", type=_workers, default=None,
                    help="process-pool size (or 'auto'); default REPRO_WORKERS")
    fl.add_argument("--store-dir", default=None, dest="store_dir", metavar="DIR",
                    help="persist trial results under DIR (sets REPRO_STORE_DIR)")
    fl.add_argument("--resume", action="store_true",
                    help="shorthand for --store-dir .repro-store: reuse every "
                         "previously stored trial and persist new ones")
    fl.add_argument("--no-store", action="store_true", dest="no_store",
                    help="bypass the run store entirely (REPRO_STORE=off)")

    pc = sub.add_parser(
        "percolation",
        help="coupled link-percolation sweep (incremental fused engine)",
        description="Resilience sweep in the spirit of Demichev et al. "
                    "(arXiv:1312.0510): per trial, one uniform draw per link; "
                    "each fail fraction thresholds that field, so fault sets "
                    "nest and the incremental engine settles every fraction "
                    "in one fused bit-parallel BFS. Reports giant-component, "
                    "component-count, reachability, ASPL and diameter decay; "
                    "byte-identical to the naive per-point engine "
                    "(--engine naive) for any worker count or REPRO_SHM "
                    "setting. Writes a JSON artifact.",
    )
    pc.add_argument("--n", type=int, default=1024)
    pc.add_argument("--fractions", type=lambda s: tuple(float(x) for x in s.split(",")),
                    default=None,
                    help="ascending fail fractions "
                         "(default 0,0.01,0.02,0.05,0.10,0.15,0.20)")
    pc.add_argument("--trials", type=int, default=None,
                    help="coupled trials per kind (default REPRO_FAULT_TRIALS or 10)")
    pc.add_argument("--kinds", type=lambda s: tuple(s.split(",")), default=None,
                    help="topology kinds (default the paper trio)")
    pc.add_argument("--seed", type=int, default=0)
    pc.add_argument("--engine", choices=["incremental", "naive"],
                    default="incremental",
                    help="fused multi-fraction engine, or the naive per-point "
                         "baseline it is checked against")
    pc.add_argument("--out", default="PERCOLATION.json", help="artifact path")
    pc.add_argument("--workers", type=_workers, default=None,
                    help="process-pool size (or 'auto'); default REPRO_WORKERS")
    pc.add_argument("--store-dir", default=None, dest="store_dir", metavar="DIR",
                    help="persist per-(trial, fraction) points under DIR "
                         "(sets REPRO_STORE_DIR)")
    pc.add_argument("--resume", action="store_true",
                    help="shorthand for --store-dir .repro-store: reuse every "
                         "previously stored point and persist new ones")
    pc.add_argument("--no-store", action="store_true", dest="no_store",
                    help="bypass the run store entirely (REPRO_STORE=off)")

    pl = sub.add_parser("placement", help="cabinet-placement optimization gains")
    pl.add_argument("--n", type=int, default=256)
    pl.add_argument("--iterations", type=int, default=20_000)

    rep = sub.add_parser("report", help="regenerate the full results document")
    rep.add_argument("--out", default=None, help="write to a file instead of stdout")
    rep.add_argument("--sim", action="store_true", help="include the Fig. 10 simulations")
    rep.add_argument("--full", action="store_true", help="paper-scale sweeps")
    rep.add_argument("--seed", type=int, default=0)

    sub.add_parser("claims", help="run the paper-claims scorecard (E29)")

    tel = sub.add_parser(
        "telemetry",
        help="run any subcommand with telemetry enabled, then export/summarize",
        description="Wrapper: enables the telemetry subsystem (REPRO_TELEMETRY=1), "
                    "dispatches the wrapped subcommand, then exports the recorded "
                    "metrics. With no wrapped command it just prints the summary "
                    "of whatever the current process recorded (usually empty).",
    )
    tel.add_argument("--jsonl", default=None, metavar="PATH",
                     help="write the JSONL export here")
    tel.add_argument("--prom", default=None, metavar="PATH",
                     help="write the Prometheus text exposition here")
    tel.add_argument("--summary", action="store_true",
                     help="print the summary table (default when no export given)")
    tel.add_argument("--interval-ns", type=float, default=None, dest="interval_ns",
                     help="in-sim sampling interval (REPRO_TELEMETRY_INTERVAL_NS)")
    tel.add_argument("inner", nargs=argparse.REMAINDER, metavar="command ...",
                     help="the subcommand (plus its arguments) to run instrumented")

    srv = sub.add_parser(
        "serve",
        help="HTTP daemon answering queries from the run store",
        description="Serve topology-metric and latency-curve queries over HTTP "
                    "(endpoints: /v1/latency, /v1/topology, /healthz, /metrics, "
                    "/stats). Warm hits come straight from the store "
                    "(REPRO_STORE_DIR); misses coalesce and fill through a "
                    "bounded worker pool; a saturated queue answers 429. "
                    "Runs until SIGTERM/SIGINT. See docs/serving.md.",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8351,
                     help="listen port (0 = ephemeral, announced on stdout)")
    srv.add_argument("--store-dir", default=None, dest="store_dir", metavar="DIR",
                     help="serve from DIR (sets REPRO_STORE_DIR)")
    srv.add_argument("--fill-workers", type=_workers, default=1, dest="fill_workers",
                     help="parallel_map workers for miss fills (default 1)")
    srv.add_argument("--queue-limit", type=int, default=64, dest="queue_limit",
                     help="pending miss jobs before 429 (default 64)")
    srv.add_argument("--fill-batch", type=int, default=8, dest="fill_batch",
                     help="max jobs per fill batch (default 8)")

    lt = sub.add_parser(
        "loadtest",
        help="replay a zipf-skewed query mix against the serve daemon",
        description="Measure daemon latency under a deterministic zipfian query "
                    "mix: warm/miss p50/p99 split by the X-Repro-Source header, "
                    "plus sustained throughput. --spawn runs its own daemon "
                    "child (and asserts a clean SIGTERM exit); --populate "
                    "computes every distinct query in-process first so the "
                    "replay is warm. See docs/serving.md.",
    )
    lt.add_argument("--host", default="127.0.0.1")
    lt.add_argument("--port", type=int, default=8351)
    lt.add_argument("--spawn", action="store_true",
                    help="spawn a daemon child for the test (SIGTERM on exit)")
    lt.add_argument("--store-dir", default=None, dest="store_dir", metavar="DIR",
                    help="store directory for --populate / the spawned daemon")
    lt.add_argument("--requests", type=int, default=200)
    lt.add_argument("--concurrency", type=int, default=8)
    lt.add_argument("--skew", type=float, default=1.1,
                    help="zipf exponent of the hot-key mix (0 = uniform)")
    lt.add_argument("--seed", type=int, default=0, help="mix sampling seed")
    lt.add_argument("--n", type=int, default=16,
                    help="network size of the stock candidate queries")
    lt.add_argument("--populate", action="store_true",
                    help="compute every distinct query in-process before replaying")
    lt.add_argument("--out", default=None, metavar="PATH",
                    help="write the report as JSON")
    lt.add_argument("--require-hit-rate", type=float, default=None,
                    dest="require_hit_rate", metavar="RATE",
                    help="fail unless warm hit rate >= RATE (CI gate)")
    lt.add_argument("--require-zero-errors", action="store_true",
                    dest="require_zero_errors",
                    help="fail on any non-200 response (CI gate)")

    st = sub.add_parser(
        "store",
        help="run-store maintenance",
        description="Offline maintenance of the persistent run store "
                    "(REPRO_STORE_DIR). 'migrate' re-homes every entry into "
                    "the layout of --shards (default REPRO_STORE_SHARDS) with "
                    "byte-identical renames and reaps stale lock files; "
                    "'info' prints the layout and entry count; 'gc' prunes "
                    "the disk tier to --max-bytes, evicting least-recently-"
                    "used entries first (evicted entries are recomputed on "
                    "the next resumed sweep, never lost for correctness).",
    )
    st.add_argument("action", choices=["migrate", "info", "gc"])
    st.add_argument("--store-dir", default=None, dest="store_dir", metavar="DIR",
                    help="the store to operate on (default REPRO_STORE_DIR)")
    st.add_argument("--shards", type=int, default=None,
                    help="target shard count (0 = flat legacy layout)")
    st.add_argument("--max-bytes", type=_byte_size, default=None,
                    dest="max_bytes", metavar="SIZE",
                    help="gc byte budget; accepts K/M/G suffixes (e.g. 512M)")

    dsg = sub.add_parser(
        "design",
        help="multi-objective topology design-space optimizer",
        description="Search the candidate space (DSN-x, DSN-D, flexible DSN, "
                    "DLN, RANDOM/random-regular, grid baselines) for one "
                    "(n, degree budget): 'frontier' prints the Pareto set over "
                    "ASPL/diameter/cable/saturation, 'rank' orders candidates "
                    "by the Demichev quality/cost score, 'explain LABEL' "
                    "details one candidate. Every evaluation is a run-store "
                    "entry, so killed searches resume and re-runs are warm. "
                    "See docs/design.md.",
    )
    dsg.add_argument("action", choices=["frontier", "rank", "explain"])
    dsg.add_argument("label", nargs="?", default=None,
                     help="candidate label for 'explain' (e.g. dsn-x5)")
    dsg.add_argument("--n", type=int, default=1024, help="switch count (default 1024)")
    dsg.add_argument("--budget", type=int, default=5, dest="budget",
                     help="max degree a candidate may use (default 5)")
    dsg.add_argument("--seeds", type=int, default=2,
                     help="instances per stochastic family (default 2)")
    dsg.add_argument("--sources", type=int, default=None,
                     help="betweenness source budget (default "
                          "REPRO_DESIGN_SOURCES or 64)")
    dsg.add_argument("--workers", type=_workers, default=None,
                     help="process-pool size (or 'auto'); default REPRO_WORKERS")
    dsg.add_argument("--store-dir", default=None, dest="store_dir", metavar="DIR",
                     help="persist evaluations under DIR (sets REPRO_STORE_DIR)")
    dsg.add_argument("--resume", action="store_true",
                     help="shorthand for --store-dir .repro-store")
    dsg.add_argument("--no-store", action="store_true", dest="no_store",
                     help="bypass the run store entirely (REPRO_STORE=off)")
    dsg.add_argument("--out", default=None, metavar="PATH",
                     help="write the canonical frontier JSON artifact to PATH")
    dsg.add_argument("--json", action="store_true", dest="as_json",
                     help="print the canonical JSON artifact instead of tables")
    dsg.add_argument("--plot", action="store_true",
                     help="ASCII scatter of the frontier (ASPL vs cable metres)")

    dia = sub.add_parser("diagram", help="draw a DSN's structure or a route")
    dia.add_argument("n", type=int)
    dia.add_argument("--route", type=lambda s: tuple(int(x) for x in s.split(",")),
                     default=None, metavar="S,T", help="draw the route S -> T")
    dia.add_argument("--max-nodes", type=int, default=40)

    return p


def _cmd_info(args) -> None:
    from repro.analysis import analyze
    from repro.experiments import make_topology
    from repro.layout import average_cable_length

    topo = make_topology(args.kind, args.n, seed=args.seed)
    m = analyze(topo)
    print(f"{topo.name}: n={m.n}, links={m.num_links}")
    print(f"  diameter            {m.diameter}")
    print(f"  avg shortest path   {m.aspl:.3f}")
    print(f"  degrees             {topo.degree_census()} (avg {m.average_degree:.2f})")
    print(f"  avg cable length    {average_cable_length(topo):.2f} m (cabinet floorplan)")
    if hasattr(topo, "p"):
        from repro.core import dsn_theory

        th = dsn_theory(topo.n, topo.x)
        print(f"  DSN parameters      p={topo.p}, r={topo.r}, x={topo.x}")
        print(f"  bounds              diameter <= {th.diameter_bound}, "
              f"routing <= {th.routing_diameter_bound}")


def _cmd_hop_sweep(args, which: str) -> None:
    from repro.experiments import fig7_diameter, fig8_aspl, format_hop_sweep

    fn = fig7_diameter if which == "fig7" else fig8_aspl
    title = "Figure 7: diameter (hops)" if which == "fig7" else "Figure 8: ASPL (hops)"
    print(format_hop_sweep(fn(sizes=args.sizes, seed=args.seed, workers=args.workers), title))


def _cmd_fig9(args) -> None:
    from repro.experiments import fig9_cable, format_cable_sweep

    print(format_cable_sweep(fig9_cable(sizes=args.sizes, seed=args.seed, workers=args.workers),
                             "Figure 9: average cable length (m)"))


def _cmd_fig10(args) -> None:
    from repro.experiments import fig10, format_curves
    from repro.sim import RouterConfig, SimConfig
    from repro.viz import ascii_plot

    kwargs = {} if args.full else dict(warmup_ns=4000, measure_ns=12000, drain_ns=24000)
    sim_engine = args.sim_engine
    if args.router is not None:
        kwargs["router"] = RouterConfig(mode=args.router)
        if args.router == "pipelined" and sim_engine != "flit":
            # The pipelined model exists only in the flit engine.
            sim_engine = "flit"
    config = SimConfig(**kwargs)
    curves = fig10(args.pattern, loads=args.loads, n=args.n, config=config, seed=args.seed,
                   workers=args.workers, sim_engine=sim_engine)
    print(format_curves(curves, f"Figure 10 ({args.pattern})"))
    if len(args.loads) > 1:
        print()
        print(ascii_plot(
            list(args.loads),
            {c.topology: c.latency() for c in curves},
            x_label="offered Gbit/s/host",
            y_label="avg latency ns",
        ))


def _cmd_sweep(args) -> None:
    import json
    import os

    from repro import store
    from repro.experiments import fig10, format_curves
    from repro.experiments.latency import DEFAULT_LOADS
    from repro.experiments.sweeps import PAPER_TRIO
    from repro.sim import SimConfig

    if args.no_store:
        os.environ["REPRO_STORE"] = "off"
    elif args.store_dir or args.resume:
        # Env (not an API call) so spawn-mode pool workers inherit it.
        os.environ["REPRO_STORE_DIR"] = args.store_dir or ".repro-store"
        os.environ.pop("REPRO_STORE", None)

    config = SimConfig() if args.full else SimConfig(
        warmup_ns=4000, measure_ns=12000, drain_ns=24000
    )
    kinds = args.kinds or PAPER_TRIO
    loads = args.loads or DEFAULT_LOADS
    store.reset_store_stats()
    artifact_curves = []
    for pattern in args.patterns:
        curves = fig10(pattern, loads=loads, n=args.n, config=config,
                       seed=args.seed, kinds=kinds, workers=args.workers)
        print(format_curves(curves, f"sweep ({pattern})"))
        print()
        for c in curves:
            artifact_curves.append({
                "pattern": pattern,
                "topology": c.topology,
                "points": [store.encode_result(p) for p in c.points],
            })
    if args.out:
        payload = {
            "experiment": "sweep",
            "n": args.n,
            "seed": args.seed,
            "full": bool(args.full),
            "kinds": list(kinds),
            "patterns": list(args.patterns),
            "loads": list(loads),
            "curves": artifact_curves,
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.store_stats:
        s = store.store_stats()
        print(f"store: {s.hits} hits ({s.memory_hits} memory, {s.disk_hits} disk), "
              f"{s.misses} misses, {s.stores} stores, "
              f"{s.inflight_dedup} deduped in flight, "
              f"{s.bytes_written}B written, {s.bytes_read}B read")


def _cmd_router_sweep(args) -> None:
    import json
    from dataclasses import asdict

    from repro.experiments import format_router_sweep, router_sweep
    from repro.sim import SimConfig

    config = SimConfig() if args.full else SimConfig(
        warmup_ns=4000, measure_ns=12000, drain_ns=24000
    )
    rows = router_sweep(
        vcs=args.vcs, buffers=args.buffers, depths=args.depths,
        load=args.load, n=args.n, pattern_name=args.pattern,
        config=config, seed=args.seed, workers=args.workers,
    )
    print(format_router_sweep(rows))
    if args.out:
        payload = {
            "experiment": "router-sweep",
            "n": args.n,
            "seed": args.seed,
            "load": args.load,
            "pattern": args.pattern,
            "full": bool(args.full),
            "vcs": list(args.vcs),
            "buffers": list(args.buffers),
            "depths": list(args.depths),
            "rows": [asdict(r) for r in rows],
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")


def _cmd_theory(args) -> None:
    from repro.experiments import check_degrees, check_line_cable, check_routing

    deg = [check_degrees(n) for n in args.sizes]
    print(format_table(
        ["n", "x", "min_deg", "max_deg", "avg_deg", "deg5", "deg5_bound", "verdict"],
        [c.row() for c in deg],
        title="Fact 1: degrees",
    ))
    print()
    rt = [check_routing(n, sample_pairs=None if n <= 256 else 2000) for n in args.sizes]
    print(format_table(
        ["n", "x", "rt_diam", "<=3p+r", "diam", "<=2.5p+r",
         "E[route]", "<=2p", "E[short]", "<=1.5p", "verdict"],
        [c.row() for c in rt],
        title="Facts 2-3 / Theorem 2(a): path lengths",
    ))
    print()
    cable = [check_line_cable(n) for n in args.sizes]
    print(format_table(
        ["n", "p", "dsn_avg_sc", "bound", "dln22_avg_sc", "expect",
         "saving", "~p/3", "verdict"],
        [c.row() for c in cable],
        title="Theorem 2(b): line-layout cable",
    ))
    bad = [c for c in deg + rt + cable if not c.ok]
    if bad:
        print(f"\n{len(bad)} BOUND VIOLATIONS", file=sys.stderr)
        sys.exit(1)
    print("\nall bounds hold")


def _cmd_balance(args) -> None:
    from repro.experiments import compare_balance, format_balance

    print(format_balance(compare_balance(args.n)))


def _cmd_related(_args) -> None:
    from repro.experiments import (
        diameter_degree_table,
        dln_family_table,
        greedy_vs_dsn_routing,
    )

    print(diameter_degree_table())
    print()
    print(dln_family_table())
    print()
    rows = [greedy_vs_dsn_routing(side, samples=200).row() for side in (8, 16, 24)]
    print(format_table(
        ["n", "greedy_mean", "greedy_max", "dsn_mean", "dsn_max", "log2n"],
        rows,
        title="Kleinberg greedy (Theta(log^2 n)) vs DSN custom routing (O(log n))",
    ))


def _cmd_robustness(args) -> None:
    from repro.experiments import bisection_table, fault_table, rerouting_table

    table, _ = fault_table(n=args.n, trials=args.trials)
    print(table)
    print()
    table, _ = rerouting_table(n=args.n, trials=max(3, args.trials // 2))
    print(table)
    print()
    table, _ = bisection_table(n=args.n)
    print(table)


def _apply_store_flags(args) -> None:
    """Map --no-store / --store-dir / --resume onto the store env knobs.

    Env (not an API call) so spawn-mode pool workers inherit the choice.
    """
    import os

    if args.no_store:
        os.environ["REPRO_STORE"] = "off"
    elif args.store_dir or args.resume:
        os.environ["REPRO_STORE_DIR"] = args.store_dir or ".repro-store"
        os.environ.pop("REPRO_STORE", None)


def _cmd_faults(args) -> None:
    from repro.faults import DEFAULT_FRACTIONS, degradation_artifact

    _apply_store_flags(args)
    fractions = args.fractions if args.fractions else DEFAULT_FRACTIONS
    table, _ = degradation_artifact(
        args.out, n=args.n, fractions=fractions, trials=args.trials,
        seed=args.seed, kinds=args.kinds, workers=args.workers,
    )
    print(table)
    print(f"\nwrote {args.out}")


def _cmd_percolation(args) -> None:
    from repro.faults import DEFAULT_PERC_FRACTIONS, percolation_artifact

    _apply_store_flags(args)
    fractions = args.fractions if args.fractions else DEFAULT_PERC_FRACTIONS
    table, _ = percolation_artifact(
        args.out, n=args.n, fractions=fractions, trials=args.trials,
        seed=args.seed, kinds=args.kinds, workers=args.workers,
        engine=args.engine,
    )
    print(table)
    print(f"\nwrote {args.out}")


def _cmd_placement(args) -> None:
    from repro.experiments import placement_table

    table, _ = placement_table(n=args.n, iterations=args.iterations)
    print(table)


def _cmd_report(args) -> None:
    from repro.experiments.report import generate_report

    text = generate_report(include_sim=args.sim, full=args.full, seed=args.seed)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out} ({len(text)} bytes)")
    else:
        print(text)


def _cmd_claims(_args) -> None:
    from repro.experiments.claims import check_claims, format_claims

    results = check_claims()
    print(format_claims(results))
    failed = [r for r in results if not r.ok]
    if failed:
        print(f"\n{len(failed)} claims FAILED", file=sys.stderr)
        sys.exit(1)
    print("\nall claims reproduced")


def _cmd_bench(args) -> None:
    from repro.experiments.bench import compare_bench, run_bench

    if args.compare is not None:
        if not compare_bench(args.compare[0], args.compare[1]):
            print("\nbenchmark compare found regressions", file=sys.stderr)
            sys.exit(1)
        return
    ok = run_bench(quick=args.quick, out=args.out, workers=args.workers, tier1=args.tier1,
                   large_n=args.large_n)
    if not ok:
        print("\nbenchmark smoke FAILED", file=sys.stderr)
        sys.exit(1)


def _cmd_telemetry(args) -> None:
    import os

    from repro import telemetry
    from repro.telemetry import export

    if args.interval_ns is not None:
        os.environ["REPRO_TELEMETRY_INTERVAL_NS"] = str(args.interval_ns)
    # Set the env var too (not just the API) so spawn-mode pool workers
    # and any subprocesses the wrapped command launches inherit it.
    os.environ["REPRO_TELEMETRY"] = "1"
    telemetry.enable()
    inner = list(args.inner)
    if inner and inner[0] == "--":
        inner = inner[1:]
    if inner:
        if inner[0] == "telemetry":
            print("telemetry: cannot wrap itself", file=sys.stderr)
            sys.exit(2)
        _dispatch(inner)
    if args.jsonl:
        n = export.write_jsonl(args.jsonl)
        print(f"\nwrote {args.jsonl} ({n} telemetry records)")
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(export.prometheus_text())
        print(f"\nwrote {args.prom}")
    if args.summary or not (args.jsonl or args.prom):
        print()
        print(export.summary_table())


def _cmd_serve(args) -> None:
    import os

    from repro.serve import ServeConfig, serve_forever

    if args.store_dir:
        # Env (not an API call) so pool workers inherit it.
        os.environ["REPRO_STORE_DIR"] = args.store_dir
    config = ServeConfig(
        host=args.host, port=args.port, fill_workers=args.fill_workers,
        queue_limit=args.queue_limit, fill_batch=args.fill_batch,
    )
    serve_forever(config)


def _cmd_loadtest(args) -> None:
    import contextlib
    import json
    import os

    from repro import serve

    if args.store_dir:
        os.environ["REPRO_STORE_DIR"] = args.store_dir
    candidates = serve.default_candidates(n=args.n)
    mix = serve.build_mix(candidates, args.requests, skew=args.skew, seed=args.seed)
    if args.populate:
        n_unique = serve.populate(mix)
        print(f"populated {n_unique} distinct queries")
    spawned = None
    if args.spawn:
        spawn_args = ["--host", args.host]
        if args.store_dir:
            spawn_args += ["--store-dir", args.store_dir]
        spawned = serve.spawn_daemon(spawn_args)
    with spawned if spawned is not None else contextlib.nullcontext():
        host = spawned.host if spawned else args.host
        port = spawned.port if spawned else args.port
        report = serve.run_loadtest(host, port, mix, concurrency=args.concurrency)
    print(report.summary())
    if spawned is not None:
        verdict = "clean" if spawned.clean_exit else "UNCLEAN"
        print(f"daemon shutdown on SIGTERM: {verdict} "
              f"(rc={spawned.proc.returncode})")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.as_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    failures = []
    if args.require_zero_errors and report.errors:
        failures.append(f"{report.errors} error(s)")
    if args.require_hit_rate is not None and report.warm_hit_rate < args.require_hit_rate:
        failures.append(f"warm hit rate {report.warm_hit_rate:.3f} "
                        f"< required {args.require_hit_rate:.3f}")
    if spawned is not None and not spawned.clean_exit:
        failures.append("daemon did not exit cleanly on SIGTERM")
    if failures:
        print("\nloadtest gate FAILED: " + "; ".join(failures), file=sys.stderr)
        sys.exit(1)


def _cmd_store(args) -> None:
    import os

    from repro import store
    from repro.store import shards as store_shards_mod

    d = args.store_dir or os.environ.get("REPRO_STORE_DIR", "").strip() or None
    if d is None:
        print("store: no directory (pass --store-dir or set REPRO_STORE_DIR)",
              file=sys.stderr)
        sys.exit(2)
    if args.action == "migrate":
        report = store.migrate_store(d, shards=args.shards)
        print(report.summary())
        if not report.ok:
            for err in report.errors:
                print(f"  error: {err}", file=sys.stderr)
            sys.exit(1)
    elif args.action == "gc":
        if args.max_bytes is None:
            print("store gc: --max-bytes is required (e.g. --max-bytes 512M)",
                  file=sys.stderr)
            sys.exit(2)
        report = store.gc_store(d, max_bytes=args.max_bytes)
        print(report.summary())
        if not report.ok:
            for err in report.errors:
                print(f"  error: {err}", file=sys.stderr)
            sys.exit(1)
    else:  # info
        layout = store_shards_mod.effective_shards(d)
        entries = sum(1 for _ in store_shards_mod.iter_entry_paths(d))
        stale = sum(1 for _ in store_shards_mod.iter_stale_locks(d))
        print(f"{d}: layout={'flat' if layout <= 0 else f'{layout} shards'}, "
              f"{entries} entries, {stale} stale lock(s)")


def _cmd_design(args) -> None:
    import os

    from repro import design

    if args.no_store:
        os.environ["REPRO_STORE"] = "off"
    elif args.store_dir or args.resume:
        # Env (not an API call) so spawn-mode pool workers inherit it.
        os.environ["REPRO_STORE_DIR"] = args.store_dir or ".repro-store"
        os.environ.pop("REPRO_STORE", None)
    if args.action == "explain" and not args.label:
        print("design explain: a candidate label is required "
              "(see 'design frontier' for the list)", file=sys.stderr)
        sys.exit(2)

    artifact = design.compute_frontier(
        args.n, degree_budget=args.budget, seeds=args.seeds,
        sources=args.sources, workers=args.workers,
    )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(design.frontier_text(artifact))
        print(f"wrote {args.out}")
    if args.as_json:
        sys.stdout.write(design.frontier_text(artifact))
        return
    if args.action == "frontier":
        print(design.format_frontier(artifact))
    elif args.action == "rank":
        print(design.format_rank(artifact))
    else:
        try:
            detail = design.explain_candidate(artifact, args.label)
        except KeyError as exc:
            print(f"design explain: {exc.args[0]}", file=sys.stderr)
            sys.exit(2)
        print(design.format_explain(detail))
    if args.plot:
        from repro.viz import ascii_plot

        front = sorted(
            ((ev["cable_total_m"], ev["aspl"])
             for ev in artifact["evaluations"] if ev["pareto"]),
        )
        print(ascii_plot(
            [x for x, _ in front],
            {"pareto aspl": [y for _, y in front]},
            x_label="cable metres",
            y_label="aspl",
        ))


def _cmd_diagram(args) -> None:
    from repro.core import DSNTopology, dsn_route
    from repro.viz import dsn_ring_diagram, route_diagram

    topo = DSNTopology(args.n)
    if args.route is not None:
        s, t = args.route
        print(route_diagram(topo, dsn_route(topo, s, t)))
    else:
        print(dsn_ring_diagram(topo, max_nodes=args.max_nodes))


def main(argv: list[str] | None = None) -> None:
    """Entry point; tolerates a closed stdout (e.g. ``| head``)."""
    try:
        _dispatch(argv)
    except BrokenPipeError:  # pragma: no cover - shell-pipe convenience
        import os

        # Reopen stdout on devnull so Python's shutdown flush is quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)


def _dispatch(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "fig7": lambda a: _cmd_hop_sweep(a, "fig7"),
        "fig8": lambda a: _cmd_hop_sweep(a, "fig8"),
        "fig9": _cmd_fig9,
        "fig10": _cmd_fig10,
        "router-sweep": _cmd_router_sweep,
        "sweep": _cmd_sweep,
        "theory": _cmd_theory,
        "balance": _cmd_balance,
        "related": _cmd_related,
        "robustness": _cmd_robustness,
        "faults": _cmd_faults,
        "percolation": _cmd_percolation,
        "placement": _cmd_placement,
        "report": _cmd_report,
        "diagram": _cmd_diagram,
        "claims": _cmd_claims,
        "bench": _cmd_bench,
        "telemetry": _cmd_telemetry,
        "serve": _cmd_serve,
        "loadtest": _cmd_loadtest,
        "store": _cmd_store,
        "design": _cmd_design,
    }
    handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    main()
