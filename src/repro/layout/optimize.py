"""Cabinet-assignment optimization (the paper's ref [7] line of work).

The paper's Fig. 9 uses the *conventional* layout: consecutive switch
ids fill cabinets in order. Koibuchi/Fujiwara's companion work
([7], [11]) optimizes the switch-to-cabinet assignment to shorten
cables. This module implements that substrate -- a simulated-annealing
placement optimizer with O(degree) incremental cost evaluation -- so we
can measure *how much* each topology gains from placement optimization.

The result is itself an argument for DSN's design: the conventional
layout is already near-optimal for ring-based DSN (its shortcuts are
ring-local by construction), while RANDOM recovers a large fraction of
its cable penalty only by paying for placement optimization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.layout.floorplan import Floorplan, FloorplanConfig
from repro.topologies.base import Topology
from repro.util import make_rng

__all__ = ["PlacementResult", "placement_cable_total", "optimize_placement"]


def _cable_length(fp: Floorplan, cab_a: int, cab_b: int) -> float:
    if cab_a == cab_b:
        return fp.config.intra_cabinet_cable_m
    return fp.cabinet_distance(cab_a, cab_b) + 2 * fp.config.overhead_per_cabinet_m


def placement_cable_total(
    topo: Topology,
    assignment: np.ndarray,
    floorplan: Floorplan | None = None,
) -> float:
    """Total cable length under an explicit switch->cabinet assignment."""
    fp = floorplan or Floorplan(topo.n)
    return float(
        sum(_cable_length(fp, assignment[l.u], assignment[l.v]) for l in topo.links)
    )


@dataclass
class PlacementResult:
    """Outcome of a placement optimization run."""

    name: str
    conventional_total_m: float
    optimized_total_m: float
    assignment: np.ndarray  #: switch -> cabinet
    iterations: int

    @property
    def gain(self) -> float:
        """Fraction of total cable removed by optimizing placement."""
        if self.conventional_total_m == 0:
            return 0.0
        return 1.0 - self.optimized_total_m / self.conventional_total_m

    def row(self) -> list:
        return [
            self.name,
            round(self.conventional_total_m, 1),
            round(self.optimized_total_m, 1),
            f"{self.gain:.1%}",
        ]


def optimize_placement(
    topo: Topology,
    floorplan: Floorplan | None = None,
    config: FloorplanConfig | None = None,
    iterations: int = 20_000,
    seed: int | np.random.Generator | None = 0,
    start_temp: float | None = None,
) -> PlacementResult:
    """Simulated-annealing switch placement minimizing total cable.

    Moves are swaps of two switches' cabinet slots. The cost delta of a
    swap touches only the two switches' incident links, so each
    iteration is O(max degree). Annealing temperature decays
    geometrically from ``start_temp`` (default: the average single-link
    cable length) to ~1% of it.
    """
    fp = floorplan or Floorplan(topo.n, config)
    rng = make_rng(seed)
    n = topo.n

    assignment = np.array([fp.cabinet_of(v) for v in range(n)], dtype=np.int64)
    conventional = placement_cable_total(topo, assignment, fp)

    def node_cost(v: int, assign: np.ndarray) -> float:
        cab_v = assign[v]
        return sum(_cable_length(fp, cab_v, assign[w]) for w in topo.neighbors(v))

    current = conventional
    if start_temp is None:
        start_temp = conventional / max(topo.num_links, 1)
    decay = (0.01) ** (1.0 / max(iterations, 1))
    temp = start_temp

    best = current
    best_assignment = assignment.copy()

    for _ in range(iterations):
        a, b = rng.integers(0, n, size=2)
        if assignment[a] == assignment[b]:
            temp *= decay
            continue
        before = node_cost(int(a), assignment) + node_cost(int(b), assignment)
        assignment[a], assignment[b] = assignment[b], assignment[a]
        after = node_cost(int(a), assignment) + node_cost(int(b), assignment)
        # If a and b are linked, their mutual cable was counted twice on
        # both sides of the delta -- and a swap leaves its length
        # unchanged anyway, so the double-count cancels exactly.
        delta = after - before
        if delta <= 0 or rng.random() < np.exp(-delta / max(temp, 1e-9)):
            current += delta
            if current < best:
                best = current
                best_assignment = assignment.copy()
        else:
            assignment[a], assignment[b] = assignment[b], assignment[a]
        temp *= decay

    # Recompute exactly to kill accumulated float error.
    best = placement_cable_total(topo, best_assignment, fp)
    return PlacementResult(
        name=topo.name,
        conventional_total_m=conventional,
        optimized_total_m=min(best, conventional),
        assignment=best_assignment if best <= conventional else np.array(
            [fp.cabinet_of(v) for v in range(n)], dtype=np.int64
        ),
        iterations=iterations,
    )
