"""Per-topology cable-length accounting on a floorplan (Fig. 9).

``average_cable_length(topo)`` is the y-axis of the paper's Fig. 9.
Parallel cables (the Up/Extra links of DSN-E) are included when the
topology exposes a ``parallel_links`` attribute, since they are real
wiring even though they do not change the graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.layout.floorplan import Floorplan, FloorplanConfig
from repro.topologies.base import Link, LinkClass, Topology

__all__ = ["CableReport", "cable_lengths", "average_cable_length", "total_cable_length", "cable_report"]


def _all_cables(topo: Topology, include_parallel: bool) -> list[Link]:
    cables = list(topo.links)
    if include_parallel:
        cables.extend(getattr(topo, "parallel_links", ()))
    return cables


def cable_lengths(
    topo: Topology,
    floorplan: Floorplan | None = None,
    config: FloorplanConfig | None = None,
    include_parallel: bool = True,
) -> np.ndarray:
    """Length in meters of every cable of ``topo`` on the floorplan."""
    fp = floorplan or Floorplan(topo.n, config)
    cables = _all_cables(topo, include_parallel)
    return np.array([fp.cable_length(l.u, l.v) for l in cables])


def average_cable_length(
    topo: Topology,
    floorplan: Floorplan | None = None,
    config: FloorplanConfig | None = None,
    include_parallel: bool = True,
) -> float:
    """Average cable length in meters (the paper's Fig. 9 metric)."""
    return float(cable_lengths(topo, floorplan, config, include_parallel).mean())


def total_cable_length(
    topo: Topology,
    floorplan: Floorplan | None = None,
    config: FloorplanConfig | None = None,
    include_parallel: bool = True,
) -> float:
    """Aggregate cable length in meters (the Earth-Simulator-kilometers view)."""
    return float(cable_lengths(topo, floorplan, config, include_parallel).sum())


@dataclass(frozen=True)
class CableReport:
    """Cable statistics for one topology, overall and per link class."""

    name: str
    num_cables: int
    average_m: float
    total_m: float
    max_m: float
    per_class: dict[str, tuple[int, float]]  #: class -> (count, average length)

    def row(self) -> list:
        return [self.name, self.num_cables, round(self.average_m, 3), round(self.total_m, 1), round(self.max_m, 2)]


def cable_report(
    topo: Topology,
    floorplan: Floorplan | None = None,
    config: FloorplanConfig | None = None,
    include_parallel: bool = True,
) -> CableReport:
    """Full cable accounting, broken down by link class."""
    fp = floorplan or Floorplan(topo.n, config)
    cables = _all_cables(topo, include_parallel)
    lengths = np.array([fp.cable_length(l.u, l.v) for l in cables])

    per_class: dict[str, tuple[int, float]] = {}
    for cls in LinkClass:
        sel = np.array([l.cls is cls for l in cables], dtype=bool)
        if sel.any():
            per_class[cls.value] = (int(sel.sum()), float(lengths[sel].mean()))

    return CableReport(
        name=topo.name,
        num_cables=len(cables),
        average_m=float(lengths.mean()),
        total_m=float(lengths.sum()),
        max_m=float(lengths.max()),
        per_class=per_class,
    )
