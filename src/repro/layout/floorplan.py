"""Machine-room cabinet floorplan (paper Section VI-B).

The paper estimates deployment cable length by placing switches into
cabinets on a 2-D grid:

* 16 switches per cabinet, cabinets filled with consecutive switch ids
  (the "conventional floor layout");
* ``m`` cabinets arranged in ``q = ceil(sqrt(m))`` rows of
  ``ceil(m/q)`` cabinets;
* each cabinet is 0.6 m wide and 2.1 m deep *including aisle space*
  (HP recommendation, the paper's ref [21]);
* cabinet-to-cabinet distance is the Manhattan distance between grid
  positions;
* an intra-cabinet cable is 2 m; an inter-cabinet cable is the
  Manhattan distance plus a 2 m wiring overhead added **at each
  cabinet** (ref [22]), i.e. +4 m total by default. The overhead
  convention is configurable because the paper does not spell out
  whether "at each cabinet" means one or both endpoints; the relative
  comparison of Fig. 9 is insensitive to the choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import ceil_div, check_positive

__all__ = ["FloorplanConfig", "Floorplan"]


@dataclass(frozen=True)
class FloorplanConfig:
    """Physical parameters of the machine-room layout."""

    switches_per_cabinet: int = 16
    cabinet_width_m: float = 0.6
    cabinet_depth_m: float = 2.1  #: includes aisle space
    intra_cabinet_cable_m: float = 2.0
    overhead_per_cabinet_m: float = 2.0  #: added at each endpoint cabinet

    def __post_init__(self) -> None:
        check_positive("switches_per_cabinet", self.switches_per_cabinet)
        check_positive("cabinet_width_m", self.cabinet_width_m)
        check_positive("cabinet_depth_m", self.cabinet_depth_m)


class Floorplan:
    """Cabinet grid for ``num_switches`` switches.

    Row/column conventions follow the paper: ``q = ceil(sqrt(m))`` rows
    and ``ceil(m / q)`` cabinets per row (the last row may be short).
    """

    def __init__(self, num_switches: int, config: FloorplanConfig | None = None):
        check_positive("num_switches", num_switches)
        self.config = config or FloorplanConfig()
        self.num_switches = num_switches
        self.num_cabinets = ceil_div(num_switches, self.config.switches_per_cabinet)
        self.rows = _isqrt_ceil(self.num_cabinets)
        self.per_row = ceil_div(self.num_cabinets, self.rows)

    # -- placement -----------------------------------------------------
    def cabinet_of(self, switch: int) -> int:
        """Cabinet index of a switch (consecutive ids fill cabinets)."""
        if not (0 <= switch < self.num_switches):
            raise ValueError(f"switch {switch} out of range [0, {self.num_switches})")
        return switch // self.config.switches_per_cabinet

    def cabinet_position(self, cabinet: int) -> tuple[float, float]:
        """Center position (x, y) of a cabinet in meters."""
        if not (0 <= cabinet < self.num_cabinets):
            raise ValueError(f"cabinet {cabinet} out of range [0, {self.num_cabinets})")
        row, col = divmod(cabinet, self.per_row)
        return (col * self.config.cabinet_width_m, row * self.config.cabinet_depth_m)

    def cabinet_distance(self, a: int, b: int) -> float:
        """Manhattan distance between two cabinets in meters."""
        xa, ya = self.cabinet_position(a)
        xb, yb = self.cabinet_position(b)
        return abs(xa - xb) + abs(ya - yb)

    # -- cables ---------------------------------------------------------
    def cable_length(self, u: int, v: int) -> float:
        """Length of the cable between switches ``u`` and ``v`` in meters."""
        ca, cb = self.cabinet_of(u), self.cabinet_of(v)
        if ca == cb:
            return self.config.intra_cabinet_cable_m
        return self.cabinet_distance(ca, cb) + 2 * self.config.overhead_per_cabinet_m

    @property
    def floor_width_m(self) -> float:
        return self.per_row * self.config.cabinet_width_m

    @property
    def floor_depth_m(self) -> float:
        return self.rows * self.config.cabinet_depth_m

    def __repr__(self) -> str:
        return (
            f"<Floorplan {self.num_switches} switches, {self.num_cabinets} cabinets "
            f"({self.rows} rows x {self.per_row}), "
            f"{self.floor_width_m:.1f}m x {self.floor_depth_m:.1f}m>"
        )


def _isqrt_ceil(m: int) -> int:
    """``ceil(sqrt(m))`` exactly."""
    import math

    r = math.isqrt(m)
    return r if r * r == m else r + 1
