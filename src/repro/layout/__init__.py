"""Physical layout: cabinet floorplans and cable-length estimation (Fig. 9)."""

from repro.layout.cable import (
    CableReport,
    average_cable_length,
    cable_lengths,
    cable_report,
    total_cable_length,
)
from repro.layout.cost import CostModel, InterconnectCost, interconnect_cost
from repro.layout.floorplan import Floorplan, FloorplanConfig
from repro.layout.linear import LinearCableStats, linear_cable_stats
from repro.layout.optimize import PlacementResult, optimize_placement, placement_cable_total

__all__ = [
    "Floorplan",
    "FloorplanConfig",
    "CableReport",
    "average_cable_length",
    "cable_lengths",
    "cable_report",
    "total_cable_length",
    "LinearCableStats",
    "linear_cable_stats",
    "CostModel",
    "InterconnectCost",
    "interconnect_cost",
    "PlacementResult",
    "optimize_placement",
    "placement_cable_total",
]
