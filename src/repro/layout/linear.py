"""1-D line layout for the Theorem 2(b) cable bounds.

Theorem 2(b) reasons about nodes "arranged evenly in a line of length n
(distance between two adjacent nodes is 1)": DSN's average shortcut
length is at most ``n/p`` and its total cable at most ``n^2/p + 2n``,
versus an average shortcut of ``n/3`` for DLN-2-2 -- roughly a ``p/3``
saving. This module measures those quantities exactly so the theory
benchmark (experiment E10) can print bound-vs-measured rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topologies.base import LinkClass, Topology

__all__ = ["LinearCableStats", "linear_cable_stats"]


def _arc_length(u: int, v: int, n: int) -> int:
    """Ring-arc length between positions ``u`` and ``v``.

    Theorem 2(b) sums shortcut *spans*: a level-l shortcut contributes
    about ``n/2^l`` regardless of where the ring was cut open to form
    the line. Measuring ``|u - v|`` literally would charge a shortcut
    that happens to straddle the cut almost ``n`` instead of its span,
    which is a property of the (arbitrary) cut point, not the topology.
    """
    d = abs(u - v)
    return min(d, n - d)


@dataclass(frozen=True)
class LinearCableStats:
    """Cable statistics on the unit-spaced line layout."""

    name: str
    total: float  #: total cable length over all links
    average_shortcut: float  #: mean length of SHORTCUT/RANDOM links
    num_shortcuts: int
    average_all: float


def linear_cable_stats(topo: Topology) -> LinearCableStats:
    """Measure line-layout cable lengths of a ring-based topology.

    The ring is laid out along the line (node id = position); the ring's
    wrap link (n-1, 0) is excluded, matching the theorem's "line" rather
    than "circle" geometry.
    """
    n = topo.n
    lengths = []
    shortcut_lengths = []
    for link in topo.links:
        if link.cls is LinkClass.LOCAL and {link.u, link.v} == {0, n - 1}:
            continue  # the ring's wrap link does not exist on the line
        d = _arc_length(link.u, link.v, n)
        lengths.append(d)
        if link.cls in (LinkClass.SHORTCUT, LinkClass.RANDOM):
            shortcut_lengths.append(d)

    lengths_arr = np.array(lengths, dtype=float)
    sc = np.array(shortcut_lengths, dtype=float) if shortcut_lengths else np.array([0.0])
    return LinearCableStats(
        name=topo.name,
        total=float(lengths_arr.sum()),
        average_shortcut=float(sc.mean()),
        num_shortcuts=len(shortcut_lengths),
        average_all=float(lengths_arr.mean()),
    )
