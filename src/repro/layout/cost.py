"""Interconnect cost model (Section VI-B economics).

"The total cost of interconnects (the price of switches and cables plus
installation cost) increases in proportion to the cable length assuming
high-bandwidth optical cables over 10Gbps [4], [23]. We thus expect
that our DSN topology has a good economy." This module makes the claim
quantitative: a parameterized bill-of-materials cost and a
cost-performance view (cost x average hops -- the latency-cost product
an operator actually shops on).

Default prices are representative of the paper's era (optical QDR-class
parts) and exist to compare topologies, not to quote vendors: what
matters is that cable cost scales with metres while switch cost is
topology-independent at equal radix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.layout.cable import total_cable_length
from repro.layout.floorplan import Floorplan, FloorplanConfig
from repro.topologies.base import Topology

__all__ = ["CostModel", "InterconnectCost", "interconnect_cost"]


@dataclass(frozen=True)
class CostModel:
    """Unit prices (arbitrary currency; only ratios matter)."""

    switch_cost: float = 5000.0  #: per switch (radix-fixed comparison)
    cable_cost_per_m: float = 40.0  #: optical cable, per metre
    cable_fixed_cost: float = 120.0  #: per cable: transceivers, connectors
    install_per_cable: float = 30.0  #: labour per pulled cable


@dataclass(frozen=True)
class InterconnectCost:
    """Cost breakdown for one topology on one floorplan."""

    name: str
    switches: float
    cables_material: float
    cables_fixed: float
    installation: float

    @property
    def total(self) -> float:
        return self.switches + self.cables_material + self.cables_fixed + self.installation

    @property
    def cable_share(self) -> float:
        """Fraction of total cost that scales with topology choice."""
        return (self.cables_material + self.cables_fixed + self.installation) / self.total

    def row(self) -> list:
        return [
            self.name,
            round(self.total, 0),
            round(self.cables_material, 0),
            f"{self.cable_share:.1%}",
        ]


def interconnect_cost(
    topo: Topology,
    model: CostModel | None = None,
    floorplan: Floorplan | None = None,
    config: FloorplanConfig | None = None,
) -> InterconnectCost:
    """Bill of materials for deploying ``topo`` on the cabinet floorplan."""
    model = model or CostModel()
    fp = floorplan or Floorplan(topo.n, config)
    metres = total_cable_length(topo, floorplan=fp)
    num_cables = topo.num_links + len(getattr(topo, "parallel_links", ()))
    return InterconnectCost(
        name=topo.name,
        switches=model.switch_cost * topo.n,
        cables_material=model.cable_cost_per_m * metres,
        cables_fixed=model.cable_fixed_cost * num_cables,
        installation=model.install_per_cable * num_cables,
    )
