"""The basic DSN-x-n topology (paper Section IV-B).

Construction
------------

* ``n`` switches on a ring; node ``i`` has *pred* ``(i-1) mod n`` and
  *succ* ``(i+1) mod n`` local links.
* ``p = ceil(log2 n)``. Node ``i`` carries **level** ``(i mod p) + 1``
  (levels assigned periodically: level ``i`` to nodes ``k*p + i - 1``).
  Its **height** is ``p + 1 - level``.
* Each node of level ``l <= x`` owns the group's *level-l shortcut*: an
  undirected link to the level-``(l+1)`` node at minimum clockwise
  distance that is at least ``ceil(n / 2**l)``.
* Each run of ``p`` consecutive nodes ``[k*p, (k+1)*p)`` forms a **super
  node**; collapsing super nodes yields exactly a DLN-x graph, which is
  why distance-halving routing works (Section IV-B, Fig. 1(c)).
  If ``p`` does not divide ``n`` the final super node is *incomplete*
  with only ``r = n mod p`` nodes (paper Fig. 4, red nodes).

The choice ``p = ceil(log2 n)`` (not floor) follows the paper's own
examples: DSN-10-1020 has ``p = 10 = ceil(log2 1020)`` (Section V-C) and
the Fig. 4 caption gives ``n = 1024, p = 10, r = 4``.
"""

from __future__ import annotations

from repro.topologies.base import Link, LinkClass, Topology
from repro.topologies.ring import ring_links
from repro.util import ceil_div, ilog2_ceil

__all__ = ["DSNTopology"]

#: Smallest network for which every shortcut span fits on the ring.
MIN_DSN_NODES = 16


class DSNTopology(Topology):
    """Basic Distributed Shortcut Network DSN-x-n.

    Parameters
    ----------
    n:
        Number of switches (>= 16).
    x:
        Number of distinct shortcut lengths, ``1 <= x <= p - 1`` where
        ``p = ceil(log2 n)``. Defaults to ``p - 1`` (the full set, the
        configuration evaluated in the paper's Sections VI-VII).
    extra_links:
        Additional links appended by extension topologies (e.g. the
        DSN-D express ring, Section V-B).
    p:
        Super-node size override for design-space ablations. The paper
        fixes ``p = ceil(log2 n)`` -- exactly enough levels that the
        longest shortcut halves the ring and the shortest is local;
        smaller ``p`` drops the longest-range levels (bigger diameter,
        less cable), larger ``p`` adds levels whose spans clamp to the
        local scale (more degree-2 nodes, no shorter routes). Leave
        ``None`` for the paper's construction.
    """

    def __init__(
        self,
        n: int,
        x: int | None = None,
        extra_links: list[Link] | None = None,
        name: str | None = None,
        p: int | None = None,
    ):
        if n < MIN_DSN_NODES:
            raise ValueError(
                f"DSN needs n >= {MIN_DSN_NODES} so that shortcut spans fit "
                f"on the ring, got n={n}"
            )
        p_natural = ilog2_ceil(n)
        if p is None:
            p = p_natural
        elif not (2 <= p <= n // 2):
            raise ValueError(f"p must satisfy 2 <= p <= n/2, got p={p}")
        if x is None:
            x = p - 1
        if not (1 <= x <= p - 1):
            raise ValueError(f"x must satisfy 1 <= x <= p-1 = {p - 1}, got x={x}")
        self.p = p
        self.x = x
        self.r = n % p

        self._shortcut_target = self._build_shortcuts(n, p, x)
        links: list[Link] = ring_links(n)
        for i, j in enumerate(self._shortcut_target):
            if j >= 0:
                links.append(Link(i, j, LinkClass.SHORTCUT))
        if extra_links:
            links.extend(extra_links)
        default_name = f"DSN-{x}-{n}" if p == p_natural else f"DSN-{x}-{n}(p={p})"
        super().__init__(n, links, name=name or default_name)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def _build_shortcuts(n: int, p: int, x: int) -> list[int]:
        """Target node of each node's outgoing shortcut (-1 if none).

        The level-l shortcut of node ``i`` lands on the first node
        clockwise of ``i + ceil(n/2^l)`` whose level is ``l + 1``.
        Levels repeat with period ``p``, so the scan needs at most
        ``p + r`` extra steps (the incomplete final super node can lack
        the wanted level, delaying the hit -- this is exactly the
        enlarged-overshoot effect of Section IV-C).
        """
        r = n % p
        targets = [-1] * n
        for i in range(n):
            l = (i % p) + 1
            if l > x:
                continue
            span = ceil_div(n, 2**l)
            want = l + 1
            found = -1
            # Scan clockwise from the minimum span; p + r + 1 positions
            # always suffice to meet the wanted level.
            for extra in range(p + r + 1):
                j = (i + span + extra) % n
                if (j % p) + 1 == want:
                    found = j
                    break
            if found < 0:
                raise AssertionError(
                    f"no level-{want} node within p+r of node {i} (n={n})"
                )
            if found == i or (found - i) % n == 1 or (i - found) % n == 1:
                # Would duplicate a ring link or self-loop; only possible
                # for degenerate tiny n excluded by MIN_DSN_NODES, but
                # guard so the invariant is explicit.
                continue
            targets[i] = found
        return targets

    # ------------------------------------------------------------------
    # DSN vocabulary (Section IV-B)
    # ------------------------------------------------------------------
    def level(self, node: int) -> int:
        """Level of ``node``: ``(node mod p) + 1``, in ``1..p``."""
        return (node % self.p) + 1

    def height(self, node: int) -> int:
        """Height ``p + 1 - level``; higher nodes own longer shortcuts."""
        return self.p + 1 - self.level(node)

    def succ(self, node: int) -> int:
        return (node + 1) % self.n

    def pred(self, node: int) -> int:
        return (node - 1) % self.n

    def shortcut_from(self, node: int) -> int | None:
        """Target of ``node``'s outgoing shortcut, or ``None``."""
        t = self._shortcut_target[node]
        return None if t < 0 else t

    def shortcut_span(self, node: int) -> int | None:
        """Clockwise ring distance covered by ``node``'s shortcut."""
        t = self._shortcut_target[node]
        return None if t < 0 else (t - node) % self.n

    def super_node(self, node: int) -> int:
        """Index of the super node (group of p consecutive nodes)."""
        return node // self.p

    @property
    def num_super_nodes(self) -> int:
        """Number of super nodes, counting an incomplete final one."""
        return ceil_div(self.n, self.p)

    def super_node_members(self, k: int) -> range:
        """Nodes of super node ``k`` (the last one may hold only r nodes)."""
        if not (0 <= k < self.num_super_nodes):
            raise ValueError(f"super node index {k} out of range")
        return range(k * self.p, min((k + 1) * self.p, self.n))

    def incoming_shortcuts(self, node: int) -> list[int]:
        """Nodes whose shortcut lands on ``node`` (at most 2, Fact 1)."""
        return [i for i, t in enumerate(self._shortcut_target) if t == node]

    def required_level(self, distance: int) -> int:
        """Level whose shortcut halves a clockwise ``distance``.

        Returns ``l = floor(log2(n / distance)) + 1``, the unique level
        with ``n/2^l < distance <= n/2^(l-1)`` (routing algorithm line 3).
        Computed exactly: ``floor(log2(n/d)) = floor(log2(n // d))`` for
        integers because both count the largest k with ``2^k * d <= n``.
        """
        if not (1 <= distance <= self.n):
            raise ValueError(f"distance must be in [1, n], got {distance}")
        return (self.n // distance).bit_length()
