"""Flexible DSN with minor nodes (Section V-C).

The strict construction wants ``n`` to be a multiple of ``p``. To
support arbitrary sizes -- and incremental node addition or removal --
the paper starts from a convenient *major* size (e.g. DSN-10-1020) and
inserts **minor nodes** between majors, giving them fractional IDs like
``10 1/2``. Minor nodes carry no shortcut; routing to a minor first
routes to the major just before it and then walks succ links.

We realize the fractional-ID scheme with an explicit ring order: node
ids are re-numbered ``0..n-1`` around the ring, and the topology keeps
the bidirectional mapping between ring ids and the underlying major
DSN ids (plus the fractional labels for display).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.dsn import DSNTopology
from repro.core.routing import HopKind, Phase, RouteHop, RouteResult, dsn_route
from repro.topologies.base import Link, LinkClass, Topology

__all__ = ["FlexibleDSNTopology", "flexible_route"]


class FlexibleDSNTopology(Topology):
    """A basic DSN over ``base_n`` majors plus minor nodes in the ring.

    Parameters
    ----------
    base_n:
        Size of the underlying basic DSN (the majors).
    x:
        Shortcut-set size of the underlying DSN (default ``p - 1``).
    minors_after:
        Major ids after which one minor node is inserted. A major id may
        appear several times to insert several consecutive minors (they
        get labels ``i + 1/2``, ``i + 2/3`` style fractions).

    Example: the paper's size-1024 network is
    ``FlexibleDSNTopology(1020, minors_after=[10, 20, 30, 40])``.
    """

    def __init__(self, base_n: int, minors_after: list[int], x: int | None = None):
        self.major_dsn = DSNTopology(base_n, x=x)
        for m in minors_after:
            if not (0 <= m < base_n):
                raise ValueError(f"minors_after entry {m} outside [0, {base_n})")

        inserts: dict[int, int] = {}
        for m in minors_after:
            inserts[m] = inserts.get(m, 0) + 1

        # Ring order: each major followed by its minors.
        self._ring_of_major: list[int] = [0] * base_n  # major id -> ring id
        labels: list[Fraction] = []
        is_minor: list[bool] = []
        major_before: list[int] = []  # ring id -> major id preceding (or self)
        for major in range(base_n):
            self._ring_of_major[major] = len(labels)
            labels.append(Fraction(major))
            is_minor.append(False)
            major_before.append(major)
            k = inserts.get(major, 0)
            for j in range(1, k + 1):
                labels.append(Fraction(major) + Fraction(j, k + 1))
                is_minor.append(True)
                major_before.append(major)

        n = len(labels)
        self.labels: tuple[Fraction, ...] = tuple(labels)
        self._is_minor: tuple[bool, ...] = tuple(is_minor)
        self._major_before: tuple[int, ...] = tuple(major_before)

        links: list[Link] = [Link(i, (i + 1) % n, LinkClass.LOCAL) for i in range(n)]
        for i in range(base_n):
            j = self.major_dsn.shortcut_from(i)
            if j is not None:
                links.append(
                    Link(self._ring_of_major[i], self._ring_of_major[j], LinkClass.SHORTCUT)
                )
        super().__init__(n, links, name=f"FlexDSN-{self.major_dsn.x}-{base_n}+{n - base_n}")

    # ------------------------------------------------------------------
    def is_minor(self, node: int) -> bool:
        return self._is_minor[node]

    @property
    def num_minors(self) -> int:
        return sum(self._is_minor)

    def major_ring_id(self, major: int) -> int:
        """Ring id of major node ``major`` (its id in the base DSN)."""
        return self._ring_of_major[major]

    def major_before(self, node: int) -> int:
        """Major (base-DSN id) at or immediately before ``node`` on the ring."""
        return self._major_before[node]

    def label(self, node: int) -> Fraction:
        """Paper-style fractional ID of a ring node (e.g. ``21/2``)."""
        return self.labels[node]


def flexible_route(topo: FlexibleDSNTopology, s: int, t: int) -> RouteResult:
    """Route on a flexible DSN (ring ids).

    Rule from Section V-C: route to the major node just before the
    (possibly minor) destination with the ordinary DSN algorithm, then
    walk succ links to the minor. A minor source first steps back to its
    preceding major.
    """
    n = topo.n
    result = RouteResult(source=s, dest=t)
    if s == t:
        return result

    u = s
    # Minor source: back up to the preceding major (at most a few hops).
    while topo.is_minor(u):
        w = (u - 1) % n
        result.hops.append(RouteHop(u, w, HopKind.PRED, Phase.PREWORK))
        u = w
        if u == t:  # the destination sat between the source and its major
            result.validate()
            return result

    s_major = topo.major_before(u)
    t_major = topo.major_before(t)

    # Route major-to-major on the underlying DSN, translating each hop
    # back to ring ids (shortcuts map 1:1; local hops may need to skip
    # over interleaved minors).
    if s_major != t_major:
        base = dsn_route(topo.major_dsn, s_major, t_major)
        for hop in base.hops:
            src_ring = topo.major_ring_id(hop.src)
            dst_ring = topo.major_ring_id(hop.dst)
            if hop.kind is HopKind.SHORTCUT:
                result.hops.append(RouteHop(src_ring, dst_ring, hop.kind, hop.phase))
            else:
                step = 1 if hop.kind is HopKind.SUCC else -1
                v = src_ring
                while v != dst_ring:
                    w = (v + step) % n
                    result.hops.append(RouteHop(v, w, hop.kind, hop.phase))
                    v = w
        u = topo.major_ring_id(t_major)

    # Walk succ to the (minor) destination.
    while u != t:
        w = (u + 1) % n
        result.hops.append(RouteHop(u, w, HopKind.SUCC, Phase.FINISH))
        u = w

    result.validate()
    return result
