"""Closed-form properties of DSN from Section IV-C (Facts 1-3, Thms 1-2).

These are the *predictions* the experimental harness validates: each
function returns the paper's bound so benchmarks can print
measured-vs-bound rows (experiments E7-E10 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import ilog2_ceil

__all__ = [
    "DSNTheory",
    "dsn_theory",
    "applies_fact2",
    "dln22_average_shortcut_length",
]


@dataclass(frozen=True)
class DSNTheory:
    """All Section IV-C bounds for a DSN-x-n instance."""

    n: int
    x: int
    p: int  #: super-node size, ceil(log2 n)
    r: int  #: n mod p, size of the incomplete final super node

    # -- Fact 1 / Theorem 1(a): degrees -------------------------------
    @property
    def min_degree_bound(self) -> int:
        """Minimum possible degree: 2 if x < p-1 (levels > x+1 have
        neither an outgoing nor an incoming shortcut), else 3."""
        return 3 if self.x == self.p - 1 else 2

    @property
    def max_degree_bound(self) -> int:
        """Maximum degree is 5 (two incoming shortcuts + out + ring)."""
        return 5

    @property
    def average_degree_bound(self) -> float:
        """Average degree is at most 4."""
        return 4.0

    @property
    def max_degree5_nodes(self) -> int:
        """At most ``p`` nodes have degree 5 (Fact 1)."""
        return self.p

    @property
    def expected_degree5_nodes(self) -> float:
        """Expected number of degree-5 nodes is <= p/2 (observation)."""
        return self.p / 2

    # -- Facts 2-3 / Theorem 1(b,c): diameters -------------------------
    @property
    def fact2_applies(self) -> bool:
        """Facts 2-3 assume ``x > p - log p``."""
        return self.x > self.p - ilog2_ceil(self.p)

    @property
    def routing_diameter_bound(self) -> int:
        """Max custom-routing path length: ``3p + r`` (Fact 2)."""
        return 3 * self.p + self.r

    @property
    def diameter_bound(self) -> float:
        """Graph diameter: ``2.5p + r`` (Fact 3)."""
        return 2.5 * self.p + self.r

    @property
    def overshoot_bound(self) -> int:
        """Max overshoot distance: ``p + r`` (enlarged by the incomplete
        super node; ``p`` when r = 0), Section IV-C discussion."""
        return self.p + self.r

    # -- Theorem 2(a): expected path lengths ---------------------------
    @property
    def expected_routing_length_bound(self) -> float:
        """E[routing path] <= 2p over uniform (s, t)."""
        return 2.0 * self.p

    @property
    def expected_shortest_length_bound(self) -> float:
        """E[shortest path] <= 1.5p over uniform (s, t)."""
        return 1.5 * self.p

    # -- Theorem 2(b): cable length on a unit-spaced line --------------
    #
    # The paper states the asymptotic constants (proof "omitted ... a
    # bit tedious"). Exactly, each level-l shortcut spans
    # ceil(n/2^l) plus up to p + r extra steps of the level-seeking
    # scan, so the tight bounds carry an additive O(p + r) slack per
    # shortcut; the *_exact variants include it and are what the
    # validation experiments assert. Measured values converge to the
    # asymptotic constants as n grows (see EXPERIMENTS.md, E10).
    @property
    def average_shortcut_length_bound(self) -> float:
        """Paper's asymptotic statement: average shortcut length <= n/p."""
        return self.n / self.p

    @property
    def average_shortcut_length_bound_exact(self) -> float:
        """Slack-corrected bound: n/(p-1) + (p + r + 1)."""
        return self.n / (self.p - 1) + self.p + self.r + 1

    @property
    def total_cable_bound(self) -> float:
        """Paper's asymptotic statement: total cable <= n^2/p + 2n."""
        return self.n**2 / self.p + 2.0 * self.n

    @property
    def total_cable_bound_exact(self) -> float:
        """Slack-corrected bound: n^2/p + 2n + n(p + r + 1)."""
        return self.n**2 / self.p + 2.0 * self.n + self.n * (self.p + self.r + 1)

    @property
    def dln22_cable_ratio(self) -> float:
        """DSN cable is shorter than DLN-2-2's by about a factor p/3."""
        return self.p / 3.0


def dsn_theory(n: int, x: int | None = None) -> DSNTheory:
    """Build the bound set for DSN-x-n (default x = p - 1)."""
    p = ilog2_ceil(n)
    if x is None:
        x = p - 1
    return DSNTheory(n=n, x=x, p=p, r=n % p)


def applies_fact2(n: int, x: int) -> bool:
    """True iff the ``x > p - log p`` premise of Facts 2-3 holds."""
    return dsn_theory(n, x).fact2_applies


def dln22_average_shortcut_length(n: int, convention: str = "arc") -> float:
    """Expected length of a uniform random chord over ``n`` ring nodes.

    Theorem 2(b) quotes ``n/3`` -- that is E|U - V| for U, V uniform on a
    *line* of length n. Our cable measurement uses ring-arc spans
    (see :mod:`repro.layout.linear`), under which the expectation is
    E[min(d, n-d)] = ``n/4``. Both are Theta(n); only the constant in
    the DSN-vs-DLN-2-2 saving factor (p/3 vs p/4) changes.
    """
    if convention == "line":
        return n / 3.0
    if convention == "arc":
        return n / 4.0
    raise ValueError(f"convention must be 'line' or 'arc', got {convention!r}")
