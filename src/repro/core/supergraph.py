"""The super-node view of a DSN (paper Fig. 1(c)).

"Imagine each group of p adjacent nodes to be collapsed into one big
super node. You then obtain exactly a DLN-x topology of these super
nodes" -- this module performs that collapse and *checks* the claim:

* :func:`super_graph` -- the quotient topology over super nodes;
* :func:`super_shortcut_spans` -- per-level shortcut spans measured in
  super-node units (the DLN-x spans are ``~m/2^l`` for ``m = n/p``
  super nodes);
* :func:`verify_dln_collapse` -- asserts the structural claim for
  aligned sizes (r = 0): every super node has ring links to both
  neighbors and one shortcut of every level, each landing
  ``~m/2^l`` super nodes away.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.dsn import DSNTopology
from repro.topologies.base import Link, LinkClass, Topology
from repro.util import ceil_div

__all__ = ["super_graph", "super_shortcut_spans", "verify_dln_collapse"]


def super_graph(dsn: DSNTopology) -> Topology:
    """Collapse each super node to a vertex; keep distinct quotient links.

    Ring links between adjacent super nodes become LOCAL links;
    shortcuts become SHORTCUT links between their endpoint super nodes
    (duplicates collapse, as in any quotient graph).
    """
    m = dsn.num_super_nodes
    links: list[Link] = []
    for link in dsn.links:
        su, sv = dsn.super_node(link.u), dsn.super_node(link.v)
        if su == sv:
            continue
        links.append(Link(su, sv, link.cls))
    return Topology(m, links, name=f"super({dsn.name})")


def super_shortcut_spans(dsn: DSNTopology) -> dict[int, list[int]]:
    """Per level: clockwise spans of its shortcuts in super-node units."""
    m = dsn.num_super_nodes
    spans: dict[int, list[int]] = defaultdict(list)
    for v in range(dsn.n):
        w = dsn.shortcut_from(v)
        if w is None:
            continue
        su, sw = dsn.super_node(v), dsn.super_node(w)
        spans[dsn.level(v)].append((sw - su) % m)
    return dict(spans)


def verify_dln_collapse(dsn: DSNTopology) -> None:
    """Assert the Fig. 1(c) claim; raises ``AssertionError`` on failure.

    Requires ``r = 0`` (with an incomplete tail super node the quotient
    is only approximately a DLN, as the paper itself notes).
    """
    if dsn.r != 0:
        raise ValueError("the exact DLN collapse requires n to be a multiple of p")
    m = dsn.num_super_nodes
    g = super_graph(dsn)

    # Ring of super nodes intact.
    for k in range(m):
        if not g.has_link(k, (k + 1) % m):
            raise AssertionError(f"super nodes {k} and {(k + 1) % m} not ring-linked")

    # One shortcut of every level per super node, spanning ~m/2^l.
    per_super: dict[int, set[int]] = defaultdict(set)
    for v in range(dsn.n):
        if dsn.shortcut_from(v) is not None:
            per_super[dsn.super_node(v)].add(dsn.level(v))
    for k in range(m):
        expect = set(range(1, dsn.x + 1))
        if per_super[k] != expect:
            raise AssertionError(
                f"super node {k} owns levels {sorted(per_super[k])}, expected {sorted(expect)}"
            )

    for level, spans in super_shortcut_spans(dsn).items():
        target = ceil_div(dsn.n, 2**level) / dsn.p  # = m/2^level for r=0
        for s in spans:
            # The landing super node is the one holding the level+1 node
            # at or just past the span: within one super node of target.
            if not (target - 1 <= s <= target + 1 + dsn.r / max(dsn.p, 1)):
                raise AssertionError(
                    f"level-{level} super-shortcut spans {s} super nodes, "
                    f"expected ~{target:.1f}"
                )
