"""DSN-Routing: the paper's custom distance-halving algorithm (Fig. 2).

The route from ``s`` to ``t`` works on the *clockwise* distance
``d = (t - u) mod n`` and runs in three phases:

* **PRE-WORK** -- walk *pred* links until the current node's level is at
  most the *required level* ``l`` (the level whose shortcut at least
  halves ``d``), i.e. until the node is "high enough to look over to t";
* **MAIN-PROCESS** -- alternate *succ* steps (to reach the node of level
  exactly ``l`` inside the super node) and *shortcut* jumps (each of
  which at least halves the remaining distance), until the LOOP-STOP
  condition: the level ``x+1`` node is reached (no more shortcuts), the
  distance is at most ``p``, or the last shortcut overshot ``t``;
* **FINISH** -- walk local links (succ if short, pred if overshot) to
  ``t``.

Guarantees reproduced and tested here (Section IV-C):

* Fact 2: for ``x > p - log p``, path length <= ``3p + r``;
* Theorem 2(a): expected path length <= ``2p`` over uniform pairs.

The module also implements the Section V-D *overshoot-avoiding* twist:
when the selected shortcut would overshoot, first take one succ step and
use the next node's (twice shorter) shortcut instead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.dsn import DSNTopology
from repro.util import clockwise_distance

__all__ = [
    "Phase",
    "HopKind",
    "RouteHop",
    "RouteResult",
    "ChannelPolicy",
    "BASIC_POLICY",
    "dsn_route",
    "route_all_pairs",
]


class Phase(enum.Enum):
    """Routing phase a hop belongs to (drives the deadlock analysis)."""

    PREWORK = "prework"
    MAIN = "main"
    FINISH = "finish"


class HopKind(enum.Enum):
    """Which link type a hop traverses."""

    PRED = "pred"
    SUCC = "succ"
    SHORTCUT = "shortcut"
    UP = "up"  #: DSN-E Up link (extended routing)
    EXTRA = "extra"  #: DSN-E Extra link (extended routing)
    EXPRESS = "express"  #: DSN-D express link (improved routing)


@dataclass(frozen=True)
class RouteHop:
    """One traversed directed channel."""

    src: int
    dst: int
    kind: HopKind
    phase: Phase


@dataclass
class RouteResult:
    """A complete source-to-destination route with per-phase accounting."""

    source: int
    dest: int
    hops: list[RouteHop] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.hops)

    @property
    def path(self) -> list[int]:
        """Node sequence ``[source, ..., dest]``."""
        nodes = [self.source]
        nodes.extend(h.dst for h in self.hops)
        return nodes

    def phase_length(self, phase: Phase) -> int:
        return sum(1 for h in self.hops if h.phase is phase)

    def kind_count(self, kind: HopKind) -> int:
        return sum(1 for h in self.hops if h.kind is kind)

    def validate(self) -> None:
        """Raise if the hop chain is not contiguous or misses the dest."""
        u = self.source
        for hop in self.hops:
            if hop.src != u:
                raise AssertionError(f"hop chain broken at {hop} (expected src {u})")
            u = hop.dst
        if u != self.dest:
            raise AssertionError(f"route ends at {u}, not dest {self.dest}")


class ChannelPolicy:
    """Maps local moves to hop kinds (i.e. to physical/virtual channels).

    The basic algorithm uses the ring's pred/succ links in every phase.
    The deadlock-free DSN-E/DSN-V disciplines (Section V-A) override
    this so that PRE-WORK rides *Up* channels and FINISH rides *Extra*
    channels inside the dateline region -- see
    :mod:`repro.core.extensions`.
    """

    def prework_kind(self, u: int, t: int) -> HopKind:
        """Kind of a PRE-WORK pred-move out of ``u`` toward dest ``t``."""
        return HopKind.PRED

    def finish_pred_kind(self, u: int, t: int) -> HopKind:
        """Kind of a FINISH pred-move out of ``u`` toward dest ``t``."""
        return HopKind.PRED

    def finish_succ_kind(self, u: int, t: int) -> HopKind:
        """Kind of a FINISH succ-move out of ``u`` toward dest ``t``."""
        return HopKind.SUCC


#: The basic DSN-Routing channel usage (pred/succ everywhere).
BASIC_POLICY = ChannelPolicy()


def dsn_route(
    topo: DSNTopology,
    s: int,
    t: int,
    avoid_overshoot: bool = False,
    policy: ChannelPolicy = BASIC_POLICY,
) -> RouteResult:
    """Route from ``s`` to ``t`` with the DSN-Routing algorithm (Fig. 2).

    Parameters
    ----------
    avoid_overshoot:
        Apply the Section V-D twist: replace an overshooting shortcut by
        one succ step plus the next node's shorter shortcut. Shortens
        FINISH at the cost of a (possibly) longer MAIN-PROCESS.
    """
    n = topo.n
    if not (0 <= s < n and 0 <= t < n):
        raise ValueError(f"s and t must be node ids in [0, {n}), got {s}, {t}")
    result = RouteResult(source=s, dest=t)
    if s == t:
        return result

    hard_limit = 4 * n  # infinite-loop guard only; real bound is 3p + r
    u = s
    d = clockwise_distance(u, t, n)
    l = topo.required_level(d)

    def move(w: int, kind: HopKind, phase: Phase) -> None:
        nonlocal u, d
        result.hops.append(RouteHop(u, w, kind, phase))
        u = w
        d = clockwise_distance(u, t, n)
        if len(result.hops) > hard_limit:
            raise RuntimeError(f"routing exceeded {hard_limit} hops from {s} to {t}")

    # -------------------------- PRE-WORK -----------------------------
    # Go uphill (pred links, level decreasing) until level(u) <= l.
    # Each pred step increases d, which can only lower the required
    # level, so the loop recomputes l exactly as the pseudo-code does.
    while topo.level(u) > l:
        move(topo.pred(u), policy.prework_kind(u, t), Phase.PREWORK)
        if u == t:  # t sat immediately counterclockwise of s
            return result
        l = topo.required_level(d)

    # ------------------------ MAIN-PROCESS ---------------------------
    # Invariant (Fact 2 proof): d <= n / 2**(level(u) - 1) throughout,
    # so level(u) <= l at every loop entry.
    overshot = False
    while True:
        if u == t:
            return result
        if d <= topo.p:  # LOOP-STOP: close enough, shortcut would overshoot
            break
        if topo.level(u) == topo.x + 1:  # LOOP-STOP: no shortcut at this level
            break
        if topo.level(u) == l:
            w = topo.shortcut_from(u)
            if w is None:
                # Level l > x: the distance-halving chain is exhausted
                # (only possible for x <= p - log p configurations).
                break
            jump = clockwise_distance(u, w, n)
            if jump > d:
                # The selected shortcut overshoots t.
                if avoid_overshoot:
                    # Section V-D: one succ step, then the next node's
                    # twice-shorter shortcut (checked on next iteration
                    # via the same level == required-level test after
                    # recomputing l; if it still overshoots we step
                    # again, monotonically shrinking d).
                    move(topo.succ(u), HopKind.SUCC, Phase.MAIN)
                    w2 = topo.shortcut_from(u)
                    if w2 is not None and clockwise_distance(u, w2, n) <= d:
                        move(w2, HopKind.SHORTCUT, Phase.MAIN)
                    l = topo.required_level(d) if d > 0 else l
                    if d == 0:
                        return result
                    continue
                move(w, HopKind.SHORTCUT, Phase.MAIN)
                overshot = True
                break  # LOOP-STOP: overshooting t
            move(w, HopKind.SHORTCUT, Phase.MAIN)
        else:
            move(topo.succ(u), HopKind.SUCC, Phase.MAIN)
        if d == 0:
            return result
        l = topo.required_level(d)

    # --------------------------- FINISH ------------------------------
    # Local walk: pred over the overshoot, succ otherwise.
    while u != t:
        cw = clockwise_distance(u, t, n)
        ccw = clockwise_distance(t, u, n)
        if overshot or ccw < cw:
            move(topo.pred(u), policy.finish_pred_kind(u, t), Phase.FINISH)
        else:
            move(topo.succ(u), policy.finish_succ_kind(u, t), Phase.FINISH)
    return result


def route_all_pairs(
    topo: DSNTopology,
    avoid_overshoot: bool = False,
    pairs: list[tuple[int, int]] | None = None,
):
    """Yield :class:`RouteResult` for every ordered pair (or ``pairs``)."""
    if pairs is None:
        pairs = [(s, t) for s in range(topo.n) for t in range(topo.n) if s != t]
    for s, t in pairs:
        yield dsn_route(topo, s, t, avoid_overshoot=avoid_overshoot)
