"""The paper's contribution: DSN topologies and their custom routing.

* :class:`DSNTopology` -- the basic DSN-x-n construction (Section IV-B);
* :func:`dsn_route` -- the three-phase distance-halving routing (Fig. 2),
  with the Section V-D overshoot-avoiding variant;
* :class:`DSNETopology` / :class:`DSNVTopology` + :func:`dsn_route_extended`
  -- the deadlock-free extensions (Section V-A, Theorem 3);
* :class:`DSNDTopology` + :func:`dsnd_route` -- the diameter-improving
  express-link construction (Section V-B);
* :class:`FlexibleDSNTopology` + :func:`flexible_route` -- arbitrary-size
  networks with minor nodes (Section V-C);
* :func:`dsn_theory` -- every closed-form bound of Section IV-C, used by
  the validation experiments.
"""

from repro.core.dsn import DSNTopology
from repro.core.extensions import (
    DSNDTopology,
    DSNETopology,
    DSNVTopology,
    ExtendedChannelPolicy,
    dsn_route_extended,
    dsnd_route,
)
from repro.core.flexible import FlexibleDSNTopology, flexible_route
from repro.core.routing import (
    BASIC_POLICY,
    ChannelPolicy,
    HopKind,
    Phase,
    RouteHop,
    RouteResult,
    dsn_route,
    route_all_pairs,
)
from repro.core.supergraph import super_graph, super_shortcut_spans, verify_dln_collapse
from repro.core.theory import DSNTheory, applies_fact2, dln22_average_shortcut_length, dsn_theory

__all__ = [
    "DSNTopology",
    "DSNETopology",
    "DSNVTopology",
    "DSNDTopology",
    "FlexibleDSNTopology",
    "ExtendedChannelPolicy",
    "dsn_route",
    "dsn_route_extended",
    "dsnd_route",
    "flexible_route",
    "route_all_pairs",
    "BASIC_POLICY",
    "ChannelPolicy",
    "HopKind",
    "Phase",
    "RouteHop",
    "RouteResult",
    "super_graph",
    "super_shortcut_spans",
    "verify_dln_collapse",
    "DSNTheory",
    "dsn_theory",
    "applies_fact2",
    "dln22_average_shortcut_length",
]
