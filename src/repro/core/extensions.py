"""DSN topology extensions: DSN-E / DSN-V (Section V-A) and DSN-D (V-B).

Deadlock-free routing (Section V-A, Theorem 3)
----------------------------------------------

The basic DSN-Routing reuses pred channels in both PRE-WORK and FINISH,
and many concurrent FINISH walks can close a dependency loop around the
ring. The paper's fix adds dedicated resources:

* **Up links** -- one extra local link per node, used *only* for
  PRE-WORK's uphill walk (and, in our concretization, for FINISH's
  forward walk in the opposite direction: a walk that never shares
  channels with MAIN's succ traffic);
* **Extra links** -- ``2p`` links ``(i, i-1)`` for ``i = 1..2p``. A
  FINISH walk whose *destination lies in the dateline region
  [0, 2p)* rides Extra channels while inside that region.

Because a FINISH walk spans at most ``p + r < 2p`` hops, walks that
cross node 0 necessarily *start* inside the region, so the plain
pred/Up channels within ``[1, 2p]`` are never used by FINISH -- the
dependency chain around the ring has a permanent gap and can never
close. :mod:`repro.routing.cdg` verifies this acyclicity exhaustively
(experiment E11).

**DSN-E** realizes Up/Extra as additional *physical* links (parallel
cables on the ring segments -- kept in :attr:`DSNETopology.parallel_links`
because they change cabling and channel counts but not graph distances).
**DSN-V** keeps the basic topology and realizes the same discipline as
additional *virtual channels* on the ring links; both share the
:class:`ExtendedChannelPolicy` below, which tags each hop with the
channel class the CDG analysis consumes.

DSN-D (Section V-B)
-------------------

In DSN-(p-1) the ``log p`` shortest shortcut levels are useless (they
are just ``(i, i+p+1)`` hops that overshoot). DSN-D-d drops them
(base ``x = p - ceil(log p)``) and instead adds ``d`` short *express
links* per super node, connecting every ``q = ceil(p/d)``-th node in a
secondary ring; PRE-WORK and FINISH ride the express ring to cut their
local walks by a factor of about ``1 - 1/d``. For DSN-D-2 the paper
quotes diameter ~``(7/4)p`` and routing diameter ~``2p``.
"""

from __future__ import annotations

from repro.core.dsn import DSNTopology
from repro.core.routing import (
    ChannelPolicy,
    HopKind,
    Phase,
    RouteHop,
    RouteResult,
    dsn_route,
)
from repro.topologies.base import Link, LinkClass
from repro.util import ceil_div, clockwise_distance, ilog2_ceil

__all__ = [
    "DSNETopology",
    "DSNVTopology",
    "DSNDTopology",
    "ExtendedChannelPolicy",
    "dsn_route_extended",
    "dsnd_route",
]


class ExtendedChannelPolicy(ChannelPolicy):
    """Channel discipline of the DSN-E / DSN-V extended routing.

    * PRE-WORK pred-moves -> ``UP`` channels;
    * FINISH pred-moves -> ``EXTRA`` inside the dateline region when the
      destination lies in ``[0, 2p)``, else ``PRED``;
    * FINISH succ-moves -> ``EXTRA`` under the same dateline rule, else
      ``UP`` (the forward direction of the Up links), never the MAIN
      succ channels.
    """

    def __init__(self, n: int, p: int):
        self.n = n
        self.region = 2 * p  #: the dateline region is [0, 2p)

    def _dest_in_region(self, t: int) -> bool:
        return 0 <= t < self.region

    def prework_kind(self, u: int, t: int) -> HopKind:
        return HopKind.UP

    def finish_pred_kind(self, u: int, t: int) -> HopKind:
        # pred-move u -> u-1 rides Extra link (u, u-1), defined for
        # u in [1, 2p].
        if self._dest_in_region(t) and 1 <= u <= self.region:
            return HopKind.EXTRA
        return HopKind.PRED

    def finish_succ_kind(self, u: int, t: int) -> HopKind:
        # succ-move u -> u+1 rides Extra link (u+1, u), defined for
        # u+1 in [1, 2p].
        nxt = (u + 1) % self.n
        if self._dest_in_region(t) and 1 <= nxt <= self.region:
            return HopKind.EXTRA
        return HopKind.UP


class DSNETopology(DSNTopology):
    """DSN-E: basic DSN (x = p-1) plus physical Up and Extra links.

    Up/Extra links are parallel to existing ring links, so they do not
    change the simple-graph structure (distances, diameter); they are
    recorded in :attr:`parallel_links` and counted by the cable-length
    analysis and the channel model.
    """

    def __init__(self, n: int):
        # Section V-A fixes x = p - 1 so every super node has a full
        # shortcut set.
        super().__init__(n, x=None)
        up = [Link(i, (i - 1) % n, LinkClass.UP) for i in range(n)]
        extra = [Link(i, i - 1, LinkClass.EXTRA) for i in range(1, 2 * self.p + 1)]
        self.parallel_links: tuple[Link, ...] = tuple(up + extra)
        self.name = f"DSN-E-{n}"

    @property
    def up_links(self) -> list[Link]:
        return [l for l in self.parallel_links if l.cls is LinkClass.UP]

    @property
    def extra_links(self) -> list[Link]:
        return [l for l in self.parallel_links if l.cls is LinkClass.EXTRA]

    def total_degree(self, node: int) -> int:
        """Degree counting parallel Up/Extra cables."""
        extra = sum(1 for l in self.parallel_links if node in l.endpoints())
        return self.degree(node) + extra

    def policy(self) -> ExtendedChannelPolicy:
        return ExtendedChannelPolicy(self.n, self.p)


class DSNVTopology(DSNTopology):
    """DSN-V: basic DSN with the Up/Extra discipline on virtual channels.

    Physically identical to the basic DSN (x = p-1); the extended
    routing's UP/EXTRA hop kinds map to dedicated virtual channels on
    the existing ring links instead of dedicated cables.
    """

    def __init__(self, n: int):
        super().__init__(n, x=None)
        self.name = f"DSN-V-{n}"

    def policy(self) -> ExtendedChannelPolicy:
        return ExtendedChannelPolicy(self.n, self.p)


def dsn_route_extended(topo: DSNETopology | DSNVTopology, s: int, t: int) -> RouteResult:
    """Deadlock-free extended DSN-Routing (Theorem 3).

    Identical hop sequence to the basic algorithm -- so the ``3p + r``
    routing diameter of Fact 2 is preserved -- but every hop is tagged
    with the channel class of the Section V-A discipline.
    """
    return dsn_route(topo, s, t, policy=topo.policy())


# ----------------------------------------------------------------------
# DSN-D: diameter-improving construction (Section V-B)
# ----------------------------------------------------------------------
class DSNDTopology(DSNTopology):
    """DSN-D-d: truncated shortcut set plus ``d`` express links per super node.

    The base is DSN-x with ``x = p - ceil(log2 p)`` (dropping the
    unhelpful shortest shortcuts); an express ring connects every
    ``q = ceil(p/d)``-th node.
    """

    def __init__(self, n: int, d: int = 2):
        p = ilog2_ceil(n)
        if not (1 <= d < p):
            raise ValueError(f"express density d must satisfy 1 <= d < p={p}, got {d}")
        x = max(1, p - ilog2_ceil(p))
        q = ceil_div(p, d)
        if q < 2:
            raise ValueError(f"express stride q must be >= 2, got {q} (n={n}, d={d})")

        # Express ring over nodes {0, q, 2q, ..., wq}, closed back to 0.
        w = ceil_div(n, q) - 1
        stops = [i * q for i in range(w + 1) if i * q < n]
        express = []
        for a, b in zip(stops, stops[1:]):
            express.append(Link(a, b, LinkClass.EXPRESS))
        if len(stops) > 2:
            express.append(Link(stops[-1], 0, LinkClass.EXPRESS))

        super().__init__(n, x=x, extra_links=express, name=f"DSN-D-{d}-{n}")
        self.d = d
        self.q = q
        self._express_stops = stops

    @property
    def express_stops(self) -> list[int]:
        """Express-ring stop nodes (multiples of q)."""
        return list(self._express_stops)

    def express_next(self, stop: int) -> int:
        """Next stop clockwise on the express ring."""
        i = self._express_stops.index(stop)
        return self._express_stops[(i + 1) % len(self._express_stops)]

    def express_prev(self, stop: int) -> int:
        i = self._express_stops.index(stop)
        return self._express_stops[(i - 1) % len(self._express_stops)]

    def is_express_stop(self, node: int) -> bool:
        return node % self.q == 0 and node in set(self._express_stops)


def dsnd_route(topo: DSNDTopology, s: int, t: int) -> RouteResult:
    """DSN-D improved routing: express-accelerated PRE-WORK and FINISH.

    Runs the basic algorithm, then rewrites each long local walk
    (PRE-WORK pred run or FINISH run) to ride the express ring whenever
    that saves hops: walk to the nearest express stop, take express
    links, get off at the stop nearest the segment's end, walk locally.
    """
    base = dsn_route(topo, s, t)
    if not base.hops:
        return base

    rewritten = RouteResult(source=s, dest=t)

    # Split base hops into maximal runs of the same (phase, local-walk?).
    runs: list[tuple[Phase, bool, list[RouteHop]]] = []
    for hop in base.hops:
        local = hop.kind in (HopKind.PRED, HopKind.SUCC)
        if runs and runs[-1][0] is hop.phase and runs[-1][1] == local:
            runs[-1][2].append(hop)
        else:
            runs.append((hop.phase, local, [hop]))

    for phase, local, hops in runs:
        if not local or len(hops) <= topo.q:
            rewritten.hops.extend(hops)
            continue
        start = hops[0].src
        end = hops[-1].dst
        clockwise = hops[0].kind is HopKind.SUCC
        rewritten.hops.extend(_express_walk(topo, start, end, clockwise, phase))

    rewritten.validate()
    return rewritten


def _express_walk(
    topo: DSNDTopology, start: int, end: int, clockwise: bool, phase: Phase
) -> list[RouteHop]:
    """Local walk from ``start`` to ``end`` using express stops when shorter."""
    q = topo.q
    n = topo.n

    def local_hops(a: int, b: int) -> list[RouteHop]:
        hops = []
        u = a
        step = 1 if clockwise else -1
        kind = HopKind.SUCC if clockwise else HopKind.PRED
        while u != b:
            w = (u + step) % n
            hops.append(RouteHop(u, w, kind, phase))
            u = w
        return hops

    dist = (end - start) % n if clockwise else (start - end) % n
    # Nearest express stops in the walking direction.
    if clockwise:
        on = -(-start // q) * q % n  # first stop at or after start
        off = (end // q) * q  # last stop at or before end
        stops_between = ((off - on) % n) // q if topo.is_express_stop(on) and topo.is_express_stop(off) else None
    else:
        on = (start // q) * q  # first stop at or before start
        off = -(-end // q) * q % n  # first stop at or after end
        stops_between = ((on - off) % n) // q if topo.is_express_stop(on) and topo.is_express_stop(off) else None

    if stops_between is None or not topo.has_link(on, (on + q) % n if clockwise else (on - q) % n):
        return local_hops(start, end)

    express_cost = ((on - start) % n if clockwise else (start - on) % n) + stops_between + (
        (end - off) % n if clockwise else (off - end) % n
    )
    if express_cost >= dist:
        return local_hops(start, end)

    hops = local_hops(start, on)
    u = on
    for _ in range(stops_between):
        w = (u + q) % n if clockwise else (u - q) % n
        if not topo.has_link(u, w):
            # Irregular closing segment of the express ring; bail out to
            # a plain local walk from here.
            hops.extend(local_hops(u, end))
            return hops
        hops.append(RouteHop(u, w, HopKind.EXPRESS, phase))
        u = w
    hops.extend(local_hops(u, end))
    return hops
