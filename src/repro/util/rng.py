"""Deterministic random-number handling.

Every stochastic component of the reproduction (random-shortcut
topologies, traffic generators, the simulator's tie-breaking) takes an
explicit seed so experiments are replayable; this module centralizes the
conversion of "whatever the caller passed" into a ``numpy`` Generator.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "sample_indices", "sample_distinct_pairs"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Accepts an existing Generator (returned unchanged, so sub-components
    can share one stream), an integer seed, or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def sample_indices(total: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """``k`` distinct indices from ``range(total)``, uniform without
    replacement, as a sorted int64 array.

    For small index spaces this is exactly ``rng.choice(total, k,
    replace=False)``; for spaces too large for choice()'s internal
    permutation it draws with replacement in batches and dedups, the
    same technique as :func:`sample_distinct_pairs`. ``k`` is capped at
    ``total``; ``k <= 0`` returns an empty array. The shared fault
    models and the robustness experiments both sample through here, so
    a fault set is a pure function of ``(total, k, rng state)``.
    """
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    k = min(int(k), int(total))
    if total <= (1 << 20):
        idx = rng.choice(total, size=k, replace=False)
    else:
        seen = np.empty(0, dtype=np.int64)
        while seen.size < k:
            draw = rng.integers(0, total, size=2 * (k - seen.size) + 16)
            seen = np.unique(np.concatenate([seen, draw]))
        idx = rng.permutation(seen)[:k]
    return np.sort(idx.astype(np.int64))


def sample_distinct_pairs(
    n: int, k: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """``k`` distinct ordered pairs ``(s, t)``, ``s != t``, sampled
    uniformly without replacement from the ``n * (n - 1)`` possible.

    Vectorized: pairs are encoded as flat indices and decoded, so no
    per-pair Python loop and no duplicate pairs skewing sample means.
    ``k`` is capped at the pair count; ``n < 2`` raises (there are no
    valid pairs to draw).
    """
    if n < 2:
        raise ValueError("pair sampling needs n >= 2")
    total = n * (n - 1)
    k = min(int(k), total)
    if total <= (1 << 20):
        idx = rng.choice(total, size=k, replace=False)
    else:
        # The flat index space is too large for choice()'s internal
        # permutation; draw with replacement in batches, dedup, and
        # keep a random k-subset (elements are exchangeable, so every
        # k-subset stays equally likely).
        seen = np.empty(0, dtype=np.int64)
        while seen.size < k:
            draw = rng.integers(0, total, size=2 * (k - seen.size) + 16)
            seen = np.unique(np.concatenate([seen, draw]))
        idx = rng.permutation(seen)[:k]
    s = idx // (n - 1)
    r = idx % (n - 1)
    t = r + (r >= s)  # skip the diagonal slot in each row
    return s.astype(np.int64), t.astype(np.int64)
