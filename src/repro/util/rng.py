"""Deterministic random-number handling.

Every stochastic component of the reproduction (random-shortcut
topologies, traffic generators, the simulator's tie-breaking) takes an
explicit seed so experiments are replayable; this module centralizes the
conversion of "whatever the caller passed" into a ``numpy`` Generator.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Accepts an existing Generator (returned unchanged, so sub-components
    can share one stream), an integer seed, or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
