"""Exact integer math used throughout topology construction and routing.

The DSN construction (paper Section IV-B) is defined purely in terms of
integer quantities -- ``p = floor(log2 n)``, shortcut spans ``ceil(n/2^l)``,
clockwise ring distances -- so we avoid floating point entirely: a single
``math.log2`` rounding error at, say, ``n = 2**k`` would silently shift
every level assignment.
"""

from __future__ import annotations

__all__ = [
    "ilog2_floor",
    "ilog2_ceil",
    "is_power_of_two",
    "ceil_div",
    "bit_reverse",
    "ring_distance",
    "clockwise_distance",
]


def ilog2_floor(value: int) -> int:
    """Return ``floor(log2(value))`` for a positive integer, exactly."""
    if value <= 0:
        raise ValueError(f"ilog2_floor requires a positive integer, got {value}")
    return value.bit_length() - 1


def ilog2_ceil(value: int) -> int:
    """Return ``ceil(log2(value))`` for a positive integer, exactly."""
    if value <= 0:
        raise ValueError(f"ilog2_ceil requires a positive integer, got {value}")
    return (value - 1).bit_length()


def is_power_of_two(value: int) -> bool:
    """True iff ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ceil_div(numerator: int, denominator: int) -> int:
    """Return ``ceil(numerator / denominator)`` using integer arithmetic."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def bit_reverse(value: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``value``.

    Used by the bit-reversal traffic pattern (paper Section VII-A): host
    ``b_{w-1} ... b_1 b_0`` sends to host ``b_0 b_1 ... b_{w-1}``.
    """
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def ring_distance(a: int, b: int, n: int) -> int:
    """Shortest (undirected) distance between ``a`` and ``b`` on an n-ring."""
    d = (b - a) % n
    return min(d, n - d)


def clockwise_distance(a: int, b: int, n: int) -> int:
    """Clockwise (id-increasing, mod n) distance from ``a`` to ``b``.

    This is the distance metric of the DSN routing algorithm: shortcuts
    only ever jump clockwise, so the algorithm reasons about
    ``d_ut = (t - u) mod n``.
    """
    return (b - a) % n
