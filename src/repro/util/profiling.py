"""Wall-clock profiling harness for the benchmark sweeps.

The perf work in this repo (artifact cache, next-hop tables, the
vectorized flit tick) is only worth keeping if it shows up on a clock,
so the benchmark driver wraps each stage in a :class:`StageTimer` and
persists the numbers as a ``BENCH_*.json`` evidence file that later
sessions can diff against.

Usage::

    timer = StageTimer()
    with timer.stage("metric_sweep_cold"):
        run_sweep()
    timer.write("BENCH_pr.json", extra={"speedup": 3.4})
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from contextlib import contextmanager

from repro.telemetry.spans import Span

__all__ = ["StageTimer"]


class StageTimer:
    """Accumulates named wall-clock stage timings.

    Re-entering a stage name accumulates (useful for per-item loops);
    ``counts`` tracks how many intervals each total spans.

    Timing is delegated to :class:`repro.telemetry.spans.Span` under a
    ``bench.<name>`` span, so with telemetry enabled bench stages appear
    in the span trace tree and every exporter; with telemetry disabled
    the span is a bare ``perf_counter`` pair and the public surface
    (``seconds``/``counts``/``as_dict``/``write``) is unchanged.
    """

    def __init__(self):
        self.seconds: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self._order: list[str] = []

    @contextmanager
    def stage(self, name: str):
        """Time one ``with`` block under ``name``."""
        sp = Span("bench." + name)
        sp.__enter__()
        try:
            yield self
        finally:
            sp.__exit__(None, None, None)
            self.record(name, sp.seconds)

    def record(self, name: str, seconds: float) -> None:
        if name not in self.seconds:
            self.seconds[name] = 0.0
            self.counts[name] = 0
            self._order.append(name)
        self.seconds[name] += seconds
        self.counts[name] += 1

    def __getitem__(self, name: str) -> float:
        return self.seconds[name]

    def as_dict(self) -> dict:
        """Stage table in first-recorded order."""
        return {
            name: {"seconds": round(self.seconds[name], 6), "intervals": self.counts[name]}
            for name in self._order
        }

    def summary(self) -> str:
        width = max((len(n) for n in self._order), default=0)
        lines = [f"{n:<{width}}  {self.seconds[n]:9.3f} s" for n in self._order]
        return "\n".join(lines)

    def write(self, path: str, extra: dict | None = None) -> dict:
        """Write the timings (plus environment provenance) as JSON."""
        doc = {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "stages": self.as_dict(),
        }
        if extra:
            doc.update(extra)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=False)
            fh.write("\n")
        return doc
