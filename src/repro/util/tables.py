"""Plain-text table rendering for experiment reports.

The benchmark harness prints each reproduced figure/table as an aligned
ASCII table (the same rows the paper plots), so results can be read
straight off pytest output and pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def _fmt_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_fmt_cell(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
