"""Optional process-level parallelism for experiment sweeps.

Figure sweeps are embarrassingly parallel over network sizes, so the
drivers route their maps through :func:`parallel_map`. Parallelism is
*opt-in* (set ``REPRO_WORKERS`` to a worker count, or pass ``workers``)
because the default serial path is deterministic, dependency-free and
fast enough for the reduced benchmark configuration; the knob exists
for full-scale sweeps on many-core machines.

Worker functions must be picklable (module-level functions with
picklable arguments) -- the drivers in :mod:`repro.experiments` are
written that way.

With telemetry enabled (``REPRO_TELEMETRY=1`` or
:func:`repro.telemetry.enable`), worker-process telemetry rides home
with each result: tasks are bracketed with delta snapshots
(:mod:`repro.telemetry.merge`) and folded into the parent registry, so
counters/histograms are invariant across ``REPRO_WORKERS``. With
telemetry disabled the map path is byte-for-byte the old one.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro import telemetry
from repro.telemetry import merge as _tmerge

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers"]


class _TelemetryTask:
    """Picklable wrapper shipping a task's telemetry delta to the parent.

    Only constructed when the parent has telemetry on. The child may be
    forked (inherits enabled state and parent counts) or spawned
    (inherits neither): :func:`repro.telemetry.enable` covers spawn, and
    the begin/end delta bracket makes fork-inherited counts and chunked
    multi-task workers report each task's own contribution exactly once.
    """

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, item):
        telemetry.enable()
        _tmerge.begin_task()
        result = self.fn(item)
        return result, _tmerge.end_task()


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (0/unset = serial).

    ``REPRO_WORKERS=auto`` means one worker per CPU core; negative or
    unparsable values fall back to serial.
    """
    raw = os.environ.get("REPRO_WORKERS", "0").strip().lower()
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        return max(0, int(raw))
    except ValueError:
        return 0


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally with a process pool.

    Results keep input order. ``workers=None`` consults
    ``REPRO_WORKERS``; ``workers in (0, 1)`` runs serially in-process.

    Work is handed out in chunks of roughly ``len(items) / (4 *
    workers)`` so per-item IPC overhead amortizes while the tail still
    load-balances (uneven item costs are the norm: sweep sizes grow
    geometrically).
    """
    items_list: Sequence[T] = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(items_list) <= 1:
        return [fn(x) for x in items_list]
    workers = min(workers, len(items_list))
    chunksize = max(1, math.ceil(len(items_list) / (workers * 4)))
    if telemetry.enabled():
        task = _TelemetryTask(fn)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pairs = list(pool.map(task, items_list, chunksize=chunksize))
        for _, snap in pairs:
            _tmerge.merge_snapshot(snap)
        return [r for r, _ in pairs]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items_list, chunksize=chunksize))
