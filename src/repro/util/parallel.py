"""Optional process-level parallelism for experiment sweeps.

Figure sweeps are embarrassingly parallel over network sizes, so the
drivers route their maps through :func:`parallel_map`. Parallelism is
*opt-in* (set ``REPRO_WORKERS`` to a worker count, or pass ``workers``)
because the default serial path is deterministic, dependency-free and
fast enough for the reduced benchmark configuration; the knob exists
for full-scale sweeps on many-core machines.

Two fan-out amortizations live here:

* **A persistent pool.** The executor is created once and reused by
  every later call with the same worker count, working directory and
  ``REPRO_*`` environment (the fingerprint that decides what forked
  workers observe), instead of paying pool startup per call. A call
  under a changed environment transparently gets a fresh pool, so the
  semantics match the old pool-per-call behavior exactly; a broken
  pool (crashed worker) is discarded and rebuilt on the next call.
* **Shared-memory broadcast.** ``broadcast={"name": array, ...}``
  publishes large read-only arrays through :mod:`repro.util.shm` so
  tasks carry tiny segment descriptors instead of pickled megabytes;
  workers attach once per process and reuse the mapping across tasks
  and calls. Task functions read them back with ``shm.get("name")``.
  Pass a pre-built :class:`repro.util.shm.Broadcast` to share one
  publication across many calls. ``REPRO_SHM=off`` falls back to
  pickling with byte-identical results.

Worker functions must be picklable (module-level functions with
picklable arguments) -- the drivers in :mod:`repro.experiments` are
written that way.

With telemetry enabled (``REPRO_TELEMETRY=1`` or
:func:`repro.telemetry.enable`), worker-process telemetry rides home
with each result: tasks are bracketed with delta snapshots
(:mod:`repro.telemetry.merge`) and folded into the parent registry, so
counters/histograms are invariant across ``REPRO_WORKERS``. With
telemetry disabled the map path is byte-for-byte the old one.
"""

from __future__ import annotations

import atexit
import math
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Mapping, Sequence, TypeVar

from repro import telemetry
from repro.telemetry import merge as _tmerge
from repro.util import shm

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers", "shutdown_pool"]


class _TelemetryTask:
    """Picklable wrapper shipping a task's telemetry delta to the parent.

    Only constructed when the parent has telemetry on. The child may be
    forked (inherits enabled state and parent counts) or spawned
    (inherits neither): :func:`repro.telemetry.enable` covers spawn, and
    the begin/end delta bracket makes fork-inherited counts and chunked
    multi-task workers report each task's own contribution exactly once.
    """

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, item):
        telemetry.enable()
        _tmerge.begin_task()
        result = self.fn(item)
        return result, _tmerge.end_task()


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (0/unset = serial).

    ``REPRO_WORKERS=auto`` means one worker per CPU core; negative or
    unparsable values fall back to serial.
    """
    raw = os.environ.get("REPRO_WORKERS", "0").strip().lower()
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        return max(0, int(raw))
    except ValueError:
        return 0


# ----------------------------------------------------------------------
# persistent pool
# ----------------------------------------------------------------------
_pool: ProcessPoolExecutor | None = None
_pool_key: tuple | None = None


def _pool_fingerprint(workers: int) -> tuple:
    """What forked workers observe at startup: recreate the pool when
    it changes, so reuse is invisible to callers that tweak the
    environment (tests, the bench gates) between maps."""
    env = tuple(
        sorted((k, v) for k, v in os.environ.items() if k.startswith("REPRO_"))
    )
    return (workers, os.getcwd(), env)


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _pool, _pool_key
    key = _pool_fingerprint(workers)
    if _pool is not None:
        broken = getattr(_pool, "_broken", False)
        if _pool_key == key and not broken:
            return _pool
        shutdown_pool()
    _pool = ProcessPoolExecutor(max_workers=workers)
    _pool_key = key
    return _pool


def shutdown_pool() -> None:
    """Tear down the persistent pool (idempotent; tests and atexit)."""
    global _pool, _pool_key
    pool, _pool, _pool_key = _pool, None, None
    if pool is not None:
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # pragma: no cover - already-broken pool
            pass


atexit.register(shutdown_pool)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int | None = None,
    broadcast: "Mapping | shm.Broadcast | None" = None,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally with a process pool.

    Results keep input order. ``workers=None`` consults
    ``REPRO_WORKERS``; ``workers in (0, 1)`` runs serially in-process.

    ``broadcast`` makes large read-only arrays available to ``fn``
    through :func:`repro.util.shm.get` -- shared memory on the pool
    path (published here, released in a ``finally``), direct references
    on the serial path, pickled copies under ``REPRO_SHM=off``; the
    observed values are identical in every mode.

    Work is handed out in chunks of roughly ``len(items) / (4 *
    workers)`` so per-item IPC overhead amortizes while the tail still
    load-balances (uneven item costs are the norm: sweep sizes grow
    geometrically).
    """
    items_list: Sequence[T] = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(items_list) <= 1:
        if broadcast is None:
            return [fn(x) for x in items_list]
        arrays = broadcast.arrays if isinstance(broadcast, shm.Broadcast) else broadcast
        with shm.activate(arrays):
            return [fn(x) for x in items_list]
    effective = min(workers, len(items_list))
    chunksize = max(1, math.ceil(len(items_list) / (effective * 4)))

    published: shm.Broadcast | None = None
    task: Callable = fn
    if broadcast is not None:
        if isinstance(broadcast, shm.Broadcast):
            published = broadcast.acquire()
        else:
            published = shm.publish(broadcast)
        task = shm.BroadcastTask(fn, published.payload())
    merge_telemetry = telemetry.enabled()
    if merge_telemetry:
        task = _TelemetryTask(task)
    try:
        pool = _get_pool(workers)
        try:
            out = list(pool.map(task, items_list, chunksize=chunksize))
        except BrokenProcessPool:
            shutdown_pool()  # next call gets a fresh pool
            raise
    finally:
        if published is not None:
            published.release()
    if merge_telemetry:
        for _, snap in out:
            _tmerge.merge_snapshot(snap)
        return [r for r, _ in out]
    return out
