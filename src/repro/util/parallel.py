"""Optional process-level parallelism for experiment sweeps.

Figure sweeps are embarrassingly parallel over network sizes, so the
drivers route their maps through :func:`parallel_map`. Parallelism is
*opt-in* (set ``REPRO_WORKERS`` to a worker count, or pass ``workers``)
because the default serial path is deterministic, dependency-free and
fast enough for the reduced benchmark configuration; the knob exists
for full-scale sweeps on many-core machines.

Worker functions must be picklable (module-level functions with
picklable arguments) -- the drivers in :mod:`repro.experiments` are
written that way.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers"]


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (0/unset = serial).

    ``REPRO_WORKERS=auto`` means one worker per CPU core; negative or
    unparsable values fall back to serial.
    """
    raw = os.environ.get("REPRO_WORKERS", "0").strip().lower()
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        return max(0, int(raw))
    except ValueError:
        return 0


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally with a process pool.

    Results keep input order. ``workers=None`` consults
    ``REPRO_WORKERS``; ``workers in (0, 1)`` runs serially in-process.

    Work is handed out in chunks of roughly ``len(items) / (4 *
    workers)`` so per-item IPC overhead amortizes while the tail still
    load-balances (uneven item costs are the norm: sweep sizes grow
    geometrically).
    """
    items_list: Sequence[T] = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(items_list) <= 1:
        return [fn(x) for x in items_list]
    workers = min(workers, len(items_list))
    chunksize = max(1, math.ceil(len(items_list) / (workers * 4)))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items_list, chunksize=chunksize))
