"""Shared low-level helpers: integer math, seeded RNG, tables, validation.

These utilities are deliberately dependency-light; everything else in
:mod:`repro` builds on them.
"""

from repro.util.intmath import (
    bit_reverse,
    ceil_div,
    ilog2_ceil,
    ilog2_floor,
    is_power_of_two,
    ring_distance,
    clockwise_distance,
)
from repro.util.rng import make_rng, sample_distinct_pairs, sample_indices
from repro.util.tables import format_table
from repro.util.validation import check_index, check_positive, check_range

__all__ = [
    "bit_reverse",
    "ceil_div",
    "ilog2_ceil",
    "ilog2_floor",
    "is_power_of_two",
    "ring_distance",
    "clockwise_distance",
    "make_rng",
    "sample_distinct_pairs",
    "sample_indices",
    "format_table",
    "check_index",
    "check_positive",
    "check_range",
]
