"""Small argument-validation helpers with uniform error messages."""

from __future__ import annotations

__all__ = ["check_positive", "check_range", "check_index"]


def check_positive(name: str, value: int | float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")


def check_range(name: str, value: int | float, lo: int | float, hi: int | float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")


def check_index(name: str, value: int, n: int) -> None:
    """Raise ``ValueError`` unless ``0 <= value < n``."""
    if not (0 <= value < n):
        raise ValueError(f"{name} must be in [0, {n}), got {value}")
