"""Shared-memory broadcast of read-only arrays to pool workers.

``parallel_map`` fans tasks out to a process pool, and before this
module every task that needed a large array (the padded neighbor table
of the blocked-BFS engine, the percolation engine's slot tables) had it
pickled into the task tuple -- once per chunk, per worker, per call.
For an n = 65536 sweep that is megabytes of redundant serialization on
every dispatch.

Here the publisher copies each array into a POSIX shared-memory
segment (:mod:`multiprocessing.shared_memory`) exactly once and ships
only a tiny :class:`ShmRef` descriptor (segment name, shape, dtype)
with the task. Workers attach lazily on first use, cache the mapping
per process, and reuse it for every later task -- including tasks from
*later* ``parallel_map`` calls, because the pool is persistent (see
:mod:`repro.util.parallel`) and the attach cache is module-level.

Contracts:

* **Byte-identical fallback.** ``REPRO_SHM=off`` (or a platform
  without shared memory) ships the arrays by pickle instead; the
  arrays a task observes are equal either way, so results are
  bit-identical across the setting -- pinned by ``tests/test_shm.py``
  and the ``percolation_sweep_speedup`` bench gate.
* **No leaked segments.** Segments are owned (and unlinked) by the
  publishing process: ``parallel_map`` releases its broadcast in a
  ``finally``, :class:`Broadcast` is refcounted for shared long-lived
  handles, and an ``atexit`` hook force-unlinks anything still live.
  Workers *unregister* their attachments from the resource tracker so
  a worker exit (even a crash) never unlinks or double-frees a segment
  it does not own.
* **Read-only views.** Worker-side arrays are marked non-writable;
  the broadcast is for fan-out of inputs, not shared mutable state.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic platform
    _shared_memory = None

__all__ = [
    "ShmRef",
    "Broadcast",
    "shm_enabled",
    "publish",
    "activate",
    "get",
    "live_segments",
    "detach_all",
]

#: Segment-name prefix; tests scan /dev/shm for it to prove no leaks.
NAME_PREFIX = "repro-shm"

_lock = threading.RLock()
_counter = 0


def shm_enabled() -> bool:
    """False when ``REPRO_SHM`` is ``off``/``0``/``false`` (or no OS support)."""
    if _shared_memory is None:
        return False
    return os.environ.get("REPRO_SHM", "on").strip().lower() not in ("off", "0", "false")


def _unique_name() -> str:
    global _counter
    with _lock:
        _counter += 1
        seq = _counter
    return f"{NAME_PREFIX}-{os.getpid()}-{seq}-{secrets.token_hex(4)}"


def _attach_segment(name: str):
    """Attach to a segment *without* registering it with the resource
    tracker: the publisher owns (and unlinks) the segment, so a worker
    registering its attachment would make some tracker unlink it a
    second time -- or, with a fork-shared tracker, un-account the
    publisher's own registration. Python 3.13+ exposes ``track=False``
    for exactly this; earlier versions need the registration suppressed
    around the attach."""
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        pass
    from multiprocessing import resource_tracker

    with _lock:
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


@dataclass(frozen=True)
class ShmRef:
    """Picklable descriptor of one published array (a few dozen bytes)."""

    name: str
    shape: tuple
    dtype: str


# ----------------------------------------------------------------------
# publisher side
# ----------------------------------------------------------------------
_LIVE: "set[Broadcast]" = set()


class Broadcast:
    """A refcounted set of named arrays published for worker fan-out.

    Create via :func:`publish`. With shared memory enabled each array
    lives in one segment; :meth:`payload` is what rides in the task
    pickle (tiny refs, or the plain arrays on the fallback path).
    ``acquire``/``release`` let several overlapping ``parallel_map``
    calls share one handle; the last release unlinks. Only the
    creating process ever unlinks (fork-inherited copies are inert).
    """

    def __init__(self, arrays: Mapping[str, np.ndarray], use_shm: bool | None = None):
        if use_shm is None:
            use_shm = shm_enabled()
        self.arrays: dict[str, np.ndarray] = {
            name: np.ascontiguousarray(a) for name, a in arrays.items()
        }
        self._pid = os.getpid()
        self._refs = 1
        self._segments: dict[str, _SegmentHandle] = {}
        if use_shm and self.arrays:
            try:
                for name, arr in self.arrays.items():
                    self._segments[name] = _SegmentHandle(arr)
            except OSError:  # /dev/shm full or unavailable: pickle fallback
                self._unlink_all()
        if self._segments:
            with _lock:
                _LIVE.add(self)

    @property
    def shared(self) -> bool:
        return bool(self._segments)

    def payload(self) -> dict[str, "np.ndarray | ShmRef"]:
        """What a task carries: refs when shared, the arrays otherwise."""
        if self._segments:
            return {name: h.ref for name, h in self._segments.items()}
        return dict(self.arrays)

    def acquire(self) -> "Broadcast":
        with _lock:
            if self._refs <= 0:
                raise ValueError("broadcast already closed")
            self._refs += 1
        return self

    def release(self) -> None:
        with _lock:
            self._refs -= 1
            done = self._refs <= 0
        if done:
            self._force_close()

    close = release

    def _unlink_all(self) -> None:
        if os.getpid() != self._pid:  # fork-inherited copy: not the owner
            return
        for handle in self._segments.values():
            handle.destroy()
        self._segments = {}

    def _force_close(self) -> None:
        self._unlink_all()
        with _lock:
            _LIVE.discard(self)

    def __enter__(self) -> "Broadcast":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class _SegmentHandle:
    """One owned segment: create, copy the array in, unlink on destroy."""

    def __init__(self, arr: np.ndarray):
        self._seg = _shared_memory.SharedMemory(
            create=True, size=max(1, arr.nbytes), name=_unique_name()
        )
        np.ndarray(arr.shape, dtype=arr.dtype, buffer=self._seg.buf)[...] = arr
        self.ref = ShmRef(self._seg.name, tuple(arr.shape), arr.dtype.str)

    def destroy(self) -> None:
        try:
            self._seg.close()
        except BufferError:  # pragma: no cover - a live view in this process
            pass
        try:
            self._seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass
        except OSError:  # pragma: no cover - platform quirk; best-effort
            pass


def publish(arrays: Mapping[str, np.ndarray]) -> Broadcast:
    """Publish named arrays for broadcast (see :class:`Broadcast`)."""
    return Broadcast(arrays)


def live_segments() -> list[str]:
    """Names of segments this process currently owns (for tests)."""
    with _lock:
        return sorted(
            h.ref.name for bc in _LIVE for h in bc._segments.values()
        )


@atexit.register
def _cleanup_at_exit() -> None:  # pragma: no cover - interpreter teardown
    for bc in list(_LIVE):
        bc._force_close()


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: Per-process attach cache: segment name -> (SharedMemory, readonly view).
_ATTACHED: "OrderedDict[str, tuple[object, np.ndarray]]" = OrderedDict()
_ATTACH_CAP = 64

#: Stack of active name -> array|ShmRef mappings (innermost last).
_ACTIVE: list[Mapping[str, "np.ndarray | ShmRef"]] = []


def _attach(ref: ShmRef) -> np.ndarray:
    with _lock:
        hit = _ATTACHED.get(ref.name)
        if hit is not None:
            _ATTACHED.move_to_end(ref.name)
    if hit is None:
        seg = _attach_segment(ref.name)
        with _lock:
            hit = _ATTACHED.setdefault(ref.name, (seg, None))
            _ATTACHED.move_to_end(ref.name)
            while len(_ATTACHED) > _ATTACH_CAP:
                _, (old_seg, _old) = _ATTACHED.popitem(last=False)
                try:
                    old_seg.close()
                except BufferError:  # view still referenced somewhere
                    pass
        if hit[0] is not seg:  # racing thread attached first
            try:
                seg.close()
            except BufferError:  # pragma: no cover
                pass
    seg = hit[0]
    view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)
    view.flags.writeable = False
    return view


@contextmanager
def activate(payload: Mapping[str, "np.ndarray | ShmRef"] | None) -> Iterator[None]:
    """Make ``payload`` resolvable through :func:`get` for the duration.

    Mappings nest (a task may run a serial inner ``parallel_map`` with
    its own broadcast); lookup walks the stack innermost-first.
    """
    if not payload:
        yield
        return
    _ACTIVE.append(payload)
    try:
        yield
    finally:
        _ACTIVE.pop()


def get(name: str) -> np.ndarray:
    """The broadcast array ``name`` of the innermost active mapping.

    In the publishing process this is the original array; in a worker
    it is a cached read-only shared-memory view (or the pickled copy on
    the ``REPRO_SHM=off`` path) -- equal bytes in every case.
    """
    for payload in reversed(_ACTIVE):
        if name in payload:
            value = payload[name]
            if isinstance(value, ShmRef):
                return _attach(value)
            return value
    raise KeyError(f"no broadcast array named {name!r} is active")


def detach_all() -> None:
    """Drop this process's attach cache (tests; safe mid-run)."""
    with _lock:
        items = list(_ATTACHED.items())
        _ATTACHED.clear()
    for _name, (seg, _view) in items:
        try:
            seg.close()
        except BufferError:  # pragma: no cover - live external view
            pass


class BroadcastTask:
    """Picklable wrapper giving ``fn`` access to a broadcast payload.

    With shared memory on, the payload is refs (bytes on the wire per
    chunk: tiny); on the fallback path it is the arrays themselves --
    the exact pre-broadcast cost, and the same observed values.
    """

    def __init__(self, fn, payload: Mapping[str, "np.ndarray | ShmRef"]):
        self.fn = fn
        self.payload = dict(payload)

    def __call__(self, item):
        with activate(self.payload):
            return self.fn(item)
