"""Per-topology artifact cache: compute once, reuse everywhere.

Every figure of the paper is driven by the same handful of expensive
per-topology artifacts -- the all-pairs distance matrix, the minimal
next-hop table, the minimal-path-count matrix and the up*/down* escape
tables -- yet the seed code recomputed them independently at every call
site. This module memoizes them behind a stable *topology fingerprint*
(name, n, hash of the sorted edge list with link classes), with two
tiers:

* an in-process LRU (always on; capacity ``REPRO_CACHE_MEM`` entries,
  default 128, bounded to a byte budget of ``REPRO_CACHE_MEM_MB``
  megabytes, default 1024), shared by all call sites in ``routing/``,
  ``sim/``, ``experiments/`` and ``analysis/``;
* an optional on-disk ``.npz`` tier enabled by setting
  ``REPRO_CACHE_DIR`` -- this is what lets ``parallel_map`` worker
  processes and repeated CLI invocations share one precomputation.

Distance matrices are held in memory in int16 (like the disk tier) and
converted to float64 only at the consumer edge, quartering their
resident size. Artifacts whose size alone exceeds the byte budget are
never admitted to the memory tier, and :func:`hop_stats` -- the single
dispatch behind ``analysis.metrics.analyze`` and the Fig. 7/8 drivers
-- switches from the dense matrix to the blocked streaming BFS engine
(:mod:`repro.analysis.blocked`) when the dense computation would not
fit the budget, so large-n sweeps degrade to O(n) memory instead of
failing.

Set ``REPRO_CACHE=off`` to bypass both tiers (the seed behaviour).
Artifacts are derived deterministically from the topology, so a cache
hit returns bit-identical arrays to a fresh computation; the
determinism tests in ``tests/test_cache.py`` pin this.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import telemetry
from repro.topologies.base import Topology

__all__ = [
    "CacheStats",
    "topology_fingerprint",
    "distance_matrix",
    "hop_stats",
    "dense_distance_allowed",
    "memory_budget_bytes",
    "shortest_path_table",
    "path_count_matrix",
    "updown_routing",
    "memo_topology",
    "cache_enabled",
    "cache_stats",
    "reset_cache_stats",
    "clear_cache",
]


@dataclass
class CacheStats:
    """Hit/miss accounting for both cache tiers."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    disk_stores: int = 0
    evictions: int = 0

    def copy(self) -> "CacheStats":
        return CacheStats(
            self.memory_hits, self.disk_hits, self.misses, self.disk_stores, self.evictions
        )


_stats = CacheStats()
_lock = threading.RLock()
_memory: OrderedDict[tuple, tuple[object, int]] = OrderedDict()  # key -> (value, bytes)
_memory_bytes = 0

_FP_ATTR = "_repro_fingerprint"


# ----------------------------------------------------------------------
# configuration (read from the environment at call time so tests and the
# bench harness can toggle tiers without reimporting)
# ----------------------------------------------------------------------
def cache_enabled() -> bool:
    """False when ``REPRO_CACHE`` is set to ``off``/``0``/``false``."""
    return os.environ.get("REPRO_CACHE", "on").strip().lower() not in ("off", "0", "false")


def _cache_dir() -> str | None:
    d = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return d or None


def _memory_capacity() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_CACHE_MEM", "128")))
    except ValueError:
        return 128


def memory_budget_bytes() -> int:
    """Byte budget of the in-process tier (``REPRO_CACHE_MEM_MB``, MB).

    Also gates the dense-vs-streaming dispatch of :func:`hop_stats`.
    Values <= 0 (or unparsable) fall back to the 1024 MB default.
    """
    try:
        mb = int(os.environ.get("REPRO_CACHE_MEM_MB", "1024"))
    except ValueError:
        mb = 1024
    if mb <= 0:
        mb = 1024
    return mb * (1 << 20)


def dense_distance_allowed(n: int) -> bool:
    """Whether an n x n dense distance computation fits the byte budget.

    Gated on the float64 matrix :func:`scipy.sparse.csgraph.shortest_path`
    materializes while computing (8 bytes/pair) -- the true peak -- not
    on the int16 form the cache retains afterwards.
    """
    return n * n * 8 <= memory_budget_bytes()


def cache_stats() -> CacheStats:
    """Snapshot of the counters (monotonic since process start/reset)."""
    with _lock:
        return _stats.copy()


def reset_cache_stats() -> None:
    with _lock:
        _stats.__init__()


def clear_cache(disk: bool = False) -> None:
    """Drop the in-process tier (and optionally the disk tier)."""
    global _memory_bytes
    with _lock:
        _memory.clear()
        _memory_bytes = 0
    if disk:
        d = _cache_dir()
        if d and os.path.isdir(d):
            for name in os.listdir(d):
                if name.endswith(".npz"):
                    os.unlink(os.path.join(d, name))


# ----------------------------------------------------------------------
# fingerprint
# ----------------------------------------------------------------------
def topology_fingerprint(topo: Topology) -> str:
    """Stable identity of a topology: name, n, sorted edge+class hash.

    Two independently built topologies with the same construction
    parameters (and seed, for random families) fingerprint identically;
    the digest is cached on the (immutable) topology object.
    """
    fp = getattr(topo, _FP_ATTR, None)
    if fp is not None:
        return fp
    h = hashlib.sha256()
    h.update(topo.name.encode())
    h.update(str(topo.n).encode())
    edges = np.array([(l.u, l.v) for l in topo.links], dtype=np.int64)
    h.update(edges.tobytes())
    h.update("|".join(l.cls.value for l in topo.links).encode())
    fp = h.hexdigest()[:32]
    try:
        setattr(topo, _FP_ATTR, fp)
    except AttributeError:  # __slots__ subclass; just recompute next time
        pass
    return fp


# ----------------------------------------------------------------------
# tier plumbing
# ----------------------------------------------------------------------
def _approx_nbytes(value, depth: int = 0) -> int:
    """Estimate an entry's resident size (arrays it holds, one level deep)."""
    if isinstance(value, np.ndarray):
        return value.nbytes
    if depth >= 2:
        return 256
    if isinstance(value, dict):
        return 256 + sum(_approx_nbytes(v, depth + 1) for v in value.values())
    if isinstance(value, (tuple, list)):
        return 256 + sum(_approx_nbytes(v, depth + 1) for v in value)
    inner = getattr(value, "__dict__", None)
    if inner:
        return 256 + sum(_approx_nbytes(v, depth + 1) for v in inner.values())
    return 256


def _memory_get(key: tuple):
    with _lock:
        entry = _memory.get(key)
        if entry is not None:
            _memory.move_to_end(key)
            _stats.memory_hits += 1
            telemetry.count("cache.memory.hits")
            return entry[0]
    return None


def _peek(key: tuple):
    """Read an entry without touching LRU order or hit counters."""
    with _lock:
        entry = _memory.get(key)
        return None if entry is None else entry[0]


def _memory_put(key: tuple, value) -> None:
    global _memory_bytes
    nbytes = _approx_nbytes(value)
    budget = memory_budget_bytes()
    with _lock:
        if nbytes > budget:
            # Admitting it would evict everything and still exceed the
            # budget; leave the tier as-is.
            return
        old = _memory.pop(key, None)
        if old is not None:
            _memory_bytes -= old[1]
        _memory[key] = (value, nbytes)
        _memory_bytes += nbytes
        cap = _memory_capacity()
        while _memory and (len(_memory) > cap or _memory_bytes > budget):
            _, (_, evicted_bytes) = _memory.popitem(last=False)
            _memory_bytes -= evicted_bytes
            _stats.evictions += 1
            telemetry.count("cache.evictions")
        telemetry.gauge_set("cache.memory_bytes", float(_memory_bytes))
        telemetry.gauge_set("cache.memory_entries", float(len(_memory)))


def _disk_load(stem: str) -> dict | None:
    d = _cache_dir()
    if d is None:
        return None
    path = os.path.join(d, stem + ".npz")
    if not os.path.exists(path):
        return None
    try:
        with np.load(path) as z:
            return {k: z[k] for k in z.files}
    except (OSError, ValueError):  # truncated/corrupt entry: recompute
        return None


def _disk_store(stem: str, arrays: dict) -> None:
    d = _cache_dir()
    if d is None:
        return
    try:
        os.makedirs(d, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=d, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, os.path.join(d, stem + ".npz"))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        with _lock:
            _stats.disk_stores += 1
        telemetry.count("cache.disk.stores")
    except OSError:  # read-only/full disk: caching stays best-effort
        pass


def _get(
    key: tuple,
    stem: str | None,
    compute: Callable[[], object],
    pack: Callable[[object], dict] | None = None,
    unpack: Callable[[dict], object] | None = None,
):
    """Memory -> disk -> compute (then backfill both tiers)."""
    if not cache_enabled():
        return compute()
    value = _memory_get(key)
    if value is not None:
        return value
    if stem is not None and unpack is not None:
        raw = _disk_load(stem)
        if raw is not None:
            value = unpack(raw)
            with _lock:
                _stats.disk_hits += 1
            telemetry.count("cache.disk.hits")
            _memory_put(key, value)
            return value
    with _lock:
        _stats.misses += 1
    telemetry.count("cache.misses")
    value = compute()
    _memory_put(key, value)
    if stem is not None and pack is not None:
        _disk_store(stem, pack(value))
    return value


# ----------------------------------------------------------------------
# distance matrix
# ----------------------------------------------------------------------
def _pack_dist(dist: np.ndarray) -> dict:
    m = dist.max() if dist.size else 0.0
    if np.isfinite(m) and m < np.iinfo(np.int16).max:
        return {"dist_i16": dist.astype(np.int16)}
    return {"dist_f64": dist}


def _unpack_dist(raw: dict) -> np.ndarray:
    if "dist_i16" in raw:
        return raw["dist_i16"].astype(np.float64)
    return raw["dist_f64"]


def _dist_packed(topo: Topology) -> dict:
    """The cached packed form: ``{"dist_i16": ...}`` for connected
    small-diameter graphs (the normal case), ``{"dist_f64": ...}``
    otherwise. Both tiers store this form, so the resident entry is
    one quarter the float64 size."""
    from repro.analysis.metrics import shortest_path_matrix

    fp = topology_fingerprint(topo)
    return _get(
        (fp, "dist"),
        f"{fp}-dist",
        lambda: _pack_dist(shortest_path_matrix(topo)),
        pack=lambda packed: packed,
        unpack=lambda raw: raw,
    )


def distance_matrix(topo: Topology) -> np.ndarray:
    """All-pairs hop-count matrix (float64, ``inf`` for disconnected
    pairs), identical to :func:`repro.analysis.metrics.shortest_path_matrix`.

    The cache holds the int16 packed form; the float64 conversion
    happens here, at the consumer edge, on every call."""
    return _unpack_dist(_dist_packed(topo))


# ----------------------------------------------------------------------
# hop statistics (the Fig. 7/8 dispatch: dense within budget, blocked
# streaming BFS above it)
# ----------------------------------------------------------------------
def hop_stats(topo: Topology, workers: int | None = None):
    """Exact :class:`repro.analysis.blocked.HopStats` for ``topo``.

    The single entry point behind ``analysis.metrics.analyze`` and the
    Fig. 7/8 experiment drivers. Dispatch order:

    1. a distance matrix already resident in the memory tier is reduced
       directly (no recompute, no float64 blow-up);
    2. within :func:`dense_distance_allowed`, the dense matrix is
       computed through :func:`distance_matrix` (populating both cache
       tiers for other consumers) and reduced;
    3. otherwise the blocked streaming BFS engine runs, never
       allocating an n x n array.

    All three paths produce bit-identical statistics; the result itself
    (O(n) bytes) is memoized in both tiers.
    """
    from repro.analysis import blocked

    fp = topology_fingerprint(topo)

    def compute():
        packed = _peek((fp, "dist"))
        if packed is not None:
            raw = packed.get("dist_i16", packed.get("dist_f64"))
            return blocked.hop_stats_from_dense(raw)
        if dense_distance_allowed(topo.n):
            return blocked.hop_stats_from_dense(distance_matrix(topo))
        return blocked.streaming_hop_stats(topo, workers=workers)

    def pack(hs) -> dict:
        return {
            "total_hops": np.asarray(hs.total_hops, dtype=np.int64),
            "ecc": hs.ecc.astype(np.int32),
            "hist": hs.hist,
        }

    def unpack(raw: dict):
        total = int(raw["total_hops"])
        hist = raw["hist"].astype(np.int64)
        n = len(raw["ecc"])
        return blocked.HopStats(
            n=n,
            diameter=len(hist) - 1,
            total_hops=total,
            aspl=total / (n * (n - 1)),
            ecc=raw["ecc"].astype(np.int64),
            hist=hist,
        )

    return _get((fp, "hops"), f"{fp}-hops", compute, pack=pack, unpack=unpack)


# ----------------------------------------------------------------------
# minimal routing table (+ CSR next-hop arrays)
# ----------------------------------------------------------------------
def shortest_path_table(topo: Topology):
    """Shared :class:`repro.routing.table.ShortestPathTable` with its
    next-hop CSR table prebuilt (and disk-cached)."""
    from repro.routing.table import ShortestPathTable

    fp = topology_fingerprint(topo)
    key = (fp, "spt")
    table = _memory_get(key)
    if table is not None:
        return table

    # Feed the packed (usually int16) form straight in: the table casts
    # to int32 anyway, so the float64 intermediate would be pure waste.
    packed = _dist_packed(topo)
    table = ShortestPathTable(topo, dist=packed.get("dist_i16", packed.get("dist_f64")))
    nh = _get(
        (fp, "nh"),
        f"{fp}-nexthop",
        lambda: table.next_hop_arrays(),
        pack=lambda v: {"indptr": v[0], "indices": v[1]},
        unpack=lambda raw: (raw["indptr"], raw["indices"]),
    )
    table.set_next_hop_arrays(*nh)
    if cache_enabled():
        _memory_put(key, table)
    return table


def path_count_matrix(topo: Topology) -> np.ndarray:
    """Minimal-path-count matrix (float64, exact integers)."""
    fp = topology_fingerprint(topo)
    return _get(
        (fp, "pcm"),
        f"{fp}-pathcount",
        lambda: shortest_path_table(topo).path_count_matrix(),
        pack=lambda v: {"counts": v},
        unpack=lambda raw: raw["counts"],
    )


# ----------------------------------------------------------------------
# up*/down* escape tables (the acyclic escape CDG of Section VII-A)
# ----------------------------------------------------------------------
def updown_routing(topo: Topology, root: int | None = None):
    """Shared :class:`repro.routing.updown.UpDownRouting` instance."""
    from repro.routing.updown import UpDownRouting

    fp = topology_fingerprint(topo)
    key = (fp, "updown", -1 if root is None else int(root))

    def compute():
        return UpDownRouting(topo, root=root)

    def pack(ud) -> dict:
        return {
            "root": np.int64(ud.root),
            "depth": ud._depth.astype(np.int32),
            "next_node": ud._next_node.astype(np.int32),
            "next_phase": ud._next_phase.astype(np.int8),
            "dist": ud._dist.astype(np.int32),
        }

    def unpack(raw: dict):
        return UpDownRouting._restore(
            topo,
            int(raw["root"]),
            raw["depth"].astype(np.int64),
            raw["next_node"].astype(np.int32),
            raw["next_phase"].astype(np.int8),
            raw["dist"].astype(np.int32),
        )

    stem = f"{fp}-updown{'' if root is None else root}"
    return _get(key, stem, compute, pack=pack, unpack=unpack)


# ----------------------------------------------------------------------
# in-process topology memoization (recipe-keyed; objects are immutable)
# ----------------------------------------------------------------------
def memo_topology(recipe: tuple, builder: Callable[[], Topology]) -> Topology:
    """Memoize a deterministic topology construction by its recipe
    (e.g. ``(kind, n, seed)``). In-process only: rebuilding from a
    recipe is cheap relative to the artifacts, and returning the same
    object lets every artifact lookup above short-circuit on the
    fingerprint already stamped on it."""
    if not cache_enabled():
        return builder()
    key = ("topo",) + recipe
    topo = _memory_get(key)
    if topo is None:
        with _lock:
            _stats.misses += 1
        telemetry.count("cache.misses")
        topo = builder()
        _memory_put(key, topo)
    return topo
