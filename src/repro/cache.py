"""Per-topology artifact cache: compute once, reuse everywhere.

Every figure of the paper is driven by the same handful of expensive
per-topology artifacts -- the all-pairs distance matrix, the minimal
next-hop table, the minimal-path-count matrix and the up*/down* escape
tables -- yet the seed code recomputed them independently at every call
site. This module memoizes them behind a stable *topology fingerprint*
(name, n, hash of the sorted edge list with link classes), with two
tiers:

* an in-process LRU (always on; capacity ``REPRO_CACHE_MEM`` entries,
  default 128), shared by all call sites in ``routing/``, ``sim/``,
  ``experiments/`` and ``analysis/``;
* an optional on-disk ``.npz`` tier enabled by setting
  ``REPRO_CACHE_DIR`` -- this is what lets ``parallel_map`` worker
  processes and repeated CLI invocations share one precomputation.

Set ``REPRO_CACHE=off`` to bypass both tiers (the seed behaviour).
Artifacts are derived deterministically from the topology, so a cache
hit returns bit-identical arrays to a fresh computation; the
determinism tests in ``tests/test_cache.py`` pin this.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.topologies.base import Topology

__all__ = [
    "CacheStats",
    "topology_fingerprint",
    "distance_matrix",
    "shortest_path_table",
    "path_count_matrix",
    "updown_routing",
    "memo_topology",
    "cache_enabled",
    "cache_stats",
    "reset_cache_stats",
    "clear_cache",
]


@dataclass
class CacheStats:
    """Hit/miss accounting for both cache tiers."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    disk_stores: int = 0
    evictions: int = 0

    def copy(self) -> "CacheStats":
        return CacheStats(
            self.memory_hits, self.disk_hits, self.misses, self.disk_stores, self.evictions
        )


_stats = CacheStats()
_lock = threading.RLock()
_memory: OrderedDict[tuple, object] = OrderedDict()

_FP_ATTR = "_repro_fingerprint"


# ----------------------------------------------------------------------
# configuration (read from the environment at call time so tests and the
# bench harness can toggle tiers without reimporting)
# ----------------------------------------------------------------------
def cache_enabled() -> bool:
    """False when ``REPRO_CACHE`` is set to ``off``/``0``/``false``."""
    return os.environ.get("REPRO_CACHE", "on").strip().lower() not in ("off", "0", "false")


def _cache_dir() -> str | None:
    d = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return d or None


def _memory_capacity() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_CACHE_MEM", "128")))
    except ValueError:
        return 128


def cache_stats() -> CacheStats:
    """Snapshot of the counters (monotonic since process start/reset)."""
    with _lock:
        return _stats.copy()


def reset_cache_stats() -> None:
    with _lock:
        _stats.__init__()


def clear_cache(disk: bool = False) -> None:
    """Drop the in-process tier (and optionally the disk tier)."""
    with _lock:
        _memory.clear()
    if disk:
        d = _cache_dir()
        if d and os.path.isdir(d):
            for name in os.listdir(d):
                if name.endswith(".npz"):
                    os.unlink(os.path.join(d, name))


# ----------------------------------------------------------------------
# fingerprint
# ----------------------------------------------------------------------
def topology_fingerprint(topo: Topology) -> str:
    """Stable identity of a topology: name, n, sorted edge+class hash.

    Two independently built topologies with the same construction
    parameters (and seed, for random families) fingerprint identically;
    the digest is cached on the (immutable) topology object.
    """
    fp = getattr(topo, _FP_ATTR, None)
    if fp is not None:
        return fp
    h = hashlib.sha256()
    h.update(topo.name.encode())
    h.update(str(topo.n).encode())
    edges = np.array([(l.u, l.v) for l in topo.links], dtype=np.int64)
    h.update(edges.tobytes())
    h.update("|".join(l.cls.value for l in topo.links).encode())
    fp = h.hexdigest()[:32]
    try:
        setattr(topo, _FP_ATTR, fp)
    except AttributeError:  # __slots__ subclass; just recompute next time
        pass
    return fp


# ----------------------------------------------------------------------
# tier plumbing
# ----------------------------------------------------------------------
def _memory_get(key: tuple):
    with _lock:
        if key in _memory:
            _memory.move_to_end(key)
            _stats.memory_hits += 1
            return _memory[key]
    return None


def _memory_put(key: tuple, value) -> None:
    with _lock:
        _memory[key] = value
        _memory.move_to_end(key)
        cap = _memory_capacity()
        while len(_memory) > cap:
            _memory.popitem(last=False)
            _stats.evictions += 1


def _disk_load(stem: str) -> dict | None:
    d = _cache_dir()
    if d is None:
        return None
    path = os.path.join(d, stem + ".npz")
    if not os.path.exists(path):
        return None
    try:
        with np.load(path) as z:
            return {k: z[k] for k in z.files}
    except (OSError, ValueError):  # truncated/corrupt entry: recompute
        return None


def _disk_store(stem: str, arrays: dict) -> None:
    d = _cache_dir()
    if d is None:
        return
    try:
        os.makedirs(d, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=d, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, os.path.join(d, stem + ".npz"))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        with _lock:
            _stats.disk_stores += 1
    except OSError:  # read-only/full disk: caching stays best-effort
        pass


def _get(
    key: tuple,
    stem: str | None,
    compute: Callable[[], object],
    pack: Callable[[object], dict] | None = None,
    unpack: Callable[[dict], object] | None = None,
):
    """Memory -> disk -> compute (then backfill both tiers)."""
    if not cache_enabled():
        return compute()
    value = _memory_get(key)
    if value is not None:
        return value
    if stem is not None and unpack is not None:
        raw = _disk_load(stem)
        if raw is not None:
            value = unpack(raw)
            with _lock:
                _stats.disk_hits += 1
            _memory_put(key, value)
            return value
    with _lock:
        _stats.misses += 1
    value = compute()
    _memory_put(key, value)
    if stem is not None and pack is not None:
        _disk_store(stem, pack(value))
    return value


# ----------------------------------------------------------------------
# distance matrix
# ----------------------------------------------------------------------
def _pack_dist(dist: np.ndarray) -> dict:
    if np.isfinite(dist).all() and dist.max() < np.iinfo(np.int16).max:
        return {"dist_i16": dist.astype(np.int16)}
    return {"dist_f64": dist}


def _unpack_dist(raw: dict) -> np.ndarray:
    if "dist_i16" in raw:
        return raw["dist_i16"].astype(np.float64)
    return raw["dist_f64"]


def distance_matrix(topo: Topology) -> np.ndarray:
    """All-pairs hop-count matrix (float64, ``inf`` for disconnected
    pairs), identical to :func:`repro.analysis.metrics.shortest_path_matrix`."""
    from repro.analysis.metrics import shortest_path_matrix

    fp = topology_fingerprint(topo)
    return _get(
        (fp, "dist"),
        f"{fp}-dist",
        lambda: shortest_path_matrix(topo),
        pack=_pack_dist,
        unpack=_unpack_dist,
    )


# ----------------------------------------------------------------------
# minimal routing table (+ CSR next-hop arrays)
# ----------------------------------------------------------------------
def shortest_path_table(topo: Topology):
    """Shared :class:`repro.routing.table.ShortestPathTable` with its
    next-hop CSR table prebuilt (and disk-cached)."""
    from repro.routing.table import ShortestPathTable

    fp = topology_fingerprint(topo)
    key = (fp, "spt")
    table = _memory_get(key)
    if table is not None:
        return table

    dist = distance_matrix(topo)
    table = ShortestPathTable(topo, dist=dist)
    nh = _get(
        (fp, "nh"),
        f"{fp}-nexthop",
        lambda: table.next_hop_arrays(),
        pack=lambda v: {"indptr": v[0], "indices": v[1]},
        unpack=lambda raw: (raw["indptr"], raw["indices"]),
    )
    table.set_next_hop_arrays(*nh)
    if cache_enabled():
        _memory_put(key, table)
    return table


def path_count_matrix(topo: Topology) -> np.ndarray:
    """Minimal-path-count matrix (float64, exact integers)."""
    fp = topology_fingerprint(topo)
    return _get(
        (fp, "pcm"),
        f"{fp}-pathcount",
        lambda: shortest_path_table(topo).path_count_matrix(),
        pack=lambda v: {"counts": v},
        unpack=lambda raw: raw["counts"],
    )


# ----------------------------------------------------------------------
# up*/down* escape tables (the acyclic escape CDG of Section VII-A)
# ----------------------------------------------------------------------
def updown_routing(topo: Topology, root: int | None = None):
    """Shared :class:`repro.routing.updown.UpDownRouting` instance."""
    from repro.routing.updown import UpDownRouting

    fp = topology_fingerprint(topo)
    key = (fp, "updown", -1 if root is None else int(root))

    def compute():
        return UpDownRouting(topo, root=root)

    def pack(ud) -> dict:
        return {
            "root": np.int64(ud.root),
            "depth": ud._depth.astype(np.int32),
            "next_node": ud._next_node.astype(np.int32),
            "next_phase": ud._next_phase.astype(np.int8),
            "dist": ud._dist.astype(np.int32),
        }

    def unpack(raw: dict):
        return UpDownRouting._restore(
            topo,
            int(raw["root"]),
            raw["depth"].astype(np.int64),
            raw["next_node"].astype(np.int32),
            raw["next_phase"].astype(np.int8),
            raw["dist"].astype(np.int32),
        )

    stem = f"{fp}-updown{'' if root is None else root}"
    return _get(key, stem, compute, pack=pack, unpack=unpack)


# ----------------------------------------------------------------------
# in-process topology memoization (recipe-keyed; objects are immutable)
# ----------------------------------------------------------------------
def memo_topology(recipe: tuple, builder: Callable[[], Topology]) -> Topology:
    """Memoize a deterministic topology construction by its recipe
    (e.g. ``(kind, n, seed)``). In-process only: rebuilding from a
    recipe is cheap relative to the artifacts, and returning the same
    object lets every artifact lookup above short-circuit on the
    fingerprint already stamped on it."""
    if not cache_enabled():
        return builder()
    key = ("topo",) + recipe
    topo = _memory_get(key)
    if topo is None:
        with _lock:
            _stats.misses += 1
        topo = builder()
        _memory_put(key, topo)
    return topo
