"""Terminal visualization: DSN structure diagrams and ASCII charts.

Everything here renders to plain text so it works in any terminal and
in pytest output:

* :func:`dsn_ring_diagram` -- a Fig. 1-style view of the level
  assignment and shortcut spans of a (small) DSN;
* :func:`route_diagram` -- a route annotated with phases, the paper's
  PRE-WORK / MAIN / FINISH walk made visible;
* :func:`ascii_plot` -- a quick scatter/line plot for latency curves in
  the CLI.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.dsn import DSNTopology
from repro.core.routing import RouteResult

__all__ = ["dsn_ring_diagram", "route_diagram", "ascii_plot"]


def dsn_ring_diagram(topo: DSNTopology, max_nodes: int = 40) -> str:
    """Textual Fig. 1: one row per node with level bars and shortcuts.

    Levels render as indentation (higher nodes -- longer shortcuts --
    stick out further, like Fig. 1(a) turned sideways).
    """
    n = min(topo.n, max_nodes)
    lines = [f"{topo.name}: p={topo.p}, x={topo.x}, r={topo.r} (first {n} nodes)"]
    for v in range(n):
        level = topo.level(v)
        height = topo.height(v)
        bar = "#" * height
        sc = topo.shortcut_from(v)
        sc_txt = f" --({topo.shortcut_span(v):>4})--> {sc}" if sc is not None else ""
        marker = "|" if level > 1 else "+"  # super-node boundary
        lines.append(f"{marker} {v:>4} L{level} {bar:<12}{sc_txt}")
    if topo.n > max_nodes:
        lines.append(f"... ({topo.n - max_nodes} more nodes)")
    return "\n".join(lines)


def route_diagram(topo: DSNTopology, route: RouteResult) -> str:
    """Render a route with its phases and hop kinds."""
    lines = [f"route {route.source} -> {route.dest} ({route.length} hops)"]
    for hop in route.hops:
        arrow = {
            "pred": "<-",
            "succ": "->",
            "shortcut": "=>",
            "up": "^-",
            "extra": "x-",
            "express": "»-",
        }[hop.kind.value]
        lines.append(
            f"  [{hop.phase.value:8s}] {hop.src:>4} {arrow} {hop.dst:<4} "
            f"(L{topo.level(hop.src)} -> L{topo.level(hop.dst)})"
        )
    return "\n".join(lines)


def ascii_plot(
    xs: Sequence[float],
    ys_by_series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Minimal multi-series ASCII scatter plot.

    Each series gets a marker character; points are clipped into a
    ``width x height`` grid spanning the data range.
    """
    markers = "ox+*#@%&"
    all_y = [y for ys in ys_by_series.values() for y in ys if y == y]
    if not all_y or not xs:
        raise ValueError("nothing to plot")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(ys_by_series.items()):
        m = markers[si % len(markers)]
        for x, y in zip(xs, ys):
            if y != y:  # NaN
                continue
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = m

    lines = []
    for i, row in enumerate(grid):
        label = f"{y_hi:8.1f} |" if i == 0 else (f"{y_lo:8.1f} |" if i == height - 1 else "         |")
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(f"          {x_lo:<10.2f}{x_label:^{max(width - 20, 0)}}{x_hi:>10.2f}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}" for i, name in enumerate(ys_by_series)
    )
    lines.append("          " + legend + (f"   (y: {y_label})" if y_label else ""))
    return "\n".join(lines)
