"""Synthetic and application-shaped traffic for the simulator (Section VII-A)."""

from repro.traffic.collectives import (
    AllToAllTraffic,
    ButterflyTraffic,
    HaloExchangeTraffic,
    RingAllreduceTraffic,
    make_collective,
)
from repro.traffic.patterns import (
    BitComplementTraffic,
    BitReversalTraffic,
    HotspotTraffic,
    NeighboringTraffic,
    TrafficPattern,
    TransposeTraffic,
    UniformTraffic,
    make_pattern,
)

__all__ = [
    "TrafficPattern",
    "UniformTraffic",
    "BitReversalTraffic",
    "BitComplementTraffic",
    "TransposeTraffic",
    "NeighboringTraffic",
    "HotspotTraffic",
    "make_pattern",
    "HaloExchangeTraffic",
    "RingAllreduceTraffic",
    "ButterflyTraffic",
    "AllToAllTraffic",
    "make_collective",
]
