"""Synthetic traffic patterns (paper Section VII-A and standard extras).

The paper evaluates three host-level patterns:

* **uniform** -- destination drawn uniformly among all other hosts;
* **bit-reversal** -- host ``b_{w-1}..b_0`` sends to ``b_0..b_{w-1}``
  (a fixed permutation; requires a power-of-two host count);
* **neighboring** -- 90 % of packets go to an adjacent host in a 2-D
  array layout of the hosts, 10 % to uniform-random destinations
  ("performance under heavy local accesses").

Plus classic extras (Dally & Towles, paper ref [25]) used by the
extended experiments: transpose, bit-complement, and hotspot.
"""

from __future__ import annotations

import numpy as np

from repro.util import bit_reverse, is_power_of_two, make_rng

__all__ = [
    "TrafficPattern",
    "UniformTraffic",
    "BitReversalTraffic",
    "BitComplementTraffic",
    "TransposeTraffic",
    "NeighboringTraffic",
    "HotspotTraffic",
    "make_pattern",
]


class TrafficPattern:
    """Destination generator over ``num_hosts`` hosts."""

    name = "abstract"

    def __init__(self, num_hosts: int):
        if num_hosts < 2:
            raise ValueError(f"need at least 2 hosts, got {num_hosts}")
        self.num_hosts = num_hosts

    def destination(self, src: int, rng: np.random.Generator) -> int:
        """Destination host for one packet from ``src`` (never ``src``)."""
        raise NotImplementedError

    def _uniform_other(self, src: int, rng: np.random.Generator) -> int:
        dst = int(rng.integers(self.num_hosts - 1))
        return dst if dst < src else dst + 1


class UniformTraffic(TrafficPattern):
    """Uniform random destinations."""

    name = "uniform"

    def destination(self, src: int, rng: np.random.Generator) -> int:
        return self._uniform_other(src, rng)


class _PermutationTraffic(TrafficPattern):
    """Fixed-permutation patterns; self-mapped sources fall back to uniform.

    ``group_size`` selects the addressing granularity: with the default
    1 the permutation acts on host addresses; with
    ``group_size = hosts_per_switch`` it acts on *switch* addresses and
    each host sends to its same-offset counterpart at the permuted
    switch. Interconnect studies (the paper included) define synthetic
    permutations over network nodes, i.e. switches -- host-level
    addressing would let the intra-switch offset bits leak into the
    switch part of the destination and change which topology the
    pattern stresses.
    """

    def __init__(self, num_hosts: int, group_size: int = 1):
        super().__init__(num_hosts)
        if group_size < 1 or num_hosts % group_size:
            raise ValueError(
                f"group_size {group_size} must divide num_hosts {num_hosts}"
            )
        self.group_size = group_size
        self.num_groups = num_hosts // group_size

    def _permute(self, group: int) -> int:
        raise NotImplementedError

    def destination(self, src: int, rng: np.random.Generator) -> int:
        group, offset = divmod(src, self.group_size)
        dst = self._permute(group) * self.group_size + offset
        if dst == src:
            return self._uniform_other(src, rng)
        return dst


class BitReversalTraffic(_PermutationTraffic):
    """dst = bit-reverse(src) (paper Section VII-A)."""

    name = "bit_reversal"

    def __init__(self, num_hosts: int, group_size: int = 1):
        super().__init__(num_hosts, group_size)
        if not is_power_of_two(self.num_groups):
            raise ValueError(
                f"bit-reversal needs a power-of-two address count, got {self.num_groups}"
            )
        self.width = self.num_groups.bit_length() - 1

    def _permute(self, group: int) -> int:
        return bit_reverse(group, self.width)


class BitComplementTraffic(_PermutationTraffic):
    """dst = ~src (all address bits inverted)."""

    name = "bit_complement"

    def __init__(self, num_hosts: int, group_size: int = 1):
        super().__init__(num_hosts, group_size)
        if not is_power_of_two(self.num_groups):
            raise ValueError(
                f"bit-complement needs a power-of-two address count, got {self.num_groups}"
            )
        self.mask = self.num_groups - 1

    def _permute(self, group: int) -> int:
        return group ^ self.mask


class TransposeTraffic(_PermutationTraffic):
    """dst swaps the high and low halves of the address bits."""

    name = "transpose"

    def __init__(self, num_hosts: int, group_size: int = 1):
        super().__init__(num_hosts, group_size)
        if not is_power_of_two(self.num_groups):
            raise ValueError(
                f"transpose needs a power-of-two address count, got {self.num_groups}"
            )
        w = self.num_groups.bit_length() - 1
        if w % 2:
            raise ValueError(f"transpose needs an even address width, got {w} bits")
        self.half = w // 2
        self.low_mask = (1 << self.half) - 1

    def _permute(self, group: int) -> int:
        return ((group & self.low_mask) << self.half) | (group >> self.half)


class NeighboringTraffic(TrafficPattern):
    """90 % to an adjacent host in a 2-D array layout, 10 % uniform.

    Hosts are arranged row-major in the most-square ``rows x cols``
    array with ``rows * cols = num_hosts``; neighbors are the (up to 4)
    array-adjacent hosts, chosen uniformly.
    """

    name = "neighboring"

    def __init__(self, num_hosts: int, local_fraction: float = 0.9):
        super().__init__(num_hosts)
        if not (0.0 <= local_fraction <= 1.0):
            raise ValueError(f"local_fraction must be in [0,1], got {local_fraction}")
        self.local_fraction = local_fraction
        from repro.topologies.torus import balanced_dims

        self.rows, self.cols = balanced_dims(num_hosts, 2)
        self._neighbors: list[tuple[int, ...]] = []
        for h in range(num_hosts):
            r, c = divmod(h, self.cols)
            adj = []
            if r > 0:
                adj.append(h - self.cols)
            if r < self.rows - 1:
                adj.append(h + self.cols)
            if c > 0:
                adj.append(h - 1)
            if c < self.cols - 1:
                adj.append(h + 1)
            self._neighbors.append(tuple(adj))

    def destination(self, src: int, rng: np.random.Generator) -> int:
        if rng.random() < self.local_fraction:
            adj = self._neighbors[src]
            return adj[int(rng.integers(len(adj)))]
        return self._uniform_other(src, rng)


class HotspotTraffic(TrafficPattern):
    """A fraction of packets target a small set of hotspot hosts."""

    name = "hotspot"

    def __init__(self, num_hosts: int, hotspots: list[int] | None = None, fraction: float = 0.2):
        super().__init__(num_hosts)
        self.hotspots = hotspots or [0]
        for h in self.hotspots:
            if not (0 <= h < num_hosts):
                raise ValueError(f"hotspot {h} out of range")
        if not (0.0 <= fraction <= 1.0):
            raise ValueError(f"fraction must be in [0,1], got {fraction}")
        self.fraction = fraction

    def destination(self, src: int, rng: np.random.Generator) -> int:
        if rng.random() < self.fraction:
            choices = [h for h in self.hotspots if h != src]
            if choices:
                return choices[int(rng.integers(len(choices)))]
        return self._uniform_other(src, rng)


_PATTERNS = {
    "uniform": UniformTraffic,
    "bit_reversal": BitReversalTraffic,
    "bit_complement": BitComplementTraffic,
    "transpose": TransposeTraffic,
    "neighboring": NeighboringTraffic,
    "hotspot": HotspotTraffic,
}


def make_pattern(name: str, num_hosts: int, **kwargs) -> TrafficPattern:
    """Instantiate a pattern by name (see keys of ``_PATTERNS``)."""
    try:
        cls = _PATTERNS[name]
    except KeyError:
        raise ValueError(f"unknown traffic pattern {name!r}; know {sorted(_PATTERNS)}") from None
    return cls(num_hosts, **kwargs)
