"""Application-shaped traffic: HPC collective/stencil communication.

The paper's opening motivation is that "scientific parallel
applications usually become latency-sensitive" -- but its evaluation
uses only synthetic patterns. These generators emit the communication
structure of the kernels such applications actually run, so the
extended experiments can test the topologies under application-shaped
load:

* :class:`HaloExchangeTraffic` -- 2-D stencil (Jacobi/CFD) boundary
  exchange: each rank cycles through its 4 grid neighbors;
* :class:`RingAllreduceTraffic` -- ring-based allreduce: every rank
  streams to ``rank + 1``;
* :class:`ButterflyTraffic` -- recursive-doubling allreduce/allgather:
  rank cycles through partners ``rank ^ 2^k`` for k = 0..log2(P)-1;
* :class:`AllToAllTraffic` -- staggered personalized all-to-all (FFT
  transpose style): rank p's i-th message goes to ``(p + i) mod P``,
  skipping itself.

All are *stateful* round-robin sequences per source (deterministic
given the per-host message index), unlike the memoryless synthetic
patterns -- matching how the kernels schedule their messages.
"""

from __future__ import annotations

import numpy as np

from repro.topologies.torus import balanced_dims
from repro.traffic.patterns import TrafficPattern
from repro.util import is_power_of_two

__all__ = [
    "HaloExchangeTraffic",
    "RingAllreduceTraffic",
    "ButterflyTraffic",
    "AllToAllTraffic",
    "make_collective",
]


class _SequenceTraffic(TrafficPattern):
    """Round-robin over a per-source destination sequence."""

    def __init__(self, num_hosts: int):
        super().__init__(num_hosts)
        self._index = np.zeros(num_hosts, dtype=np.int64)

    def _sequence(self, src: int) -> tuple[int, ...]:
        raise NotImplementedError

    def destination(self, src: int, rng: np.random.Generator) -> int:
        seq = self._sequence(src)
        if not seq:
            return self._uniform_other(src, rng)
        dst = seq[self._index[src] % len(seq)]
        self._index[src] += 1
        return dst


class HaloExchangeTraffic(_SequenceTraffic):
    """2-D stencil halo exchange: N, S, W, E neighbors in turn.

    Ranks are laid out row-major on the most-square grid; edges have
    fewer neighbors (non-periodic boundary, like a typical CFD domain).
    """

    name = "halo_exchange"

    def __init__(self, num_hosts: int):
        super().__init__(num_hosts)
        self.rows, self.cols = balanced_dims(num_hosts, 2)
        self._seqs: list[tuple[int, ...]] = []
        for h in range(num_hosts):
            r, c = divmod(h, self.cols)
            seq = []
            if r > 0:
                seq.append(h - self.cols)
            if r < self.rows - 1:
                seq.append(h + self.cols)
            if c > 0:
                seq.append(h - 1)
            if c < self.cols - 1:
                seq.append(h + 1)
            self._seqs.append(tuple(seq))

    def _sequence(self, src: int) -> tuple[int, ...]:
        return self._seqs[src]


class RingAllreduceTraffic(_SequenceTraffic):
    """Ring allreduce: every rank streams chunks to ``rank + 1``."""

    name = "ring_allreduce"

    def _sequence(self, src: int) -> tuple[int, ...]:
        return ((src + 1) % self.num_hosts,)


class ButterflyTraffic(_SequenceTraffic):
    """Recursive doubling: partners ``src ^ 1, src ^ 2, src ^ 4, ...``."""

    name = "butterfly"

    def __init__(self, num_hosts: int):
        super().__init__(num_hosts)
        if not is_power_of_two(num_hosts):
            raise ValueError(f"butterfly needs a power-of-two host count, got {num_hosts}")
        self.stages = num_hosts.bit_length() - 1

    def _sequence(self, src: int) -> tuple[int, ...]:
        return tuple(src ^ (1 << k) for k in range(self.stages))


class AllToAllTraffic(_SequenceTraffic):
    """Staggered personalized all-to-all: message i goes to ``src + 1 + i``."""

    name = "all_to_all"

    def _sequence(self, src: int) -> tuple[int, ...]:
        return tuple((src + off) % self.num_hosts for off in range(1, self.num_hosts))


_COLLECTIVES = {
    "halo_exchange": HaloExchangeTraffic,
    "ring_allreduce": RingAllreduceTraffic,
    "butterfly": ButterflyTraffic,
    "all_to_all": AllToAllTraffic,
}


def make_collective(name: str, num_hosts: int) -> TrafficPattern:
    """Instantiate a collective pattern by name."""
    try:
        cls = _COLLECTIVES[name]
    except KeyError:
        raise ValueError(
            f"unknown collective {name!r}; know {sorted(_COLLECTIVES)}"
        ) from None
    return cls(num_hosts)
