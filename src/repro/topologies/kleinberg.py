"""Kleinberg's small-world grid (STOC 2000, the paper's ref [15]).

A base 2-D grid where each node adds ``q`` long-range shortcuts; the
probability of a shortcut from ``u`` landing on ``v`` is proportional to
``lattice_distance(u, v) ** -r``. At the critical exponent ``r = 2``
greedy routing finds O(log^2 n) paths using local information only --
the design observation the DSN construction "learns" from (Sections II
and IV-A).
"""

from __future__ import annotations

import numpy as np

from repro.topologies.base import Link, LinkClass, Topology
from repro.topologies.torus import MeshTopology
from repro.util import make_rng

__all__ = ["KleinbergTopology", "greedy_route"]


class KleinbergTopology(Topology):
    """``side x side`` grid plus ``q`` inverse-``r``-power random shortcuts per node."""

    def __init__(
        self,
        side: int,
        q: int = 1,
        r: float = 2.0,
        seed: int | np.random.Generator | None = 0,
    ):
        if side < 2:
            raise ValueError(f"grid side must be >= 2, got {side}")
        if q < 0:
            raise ValueError(f"q must be >= 0, got {q}")
        self.side = side
        self.q = q
        self.r = r
        rng = make_rng(seed)
        n = side * side

        mesh = MeshTopology((side, side))
        self._mesh = mesh
        links: list[Link | tuple] = list(mesh.links)

        coords = np.array([mesh.coordinates(v) for v in range(n)])
        for u in range(n):
            dist = np.abs(coords - coords[u]).sum(axis=1)
            weights = np.zeros(n)
            nonself = dist > 0
            weights[nonself] = dist[nonself].astype(float) ** (-r)
            weights /= weights.sum()
            targets = rng.choice(n, size=q, p=weights)
            for v in targets:
                if int(v) != u:
                    links.append(Link(u, int(v), LinkClass.RANDOM))
        super().__init__(n, links, name=f"Kleinberg-{side}x{side}-q{q}")

    def lattice_distance(self, u: int, v: int) -> int:
        """Manhattan distance between grid positions of ``u`` and ``v``."""
        cu = self._mesh.coordinates(u)
        cv = self._mesh.coordinates(v)
        return abs(cu[0] - cv[0]) + abs(cu[1] - cv[1])


def greedy_route(topo: KleinbergTopology, s: int, t: int, max_hops: int | None = None) -> list[int]:
    """Kleinberg greedy routing: always step to the neighbor closest to ``t``.

    Returns the node path ``[s, ..., t]``. With ``r = 2`` the expected
    length is O(log^2 n); the DSN paper cites this quadratic gap
    (ref [16]) as motivation for its custom routing instead.
    """
    if max_hops is None:
        max_hops = 10 * topo.n
    path = [s]
    u = s
    for _ in range(max_hops):
        if u == t:
            return path
        best = min(topo.neighbors(u), key=lambda w: (topo.lattice_distance(w, t), w))
        if topo.lattice_distance(best, t) >= topo.lattice_distance(u, t):
            # Greedy on a connected grid always has an improving local
            # link, so this cannot happen; guard anyway.
            raise RuntimeError(f"greedy routing stuck at {u} toward {t}")
        u = best
        path.append(u)
    raise RuntimeError(f"greedy routing exceeded {max_hops} hops from {s} to {t}")
