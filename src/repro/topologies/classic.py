"""Classic low-degree, low-diameter topologies from the related work.

Section III of the paper compares diameter-and-degree figures for
shuffle-based and hierarchical designs: de Bruijn graphs ("12-and-4 for
3,072 vertices"), Kautz graphs ("11-and-4"), and Cube Connected Cycles
("23-and-3", constant degree 3). We implement them as undirected switch
graphs so the same analysis pipeline (diameter / ASPL / cable length)
runs over them.
"""

from __future__ import annotations

import itertools

from repro.topologies.base import Link, LinkClass, Topology

__all__ = [
    "DeBruijnTopology",
    "KautzTopology",
    "CubeConnectedCyclesTopology",
    "HypercubeTopology",
    "HypernetTopology",
]


class DeBruijnTopology(Topology):
    """Undirected de Bruijn graph B(b, k): ``b**k`` nodes.

    Node ``u`` (a base-``b`` string of length ``k``) connects to its
    left- and right-shifts; max degree ``2b`` before merging duplicates.
    """

    def __init__(self, b: int, k: int):
        if b < 2 or k < 2:
            raise ValueError(f"de Bruijn needs b >= 2 and k >= 2, got b={b}, k={k}")
        self.b = b
        self.k = k
        n = b**k
        links = []
        for u in range(n):
            for a in range(b):
                v = (u * b + a) % n  # left shift, append symbol a
                if u != v:
                    links.append(Link(u, v, LinkClass.LOCAL))
        super().__init__(n, links, name=f"DeBruijn-{b}-{k}")


class KautzTopology(Topology):
    """Undirected Kautz graph K(b, k): ``(b+1) * b**k`` nodes.

    Nodes are strings ``s_0 s_1 ... s_k`` over ``b+1`` symbols with no two
    consecutive symbols equal; edges connect ``s_0...s_k`` to
    ``s_1...s_k a`` for every valid ``a``.
    """

    def __init__(self, b: int, k: int):
        if b < 2 or k < 1:
            raise ValueError(f"Kautz needs b >= 2 and k >= 1, got b={b}, k={k}")
        self.b = b
        self.k = k
        symbols = range(b + 1)
        nodes = []
        for first in symbols:
            for rest in itertools.product(symbols, repeat=k):
                s = (first, *rest)
                if all(s[i] != s[i + 1] for i in range(k)):
                    nodes.append(s)
        index = {s: i for i, s in enumerate(nodes)}
        links = []
        for s, u in index.items():
            for a in symbols:
                if a == s[-1]:
                    continue
                t = (*s[1:], a)
                v = index[t]
                if u != v:
                    links.append(Link(u, v, LinkClass.LOCAL))
        super().__init__(len(nodes), links, name=f"Kautz-{b}-{k}")


class CubeConnectedCyclesTopology(Topology):
    """CCC(k): each hypercube-Q_k corner replaced by a k-cycle; degree 3.

    Node ``(w, i)`` with corner ``w in [0, 2^k)`` and cycle position
    ``i in [0, k)`` links to ``(w, i±1 mod k)`` (cycle) and to
    ``(w ^ (1 << i), i)`` (hypercube dimension i).
    """

    def __init__(self, k: int):
        if k < 3:
            raise ValueError(f"CCC needs k >= 3 for distinct cycle links, got {k}")
        self.k = k
        n = k * (1 << k)

        def node_id(w: int, i: int) -> int:
            return w * k + i

        links = []
        for w in range(1 << k):
            for i in range(k):
                u = node_id(w, i)
                links.append(Link(u, node_id(w, (i + 1) % k), LinkClass.LOCAL))
                links.append(Link(u, node_id(w ^ (1 << i), i), LinkClass.SHORTCUT))
        super().__init__(n, links, name=f"CCC-{k}")


class HypercubeTopology(Topology):
    """Binary hypercube Q_k: ``2**k`` nodes, degree ``k``."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"hypercube needs k >= 1, got {k}")
        self.k = k
        n = 1 << k
        links = [
            Link(u, u ^ (1 << d), LinkClass.LOCAL)
            for u in range(n)
            for d in range(k)
            if u < (u ^ (1 << d))
        ]
        super().__init__(n, links, name=f"Hypercube-{k}")


class HypernetTopology(Topology):
    """Simplified Hwang-Ghosh hypernet (the paper's ref [19]).

    ``m`` hypercube subnets Q_k connected pairwise by one inter-subnet
    link each (a complete graph at the subnet level). Inter-subnet
    links are spread over distinct subnet nodes, so the degree stays
    ``k + 1`` for the attachment nodes and ``k`` elsewhere -- the
    low-degree, hierarchical structure the paper cites ("19-and-5 for
    4,608 vertices" for the full construction). Requires
    ``2**k >= m - 1`` attachment points per subnet.
    """

    def __init__(self, k: int, m: int):
        if k < 1 or m < 2:
            raise ValueError(f"hypernet needs k >= 1 subcube bits and m >= 2 subnets")
        if (1 << k) < m - 1:
            raise ValueError(
                f"subnets of 2^{k} nodes cannot host {m - 1} inter-subnet links"
            )
        self.k = k
        self.m = m
        sub = 1 << k
        n = m * sub

        links: list[Link] = []
        for s in range(m):
            base = s * sub
            for u in range(sub):
                for d in range(k):
                    v = u ^ (1 << d)
                    if u < v:
                        links.append(Link(base + u, base + v, LinkClass.LOCAL))
        # Subnet s's link to subnet t attaches at node index chosen so
        # each subnet uses distinct attachment points for its m-1 links.
        for s in range(m):
            for t in range(s + 1, m):
                u = s * sub + (t - 1) % sub
                v = t * sub + s % sub
                links.append(Link(u, v, LinkClass.SHORTCUT))
        super().__init__(n, links, name=f"Hypernet-{k}-{m}")
