"""Switch topologies: the DSN substrate ring plus every baseline.

The paper's evaluation compares three families (Sections VI-VII):

* **DSN** -- the contribution, in :mod:`repro.core`;
* **2-D torus** -- :class:`TorusTopology`, the non-random baseline;
* **RANDOM = DLN-2-2** -- :class:`DLNRandomTopology`, the random baseline.

Related-work comparators (Kleinberg grids, fully random regular graphs,
de Bruijn / Kautz / CCC / hypercube) live here too so the same metric
pipeline runs over all of them.
"""

from repro.topologies.base import Link, LinkClass, Topology, directed_channels
from repro.topologies.io import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.topologies.classic import (
    CubeConnectedCyclesTopology,
    DeBruijnTopology,
    HypercubeTopology,
    HypernetTopology,
    KautzTopology,
)
from repro.topologies.dln import DLNRandomTopology, DLNTopology
from repro.topologies.kleinberg import KleinbergTopology, greedy_route
from repro.topologies.random_regular import RandomRegularTopology
from repro.topologies.ring import LineTopology, RingTopology
from repro.topologies.torus import MeshTopology, TorusTopology, balanced_dims

__all__ = [
    "Link",
    "LinkClass",
    "Topology",
    "directed_channels",
    "RingTopology",
    "LineTopology",
    "TorusTopology",
    "MeshTopology",
    "balanced_dims",
    "DLNTopology",
    "DLNRandomTopology",
    "KleinbergTopology",
    "greedy_route",
    "RandomRegularTopology",
    "DeBruijnTopology",
    "KautzTopology",
    "CubeConnectedCyclesTopology",
    "HypercubeTopology",
    "HypernetTopology",
    "load_topology",
    "save_topology",
    "topology_from_dict",
    "topology_to_dict",
]
