"""Topology serialization: JSON save/load with integrity checksums.

Lets experiments pin the exact random baseline they used (DLN-x-y and
friends are seed-dependent) and lets external tools consume the
topologies. The format is deliberately trivial::

    {
      "format": "repro-topology-v1",
      "name": "DSN-5-64",
      "n": 64,
      "links": [[0, 1, "local"], [0, 16, "shortcut"], ...],
      "sha256": "..."   # over the canonical link list
    }
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.topologies.base import Link, LinkClass, Topology

__all__ = ["topology_to_dict", "topology_from_dict", "save_topology", "load_topology"]

_FORMAT = "repro-topology-v1"


def _checksum(n: int, links: list[list]) -> str:
    canon = json.dumps([n, links], separators=(",", ":")).encode()
    return hashlib.sha256(canon).hexdigest()


def topology_to_dict(topo: Topology) -> dict:
    """Serialize a topology (links are canonically ordered already)."""
    links = [[l.u, l.v, l.cls.value] for l in topo.links]
    return {
        "format": _FORMAT,
        "name": topo.name,
        "n": topo.n,
        "links": links,
        "sha256": _checksum(topo.n, links),
    }


def topology_from_dict(data: dict) -> Topology:
    """Deserialize; verifies the format tag and checksum."""
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} document (format={data.get('format')!r})")
    links_raw = data["links"]
    expect = data.get("sha256")
    if expect is not None and _checksum(data["n"], links_raw) != expect:
        raise ValueError("checksum mismatch: topology file corrupted or edited")
    links = [Link(u, v, LinkClass(cls)) for u, v, cls in links_raw]
    return Topology(data["n"], links, name=data.get("name", "loaded"))


def save_topology(topo: Topology, path: str | Path) -> None:
    """Write a topology to a JSON file."""
    Path(path).write_text(json.dumps(topology_to_dict(topo), indent=1))


def load_topology(path: str | Path) -> Topology:
    """Read a topology from a JSON file."""
    return topology_from_dict(json.loads(Path(path).read_text()))
