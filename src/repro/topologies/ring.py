"""Ring and line (path) topologies.

The ring is the substrate of every distributed-loop topology in the
paper: DSN (Section IV-B), DLN-x and DLN-x-y (Section II) are all rings
plus shortcuts. It is also the degenerate baseline with diameter
``floor(n/2)``.
"""

from __future__ import annotations

from repro.topologies.base import Link, LinkClass, Topology

__all__ = ["RingTopology", "LineTopology", "ring_links"]


def ring_links(n: int) -> list[Link]:
    """The ``n`` LOCAL links ``(i, i+1 mod n)`` of an n-ring."""
    if n < 3:
        raise ValueError(f"a ring needs at least 3 nodes, got {n}")
    return [Link(i, (i + 1) % n, LinkClass.LOCAL) for i in range(n)]


class RingTopology(Topology):
    """Cycle of ``n`` switches: node ``i`` links to ``i±1 (mod n)``."""

    def __init__(self, n: int):
        super().__init__(n, ring_links(n), name=f"Ring-{n}")

    def succ(self, node: int) -> int:
        """Clockwise neighbor (paper: the *succ* link)."""
        return (node + 1) % self.n

    def pred(self, node: int) -> int:
        """Counter-clockwise neighbor (paper: the *pred* link)."""
        return (node - 1) % self.n


class LineTopology(Topology):
    """Path of ``n`` switches: node ``i`` links to ``i+1`` (no wrap)."""

    def __init__(self, n: int):
        links = [Link(i, i + 1, LinkClass.LOCAL) for i in range(n - 1)]
        super().__init__(n, links, name=f"Line-{n}")
