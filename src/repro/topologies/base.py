"""Topology kernel: immutable undirected switch graphs.

Every topology in the reproduction -- the DSN contribution and all the
baselines (torus, DLN-x-y, Kleinberg grid, ...) -- is an instance of
:class:`Topology`: ``n`` switches identified by integers ``0..n-1`` and a
set of undirected links, each tagged with a :class:`LinkClass` describing
its role (ring link, deterministic shortcut, random shortcut, torus
dimension link, ...).

The link classes matter for three downstream consumers:

* the cable-length analysis (paper Fig. 9) reports per-class statistics;
* the channel-dependency-graph deadlock analysis (paper Theorem 3) groups
  channels by class exactly as the paper's proof does;
* the simulator assigns ports in a deterministic order so runs replay.
"""

from __future__ import annotations

import enum
from functools import cached_property
from typing import Iterable, Iterator, Sequence

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.util import check_index

__all__ = ["LinkClass", "Link", "Topology"]


class LinkClass(enum.Enum):
    """Role of a link within its topology."""

    LOCAL = "local"  #: ring pred/succ or grid/mesh neighbor link
    WRAP = "wrap"  #: torus wraparound link
    SHORTCUT = "shortcut"  #: deterministic DSN/DLN shortcut
    RANDOM = "random"  #: random shortcut (DLN-x-y, Kleinberg, ...)
    UP = "up"  #: DSN-E Up link (Section V-A)
    EXTRA = "extra"  #: DSN-E Extra link (Section V-A)
    EXPRESS = "express"  #: DSN-D short express link (Section V-B)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinkClass.{self.name}"


class Link:
    """An undirected link ``{u, v}`` with a :class:`LinkClass` tag.

    Stored canonically with ``u < v``.
    """

    __slots__ = ("u", "v", "cls")

    def __init__(self, u: int, v: int, cls: LinkClass = LinkClass.LOCAL):
        if u == v:
            raise ValueError(f"self-loop at node {u} is not a valid link")
        if u > v:
            u, v = v, u
        self.u = u
        self.v = v
        self.cls = cls

    def endpoints(self) -> tuple[int, int]:
        return (self.u, self.v)

    def other(self, node: int) -> int:
        """Return the endpoint that is not ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"node {node} is not an endpoint of {self!r}")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Link)
            and self.u == other.u
            and self.v == other.v
            and self.cls == other.cls
        )

    def __hash__(self) -> int:
        return hash((self.u, self.v, self.cls))

    def __repr__(self) -> str:
        return f"Link({self.u}, {self.v}, {self.cls.value})"


class Topology:
    """An immutable undirected multigraph-free switch topology.

    Parameters
    ----------
    n:
        Number of switches; nodes are ``0..n-1``.
    links:
        Iterable of ``Link`` or ``(u, v)`` / ``(u, v, LinkClass)`` tuples.
        Duplicate links (same endpoints) are collapsed; the first class
        tag wins. Self-loops are rejected.
    name:
        Human-readable name used in reports (e.g. ``"DSN-5-64"``).
    """

    def __init__(
        self,
        n: int,
        links: Iterable[Link | tuple],
        name: str = "topology",
    ):
        if n < 2:
            raise ValueError(f"a topology needs at least 2 switches, got n={n}")
        self.n = int(n)
        self.name = name

        seen: dict[tuple[int, int], Link] = {}
        for item in links:
            if isinstance(item, Link):
                link = item
            elif len(item) == 2:
                link = Link(item[0], item[1])
            else:
                link = Link(item[0], item[1], item[2])
            check_index("link endpoint", link.u, n)
            check_index("link endpoint", link.v, n)
            seen.setdefault(link.endpoints(), link)
        self._links: tuple[Link, ...] = tuple(
            sorted(seen.values(), key=lambda l: l.endpoints())
        )

        # Sorted neighbor lists double as the port map: the k-th neighbor
        # of u sits on port k of switch u. Deterministic by construction.
        neighbors: list[list[int]] = [[] for _ in range(n)]
        for link in self._links:
            neighbors[link.u].append(link.v)
            neighbors[link.v].append(link.u)
        self._neighbors: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(ns)) for ns in neighbors
        )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def links(self) -> tuple[Link, ...]:
        """All undirected links, canonically ordered."""
        return self._links

    @property
    def num_links(self) -> int:
        return len(self._links)

    def neighbors(self, node: int) -> tuple[int, ...]:
        """Sorted neighbors of ``node`` (also its port order)."""
        check_index("node", node, self.n)
        return self._neighbors[node]

    def degree(self, node: int) -> int:
        return len(self.neighbors(node))

    @cached_property
    def degrees(self) -> np.ndarray:
        """Array of all node degrees."""
        return np.array([len(ns) for ns in self._neighbors], dtype=np.int64)

    @property
    def average_degree(self) -> float:
        return float(self.degrees.mean())

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max())

    @property
    def min_degree(self) -> int:
        return int(self.degrees.min())

    def degree_census(self) -> dict[int, int]:
        """Map degree -> number of nodes with that degree."""
        values, counts = np.unique(self.degrees, return_counts=True)
        return {int(d): int(c) for d, c in zip(values, counts)}

    def has_link(self, u: int, v: int) -> bool:
        return v in self._neighbors[u]

    def port_of(self, u: int, v: int) -> int:
        """Port index on switch ``u`` that leads to neighbor ``v``."""
        try:
            return self._neighbors[u].index(v)
        except ValueError:
            raise ValueError(f"no link between {u} and {v} in {self.name}") from None

    def links_of_class(self, cls: LinkClass) -> list[Link]:
        return [l for l in self._links if l.cls is cls]

    def link_class(self, u: int, v: int) -> LinkClass:
        """Class of the link between ``u`` and ``v``."""
        key = (u, v) if u < v else (v, u)
        for link in self._links:
            if link.endpoints() == key:
                return link.cls
        raise ValueError(f"no link between {u} and {v} in {self.name}")

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    @cached_property
    def adjacency_csr(self) -> sp.csr_matrix:
        """Sparse boolean adjacency matrix (symmetric)."""
        rows, cols = [], []
        for link in self._links:
            rows += [link.u, link.v]
            cols += [link.v, link.u]
        data = np.ones(len(rows), dtype=np.int8)
        return sp.csr_matrix((data, (rows, cols)), shape=(self.n, self.n))

    def to_networkx(self) -> nx.Graph:
        """Export to a :class:`networkx.Graph` with ``cls`` edge attributes."""
        g = nx.Graph(name=self.name)
        g.add_nodes_from(range(self.n))
        g.add_edges_from((l.u, l.v, {"cls": l.cls.value}) for l in self._links)
        return g

    @classmethod
    def from_networkx(cls, g: nx.Graph, name: str | None = None) -> "Topology":
        """Import a networkx graph (nodes must be 0..n-1 integers).

        Edge ``cls`` attributes round-trip with :meth:`to_networkx`;
        edges without one default to :attr:`LinkClass.LOCAL`.
        """
        n = g.number_of_nodes()
        if set(g.nodes) != set(range(n)):
            raise ValueError("nodes must be the integers 0..n-1 (relabel first)")
        links = [
            Link(u, v, LinkClass(d.get("cls", "local")))
            for u, v, d in g.edges(data=True)
        ]
        return cls(n, links, name=name or (g.name or "from-networkx"))

    def is_connected(self) -> bool:
        from scipy.sparse.csgraph import connected_components

        count, _ = connected_components(self.adjacency_csr, directed=False)
        return count == 1

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n))

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r}: n={self.n}, "
            f"links={self.num_links}, avg_degree={self.average_degree:.2f}>"
        )


def directed_channels(topo: Topology) -> list[tuple[int, int]]:
    """All directed channels ``(u, v)`` of a topology (two per link)."""
    out: list[tuple[int, int]] = []
    for link in topo.links:
        out.append((link.u, link.v))
        out.append((link.v, link.u))
    return out
