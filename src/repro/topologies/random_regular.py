"""Fully random regular topologies (Jellyfish-style, the paper's ref [9]).

"Random topologies are generated either as fully random graphs [9] or by
adding random shortcuts to classical topologies [3]" (Section I). The
paper's RANDOM baseline is the latter (DLN-2-2); this module provides the
former for the related-work comparisons in Section III and for wider
sweeps in our extended experiments.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.topologies.base import Link, LinkClass, Topology
from repro.util import make_rng

__all__ = ["RandomRegularTopology"]


class RandomRegularTopology(Topology):
    """Uniform random d-regular graph on ``n`` switches.

    Resampled until connected (for ``d >= 3`` almost every sample is).
    """

    def __init__(
        self,
        n: int,
        degree: int = 4,
        seed: int | np.random.Generator | None = 0,
        max_attempts: int = 50,
    ):
        if degree < 2:
            raise ValueError(f"degree must be >= 2, got {degree}")
        if (n * degree) % 2 != 0:
            raise ValueError(f"n*degree must be even, got n={n}, degree={degree}")
        self.degree_target = degree
        rng = make_rng(seed)
        for _ in range(max_attempts):
            g = nx.random_regular_graph(degree, n, seed=int(rng.integers(0, 2**31 - 1)))
            if nx.is_connected(g):
                links = [Link(u, v, LinkClass.RANDOM) for u, v in g.edges()]
                super().__init__(n, links, name=f"RandomRegular-{degree}-{n}")
                return
        raise RuntimeError(
            f"no connected random {degree}-regular graph on {n} nodes "
            f"after {max_attempts} attempts"
        )
