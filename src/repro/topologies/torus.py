"""k-ary n-dimensional mesh and torus topologies.

The 2-D torus is the paper's non-random baseline ("a counterpart 2-D
torus ... with the same average degree", Sections VI-VII); the 3-D torus
appears in the Section VI-B remark comparing a degree-6 DSN against it.
Dimensions need not be equal: network sizes that are not perfect squares
(e.g. 32, 128, 512, 2048) use the most-square factorization, matching
how such sweeps are conventionally plotted.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.topologies.base import Link, LinkClass, Topology
from repro.util import is_power_of_two

__all__ = ["TorusTopology", "MeshTopology", "balanced_dims"]


def balanced_dims(n: int, ndims: int) -> tuple[int, ...]:
    """Most-balanced integer factorization of ``n`` into ``ndims`` factors.

    For power-of-two ``n`` this spreads the exponent as evenly as
    possible (e.g. ``n=2048, ndims=2`` -> ``(64, 32)``); otherwise a
    greedy divisor search is used. Factors are returned largest first.
    """
    if ndims < 1:
        raise ValueError(f"ndims must be >= 1, got {ndims}")
    if ndims == 1:
        return (n,)
    if is_power_of_two(n):
        exp = n.bit_length() - 1
        base, rem = divmod(exp, ndims)
        exps = [base + (1 if i < rem else 0) for i in range(ndims)]
        return tuple(sorted((2**e for e in exps), reverse=True))
    # Greedy: peel off the divisor closest to the ndims-th root.
    best: tuple[int, ...] | None = None
    target = round(n ** (1.0 / ndims))
    for d in sorted(range(2, n + 1), key=lambda d: abs(d - target)):
        if n % d == 0:
            rest = balanced_dims(n // d, ndims - 1)
            best = tuple(sorted((d, *rest), reverse=True))
            break
    if best is None:  # n is prime: degenerate 1-wide dims
        best = tuple(sorted((n, *([1] * (ndims - 1))), reverse=True))
    return best


def _grid_links(dims: Sequence[int], wrap: bool) -> list[Link]:
    """LOCAL links between grid neighbors, plus WRAP links if ``wrap``."""
    strides = [1] * len(dims)
    for i in range(len(dims) - 2, -1, -1):
        strides[i] = strides[i + 1] * dims[i + 1]

    def node_id(coord: Sequence[int]) -> int:
        return sum(c * s for c, s in zip(coord, strides))

    links: list[Link] = []
    for coord in itertools.product(*(range(d) for d in dims)):
        u = node_id(coord)
        for axis, d in enumerate(dims):
            if d == 1:
                continue
            c = list(coord)
            if coord[axis] + 1 < d:
                c[axis] = coord[axis] + 1
                links.append(Link(u, node_id(c), LinkClass.LOCAL))
            elif wrap and d > 2:
                c[axis] = 0
                links.append(Link(u, node_id(c), LinkClass.WRAP))
    return links


class _GridBase(Topology):
    """Shared coordinate arithmetic for mesh and torus."""

    def __init__(self, dims: Sequence[int], wrap: bool, name: str):
        dims = tuple(int(d) for d in dims)
        if any(d < 1 for d in dims):
            raise ValueError(f"all dimensions must be >= 1, got {dims}")
        n = 1
        for d in dims:
            n *= d
        self.dims = dims
        self._strides = [1] * len(dims)
        for i in range(len(dims) - 2, -1, -1):
            self._strides[i] = self._strides[i + 1] * dims[i + 1]
        super().__init__(n, _grid_links(dims, wrap), name=name)

    def coordinates(self, node: int) -> tuple[int, ...]:
        """Multi-dimensional coordinates of ``node`` (row-major ids)."""
        coord = []
        for s, d in zip(self._strides, self.dims):
            coord.append((node // s) % d)
        return tuple(coord)

    def node_at(self, coord: Sequence[int]) -> int:
        """Node id at ``coord``."""
        if len(coord) != len(self.dims):
            raise ValueError(f"expected {len(self.dims)} coordinates, got {len(coord)}")
        for c, d in zip(coord, self.dims):
            if not (0 <= c < d):
                raise ValueError(f"coordinate {coord} out of bounds for dims {self.dims}")
        return sum(c * s for c, s in zip(coord, self._strides))


class TorusTopology(_GridBase):
    """k-ary n-dim torus. ``TorusTopology.square(n, ndims)`` auto-factors."""

    def __init__(self, dims: Sequence[int]):
        dims = tuple(int(d) for d in dims)
        name = f"Torus-{'x'.join(map(str, dims))}"
        super().__init__(dims, wrap=True, name=name)

    @classmethod
    def square(cls, n: int, ndims: int = 2) -> "TorusTopology":
        """Most-square ``ndims``-dimensional torus with ``n`` switches."""
        return cls(balanced_dims(n, ndims))

    def theoretical_diameter(self) -> int:
        """Closed form: sum over dimensions of ``floor(d/2)`` (for d>2)."""
        return sum(d // 2 for d in self.dims if d > 1)


class MeshTopology(_GridBase):
    """k-ary n-dim mesh (no wraparound links)."""

    def __init__(self, dims: Sequence[int]):
        dims = tuple(int(d) for d in dims)
        name = f"Mesh-{'x'.join(map(str, dims))}"
        super().__init__(dims, wrap=False, name=name)

    def theoretical_diameter(self) -> int:
        """Closed form: sum over dimensions of ``d - 1``."""
        return sum(d - 1 for d in self.dims)
