"""Distributed Loop Networks: DLN-x and the random-shortcut DLN-x-y.

DLN-x (Koibuchi et al., ISCA 2012, the paper's ref [3]) arranges ``n``
vertices in a ring and adds a deterministic shortcut from every vertex
``i`` to ``j = (i + ceil(n/2^k)) mod n`` for ``k = 1..x-2``, giving
degree ``x``. With ``x = log n`` every node can always halve its
distance to any destination, hence logarithmic diameter -- this is the
distance-halving scheme that DSN distributes over super nodes.

DLN-x-y adds ``y`` random link endpoints to every node of a DLN-x.
**DLN-2-2** (plain ring + 2 random endpoints per node, exact degree 4)
is the paper's RANDOM baseline in Figs. 7-10.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.topologies.base import Link, LinkClass, Topology
from repro.topologies.ring import ring_links
from repro.util import ceil_div, make_rng

__all__ = ["DLNTopology", "DLNRandomTopology", "dln_shortcut_links", "random_regular_links"]


def dln_shortcut_links(n: int, x: int) -> list[Link]:
    """Deterministic DLN shortcuts ``(i, i + ceil(n/2^k) mod n)``, k=1..x-2."""
    links: list[Link] = []
    for k in range(1, x - 1):
        span = ceil_div(n, 2**k)
        if span <= 1 or span >= n - 1:
            # Degenerate spans would duplicate ring links or self-loop.
            continue
        for i in range(n):
            links.append(Link(i, (i + span) % n, LinkClass.SHORTCUT))
    return links


def random_regular_links(
    n: int,
    y: int,
    rng: np.random.Generator,
    forbidden: set[tuple[int, int]] | None = None,
    max_attempts: int = 50,
) -> list[Link]:
    """``y`` random link endpoints per node: a random y-regular graph.

    Realized with a configuration-model pairing; resampled until the
    graph has no self-loops, no duplicate links, and no link already in
    ``forbidden`` (so the union with the base topology keeps every node
    at exactly base-degree + y, the paper's "exact degree 4" for
    DLN-2-2).
    """
    if y < 1:
        return []
    if (n * y) % 2 != 0:
        raise ValueError(f"n*y must be even to form a y-regular graph (n={n}, y={y})")
    forbidden = forbidden or set()
    for attempt in range(max_attempts):
        seed = int(rng.integers(0, 2**31 - 1))
        g = nx.random_regular_graph(y, n, seed=seed)
        ok = all(
            (min(u, v), max(u, v)) not in forbidden for u, v in g.edges()
        )
        if ok:
            return [Link(u, v, LinkClass.RANDOM) for u, v in g.edges()]
    raise RuntimeError(
        f"could not sample a y-regular graph avoiding {len(forbidden)} base links "
        f"after {max_attempts} attempts (n={n}, y={y})"
    )


class DLNTopology(Topology):
    """DLN-x: ring plus deterministic distance-halving shortcuts, degree x."""

    def __init__(self, n: int, x: int):
        if x < 2:
            raise ValueError(f"DLN-x requires x >= 2 (x=2 is the plain ring), got {x}")
        self.x = x
        links = ring_links(n) + dln_shortcut_links(n, x)
        super().__init__(n, links, name=f"DLN-{x}-{n}")


class DLNRandomTopology(Topology):
    """DLN-x-y: DLN-x plus ``y`` random link endpoints per node.

    ``DLNRandomTopology(n, 2, 2, seed)`` is the paper's RANDOM baseline:
    an n-ring where every node additionally gets two random endpoints,
    for an exact degree of 4.
    """

    def __init__(self, n: int, x: int = 2, y: int = 2, seed: int | np.random.Generator | None = 0):
        if x < 2:
            raise ValueError(f"DLN-x-y requires x >= 2, got {x}")
        self.x = x
        self.y = y
        rng = make_rng(seed)
        base = ring_links(n) + dln_shortcut_links(n, x)
        forbidden = {(min(l.u, l.v), max(l.u, l.v)) for l in base}
        rand = random_regular_links(n, y, rng, forbidden=forbidden)
        super().__init__(n, base + rand, name=f"DLN-{x}-{y}-{n}")
