"""Sharded on-disk layout for the run store.

PR 5's disk tier kept every entry in one flat directory with one
``.lock`` file per entry. That layout has two scaling problems the
serving tier (:mod:`repro.serve`) runs straight into: every concurrent
writer contends on the same directory inode (directory-entry creation
serializes inside the filesystem), and the lock files accumulate
forever. This module fans entries out across
``REPRO_STORE_SHARDS`` prefix-keyed subdirectories::

    REPRO_STORE_DIR/
      .shards            <- layout marker: shard count this store uses
      .shard-000.lock    <- per-shard publish locks (fixed set, root level)
      s000/sim-03ac....json
      s001/sim-8f21....json
      ...
      sim-legacy....json <- pre-shard entries stay readable in place

Design points:

* **Self-describing layout.** The shard count is written once to a
  ``.shards`` marker by the first publisher and read back by everyone
  else, so readers never mis-derive an entry's shard from a changed
  environment variable. ``REPRO_STORE_SHARDS`` only decides the layout
  of a *new* store (default 16; ``0`` keeps the legacy flat layout).
* **Per-shard publish locks.** Publishing locks only the entry's
  shard (``.shard-NNN.lock``), so writers on different shards never
  serialize, and the lock files are a small fixed set instead of
  one-per-entry litter. Infrastructure files are all dot-prefixed;
  anything else ending in ``.lock`` is a reapable per-entry compute
  lock (see :mod:`repro.store.runstore`).
* **Transparent legacy read-through.** Lookups probe the sharded path
  first, then the flat root, so a store written before sharding keeps
  serving hits with no migration step.
* **Offline migration.** :func:`migrate_store` re-homes every entry
  into the layout of a target shard count (``0`` flattens back) with
  plain ``os.replace`` renames -- entries round-trip byte-identically
  -- and reaps stale per-entry lock files while it walks.
"""

from __future__ import annotations

import os
import re
import threading
from dataclasses import dataclass, field
from typing import Iterator

try:  # POSIX file locking; Windows falls back to atomic-rename only.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

__all__ = [
    "DEFAULT_SHARDS",
    "MARKER_NAME",
    "FileLock",
    "MigrateReport",
    "store_shards",
    "effective_shards",
    "shard_index",
    "shard_dir",
    "entry_path",
    "flat_entry_path",
    "read_paths",
    "entry_lock_path",
    "shard_lock_path",
    "iter_entry_paths",
    "iter_stale_locks",
    "migrate_store",
    "invalidate_layout_cache",
]

#: Shard count a brand-new store is created with (``REPRO_STORE_SHARDS``
#: overrides; ``0`` means the legacy single-directory layout).
DEFAULT_SHARDS = 16

#: Name of the layout marker file at the store root.
MARKER_NAME = ".shards"

_SHARD_DIR_RE = re.compile(r"^s(\d{3,})$")
_ENTRY_RE = re.compile(r"^(?P<stem>[^.].*-(?P<digest>[0-9a-f]{8,}))\.json$")

#: root path -> shard count, so hot lookups skip the marker read. The
#: marker is written once per store and only rewritten by
#: :func:`migrate_store` (which invalidates), so caching is safe.
_layout_cache: dict[str, int] = {}
_layout_lock = threading.Lock()


def store_shards() -> int:
    """Shard count for a new store (``REPRO_STORE_SHARDS``, default 16)."""
    raw = os.environ.get("REPRO_STORE_SHARDS", "").strip()
    if not raw:
        return DEFAULT_SHARDS
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_SHARDS


def invalidate_layout_cache(root: str | None = None) -> None:
    """Forget cached marker values (all roots, or one)."""
    with _layout_lock:
        if root is None:
            _layout_cache.clear()
        else:
            _layout_cache.pop(os.path.abspath(root), None)


def _read_marker(root: str) -> int | None:
    try:
        with open(os.path.join(root, MARKER_NAME), "r") as fh:
            return max(0, int(fh.read().strip()))
    except (OSError, ValueError):
        return None


def effective_shards(root: str, create: bool = False) -> int:
    """The shard count *this* store uses.

    The ``.shards`` marker wins over the environment, so every process
    that touches the store agrees on the layout even when their
    ``REPRO_STORE_SHARDS`` values differ. With ``create=True`` (the
    publish path) a missing marker is written -- under the root lock,
    first writer wins -- pinning the layout the moment the store is
    born.
    """
    key = os.path.abspath(root)
    with _layout_lock:
        cached = _layout_cache.get(key)
    if cached is not None:
        return cached
    marked = _read_marker(root)
    if marked is not None:
        with _layout_lock:
            _layout_cache[key] = marked
        return marked
    if not create:
        return store_shards()  # uncached: the marker may appear later
    shards = store_shards()
    try:
        os.makedirs(root, exist_ok=True)
        with FileLock(os.path.join(root, ".store.lock")):
            marked = _read_marker(root)  # a racer may have won
            if marked is None:
                _write_marker(root, shards)
                marked = shards
    except OSError:
        marked = shards
    with _layout_lock:
        _layout_cache[key] = marked
    return marked


def _write_marker(root: str, shards: int) -> None:
    tmp = os.path.join(root, MARKER_NAME + ".tmp")
    with open(tmp, "w") as fh:
        fh.write(f"{shards}\n")
    os.replace(tmp, os.path.join(root, MARKER_NAME))


# ----------------------------------------------------------------------
# path geometry
# ----------------------------------------------------------------------
def shard_index(digest: str, shards: int) -> int:
    """Shard of a digest: stable prefix keying, uniform for hex digests."""
    return int(digest[:8], 16) % shards


def shard_dir(root: str, index: int) -> str:
    return os.path.join(root, f"s{index:03d}")


def flat_entry_path(root: str, stem: str) -> str:
    """The legacy (pre-shard) location of an entry."""
    return os.path.join(root, stem + ".json")


def entry_path(root: str, stem: str, digest: str, shards: int | None = None) -> str:
    """Canonical (write-side) location of an entry under the layout."""
    if shards is None:
        shards = effective_shards(root)
    if shards <= 0:
        return flat_entry_path(root, stem)
    return os.path.join(shard_dir(root, shard_index(digest, shards)), stem + ".json")


def read_paths(root: str, stem: str, digest: str) -> list[str]:
    """Probe order for a lookup: sharded home first, then the flat root."""
    shards = effective_shards(root)
    if shards <= 0:
        return [flat_entry_path(root, stem)]
    return [entry_path(root, stem, digest, shards), flat_entry_path(root, stem)]


def entry_lock_path(root: str, stem: str, digest: str, shards: int | None = None) -> str:
    """Per-entry compute lock; lives beside the entry, reaped after publish."""
    return entry_path(root, stem, digest, shards)[: -len(".json")] + ".lock"


def shard_lock_path(root: str, digest: str, shards: int | None = None) -> str:
    """Per-shard publish lock (root-level dotfile; ``.store.lock`` when flat)."""
    if shards is None:
        shards = effective_shards(root)
    if shards <= 0:
        return os.path.join(root, ".store.lock")
    return os.path.join(root, f".shard-{shard_index(digest, shards):03d}.lock")


# ----------------------------------------------------------------------
# locking
# ----------------------------------------------------------------------
class FileLock:
    """An exclusive ``fcntl`` file lock usable as a context manager.

    ``acquire(blocking=False)`` returns False instead of waiting, which
    is how the run store detects -- and counts -- another process
    already computing the same entry. On platforms without ``fcntl``
    the lock degrades to a no-op (atomic renames still keep entries
    consistent; only cross-process coalescing is lost).
    """

    def __init__(self, path: str):
        self.path = path
        self._fh = None

    def acquire(self, blocking: bool = True) -> bool:
        self._fh = open(self.path, "a")
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            return True
        flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
        try:
            fcntl.flock(self._fh, flags)
            return True
        except OSError:
            self._fh.close()
            self._fh = None
            return False

    def release(self) -> None:
        if self._fh is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(self._fh, fcntl.LOCK_UN)
        finally:
            self._fh.close()
            self._fh = None

    def unlink_then_release(self) -> None:
        """Reap the lock file, then release.

        Unlinking while still holding the lock is safe here because the
        lock only guards "compute if the entry is missing": a waiter
        blocked on the old inode re-checks the (now published) entry
        after acquiring, and a fresh opener finds the entry before ever
        creating a new lock file.
        """
        try:
            os.unlink(self.path)
        except OSError:
            pass
        self.release()

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


# ----------------------------------------------------------------------
# walking and migration
# ----------------------------------------------------------------------
def iter_entry_paths(root: str) -> Iterator[str]:
    """Every entry file in the store, flat root and shard dirs alike."""
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return
    for name in names:
        path = os.path.join(root, name)
        if _ENTRY_RE.match(name):
            yield path
        elif _SHARD_DIR_RE.match(name) and os.path.isdir(path):
            try:
                subnames = sorted(os.listdir(path))
            except OSError:
                continue
            for sub in subnames:
                if _ENTRY_RE.match(sub):
                    yield os.path.join(path, sub)


def iter_stale_locks(root: str) -> Iterator[str]:
    """Per-entry ``.lock`` files (the reapable kind, never dotfiles)."""
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return
    for name in names:
        path = os.path.join(root, name)
        if name.endswith(".lock") and not name.startswith("."):
            yield path
        elif _SHARD_DIR_RE.match(name) and os.path.isdir(path):
            try:
                subnames = sorted(os.listdir(path))
            except OSError:
                continue
            for sub in subnames:
                if sub.endswith(".lock") and not sub.startswith("."):
                    yield os.path.join(path, sub)


@dataclass
class MigrateReport:
    """What :func:`migrate_store` did."""

    root: str
    shards: int
    moved: int = 0
    kept: int = 0  #: already in their canonical home
    duplicates: int = 0  #: same digest present in both layouts; extra removed
    reaped_locks: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        return (
            f"migrated {self.root} to {self.shards or 'flat'} shard(s): "
            f"{self.moved} moved, {self.kept} already placed, "
            f"{self.duplicates} duplicate(s) dropped, "
            f"{self.reaped_locks} stale lock(s) reaped"
            + (f", {len(self.errors)} error(s)" if self.errors else "")
        )


def migrate_store(root: str, shards: int | None = None) -> MigrateReport:
    """Re-home every entry into the layout of ``shards`` (offline).

    ``shards=None`` uses ``REPRO_STORE_SHARDS``; ``0`` flattens the
    store back to the legacy single directory. Moves are plain
    ``os.replace`` renames, so every entry's bytes round-trip exactly;
    an entry already present at its destination (the content-addressed
    invariant: same digest, same content) keeps the destination copy.
    Stale per-entry lock files are reaped along the way, and the
    ``.shards`` marker is rewritten so readers agree on the new layout.
    Intended to run while no writer is active ("offline").
    """
    if shards is None:
        shards = store_shards()
    report = MigrateReport(root=root, shards=shards)
    if not os.path.isdir(root):
        report.errors.append(f"no store directory at {root}")
        return report
    for path in list(iter_entry_paths(root)):
        name = os.path.basename(path)
        m = _ENTRY_RE.match(name)
        dest = entry_path(root, m.group("stem"), m.group("digest"), shards)
        if os.path.abspath(dest) == os.path.abspath(path):
            report.kept += 1
            continue
        try:
            if os.path.exists(dest):
                os.unlink(path)
                report.duplicates += 1
            else:
                os.makedirs(os.path.dirname(dest), exist_ok=True)
                os.replace(path, dest)
                report.moved += 1
        except OSError as exc:
            report.errors.append(f"{name}: {exc}")
    for lock in list(iter_stale_locks(root)):
        try:
            os.unlink(lock)
            report.reaped_locks += 1
        except OSError:
            pass
    # Drop now-empty shard dirs when flattening.
    if shards <= 0:
        for name in sorted(os.listdir(root)):
            if _SHARD_DIR_RE.match(name):
                try:
                    os.rmdir(os.path.join(root, name))
                except OSError:
                    pass
    try:
        _write_marker(root, shards)
    except OSError as exc:
        report.errors.append(f"marker: {exc}")
    invalidate_layout_cache(root)
    return report
