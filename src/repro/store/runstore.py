"""Persistent run store: never simulate the same point twice.

PR 1's artifact cache proved fingerprint-keyed reuse pays 30x+ at the
topology layer; this module lifts the idea one layer up, to whole
simulation results. Every experiment entry point (`fig10`,
``run_curve``, ``saturation_search``, the robustness and degradation
sweeps) asks the store before running a point and publishes what it
computed, so repeated figures, resumed sweeps and overlapping searches
share work instead of repeating it -- the way cluster-comparison
studies amortize thousands of near-identical evaluations across one
campaign. The serving daemon (:mod:`repro.serve`) answers HTTP queries
straight out of this store.

Two tiers, mirroring :mod:`repro.cache`:

* an in-process LRU of *encoded* documents (capacity
  ``REPRO_STORE_MEM`` entries, default 512) -- entries are decoded on
  every hit, so a caller mutating a returned result can never pollute
  later hits;
* an optional on-disk JSON tier under ``REPRO_STORE_DIR`` -- one
  human-auditable file per point (the canonical key payload is stored
  beside the result), fanned out across ``REPRO_STORE_SHARDS``
  prefix-keyed subdirectories (:mod:`repro.store.shards`; legacy flat
  stores stay readable and ``python -m repro store migrate`` re-homes
  them), shared by worker processes and surviving the process, which
  is what makes killed sweeps resumable.

Concurrency, three layers deep:

* **Publish** is atomic (``mkstemp`` + ``os.replace``) and serialized
  by a per-*shard* ``fcntl`` lock with a first-writer-wins existence
  check -- concurrent workers never corrupt or duplicate an entry, and
  writers on different shards never contend.
* **Compute** is coalesced. Within a process, :func:`get_or_run` runs
  a single-flight table: concurrent threads asking for the same key
  wait for the first one's result instead of recomputing. Across
  processes (disk tier on), the computing leader holds a per-entry
  lock for the duration of the compute; a second process that misses
  on the same key blocks on that lock, then re-reads the entry the
  leader published -- exactly one compute per key, cluster-wide. The
  per-entry lock file is *reaped* after a successful publish, so a
  long campaign leaves no lock litter behind.
* Within one batch, the in-flight dedup scheduler (:func:`dedup_map`)
  collapses identical points before they are dispatched, so duplicates
  run once even on the cold path.

``REPRO_STORE=off`` bypasses both tiers entirely. Every
:class:`StoreStats` field is mirrored into the telemetry registry
(``store.memory_hits`` / ``store.disk_hits`` / ``store.misses`` /
``store.stores`` / ``store.bytes_read`` / ``store.bytes_written`` /
``store.inflight_dedup`` / ``store.thread_coalesced`` /
``store.lock_waits``, plus the legacy ``store.hits`` / ``store.bytes``
aggregates) when telemetry is enabled, so the daemon's ``/metrics``
endpoint reports cache effectiveness for free.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from repro import telemetry
from repro.store import shards as _shards
from repro.store.codec import decode_result, encode_result
from repro.store.keys import RunKey

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "StoreStats",
    "store_enabled",
    "store_dir",
    "store_shards",
    "store_stats",
    "reset_store_stats",
    "clear_store",
    "disk_entry_path",
    "find_disk_entry",
    "get",
    "fetch",
    "put",
    "get_or_run",
    "cached_sim",
    "cached_value",
    "dedup_map",
    "migrate_store",
    "GcReport",
    "gc_store",
]


@dataclass
class StoreStats:
    """Hit/miss/byte accounting for both store tiers."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0  #: entries written to the disk tier
    bytes_written: int = 0
    bytes_read: int = 0
    inflight_dedup: int = 0  #: duplicate points collapsed inside batches
    thread_coalesced: int = 0  #: threads served by another thread's compute
    lock_waits: int = 0  #: processes that waited out another's compute

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def copy(self) -> "StoreStats":
        return StoreStats(
            self.memory_hits, self.disk_hits, self.misses, self.stores,
            self.bytes_written, self.bytes_read, self.inflight_dedup,
            self.thread_coalesced, self.lock_waits,
        )

    def as_dict(self) -> dict:
        """Plain-JSON view (every field plus the derived aggregates)."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "stores": self.stores,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "inflight_dedup": self.inflight_dedup,
            "thread_coalesced": self.thread_coalesced,
            "lock_waits": self.lock_waits,
        }


_stats = StoreStats()
_lock = threading.RLock()
_memory: OrderedDict[str, str] = OrderedDict()  # digest -> encoded document
_inflight: dict[str, threading.Event] = {}  # digest -> single-flight latch


# ----------------------------------------------------------------------
# configuration (env read at call time, like repro.cache)
# ----------------------------------------------------------------------
def store_enabled() -> bool:
    """False when ``REPRO_STORE`` is set to ``off``/``0``/``false``."""
    return os.environ.get("REPRO_STORE", "on").strip().lower() not in ("off", "0", "false")


def store_dir() -> str | None:
    """Disk-tier directory (``REPRO_STORE_DIR``), or None for memory-only."""
    d = os.environ.get("REPRO_STORE_DIR", "").strip()
    return d or None


def store_shards() -> int:
    """Shard count a new store is created with (``REPRO_STORE_SHARDS``)."""
    return _shards.store_shards()


def _memory_capacity() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_STORE_MEM", "512")))
    except ValueError:
        return 512


def store_stats() -> StoreStats:
    """Snapshot of the counters (monotonic since process start/reset)."""
    with _lock:
        return _stats.copy()


def reset_store_stats() -> None:
    with _lock:
        _stats.__init__()


def clear_store(disk: bool = False) -> None:
    """Drop the in-process tier (and optionally the disk tier)."""
    with _lock:
        _memory.clear()
    if disk:
        d = store_dir()
        if d and os.path.isdir(d):
            for path in list(_shards.iter_entry_paths(d)):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            for path in list(_shards.iter_stale_locks(d)):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            _shards.invalidate_layout_cache(d)


# ----------------------------------------------------------------------
# tier plumbing
# ----------------------------------------------------------------------
def _memory_get(digest: str) -> str | None:
    with _lock:
        text = _memory.get(digest)
        if text is not None:
            _memory.move_to_end(digest)
        return text


def _memory_put(digest: str, text: str) -> None:
    with _lock:
        _memory[digest] = text
        _memory.move_to_end(digest)
        cap = _memory_capacity()
        while len(_memory) > cap:
            _memory.popitem(last=False)


def disk_entry_path(key: RunKey, d: str | None = None) -> str | None:
    """Canonical (write-side) disk location of ``key`` under the layout."""
    d = d or store_dir()
    if d is None:
        return None
    return _shards.entry_path(d, key.stem, key.digest)


def find_disk_entry(key: RunKey, d: str | None = None) -> str | None:
    """The existing on-disk file holding ``key``, or None (probes the
    sharded home first, then the legacy flat root)."""
    d = d or store_dir()
    if d is None:
        return None
    for path in _shards.read_paths(d, key.stem, key.digest):
        if os.path.exists(path):
            return path
    return None


def _disk_load(key: RunKey) -> str | None:
    d = store_dir()
    if d is None:
        return None
    for path in _shards.read_paths(d, key.stem, key.digest):
        try:
            with open(path, "r") as fh:
                return fh.read()
        except OSError:
            continue
    return None


def _disk_store(key: RunKey, text: str) -> None:
    """Write one entry: per-shard exclusive lock, first writer wins,
    atomic tmp-write + rename. Best-effort on read-only/full disks."""
    d = store_dir()
    if d is None:
        return
    try:
        os.makedirs(d, exist_ok=True)
        nshards = _shards.effective_shards(d, create=True)
        path = _shards.entry_path(d, key.stem, key.digest, nshards)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with _shards.FileLock(_shards.shard_lock_path(d, key.digest, nshards)):
            if find_disk_entry(key, d) is not None:
                return  # another process/worker already published it
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".json.tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(text)
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        with _lock:
            _stats.stores += 1
            _stats.bytes_written += len(text)
        telemetry.count("store.stores")
        telemetry.count("store.bytes", len(text))
        telemetry.count("store.bytes_written", len(text))
    except OSError:
        pass


def _parse(key: RunKey, text: str) -> dict | None:
    """Decode an entry document; None on corruption or key mismatch.

    The stored canonical payload must match the requested key exactly
    -- a digest collision (or a hand-edited file) degrades to a miss,
    never to a wrong result.
    """
    try:
        doc = json.loads(text)
    except ValueError:
        return None
    if doc.get("ns") != key.namespace or doc.get("key") != key.payload:
        return None
    return doc


# ----------------------------------------------------------------------
# public get / put / get-or-run
# ----------------------------------------------------------------------
def fetch(key: RunKey, decode: Callable[[dict], object] | None = None):
    """Look a point up; returns ``(value, tier)``.

    ``tier`` is ``"memory"`` or ``"disk"`` on a hit and ``None`` on a
    miss (then ``value`` is ``None`` too). The serving daemon uses the
    tier to label responses; :func:`get` is the value-only wrapper.
    """
    if not store_enabled():
        return None, None
    text = _memory_get(key.digest)
    tier = "memory"
    if text is None:
        text = _disk_load(key)
        tier = "disk"
        if text is not None:
            with _lock:
                _stats.bytes_read += len(text)
            telemetry.count("store.bytes_read", len(text))
    if text is None:
        return None, None
    doc = _parse(key, text)
    if doc is None:
        return None, None
    value = doc["result"] if decode is None else decode(doc["result"])
    if value is None:  # unknown codec version: treat as a miss
        return None, None
    with _lock:
        if tier == "memory":
            _stats.memory_hits += 1
        else:
            _stats.disk_hits += 1
    telemetry.count("store.hits")
    telemetry.count(f"store.{tier}_hits")
    if tier == "disk":
        _memory_put(key.digest, text)
    return value, tier


def get(key: RunKey, decode: Callable[[dict], object] | None = None):
    """Look a point up (memory tier, then disk). None on a miss.

    ``decode`` maps the stored ``result`` document back to a value;
    default is the identity (plain JSON values).
    """
    return fetch(key, decode=decode)[0]


def put(key: RunKey, value, encode: Callable[[object], dict] | None = None) -> None:
    """Publish a computed point to both tiers (no-op when disabled)."""
    if not store_enabled():
        return
    doc = {
        "ns": key.namespace,
        "key": key.payload,
        "result": value if encode is None else encode(value),
    }
    text = json.dumps(doc, allow_nan=True)
    _memory_put(key.digest, text)
    _disk_store(key, text)


def _count_miss() -> None:
    with _lock:
        _stats.misses += 1
    telemetry.count("store.misses")


def _compute_and_publish(
    key: RunKey,
    compute: Callable[[], T],
    encode: Callable[[T], dict] | None,
    decode: Callable[[dict], T] | None,
) -> T:
    """The miss path of :func:`get_or_run`, cross-process coalesced.

    With a disk tier, the computing leader holds the per-entry lock for
    the duration of the compute. A process that finds the lock taken is
    racing a leader elsewhere: it blocks (counted as ``lock_waits``),
    then re-reads the entry the leader published -- a disk hit, not a
    second compute. The lock file is reaped after a successful publish
    (under the lock; see :meth:`~repro.store.shards.FileLock.
    unlink_then_release` for why that is race-free), so sweeps leave no
    stale locks behind. Without ``fcntl`` or a disk tier this reduces
    to plain compute-and-publish.
    """
    d = store_dir()
    if d is None or _shards.fcntl is None:
        _count_miss()
        value = compute()
        put(key, value, encode=encode)
        return value
    lock = _shards.FileLock(_shards.entry_lock_path(d, key.stem, key.digest))
    try:
        os.makedirs(os.path.dirname(lock.path), exist_ok=True)
        if not lock.acquire(blocking=False):
            with _lock:
                _stats.lock_waits += 1
            telemetry.count("store.lock_waits")
            lock.acquire(blocking=True)
    except OSError:  # unlockable filesystem: fall back to plain compute
        _count_miss()
        value = compute()
        put(key, value, encode=encode)
        return value
    try:
        value = get(key, decode=decode)  # leader elsewhere may have published
        if value is not None:
            return value
        _count_miss()
        value = compute()
        put(key, value, encode=encode)
        lock.unlink_then_release()
        return value
    finally:
        lock.release()  # no-op when already reaped-and-released


def get_or_run(
    key: RunKey,
    compute: Callable[[], T],
    encode: Callable[[T], dict] | None = None,
    decode: Callable[[dict], T] | None = None,
) -> T:
    """The store's main verb: serve a stored point or compute-and-publish.

    Concurrent callers of the same key coalesce: threads in this
    process wait on a single-flight latch for the first caller's
    result, and processes sharing a disk tier serialize on the
    per-entry lock -- either way the point is computed exactly once
    and every caller decodes the same stored bytes.
    """
    if not store_enabled():
        return compute()
    while True:
        value = get(key, decode=decode)
        if value is not None:
            return value
        with _lock:
            latch = _inflight.get(key.digest)
            if latch is None:
                _inflight[key.digest] = latch = threading.Event()
                leader = True
            else:
                leader = False
        if not leader:
            with _lock:
                _stats.thread_coalesced += 1
            telemetry.count("store.thread_coalesced")
            latch.wait()
            continue  # leader published to the memory tier (or failed)
        try:
            return _compute_and_publish(key, compute, encode, decode)
        finally:
            with _lock:
                _inflight.pop(key.digest, None)
            latch.set()


def cached_sim(key: RunKey, compute: Callable[[], object]):
    """:func:`get_or_run` specialized to :class:`~repro.sim.metrics.SimResult`."""
    return get_or_run(key, compute, encode=encode_result, decode=decode_result)


def cached_value(key: RunKey, compute: Callable[[], object]):
    """:func:`get_or_run` for plain-JSON values (lists/dicts/scalars)."""
    return get_or_run(key, compute)


def migrate_store(d: str | None = None, shards: int | None = None):
    """Offline re-shard of the disk tier (see :func:`repro.store.shards.
    migrate_store`); ``d`` defaults to ``REPRO_STORE_DIR``."""
    d = d or store_dir()
    if d is None:
        raise ValueError("no store directory (pass one or set REPRO_STORE_DIR)")
    return _shards.migrate_store(d, shards=shards)


@dataclass
class GcReport:
    """What :func:`gc_store` did."""

    root: str
    max_bytes: int
    scanned: int = 0
    total_bytes: int = 0  #: disk-tier size before eviction
    evicted: int = 0
    evicted_bytes: int = 0
    kept_bytes: int = 0
    errors: list[str] = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.errors is None:
            self.errors = []

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        return (
            f"gc {self.root} to <= {self.max_bytes} bytes: "
            f"{self.evicted}/{self.scanned} entries evicted "
            f"({self.evicted_bytes} bytes freed, {self.kept_bytes} kept)"
            + (f", {len(self.errors)} error(s)" if self.errors else "")
        )


def gc_store(d: str | None = None, max_bytes: int = 0) -> GcReport:
    """Prune the disk tier down to a byte budget, oldest entries first.

    Long campaigns (percolation sweeps at dozens of fractions x trials)
    accrete entries without bound; this evicts least-recently-*written*
    entries (mtime order -- publishes are atomic renames, so mtime is
    the publish time) until the tier fits ``max_bytes``. Each unlink is
    taken under the entry's per-shard lock, so gc is safe to run beside
    active writers; evicted digests are dropped from the in-process
    memory tier too, so a later ``get`` recomputes instead of serving a
    value the disk no longer backs.
    """
    d = d or store_dir()
    if d is None:
        raise ValueError("no store directory (pass one or set REPRO_STORE_DIR)")
    if max_bytes < 0:
        raise ValueError("max_bytes must be >= 0")
    report = GcReport(root=d, max_bytes=max_bytes)
    if not os.path.isdir(d):
        return report
    entries: list[tuple[float, str, int, str]] = []  # (mtime, path, size, digest)
    for path in _shards.iter_entry_paths(d):
        m = _shards._ENTRY_RE.match(os.path.basename(path))
        try:
            st = os.stat(path)
        except OSError:
            continue  # raced with a concurrent gc/clear
        entries.append((st.st_mtime, path, st.st_size, m.group("digest")))
    entries.sort(key=lambda e: (e[0], e[1]))
    report.scanned = len(entries)
    report.total_bytes = sum(e[2] for e in entries)
    excess = report.total_bytes - max_bytes
    for mtime, path, size, digest in entries:
        if excess <= 0:
            break
        lock = _shards.FileLock(_shards.shard_lock_path(d, digest))
        lock.acquire()
        try:
            try:
                os.unlink(path)
            except FileNotFoundError:
                excess -= size  # another gc got it; budget-wise it is gone
                continue
            except OSError as exc:
                report.errors.append(f"{path}: {exc}")
                continue
        finally:
            lock.release()
        with _lock:
            _memory.pop(digest, None)
        report.evicted += 1
        report.evicted_bytes += size
        excess -= size
    report.kept_bytes = report.total_bytes - report.evicted_bytes
    return report


# ----------------------------------------------------------------------
# in-flight dedup scheduler
# ----------------------------------------------------------------------
def dedup_map(
    fn: Callable[[T], R],
    jobs: Iterable[T],
    workers: int | None = None,
    broadcast=None,
) -> list[R]:
    """Map ``fn`` over ``jobs`` running each *distinct* job exactly once.

    Jobs must be hashable and fully determine their result (the
    contract every store-backed point function already satisfies: equal
    args imply an equal run key). Distinct jobs keep first-appearance
    order and fan out through :func:`repro.util.parallel.parallel_map`;
    duplicates are filled in from the single computed result, so two
    identical points requested in one batch run once -- even with the
    store disabled or cold. ``broadcast`` is forwarded to
    ``parallel_map`` (shared-memory fan-out of large read-only arrays).
    """
    from repro.util.parallel import parallel_map

    jobs_list: Sequence[T] = list(jobs)
    index: dict[T, int] = {}
    unique: list[T] = []
    for job in jobs_list:
        if job not in index:
            index[job] = len(unique)
            unique.append(job)
    duplicates = len(jobs_list) - len(unique)
    if duplicates:
        with _lock:
            _stats.inflight_dedup += duplicates
        telemetry.count("store.inflight_dedup", duplicates)
    results = parallel_map(fn, unique, workers=workers, broadcast=broadcast)
    return [results[index[job]] for job in jobs_list]
