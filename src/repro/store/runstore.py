"""Persistent run store: never simulate the same point twice.

PR 1's artifact cache proved fingerprint-keyed reuse pays 30x+ at the
topology layer; this module lifts the idea one layer up, to whole
simulation results. Every experiment entry point (`fig10`,
``run_curve``, ``saturation_search``, the robustness and degradation
sweeps) asks the store before running a point and publishes what it
computed, so repeated figures, resumed sweeps and overlapping searches
share work instead of repeating it -- the way cluster-comparison
studies amortize thousands of near-identical evaluations across one
campaign.

Two tiers, mirroring :mod:`repro.cache`:

* an in-process LRU of *encoded* documents (capacity
  ``REPRO_STORE_MEM`` entries, default 512) -- entries are decoded on
  every hit, so a caller mutating a returned result can never pollute
  later hits;
* an optional on-disk JSON tier under ``REPRO_STORE_DIR`` -- one
  human-auditable file per point (the canonical key payload is stored
  beside the result), shared by worker processes and surviving the
  process, which is what makes killed sweeps resumable.

Concurrency: disk writes are *atomic* (``mkstemp`` + ``os.replace``)
and serialized per entry by an ``fcntl`` file lock, with a
first-writer-wins existence check under the lock -- concurrent worker
processes and concurrent sweeps can race on the same point without
corrupting or duplicating entries. Within one batch, the in-flight
dedup scheduler (:func:`dedup_map`) collapses identical points before
they are dispatched, so duplicates run once even on the cold path.

``REPRO_STORE=off`` bypasses both tiers entirely. Telemetry counters
``store.hits`` / ``store.misses`` / ``store.bytes`` track traffic when
telemetry is enabled.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from repro import telemetry
from repro.store.codec import decode_result, encode_result
from repro.store.keys import RunKey

try:  # POSIX file locking; Windows falls back to atomic-rename only.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "StoreStats",
    "store_enabled",
    "store_dir",
    "store_stats",
    "reset_store_stats",
    "clear_store",
    "get",
    "put",
    "get_or_run",
    "cached_sim",
    "cached_value",
    "dedup_map",
]


@dataclass
class StoreStats:
    """Hit/miss/byte accounting for both store tiers."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0  #: entries written to the disk tier
    bytes_written: int = 0
    bytes_read: int = 0
    inflight_dedup: int = 0  #: duplicate points collapsed inside batches

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def copy(self) -> "StoreStats":
        return StoreStats(
            self.memory_hits, self.disk_hits, self.misses, self.stores,
            self.bytes_written, self.bytes_read, self.inflight_dedup,
        )


_stats = StoreStats()
_lock = threading.RLock()
_memory: OrderedDict[str, str] = OrderedDict()  # digest -> encoded document


# ----------------------------------------------------------------------
# configuration (env read at call time, like repro.cache)
# ----------------------------------------------------------------------
def store_enabled() -> bool:
    """False when ``REPRO_STORE`` is set to ``off``/``0``/``false``."""
    return os.environ.get("REPRO_STORE", "on").strip().lower() not in ("off", "0", "false")


def store_dir() -> str | None:
    """Disk-tier directory (``REPRO_STORE_DIR``), or None for memory-only."""
    d = os.environ.get("REPRO_STORE_DIR", "").strip()
    return d or None


def _memory_capacity() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_STORE_MEM", "512")))
    except ValueError:
        return 512


def store_stats() -> StoreStats:
    """Snapshot of the counters (monotonic since process start/reset)."""
    with _lock:
        return _stats.copy()


def reset_store_stats() -> None:
    with _lock:
        _stats.__init__()


def clear_store(disk: bool = False) -> None:
    """Drop the in-process tier (and optionally the disk tier)."""
    with _lock:
        _memory.clear()
    if disk:
        d = store_dir()
        if d and os.path.isdir(d):
            for name in os.listdir(d):
                if name.endswith(".json") or name.endswith(".lock"):
                    try:
                        os.unlink(os.path.join(d, name))
                    except OSError:
                        pass


# ----------------------------------------------------------------------
# tier plumbing
# ----------------------------------------------------------------------
def _memory_get(digest: str) -> str | None:
    with _lock:
        text = _memory.get(digest)
        if text is not None:
            _memory.move_to_end(digest)
        return text


def _memory_put(digest: str, text: str) -> None:
    with _lock:
        _memory[digest] = text
        _memory.move_to_end(digest)
        cap = _memory_capacity()
        while len(_memory) > cap:
            _memory.popitem(last=False)


def _entry_path(d: str, key: RunKey) -> str:
    return os.path.join(d, key.stem + ".json")


def _disk_load(key: RunKey) -> str | None:
    d = store_dir()
    if d is None:
        return None
    path = _entry_path(d, key)
    try:
        with open(path, "r") as fh:
            return fh.read()
    except OSError:
        return None


def _disk_store(key: RunKey, text: str) -> None:
    """Write one entry: exclusive per-entry lock, first writer wins,
    atomic tmp-write + rename. Best-effort on read-only/full disks."""
    d = store_dir()
    if d is None:
        return
    path = _entry_path(d, key)
    try:
        os.makedirs(d, exist_ok=True)
        with open(os.path.join(d, key.stem + ".lock"), "w") as lockf:
            if fcntl is not None:
                fcntl.flock(lockf, fcntl.LOCK_EX)
            try:
                if os.path.exists(path):
                    return  # another process/worker already published it
                fd, tmp = tempfile.mkstemp(dir=d, suffix=".json.tmp")
                try:
                    with os.fdopen(fd, "w") as fh:
                        fh.write(text)
                    os.replace(tmp, path)
                except BaseException:
                    if os.path.exists(tmp):
                        os.unlink(tmp)
                    raise
            finally:
                if fcntl is not None:
                    fcntl.flock(lockf, fcntl.LOCK_UN)
        with _lock:
            _stats.stores += 1
            _stats.bytes_written += len(text)
        telemetry.count("store.stores")
        telemetry.count("store.bytes", len(text))
    except OSError:
        pass


def _parse(key: RunKey, text: str) -> dict | None:
    """Decode an entry document; None on corruption or key mismatch.

    The stored canonical payload must match the requested key exactly
    -- a digest collision (or a hand-edited file) degrades to a miss,
    never to a wrong result.
    """
    try:
        doc = json.loads(text)
    except ValueError:
        return None
    if doc.get("ns") != key.namespace or doc.get("key") != key.payload:
        return None
    return doc


# ----------------------------------------------------------------------
# public get / put / get-or-run
# ----------------------------------------------------------------------
def get(key: RunKey, decode: Callable[[dict], object] | None = None):
    """Look a point up (memory tier, then disk). None on a miss.

    ``decode`` maps the stored ``result`` document back to a value;
    default is the identity (plain JSON values).
    """
    if not store_enabled():
        return None
    text = _memory_get(key.digest)
    tier = "memory"
    if text is None:
        text = _disk_load(key)
        tier = "disk"
        if text is not None:
            with _lock:
                _stats.bytes_read += len(text)
    if text is None:
        return None
    doc = _parse(key, text)
    if doc is None:
        return None
    value = doc["result"] if decode is None else decode(doc["result"])
    if value is None:  # unknown codec version: treat as a miss
        return None
    with _lock:
        if tier == "memory":
            _stats.memory_hits += 1
        else:
            _stats.disk_hits += 1
    telemetry.count("store.hits")
    if tier == "disk":
        _memory_put(key.digest, text)
    return value


def put(key: RunKey, value, encode: Callable[[object], dict] | None = None) -> None:
    """Publish a computed point to both tiers (no-op when disabled)."""
    if not store_enabled():
        return
    doc = {
        "ns": key.namespace,
        "key": key.payload,
        "result": value if encode is None else encode(value),
    }
    text = json.dumps(doc, allow_nan=True)
    _memory_put(key.digest, text)
    _disk_store(key, text)


def get_or_run(
    key: RunKey,
    compute: Callable[[], T],
    encode: Callable[[T], dict] | None = None,
    decode: Callable[[dict], T] | None = None,
) -> T:
    """The store's main verb: serve a stored point or compute-and-publish."""
    if not store_enabled():
        return compute()
    value = get(key, decode=decode)
    if value is not None:
        return value
    with _lock:
        _stats.misses += 1
    telemetry.count("store.misses")
    value = compute()
    put(key, value, encode=encode)
    return value


def cached_sim(key: RunKey, compute: Callable[[], object]):
    """:func:`get_or_run` specialized to :class:`~repro.sim.metrics.SimResult`."""
    return get_or_run(key, compute, encode=encode_result, decode=decode_result)


def cached_value(key: RunKey, compute: Callable[[], object]):
    """:func:`get_or_run` for plain-JSON values (lists/dicts/scalars)."""
    return get_or_run(key, compute)


# ----------------------------------------------------------------------
# in-flight dedup scheduler
# ----------------------------------------------------------------------
def dedup_map(
    fn: Callable[[T], R],
    jobs: Iterable[T],
    workers: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``jobs`` running each *distinct* job exactly once.

    Jobs must be hashable and fully determine their result (the
    contract every store-backed point function already satisfies: equal
    args imply an equal run key). Distinct jobs keep first-appearance
    order and fan out through :func:`repro.util.parallel.parallel_map`;
    duplicates are filled in from the single computed result, so two
    identical points requested in one batch run once -- even with the
    store disabled or cold.
    """
    from repro.util.parallel import parallel_map

    jobs_list: Sequence[T] = list(jobs)
    index: dict[T, int] = {}
    unique: list[T] = []
    for job in jobs_list:
        if job not in index:
            index[job] = len(unique)
            unique.append(job)
    duplicates = len(jobs_list) - len(unique)
    if duplicates:
        with _lock:
            _stats.inflight_dedup += duplicates
        telemetry.count("store.inflight_dedup", duplicates)
    results = parallel_map(fn, unique, workers=workers)
    return [results[index[job]] for job in jobs_list]
