"""Canonical run keys: the content address of one simulation point.

A run is identified by everything that determines its result bit for
bit: the topology fingerprint (name, n, sorted edge+class hash -- the
same identity :mod:`repro.cache` uses), the routing scheme, the
traffic pattern, the offered load, every :class:`~repro.sim.config.
SimConfig` field, the experiment seed, the engine (event-driven vs
flit-level), the buffer depth and the fault schedule. Two calls that
agree on all of these produce identical :class:`~repro.sim.metrics.
SimResult` objects (the determinism contract pinned since PR 1), so
one stored result can stand in for both.

Keys are small JSON-able dicts hashed into a hex digest. The payload
is serialized canonically (sorted keys, no whitespace, ``repr``-exact
floats via :func:`json.dumps`), so the digest is stable across
processes, machines and Python hash seeds. The payload itself is
persisted next to the result, which makes store entries auditable:
``REPRO_STORE_DIR/*.json`` says exactly which point it holds.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

__all__ = [
    "RunKey",
    "run_key",
    "config_fingerprint",
    "schedule_fingerprint",
    "normalize_engine",
    "sim_run_key",
]


@dataclass(frozen=True)
class RunKey:
    """A content-addressed key: namespace + canonical payload + digest."""

    namespace: str
    payload: str  #: canonical JSON of the identifying fields
    digest: str  #: hex digest addressing the entry in both tiers

    @property
    def stem(self) -> str:
        """Filename stem of the on-disk entry."""
        return f"{self.namespace}-{self.digest}"


def _canonical(payload: dict) -> str:
    """Canonical JSON: sorted keys, compact, repr-exact floats."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=True)


def run_key(namespace: str, payload: dict) -> RunKey:
    """Build a :class:`RunKey` from a namespace and a JSON-able payload."""
    text = _canonical(payload)
    digest = hashlib.sha256((namespace + "\0" + text).encode()).hexdigest()[:32]
    return RunKey(namespace=namespace, payload=text, digest=digest)


def config_fingerprint(cfg) -> dict:
    """Every :class:`~repro.sim.config.SimConfig` field, JSON-able.

    Uses ``asdict`` so a new config field automatically changes every
    key (a conservative failure mode: old entries miss, nothing is
    served under a stale configuration).

    The nested router config is normalized to ``None`` in ``ideal``
    mode: the pipeline parameters are inert there (the ideal model
    reads none of them), so every ideal-mode key is independent of
    them. Pipelined mode keeps the full parameter dict -- each stage
    depth / VC buffer setting is its own simulation point.
    """
    d = {k: v for k, v in sorted(asdict(cfg).items())}
    router = d.get("router")
    if isinstance(router, dict) and router.get("mode") == "ideal":
        d["router"] = None
    return d


def schedule_fingerprint(schedule) -> list | None:
    """Canonical form of a :class:`~repro.faults.schedule.FaultSchedule`.

    ``None`` for no schedule. Each event contributes its timestamp and
    the canonical (sorted) dead-link/dead-switch tuples -- the label is
    cosmetic and excluded, so relabeled but physically identical
    schedules share entries.
    """
    if schedule is None or not len(schedule):
        return None
    return [
        {
            "t": float(e.time_ns),
            "links": sorted([int(u), int(v)] for u, v in e.faults.dead_links),
            "switches": sorted(int(s) for s in e.faults.dead_switches),
        }
        for e in schedule.events
    ]


def normalize_engine(engine: str) -> str:
    """Collapse engine spellings that are bit-identical by contract.

    The flit simulator's run loops (``REPRO_FLIT_ENGINE=event|cycle``)
    produce byte-identical results -- the contract
    ``tests/test_sim_flit.py`` pins -- so the run loop must never reach
    a key: ``"flit"``, ``"flit:event"``, ``"flit:cycle"`` (any
    ``flit``-prefixed spelling) all address the same stored entry, and
    a point simulated under either loop is served to both.
    ``"network"`` (the packet-level simulator) stays distinct; it is a
    different model with different results.
    """
    eng = engine.strip().lower()
    if eng.startswith("flit"):
        return "flit"
    return eng


def sim_run_key(
    topo,
    routing: str,
    pattern: str,
    offered_gbps: float,
    config,
    seed: int,
    engine: str = "network",
    buffer_flits: int | None = None,
    schedule=None,
    extra: dict | None = None,
) -> RunKey:
    """The key of one simulation point (the tentpole fingerprint).

    ``topo`` is the topology actually simulated (its fingerprint covers
    kind, n and construction seed); ``seed`` is the experiment seed the
    per-point RNG derives from; ``engine`` distinguishes the
    packet-level and flit-level simulators, whose results differ by
    design -- but not the flit simulator's run loops, which are
    bit-identical and share entries (see :func:`normalize_engine`).
    ``extra`` admits caller-specific fields (e.g. a pattern kwarg)
    without widening this signature.
    """
    from repro.cache import topology_fingerprint

    payload = {
        "topo": topology_fingerprint(topo),
        "routing": routing,
        "pattern": pattern,
        "load": float(offered_gbps),
        "config": config_fingerprint(config),
        "seed": int(seed),
        "engine": normalize_engine(engine),
        "buffer_flits": None if buffer_flits is None else int(buffer_flits),
        "faults": schedule_fingerprint(schedule),
    }
    if extra:
        payload["extra"] = extra
    return run_key("sim", payload)
