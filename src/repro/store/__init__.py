"""Persistent run store: content-addressed simulation results.

The layer above :mod:`repro.cache`: where the artifact cache memoizes
per-topology *inputs* (distance matrices, routing tables), the run
store memoizes whole per-point *outputs* -- one
:class:`~repro.sim.metrics.SimResult` per canonical
``(topology, routing, pattern, load, config, seed, engine,
buffer_flits, fault schedule)`` fingerprint, persisted as auditable
JSON under ``REPRO_STORE_DIR`` with an in-memory LRU front, atomic
locked writes, coalesced computes (thread single-flight in process,
per-entry locks across processes) and an in-flight dedup scheduler.
The disk tier fans entries across ``REPRO_STORE_SHARDS`` prefix-keyed
subdirectories (:mod:`repro.store.shards`); legacy flat stores stay
readable and ``python -m repro store migrate`` re-homes them. Every
experiment entry point consults the store, which makes sweeps
resumable (``python -m repro sweep --resume``), warm re-runs of a
whole Fig. 10 subplot 10x+ faster with bit-identical curves (the
``store_warm_sweep`` bench gate), and HTTP serving
(``python -m repro serve``, :mod:`repro.serve`) a read-mostly wrapper.

Knobs: ``REPRO_STORE`` (``off`` bypasses), ``REPRO_STORE_DIR`` (disk
tier), ``REPRO_STORE_MEM`` (LRU entries), ``REPRO_STORE_SHARDS``
(layout of a new store). See ``docs/API.md``.
"""

from repro.store.codec import CODEC_VERSION, decode_result, encode_result
from repro.store.keys import (
    RunKey,
    config_fingerprint,
    normalize_engine,
    run_key,
    schedule_fingerprint,
    sim_run_key,
)
from repro.store.runstore import (
    GcReport,
    StoreStats,
    cached_sim,
    cached_value,
    clear_store,
    dedup_map,
    disk_entry_path,
    fetch,
    find_disk_entry,
    gc_store,
    get,
    get_or_run,
    migrate_store,
    put,
    reset_store_stats,
    store_dir,
    store_enabled,
    store_shards,
    store_stats,
)

__all__ = [
    "CODEC_VERSION",
    "GcReport",
    "RunKey",
    "StoreStats",
    "cached_sim",
    "cached_value",
    "clear_store",
    "config_fingerprint",
    "decode_result",
    "dedup_map",
    "disk_entry_path",
    "encode_result",
    "fetch",
    "find_disk_entry",
    "gc_store",
    "get",
    "get_or_run",
    "migrate_store",
    "put",
    "normalize_engine",
    "reset_store_stats",
    "run_key",
    "schedule_fingerprint",
    "sim_run_key",
    "store_dir",
    "store_enabled",
    "store_shards",
    "store_stats",
]
