"""Persistent run store: content-addressed simulation results.

The layer above :mod:`repro.cache`: where the artifact cache memoizes
per-topology *inputs* (distance matrices, routing tables), the run
store memoizes whole per-point *outputs* -- one
:class:`~repro.sim.metrics.SimResult` per canonical
``(topology, routing, pattern, load, config, seed, engine,
buffer_flits, fault schedule)`` fingerprint, persisted as auditable
JSON under ``REPRO_STORE_DIR`` with an in-memory LRU front, atomic
locked writes and an in-flight dedup scheduler. Every experiment entry
point consults it, which makes sweeps resumable (``python -m repro
sweep --resume``) and warm re-runs of a whole Fig. 10 subplot 10x+
faster with bit-identical curves (the ``store_warm_sweep`` bench gate).

Knobs: ``REPRO_STORE`` (``off`` bypasses), ``REPRO_STORE_DIR`` (disk
tier), ``REPRO_STORE_MEM`` (LRU entries). See ``docs/API.md``.
"""

from repro.store.codec import CODEC_VERSION, decode_result, encode_result
from repro.store.keys import (
    RunKey,
    config_fingerprint,
    normalize_engine,
    run_key,
    schedule_fingerprint,
    sim_run_key,
)
from repro.store.runstore import (
    StoreStats,
    cached_sim,
    cached_value,
    clear_store,
    dedup_map,
    get,
    get_or_run,
    put,
    reset_store_stats,
    store_dir,
    store_enabled,
    store_stats,
)

__all__ = [
    "CODEC_VERSION",
    "RunKey",
    "StoreStats",
    "cached_sim",
    "cached_value",
    "clear_store",
    "config_fingerprint",
    "decode_result",
    "dedup_map",
    "encode_result",
    "get",
    "get_or_run",
    "put",
    "normalize_engine",
    "reset_store_stats",
    "run_key",
    "schedule_fingerprint",
    "sim_run_key",
    "store_dir",
    "store_enabled",
    "store_stats",
]
