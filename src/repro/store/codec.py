"""SimResult <-> JSON: exact round-trip for stored run results.

The store's whole value rests on warm results being *bit-identical* to
fresh ones, so this codec is deliberately explicit: every
:class:`~repro.sim.metrics.SimResult` field is written out by name and
restored by name. Floats survive exactly -- ``json`` serializes them
with ``repr``, the shortest string that round-trips to the same IEEE
double -- and non-finite values (``recovery_ns`` is ``nan`` until a
fault drains) use Python's ``NaN``/``Infinity`` extension, which the
matching loader parses back. The only representational change is
``channel_busy_ns``'s tuple keys, stored as ``[u, v, busy]`` triples
and rebuilt on decode.

An embedded format version guards future field changes: entries with
an unknown version are treated as misses and recomputed, never
half-decoded.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.metrics import SimResult

__all__ = ["CODEC_VERSION", "encode_result", "decode_result"]

#: Bump when the encoded layout changes; mismatched entries are misses.
CODEC_VERSION = 1


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays and tuples for JSON."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    return value


def encode_result(result: SimResult) -> dict:
    """One JSON-able document holding every ``SimResult`` field."""
    return {
        "codec": CODEC_VERSION,
        "topology": result.topology,
        "pattern": result.pattern,
        "offered_gbps": result.offered_gbps,
        "num_hosts": result.num_hosts,
        "measure_window_ns": result.measure_window_ns,
        "generated_measured": result.generated_measured,
        "delivered_measured": result.delivered_measured,
        "delivered_in_window_bits": result.delivered_in_window_bits,
        "delivered_in_window_count": result.delivered_in_window_count,
        "latencies_ns": [float(x) for x in result.latencies_ns],
        "hop_counts": [int(x) for x in result.hop_counts],
        "packets_dropped": result.packets_dropped,
        "flits_dropped": result.flits_dropped,
        "dropped_measured": result.dropped_measured,
        "fault_records": [
            {
                "time_ns": f.time_ns,
                "links_failed": f.links_failed,
                "packets_dropped": f.packets_dropped,
                "flits_dropped": f.flits_dropped,
                "in_flight_at_fault": f.in_flight_at_fault,
                "recovery_ns": f.recovery_ns,
                "reroute_wall_s": f.reroute_wall_s,
            }
            for f in result.fault_records
        ],
        "post_fault_bits": result.post_fault_bits,
        "post_fault_window_ns": result.post_fault_window_ns,
        "channel_busy_ns": [
            [int(u), int(v), float(busy)]
            for (u, v), busy in result.channel_busy_ns.items()
        ],
        "telemetry": _jsonable(result.telemetry),
    }


def decode_result(doc: dict) -> SimResult | None:
    """Rebuild a ``SimResult``; ``None`` for unknown codec versions."""
    # Imported here, not at module top: repro.store must stay importable
    # from low layers (repro.faults) without pulling in repro.sim, which
    # imports repro.routing and would close an import cycle.
    from repro.sim.metrics import FaultRecord, SimResult

    if doc.get("codec") != CODEC_VERSION:
        return None
    return SimResult(
        topology=doc["topology"],
        pattern=doc["pattern"],
        offered_gbps=doc["offered_gbps"],
        num_hosts=doc["num_hosts"],
        measure_window_ns=doc["measure_window_ns"],
        generated_measured=doc["generated_measured"],
        delivered_measured=doc["delivered_measured"],
        delivered_in_window_bits=doc["delivered_in_window_bits"],
        delivered_in_window_count=doc["delivered_in_window_count"],
        latencies_ns=list(doc["latencies_ns"]),
        hop_counts=list(doc["hop_counts"]),
        packets_dropped=doc["packets_dropped"],
        flits_dropped=doc["flits_dropped"],
        dropped_measured=doc["dropped_measured"],
        fault_records=[FaultRecord(**f) for f in doc["fault_records"]],
        post_fault_bits=doc["post_fault_bits"],
        post_fault_window_ns=doc["post_fault_window_ns"],
        channel_busy_ns={(u, v): busy for u, v, busy in doc["channel_busy_ns"]},
        telemetry=doc["telemetry"],
    )
