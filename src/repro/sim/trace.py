"""Simulation tracing: per-packet event records for debugging/analysis.

Pass a :class:`TraceRecorder` to :class:`~repro.sim.network.
NetworkSimulator` or :class:`~repro.sim.flitsim.FlitLevelSimulator`
(both engines expose the same ``tracer=`` hook surface) and every
packet lifecycle event (inject, hop, deliver) is recorded with its
timestamp. Useful for debugging routing or blocking behaviour, for
latency breakdowns, and in tests that need to assert on *when* things
happened rather than aggregates.

Events also flow through the telemetry event path: with telemetry
enabled, per-kind ``trace.events.*`` counters accumulate in the
registry, and events discarded by the ``max_events`` guard are counted
in ``trace.dropped_events`` -- so a truncated trace is visible in any
telemetry export, not just via the ``truncated`` flag.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One packet lifecycle event."""

    time_ns: float
    kind: str  #: "inject" | "hop" | "deliver"
    pid: int
    at: int  #: switch involved (destination switch of a hop)
    detail: str = ""

    def row(self) -> list:
        return [round(self.time_ns, 1), self.kind, self.pid, self.at, self.detail]


@dataclass
class TraceRecorder:
    """Collects :class:`TraceEvent` records during a simulation run.

    ``max_events`` guards against unbounded memory on long runs; when
    reached, further events are dropped and ``truncated`` is set.
    """

    max_events: int = 100_000
    events: list[TraceEvent] = field(default_factory=list)
    truncated: bool = False

    # -- hooks called by the simulator ---------------------------------
    def on_inject(self, time_ns: float, pid: int, src_switch: int, dst_switch: int) -> None:
        self._add(TraceEvent(time_ns, "inject", pid, src_switch, f"dst_switch={dst_switch}"))

    def on_hop(self, time_ns: float, pid: int, from_switch: int, to_switch: int, vc: int) -> None:
        self._add(TraceEvent(time_ns, "hop", pid, to_switch, f"from={from_switch} vc={vc}"))

    def on_deliver(self, time_ns: float, pid: int, dst_host: int) -> None:
        self._add(TraceEvent(time_ns, "deliver", pid, dst_host // 4, f"host={dst_host}"))

    def _add(self, ev: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.truncated = True
            telemetry.count("trace.dropped_events")
            return
        self.events.append(ev)
        telemetry.count("trace.events." + ev.kind)

    # -- queries --------------------------------------------------------
    def packet_events(self, pid: int) -> list[TraceEvent]:
        """All events of one packet, in time order."""
        return [e for e in self.events if e.pid == pid]

    def packet_latency_breakdown(self, pid: int) -> dict[str, float]:
        """Injection-to-delivery split into per-hop intervals."""
        evs = self.packet_events(pid)
        if not evs or evs[-1].kind != "deliver":
            raise ValueError(f"packet {pid} has no complete trace")
        out = {"total_ns": evs[-1].time_ns - evs[0].time_ns, "hops": 0.0}
        prev = evs[0].time_ns
        for e in evs[1:]:
            if e.kind == "hop":
                out["hops"] += 1
            out[f"step{int(out['hops'])}_{e.kind}_ns"] = e.time_ns - prev
            prev = e.time_ns
        return out

    def save_jsonl(self, path: str | Path) -> None:
        """Write one JSON object per event (ndjson)."""
        with open(path, "w") as fh:
            for e in self.events:
                fh.write(json.dumps({
                    "t": e.time_ns, "kind": e.kind, "pid": e.pid,
                    "at": e.at, "detail": e.detail,
                }) + "\n")

    def __len__(self) -> int:
        return len(self.events)
