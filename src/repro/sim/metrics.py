"""Simulation results: latency and accepted-traffic accounting.

Matches the paper's two metrics (Section VII-A): *latency* is the time
from packet generation at the source host to (tail) delivery at the
destination host, including source-queue time; *accepted traffic* is
the delivered load in Gbit/s per host over the measurement window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FaultRecord", "SimResult"]


@dataclass
class FaultRecord:
    """What one fault event did to a running simulation."""

    time_ns: float
    links_failed: int
    packets_dropped: int
    flits_dropped: int
    in_flight_at_fault: int
    #: ns until every packet in flight at the fault instant was
    #: delivered over the rebuilt tables (nan: run ended first).
    recovery_ns: float = float("nan")
    #: wall-clock seconds spent rebuilding the routing tables.
    reroute_wall_s: float = 0.0


@dataclass
class SimResult:
    """Outcome of one simulation run at one offered load."""

    topology: str
    pattern: str
    offered_gbps: float
    num_hosts: int
    measure_window_ns: float

    generated_measured: int = 0
    delivered_measured: int = 0
    delivered_in_window_bits: float = 0.0
    delivered_in_window_count: int = 0
    latencies_ns: list[float] = field(default_factory=list)
    hop_counts: list[int] = field(default_factory=list)
    #: fault-injection accounting (flit engine with a fault schedule):
    #: packets discarded because a flit sat on a failing link, the
    #: flits discarded with them, and how many of the dropped packets
    #: were in the measurement window.
    packets_dropped: int = 0
    flits_dropped: int = 0
    dropped_measured: int = 0
    #: one :class:`FaultRecord` per applied fault event.
    fault_records: list = field(default_factory=list)
    #: delivered bits and window length after the last fault event
    #: (inside the measurement window); basis of
    #: :attr:`post_fault_accepted_gbps`.
    post_fault_bits: float = 0.0
    post_fault_window_ns: float = 0.0
    #: per directed channel (u, v): busy ns inside the measurement
    #: window; populated when the simulator runs with
    #: ``collect_channel_stats=True``.
    channel_busy_ns: dict = field(default_factory=dict)
    #: compact telemetry digest (sampler summary + per-interval
    #: ``samples`` records); populated only when telemetry is enabled
    #: (``REPRO_TELEMETRY=1``), empty otherwise. Pure observation: the
    #: other fields are bit-identical with telemetry on or off.
    telemetry: dict = field(default_factory=dict)

    @property
    def accepted_gbps(self) -> float:
        """Delivered Gbit/s per host over the measurement window."""
        return self.delivered_in_window_bits / (self.measure_window_ns * self.num_hosts)

    @property
    def avg_latency_ns(self) -> float:
        return float(np.mean(self.latencies_ns)) if self.latencies_ns else float("nan")

    @property
    def p50_latency_ns(self) -> float:
        return float(np.median(self.latencies_ns)) if self.latencies_ns else float("nan")

    @property
    def p99_latency_ns(self) -> float:
        return float(np.percentile(self.latencies_ns, 99)) if self.latencies_ns else float("nan")

    @property
    def avg_hops(self) -> float:
        return float(np.mean(self.hop_counts)) if self.hop_counts else float("nan")

    @property
    def post_fault_accepted_gbps(self) -> float:
        """Delivered Gbit/s per host between the last fault event and
        the end of the measurement window (nan when no fault fell
        inside the window); compare against :attr:`accepted_gbps` for
        the throughput retained after degradation."""
        if self.post_fault_window_ns <= 0:
            return float("nan")
        return self.post_fault_bits / (self.post_fault_window_ns * self.num_hosts)

    @property
    def dropped_fraction(self) -> float:
        """Measured packets lost to link failures (0.0 without faults)."""
        if self.generated_measured == 0:
            return 0.0
        return self.dropped_measured / self.generated_measured

    @property
    def delivered_fraction(self) -> float:
        """Fraction of measured packets delivered before the run ended;
        values well below 1.0 indicate operation past saturation."""
        if self.generated_measured == 0:
            return 1.0
        return self.delivered_measured / self.generated_measured

    @property
    def saturated(self) -> bool:
        """Heuristic saturation flag.

        Accepted traffic lagging offered signals saturation, but with a
        short window the delivered-packet count carries Poisson noise of
        relative size ~1/sqrt(N); the lag threshold widens accordingly
        so low-load short runs are not misflagged. An undrained backlog
        of measured packets is an independent (and noise-free) signal.
        """
        n = max(self.delivered_in_window_count, 1)
        threshold = max(0.70, 0.92 - 2.0 / n**0.5)
        lagging = self.accepted_gbps < threshold * self.offered_gbps
        backlog = self.delivered_fraction < 0.95
        return lagging or backlog

    def channel_utilization(self) -> "np.ndarray":
        """Per-channel utilization (busy fraction of the window)."""
        if not self.channel_busy_ns:
            raise ValueError("run the simulator with collect_channel_stats=True")
        v = np.array(list(self.channel_busy_ns.values()), dtype=float)
        return v / self.measure_window_ns

    def utilization_imbalance(self) -> float:
        """Hot-channel factor: max utilization / mean utilization."""
        u = self.channel_utilization()
        return float(u.max() / u.mean()) if u.mean() > 0 else float("inf")

    def row(self) -> list:
        return [
            self.topology,
            self.pattern,
            round(self.offered_gbps, 2),
            round(self.accepted_gbps, 2),
            round(self.avg_latency_ns, 1),
            round(self.p99_latency_ns, 1),
            round(self.avg_hops, 2),
            "sat" if self.saturated else "",
        ]

    @staticmethod
    def headers() -> list[str]:
        return ["topology", "pattern", "offered", "accepted", "avg_lat_ns", "p99_lat_ns", "hops", ""]
