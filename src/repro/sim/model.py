"""Analytic latency model: zero-load pipeline + M/D/1 channel queueing.

The classic back-of-envelope for interconnect latency curves
(Dally & Towles, ch. 23, the paper's ref [25]):

* **zero-load latency** -- head pipeline through ``h+1`` routers plus
  link traversals plus one packet serialization (exactly
  :meth:`repro.sim.config.SimConfig.zero_load_latency_ns`);
* **contention** -- each directed channel is an M/D/1 queue: packets
  arrive Poisson at the rate implied by the offered load and the
  routing function's channel-load share, and occupy the channel for a
  deterministic packet serialization time. Mean waiting time per
  channel is ``rho * S / (2 (1 - rho))``; a packet pays the mean wait
  of the channels it crosses.

The model needs only the topology, the per-channel load shares (from
:func:`repro.analysis.balance.channel_loads` or uniform minimal
routing), and the configuration -- no simulation. Experiment E24
validates it against the event-driven engine: it tracks the simulator
within ~10 % up to ~70 % of saturation and predicts the saturation
asymptote location, which is all an analytic model is for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import cache
from repro.analysis.metrics import average_shortest_path_length
from repro.sim.config import SimConfig
from repro.topologies.base import Topology

__all__ = ["LatencyModel", "build_uniform_model"]


@dataclass
class LatencyModel:
    """Analytic latency-vs-load predictor for one (topology, routing)."""

    topo: Topology
    cfg: SimConfig
    avg_hops: float  #: mean switch-to-switch hops per packet
    channel_shares: np.ndarray  #: per-channel fraction of all packet-hops

    @property
    def num_channels(self) -> int:
        return len(self.channel_shares)

    def packet_rate_per_ns(self, offered_gbps: float) -> float:
        """Aggregate packet injection rate of all hosts."""
        hosts = self.topo.n * self.cfg.hosts_per_switch
        return hosts * self.cfg.packets_per_ns(offered_gbps)

    def channel_utilizations(self, offered_gbps: float) -> np.ndarray:
        """rho per channel at the given offered load."""
        hop_rate = self.packet_rate_per_ns(offered_gbps) * self.avg_hops
        lam = hop_rate * self.channel_shares  # packets/ns per channel
        return lam * self.cfg.packet_serialization_ns

    def saturation_gbps(self) -> float:
        """Offered load at which the hottest channel reaches rho = 1."""
        hottest = float(self.channel_shares.max())
        if hottest <= 0:
            return float("inf")
        # rho = hosts * load/packet_bits * avg_hops * share * S = 1
        hosts = self.topo.n * self.cfg.hosts_per_switch
        per_gbps = (
            hosts / self.cfg.packet_bits * self.avg_hops * hottest
            * self.cfg.packet_serialization_ns
        )
        return 1.0 / per_gbps

    def latency_ns(self, offered_gbps: float) -> float:
        """Predicted mean latency at an offered load (Gbit/s/host).

        Returns ``inf`` at or beyond the predicted saturation point.
        """
        rho = self.channel_utilizations(offered_gbps)
        if (rho >= 1.0).any():
            return float("inf")
        s = self.cfg.packet_serialization_ns
        # M/D/1 mean wait per channel, weighted by the probability a
        # packet's hop lands on that channel (its share of hops).
        waits = rho * s / (2.0 * (1.0 - rho))
        shares = self.channel_shares
        mean_wait_per_hop = float((waits * shares).sum() / shares.sum()) if shares.sum() else 0.0
        return self.cfg.zero_load_latency_ns(self.avg_hops) + self.avg_hops * mean_wait_per_hop

    def curve(self, loads: tuple[float, ...]) -> list[float]:
        return [self.latency_ns(l) for l in loads]


def build_uniform_model(
    topo: Topology,
    cfg: SimConfig | None = None,
    balanced: bool = True,
) -> LatencyModel:
    """Model for uniform traffic under minimal routing.

    ``balanced=True`` (default) computes each channel's *expected* load
    when every minimal path is equally likely -- the idealization of
    the simulator's minimal-adaptive router. For pair (s, t), channel
    (u, v) carries probability ``paths(s,u) * paths(v,t) / paths(s,t)``
    whenever it lies on a shortest path, with ``paths`` the
    minimal-path-count matrix.

    ``balanced=False`` instead counts one deterministic (lowest-id
    tie-break) minimal path per pair -- an oblivious router; its
    saturation estimate is correspondingly pessimistic.
    """
    cfg = cfg or SimConfig()
    table = cache.shortest_path_table(topo)
    dist = table.dist
    n = topo.n

    channels = []
    for link in topo.links:
        channels.append((link.u, link.v))
        channels.append((link.v, link.u))
    index = {ch: i for i, ch in enumerate(channels)}
    values = np.zeros(len(channels))

    if balanced:
        counts = cache.path_count_matrix(topo)
        for u, v in channels:
            # pairs (s, t) whose shortest paths can use u -> v
            on_path = (dist[:, u][:, None] + 1 + dist[v, :][None, :]) == dist
            ps = counts[:, u][:, None] * counts[v, :][None, :]
            with np.errstate(invalid="ignore", divide="ignore"):
                prob = np.where(on_path & (counts > 0), ps / np.maximum(counts, 1), 0.0)
            np.fill_diagonal(prob, 0.0)
            values[index[(u, v)]] = prob.sum()
    else:
        from repro.analysis.balance import channel_loads

        loads = channel_loads(topo, lambda s, t: table.path(s, t))
        for ch, load in loads.items():
            values[index[ch]] = load

    total = values.sum()
    shares = values / total if total else values
    return LatencyModel(
        topo=topo,
        cfg=cfg,
        # Reuse the table's matrix instead of a second all-pairs BFS.
        avg_hops=average_shortest_path_length(topo, table.dist),
        channel_shares=shares,
    )
