"""Simulation configuration: the paper's Section VII-A parameters.

Defaults reproduce the paper's setup exactly:

* 64 switches, 4 compute nodes (hosts) per switch;
* virtual cut-through switching, 4 virtual channels;
* header processing (routing, VC allocation, switch allocation,
  crossbar) takes 100 ns per switch;
* flit injection delay and link delay together are 20 ns;
* packets are 33 flits (1 header + 32 payload), flits are 256 bits;
* effective link bandwidth 96 Gbit/s, so one flit serializes in
  256/96 = 2.67 ns.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.sim.router.config import ROUTER_MODES, RouterConfig, resolve_router
from repro.util import check_positive

__all__ = [
    "SimConfig",
    "FLIT_ENGINES",
    "resolve_flit_engine",
    "RouterConfig",
    "ROUTER_MODES",
    "resolve_router",
]

#: Run-loop implementations of the flit-level simulator. Both produce
#: bit-identical results (the contract tests/test_sim_flit.py pins);
#: ``event`` visits only cycles that can change state, ``cycle`` is the
#: linear reference scan.
FLIT_ENGINES = ("event", "cycle")


def resolve_flit_engine(engine: str | None = None) -> str:
    """The flit run-loop to use: explicit argument, else the
    ``REPRO_FLIT_ENGINE`` environment variable, else ``event``."""
    eng = engine if engine is not None else os.environ.get("REPRO_FLIT_ENGINE", "event")
    eng = eng.strip().lower()
    if eng not in FLIT_ENGINES:
        raise ValueError(
            f"unknown flit engine {eng!r} (REPRO_FLIT_ENGINE): expected one of {FLIT_ENGINES}"
        )
    return eng


@dataclass(frozen=True)
class SimConfig:
    """Physical and workload parameters of one simulation run."""

    hosts_per_switch: int = 4
    num_vcs: int = 4  #: total VCs per channel; VC 0 is the escape channel
    flit_bits: int = 256
    packet_flits: int = 33
    link_bandwidth_gbps: float = 96.0
    router_delay_ns: float = 100.0  #: header pipeline per switch
    link_delay_ns: float = 20.0  #: injection + link delay
    warmup_ns: float = 10_000.0
    measure_ns: float = 30_000.0
    drain_ns: float = 40_000.0  #: extra time allowed to drain measured packets
    seed: int = 1
    #: Router model of the flit engine (``ideal`` keeps the lumped
    #: ``router_delay_ns`` pipeline above; ``pipelined`` switches to the
    #: staged RC/VA/SA/ST microarchitecture -- see repro.sim.router).
    #: The default resolves ``REPRO_ROUTER`` at construction time.
    router: RouterConfig = field(default_factory=RouterConfig)

    def __post_init__(self) -> None:
        check_positive("hosts_per_switch", self.hosts_per_switch)
        check_positive("num_vcs", self.num_vcs)
        check_positive("packet_flits", self.packet_flits)
        check_positive("link_bandwidth_gbps", self.link_bandwidth_gbps)

    @property
    def flit_time_ns(self) -> float:
        """Serialization time of one flit on a link."""
        return self.flit_bits / self.link_bandwidth_gbps

    @property
    def packet_serialization_ns(self) -> float:
        """Time for a whole packet to cross a link after the head starts."""
        return self.packet_flits * self.flit_time_ns

    @property
    def packet_bits(self) -> int:
        return self.packet_flits * self.flit_bits

    def packets_per_ns(self, offered_gbps_per_host: float) -> float:
        """Injection rate (packets/ns/host) for an offered load in Gbit/s/host."""
        return offered_gbps_per_host / self.packet_bits

    def zero_load_latency_ns(self, switch_hops: float) -> float:
        """Analytic no-contention latency for a path of ``switch_hops``
        inter-switch hops (pipelined head latency + tail serialization).

        head: injection link + (hops+1) routers + hops links + ejection
        link; tail: one packet serialization behind the head.
        """
        routers = (switch_hops + 1) * self.router_delay_ns
        links = (switch_hops + 2) * self.link_delay_ns  # inject + hops + eject
        return routers + links + self.packet_serialization_ns
