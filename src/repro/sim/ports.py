"""Output-port state: channel serialization, VC reservations, waiters.

One :class:`OutPort` models a directed channel (switch-to-switch,
host-to-switch injection, or switch-to-host ejection). Reserving one of
its VCs is equivalent to holding the corresponding *input* buffer at
the downstream element (buffers are one packet deep, the virtual
cut-through minimum), so a single structure carries both the credit and
the VC-allocation state.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.packet import Packet

__all__ = ["OutPort"]


class OutPort:
    """A directed channel with ``num_vcs`` one-packet buffers downstream."""

    __slots__ = ("key", "busy_until", "vcs", "waiters")

    def __init__(self, key: tuple, num_vcs: int):
        self.key = key
        self.busy_until = 0.0  #: physical-channel serialization horizon
        self.vcs: list["Packet | None"] = [None] * num_vcs
        self.waiters: deque["Packet"] = deque()

    def free_vcs(self, indices: range | tuple[int, ...]) -> list[int]:
        """Free VC indices among ``indices``."""
        return [i for i in indices if self.vcs[i] is None]

    def reserve(self, vc: int, packet: "Packet") -> None:
        if self.vcs[vc] is not None:
            raise AssertionError(f"VC {vc} of {self.key} already held")
        self.vcs[vc] = packet

    def release(self, vc: int, packet: "Packet") -> None:
        if self.vcs[vc] is not packet:
            raise AssertionError(f"VC {vc} of {self.key} not held by packet {packet.pid}")
        self.vcs[vc] = None

    def enqueue_waiter(self, packet: "Packet") -> None:
        if not packet.waiting:
            packet.waiting = True
        self.waiters.append(packet)

    def __repr__(self) -> str:
        used = sum(v is not None for v in self.vcs)
        return f"<OutPort {self.key} vcs={used}/{len(self.vcs)} waiters={len(self.waiters)}>"
