"""Cycle-driven flit-level simulator (the reference engine).

While :mod:`repro.sim.network` schedules whole-packet transfers (exact
for virtual cut-through with one-packet buffers), this engine ticks the
network cycle by cycle and moves *individual flits*, modeling:

* per-flit credit-based flow control with configurable buffer depth
  ``buffer_flits`` -- set it below the packet size to get **wormhole
  switching** (blocked packets stall stretched across switches, the
  mode Section V-A's deadlock discussion also covers), or at/above the
  packet size for **virtual cut-through**;
* a per-cycle crossbar constraint: one flit per output port per cycle,
  with round-robin switch allocation among competing inputs;
* a router pipeline of ``ceil(router_delay / flit_time)`` cycles per
  header and link pipelines of ``ceil(link_delay / flit_time)`` cycles.

One cycle is one flit time (256 bits / 96 Gbps = 2.67 ns by default).
The engine is much slower than the event-driven one, so experiments use
it for cross-validation at small scale (tests pin the two engines to
the same zero-load latency) and for the wormhole-vs-VCT ablation.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any

import numpy as np

from repro.sim.adapters import RoutingAdapter
from repro.sim.config import SimConfig
from repro.sim.metrics import SimResult
from repro.topologies.base import Topology
from repro.traffic.patterns import TrafficPattern
from repro.util import make_rng

__all__ = ["FlitLevelSimulator"]


class _FlitPacket:
    """Packet bookkeeping for the flit engine."""

    __slots__ = (
        "pid",
        "src_host",
        "dst_host",
        "dst_switch",
        "size",
        "created_ns",
        "measured",
        "rstate",
        "hops",
    )

    def __init__(self, pid, src_host, dst_host, dst_switch, size, created_ns, measured):
        self.pid = pid
        self.src_host = src_host
        self.dst_host = dst_host
        self.dst_switch = dst_switch
        self.size = size
        self.created_ns = created_ns
        self.measured = measured
        self.rstate: Any = None
        self.hops = 0


#: input-unit states
_IDLE, _ROUTING, _WAIT_VC, _ACTIVE = range(4)


class _InputUnit:
    """One (input port, VC) buffer of a switch: holds one packet's flits.

    ``queue`` entries are ``(arrival_cycle, flit_idx)``; a flit is
    usable once ``arrival_cycle <= now`` (link pipelining).
    """

    __slots__ = ("queue", "state", "packet", "route_done_cycle", "out_key", "inject_left", "next_flit")

    def __init__(self):
        self.queue: deque[tuple[int, int]] = deque()
        self.state = _IDLE
        self.packet: _FlitPacket | None = None
        self.route_done_cycle = 0
        self.out_key: tuple | None = None  # ('sw', u, v, vc) or ('ej', host)
        self.inject_left = 0  # injection units: flits still to stream in
        self.next_flit = 0


class FlitLevelSimulator:
    """Synchronous flit-level simulation of one run.

    Parameters mirror :class:`repro.sim.network.NetworkSimulator`, plus
    ``buffer_flits``: input-buffer depth per VC in flits. ``None`` means
    one full packet (virtual cut-through); smaller values give wormhole
    behaviour.
    """

    def __init__(
        self,
        topo: Topology,
        adapter: RoutingAdapter,
        pattern: TrafficPattern,
        offered_gbps: float,
        config: SimConfig | None = None,
        buffer_flits: int | None = None,
    ):
        self.topo = topo
        self.adapter = adapter
        self.pattern = pattern
        self.offered_gbps = offered_gbps
        self.cfg = config or SimConfig()
        self.buffer_flits = buffer_flits if buffer_flits is not None else self.cfg.packet_flits
        if self.buffer_flits < 1:
            raise ValueError("buffer_flits must be >= 1")
        if pattern.num_hosts != topo.n * self.cfg.hosts_per_switch:
            raise ValueError("traffic pattern size does not match the network")
        self.num_hosts = pattern.num_hosts
        self.rng = make_rng(self.cfg.seed)

        self.router_cycles = max(1, math.ceil(self.cfg.router_delay_ns / self.cfg.flit_time_ns))
        self.link_cycles = max(1, math.ceil(self.cfg.link_delay_ns / self.cfg.flit_time_ns))

        v = self.cfg.num_vcs
        # Input units: ('sw', u, v, vc) is the unit at switch v fed by
        # the channel from u; ('inj', host, vc) is a host-port unit at
        # the host's switch.
        self.units: dict[tuple, _InputUnit] = {}
        for link in topo.links:
            for a, b in ((link.u, link.v), (link.v, link.u)):
                for vc in range(v):
                    self.units[("sw", a, b, vc)] = _InputUnit()
        for h in range(self.num_hosts):
            for vc in range(v):
                self.units[("inj", h, vc)] = _InputUnit()

        # Free downstream buffer slots, tracked at the sender side.
        self.credits: dict[tuple, int] = {k: self.buffer_flits for k in self.units}
        self.credit_returns: deque[tuple[int, tuple]] = deque()

        self._busy: set[tuple] = set()  # units that may need per-cycle work
        self._rr: dict[tuple, int] = {}  # round-robin pointers per output

        self.host_queue: list[deque[_FlitPacket]] = [deque() for _ in range(self.num_hosts)]
        self._next_arrival = np.zeros(self.num_hosts)
        self._next_pid = 0

        self._measure_start = self.cfg.warmup_ns
        self._measure_end = self.cfg.warmup_ns + self.cfg.measure_ns
        self._result = SimResult(
            topology=topo.name,
            pattern=pattern.name,
            offered_gbps=offered_gbps,
            num_hosts=self.num_hosts,
            measure_window_ns=self.cfg.measure_ns,
        )

    # ------------------------------------------------------------------
    def switch_of(self, host: int) -> int:
        return host // self.cfg.hosts_per_switch

    def _time_ns(self, cycle: int) -> float:
        return cycle * self.cfg.flit_time_ns

    # ------------------------------------------------------------------
    # per-cycle phases
    # ------------------------------------------------------------------
    def _generate_traffic(self, now: int) -> None:
        t_ns = self._time_ns(now)
        rate = self.cfg.packets_per_ns(self.offered_gbps)
        for h in range(self.num_hosts):
            while self._next_arrival[h] <= t_ns:
                created = float(self._next_arrival[h])
                dst = self.pattern.destination(h, self.rng)
                measured = self._measure_start <= created < self._measure_end
                pkt = _FlitPacket(
                    self._next_pid, h, dst, self.switch_of(dst),
                    self.cfg.packet_flits, created, measured,
                )
                self._next_pid += 1
                if measured:
                    self._result.generated_measured += 1
                self.host_queue[h].append(pkt)
                self._next_arrival[h] += float(self.rng.exponential(1.0 / rate))

    def _inject(self, now: int) -> None:
        """Stream source-queue packets into injection units, one flit
        per host per cycle (the injection link's bandwidth)."""
        for h, queue in enumerate(self.host_queue):
            if not queue:
                continue
            pkt = queue[0]
            key = None
            # Continue streaming into the unit already carrying pkt, or
            # claim the first idle injection VC for a fresh head.
            for vc in range(self.cfg.num_vcs):
                k = ("inj", h, vc)
                u = self.units[k]
                if u.packet is pkt:
                    key = k
                    break
                if key is None and u.packet is None and not u.queue:
                    key = k
            if key is None:
                continue
            u = self.units[key]
            if u.packet is not pkt:
                u.packet = pkt
                u.state = _ROUTING
                u.route_done_cycle = now + self.router_cycles
                u.inject_left = pkt.size
                u.next_flit = 0
                pkt.rstate = self.adapter.initial_state(self.switch_of(h), pkt.dst_switch)
                self._busy.add(key)
            if u.inject_left > 0 and len(u.queue) < self.buffer_flits:
                u.queue.append((now, u.next_flit))
                u.next_flit += 1
                u.inject_left -= 1
                if u.inject_left == 0:
                    queue.popleft()

    def _route_and_allocate(self, now: int) -> None:
        """Router pipeline + VC allocation for units holding a header."""
        for key in list(self._busy):
            u = self.units[key]
            if u.state == _ROUTING and now >= u.route_done_cycle:
                u.state = _WAIT_VC
            if u.state != _WAIT_VC:
                continue
            pkt = u.packet
            at_switch = key[2] if key[0] == "sw" else self.switch_of(key[1])
            if at_switch == pkt.dst_switch:
                u.out_key = ("ej", pkt.dst_host)
                u.state = _ACTIVE
                continue
            # VCT requires room for the whole packet downstream before
            # the head advances; wormhole advances on any free slot.
            need = pkt.size if self.buffer_flits >= pkt.size else 1
            for opt in self.adapter.options(at_switch, pkt.dst_switch, pkt.rstate):
                for vc in opt.vc_indices:
                    tkey = ("sw", at_switch, opt.next_node, vc)
                    tu = self.units[tkey]
                    if tu.packet is None and not tu.queue and self.credits[tkey] >= need:
                        tu.packet = pkt  # reserve the downstream VC
                        u.out_key = tkey
                        u.state = _ACTIVE
                        pkt.rstate = opt.new_rstate
                        pkt.hops += 1
                        break
                else:
                    continue
                break

    def _switch_allocation(self, now: int) -> None:
        """One flit per output resource per cycle, round-robin arbiter."""
        requests: dict[tuple, list[tuple]] = {}
        for key in self._busy:
            u = self.units[key]
            if u.state != _ACTIVE or not u.queue:
                continue
            if u.queue[0][0] > now:
                continue
            out = u.out_key
            if out[0] == "ej":
                res: tuple = ("ej", out[1])
            else:
                if self.credits[out] <= 0:
                    continue
                res = ("port", out[1], out[2])  # physical channel u->v
            requests.setdefault(res, []).append(key)

        for res, reqs in requests.items():
            reqs.sort()
            ptr = self._rr.get(res, 0) % len(reqs)
            self._rr[res] = ptr + 1
            self._send_flit(reqs[ptr], now)

    def _send_flit(self, key: tuple, now: int) -> None:
        u = self.units[key]
        _, flit_idx = u.queue.popleft()
        pkt = u.packet
        out = u.out_key
        is_tail = flit_idx == pkt.size - 1

        # Return the freed buffer slot's credit upstream (after the
        # reverse-link latency). Injection units backpressure the source
        # directly through their queue capacity instead.
        if key[0] == "sw":
            self.credit_returns.append((now + self.link_cycles, key))

        if out[0] == "ej":
            if is_tail:
                self._deliver(pkt, now + self.link_cycles)
        else:
            self.credits[out] -= 1
            tu = self.units[out]
            tu.queue.append((now + self.link_cycles, flit_idx))
            self._busy.add(out)
            if flit_idx == 0:
                tu.state = _ROUTING
                tu.route_done_cycle = now + self.link_cycles + self.router_cycles

        if is_tail:
            # Packet fully left this unit; free it for the next one.
            u.state = _IDLE
            u.packet = None
            u.out_key = None
            if not u.queue:
                self._busy.discard(key)

    def _deliver(self, pkt: _FlitPacket, cycle: int) -> None:
        t_ns = self._time_ns(cycle)
        if self._measure_start <= t_ns < self._measure_end:
            self._result.delivered_in_window_bits += pkt.size * self.cfg.flit_bits
            self._result.delivered_in_window_count += 1
        if pkt.measured:
            self._result.delivered_measured += 1
            self._result.latencies_ns.append(t_ns - pkt.created_ns)
            self._result.hop_counts.append(pkt.hops)

    def _return_credits(self, now: int) -> None:
        while self.credit_returns and self.credit_returns[0][0] <= now:
            _, key = self.credit_returns.popleft()
            self.credits[key] += 1

    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        horizon_ns = self._measure_end + self.cfg.drain_ns
        horizon = math.ceil(horizon_ns / self.cfg.flit_time_ns)
        rate = self.cfg.packets_per_ns(self.offered_gbps)
        for h in range(self.num_hosts):
            self._next_arrival[h] = float(self.rng.exponential(1.0 / rate))

        for cycle in range(horizon):
            self._return_credits(cycle)
            self._generate_traffic(cycle)
            self._inject(cycle)
            self._route_and_allocate(cycle)
            self._switch_allocation(cycle)
            if (
                cycle % 512 == 0
                and self._time_ns(cycle) > self._measure_end
                and self._result.delivered_measured >= self._result.generated_measured
            ):
                break
        return self._result
