"""Flit-level simulator with two run-loop engines: an event-driven
core (default) and the linear cycle scan it replaced (kept as the
bit-identical reference).

While :mod:`repro.sim.network` schedules whole-packet transfers (exact
for virtual cut-through with one-packet buffers), this simulator
advances the network in flit-time cycles and moves *individual flits*,
modeling:

* per-flit credit-based flow control with configurable buffer depth
  ``buffer_flits`` -- set it below the packet size to get **wormhole
  switching** (blocked packets stall stretched across switches, the
  mode Section V-A's deadlock discussion also covers), or at/above the
  packet size for **virtual cut-through**;
* a per-cycle crossbar constraint: one flit per output port per cycle,
  with round-robin switch allocation among competing inputs;
* a router pipeline of ``ceil(router_delay / flit_time)`` cycles per
  header and link pipelines of ``ceil(link_delay / flit_time)`` cycles
  -- or, in pipelined-router mode (``REPRO_ROUTER=pipelined`` / a
  :class:`~repro.sim.router.RouterConfig` on the config), explicit
  RC/VA/SA/ST stages with least-recently-granted arbitration and
  per-VC input buffers (see :mod:`repro.sim.router`).

One cycle is one flit time (256 bits / 96 Gbps = 2.67 ns by default).

The per-cycle bookkeeping is batched: input units are dense integer
ids (injection units first, then switch units in canonical channel
order, so id order equals the canonical key order), credits live in
one numpy array indexed by unit id, credit returns are bucketed by due
cycle, and traffic generation scans all hosts with a single vectorized
comparison. Only units flagged busy (or hosts with queued packets) are
touched per cycle, always in ascending id order -- which makes runs
deterministic regardless of ``PYTHONHASHSEED``, unlike the former
dict-of-tuples structures. Round-robin crossbar arbitration semantics
are unchanged: one flit per output resource per cycle, pointer
advanced past the granted requester.

**Engines** (``engine=`` / ``REPRO_FLIT_ENGINE``): the ``cycle``
engine runs the linear ``while cycle < horizon`` scan, executing every
phase every cycle. The ``event`` engine (default) produces
byte-identical :class:`~repro.sim.metrics.SimResult`\\ s while visiting
only cycles that can change state: host arrivals, credit returns,
router-pipeline completions, fault activations, telemetry samples and
termination probes are heap events (:class:`~repro.sim.engine.
CycleEventQueue`), a *full tick* replays the exact cycle-engine phase
order at each wake, and the stretches between wakes -- where only
ACTIVE units stream payload flits -- run through a send-only burst
loop that proves an uncontended request set stable over a window and
moves it as one batch (see :meth:`FlitLevelSimulator._burst`). Cost
therefore scales with traffic, not simulated cycles; the cycle engine
remains the reference the equivalence tests and the CI smoke step
diff against. See ``docs/performance.md``.

**Dynamic fault injection** (``fault_schedule=``): links can die
mid-run. At each fault instant the engine discards every flit sitting
on (or committed to) a dead channel -- the owning packets are dropped
whole and counted -- cancels not-yet-used reservations into dead
channels, rebuilds the routing adapter on the survivor graph via
``adapter_factory`` (new topology fingerprint, so :mod:`repro.cache`
re-derives the CSR next-hop and up*/down* tables instead of serving
stale ones) and bumps a *reroute epoch*: every packet still in flight
re-resolves its routing state from its current switch at its next
routing decision. Recovery time (ns until the pre-fault in-flight
population has drained over the new tables) and post-fault accepted
traffic land in the :class:`~repro.sim.metrics.SimResult`. See
``docs/resilience.md`` for the exact semantics.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left, insort
from collections import defaultdict, deque
from typing import Any, Callable

import numpy as np

from repro import telemetry
from repro.sim.adapters import RoutingAdapter
from repro.sim.arrivals import PoissonGaps
from repro.sim.config import SimConfig, resolve_flit_engine
from repro.sim.engine import CycleEventQueue
from repro.sim.metrics import FaultRecord, SimResult
from repro.sim.router.pipeline import PipelinedRouter
from repro.telemetry.samplers import SimSampler
from repro.topologies.base import Topology
from repro.traffic.patterns import TrafficPattern
from repro.util import make_rng

__all__ = ["FlitLevelSimulator"]


class _BusyUnits:
    """Busy-unit id set whose ascending order is maintained incrementally.

    Every cycle the run loops walk the busy units in ascending id order
    (the canonical port order the arbitration semantics are defined
    over). Rebuilding that order with ``sorted()`` per cycle was the
    single hottest line of the cycle engine; here membership is a set
    and order a bisect-maintained list, so a snapshot is a plain copy.
    """

    __slots__ = ("_set", "_list")

    def __init__(self) -> None:
        self._set: set[int] = set()
        self._list: list[int] = []

    def add(self, uid: int) -> None:
        if uid not in self._set:
            self._set.add(uid)
            insort(self._list, uid)

    def discard(self, uid: int) -> None:
        if uid in self._set:
            self._set.remove(uid)
            del self._list[bisect_left(self._list, uid)]

    def snapshot(self) -> list[int]:
        """Ascending ids, safe to iterate while units free/occupy."""
        return self._list.copy()

    def __bool__(self) -> bool:
        return bool(self._list)

    def __len__(self) -> int:
        return len(self._list)

    def __iter__(self):
        return iter(self._list)

    def __contains__(self, uid: int) -> bool:
        return uid in self._set


class _FlitPacket:
    """Packet bookkeeping for the flit engine."""

    __slots__ = (
        "pid",
        "src_host",
        "dst_host",
        "dst_switch",
        "size",
        "created_ns",
        "measured",
        "rstate",
        "hops",
        "repoch",
    )

    def __init__(self, pid, src_host, dst_host, dst_switch, size, created_ns, measured):
        self.pid = pid
        self.src_host = src_host
        self.dst_host = dst_host
        self.dst_switch = dst_switch
        self.size = size
        self.created_ns = created_ns
        self.measured = measured
        self.rstate: Any = None
        self.hops = 0
        self.repoch = 0  #: reroute epoch the rstate was derived under


#: input-unit states
_IDLE, _ROUTING, _WAIT_VC, _ACTIVE = range(4)

#: sentinel out_unit meaning "no output allocated"
_NO_OUT = None


class _InputUnit:
    """One (input port, VC) buffer of a switch: holds one packet's flits.

    ``queue`` entries are ``(arrival_cycle, flit_idx)``; a flit is
    usable once ``arrival_cycle <= now`` (link pipelining).
    ``out_unit`` is the downstream unit id, or ``-(host + 1)`` for
    ejection to ``host``.
    """

    __slots__ = (
        "queue",
        "state",
        "packet",
        "route_done_cycle",
        "sa_ready_cycle",
        "out_unit",
        "inject_left",
        "next_flit",
    )

    def __init__(self):
        self.queue: deque[tuple[int, int]] = deque()
        self.state = _IDLE
        self.packet: _FlitPacket | None = None
        self.route_done_cycle = 0
        self.sa_ready_cycle = 0  # pipelined router: cycle the VA grant clears
        self.out_unit: int | None = _NO_OUT
        self.inject_left = 0  # injection units: flits still to stream in
        self.next_flit = 0


class FlitLevelSimulator:
    """Synchronous flit-level simulation of one run.

    Parameters mirror :class:`repro.sim.network.NetworkSimulator`, plus
    ``buffer_flits``: input-buffer depth per VC in flits. ``None`` means
    one full packet (virtual cut-through); smaller values give wormhole
    behaviour.

    ``fault_schedule`` (a :class:`repro.faults.FaultSchedule`, or any
    object with the same ``events``/``validate`` surface) injects timed
    link failures; it requires ``adapter_factory``, a callable mapping
    a survivor :class:`Topology` to a fresh :class:`RoutingAdapter`
    (see :mod:`repro.faults.dynamic` for the standard factories). Only
    link faults are supported dynamically -- a schedule with dead
    switches is rejected, since hosts would vanish mid-run.

    ``tracer`` (a :class:`~repro.sim.trace.TraceRecorder`) receives
    packet inject/hop/deliver events through the same hook surface
    :class:`~repro.sim.network.NetworkSimulator` uses. When telemetry
    is enabled (``REPRO_TELEMETRY=1``) the engine also attaches a
    :class:`~repro.telemetry.samplers.SimSampler` that snapshots
    per-link flit utilization, per-VC queue occupancy and accepted-vs-
    offered load every ``REPRO_TELEMETRY_INTERVAL_NS`` of simulated
    time; the digest lands in ``SimResult.telemetry``.
    """

    #: When the network is completely idle (no busy units, no queued
    #: hosts) the *cycle* run loop jumps straight to the next event
    #: cycle instead of ticking one cycle at a time. Results are
    #: bit-identical (tests/test_sim_flit.py pins this); set to
    #: ``False`` on an instance to force the plain linear scan. The
    #: event engine subsumes this (it never visits provably-idle
    #: cycles), so the flag only affects ``engine="cycle"``.
    _fast_forward = True

    def __init__(
        self,
        topo: Topology,
        adapter: RoutingAdapter,
        pattern: TrafficPattern,
        offered_gbps: float,
        config: SimConfig | None = None,
        buffer_flits: int | None = None,
        fault_schedule=None,
        adapter_factory: Callable[[Topology], RoutingAdapter] | None = None,
        tracer=None,
        engine: str | None = None,
    ):
        self.topo = topo
        self.live_topo = topo  #: survivor graph after applied faults
        self.engine = resolve_flit_engine(engine)
        self.adapter = adapter
        self.adapter_factory = adapter_factory
        self.pattern = pattern
        self.offered_gbps = offered_gbps
        self.cfg = config or SimConfig()
        self.fault_schedule = fault_schedule
        if fault_schedule is not None and len(fault_schedule):
            if adapter_factory is None:
                raise ValueError(
                    "fault_schedule needs adapter_factory to rebuild routing "
                    "on the survivor graph (see repro.faults.dynamic)"
                )
            if any(e.faults.dead_switches for e in fault_schedule.events):
                raise ValueError("dynamic fault injection supports link faults only")
            fault_schedule.validate(topo)
        rcfg = self.cfg.router
        if buffer_flits is None and rcfg.pipelined and rcfg.vc_buffer_flits is not None:
            buffer_flits = rcfg.vc_buffer_flits
        self.buffer_flits = buffer_flits if buffer_flits is not None else self.cfg.packet_flits
        if self.buffer_flits < 1:
            raise ValueError("buffer_flits must be >= 1")
        min_vcs = getattr(adapter, "min_vcs", 1)
        if self.cfg.num_vcs < min_vcs:
            raise ValueError(
                f"{type(adapter).__name__} needs at least {min_vcs} virtual channels "
                f"(its channel-class discipline), got num_vcs={self.cfg.num_vcs}"
            )
        if pattern.num_hosts != topo.n * self.cfg.hosts_per_switch:
            raise ValueError("traffic pattern size does not match the network")
        self.num_hosts = pattern.num_hosts
        self.rng = make_rng(self.cfg.seed)

        self._flit_ns = self.cfg.flit_time_ns  # hot-path cache of the property
        self.router_cycles = max(1, math.ceil(self.cfg.router_delay_ns / self._flit_ns))
        self.link_cycles = max(1, math.ceil(self.cfg.link_delay_ns / self._flit_ns))
        # Pipelined router mode: header processing becomes the staged
        # RC/VA/SA/ST model, so the lumped per-hop pipeline above
        # shrinks to the RC stage alone (VA/SA/ST are simulated cycle
        # by cycle by the PipelinedRouter, see repro.sim.router).
        self._router: PipelinedRouter | None = None
        if rcfg.pipelined:
            self.router_cycles = rcfg.rc_cycles
            self._router = PipelinedRouter(self, rcfg)

        v = self.cfg.num_vcs
        # Dense unit ids: injection units (host-major, VC-minor) first,
        # then switch units in sorted directed-channel order, VC-minor.
        # The unit at switch b fed by the channel a -> b for VC k has id
        # inj_units + chan_index(a, b) * v + k.
        self._v = v
        self._inj_units = self.num_hosts * v
        channels = []
        for link in topo.links:
            channels.append((link.u, link.v))
            channels.append((link.v, link.u))
        channels.sort()
        self._chan_base = {
            ch: self._inj_units + i * v for i, ch in enumerate(channels)
        }
        num_units = self._inj_units + len(channels) * v
        self.units: list[_InputUnit] = [_InputUnit() for _ in range(num_units)]
        # Switch each unit routes at (injection units sit at the host's
        # switch; a channel unit sits at the channel's head switch).
        unit_switch = [0] * num_units
        for h in range(self.num_hosts):
            for vc in range(v):
                unit_switch[h * v + vc] = self.switch_of(h)
        for (a, b), base in self._chan_base.items():
            for vc in range(v):
                unit_switch[base + vc] = b
        self._unit_switch = unit_switch

        # Free downstream buffer slots, tracked at the sender side, and
        # credit returns bucketed by the cycle they come due. Plain int
        # lists: per-flit single-element updates dominate, where list
        # indexing beats numpy scalar round-trips severalfold.
        self.credits: list[int] = [self.buffer_flits] * num_units
        # Pending upstream credit returns, run-length encoded as
        # (first_due_cycle, count, uid): one credit per cycle at
        # first_due .. first_due+count-1. Entries are appended in
        # simulated-time order (send cycles are visited monotonically
        # and the return delay is the constant link latency), so the
        # deque is always sorted by first_due and the earliest pending
        # return is O(1) at the head; a batched stream of N flits is one
        # entry instead of N. Runs from the same batch share a span --
        # _return_credits drains *all* due heads before re-prepending
        # partial remainders so none gets stuck behind another.
        self._credit_due: deque[tuple[int, int, int]] = deque()

        # Output resources for crossbar arbitration: one per ejection
        # host (ids 0..H-1), one per directed channel (H..H+C-1).
        self._rr: list[int] = [0] * (self.num_hosts + len(channels))

        self._busy = _BusyUnits()  # units that may need per-cycle work
        self._headers: set[int] = set()  # units in ROUTING / WAIT_VC state
        self._pending_hosts: set[int] = set()  # hosts with queued packets

        # Injection-side batching (VCT only): a claimed packet's whole
        # flit stream is enqueued up front with per-cycle arrival
        # stamps, and the host is gated off re-claiming until the cycle
        # the one-flit-per-cycle stream would have finished -- the state
        # any observer sees is identical to streaming one flit per
        # cycle. Disabled under wormhole (queue capacity can bind) and
        # under faults (partial-stream drop accounting reads the
        # incremental fields).
        self._host_free_cycle: list[int] = [0] * self.num_hosts
        self._bulk_inject = (
            self.buffer_flits >= self.cfg.packet_flits
            and not (fault_schedule is not None and len(fault_schedule))
        )

        # Fault machinery: events keyed by due cycle, a reroute epoch
        # stamped on packets, and per-event recovery trackers.
        self._reroute_epoch = 0
        self._fault_queue: list[tuple[int, object]] = []
        if fault_schedule is not None:
            self._fault_queue = [
                (math.ceil(e.time_ns / self.cfg.flit_time_ns), e.faults)
                for e in fault_schedule.events
            ]
        self._recovering: list[tuple[FaultRecord, set[int]]] = []
        self._ff_cycles_skipped = 0  #: idle cycles skipped outright
        self._ev_full_cycles = 0  #: event engine: cycles fully ticked
        self._ev_micro_cycles = 0  #: event engine: cycles in send bursts
        self._faults_left = len(self._fault_queue)
        self._last_fault_ns: float | None = None

        #: route-done wake heap of the event engine (None under the
        #: cycle engine, so the shared send/inject paths skip the push).
        self._wakes: CycleEventQueue | None = None

        self.host_queue: list[deque[_FlitPacket]] = [deque() for _ in range(self.num_hosts)]
        self._next_arrival = np.zeros(self.num_hosts)
        self._arr_min_ns = 0.0  #: min(_next_arrival), kept by _generate_traffic
        self._arr_cycle: float | None = None  #: _arrival_cycle() memo
        self._arrivals: PoissonGaps | None = None  # built on first use (needs rate > 0)
        self._next_pid = 0

        # Telemetry: a per-packet-event tracer (same hook surface as
        # NetworkSimulator's) and, when telemetry is enabled, a periodic
        # sampler fed from cumulative per-channel flit counts. With
        # telemetry off both stay None and the only per-cycle cost is
        # one ``is not None`` check in :meth:`run`.
        self._tracer = tracer
        self._sampler: SimSampler | None = None
        self._chan_flits: np.ndarray | None = None
        self._delivered_bits_total = 0.0
        self._sample_cycles = 0
        self._next_sample_cycle = 0
        if telemetry.enabled():
            self._sampler = SimSampler(
                channels,
                num_hosts=self.num_hosts,
                flit_time_ns=self.cfg.flit_time_ns,
                engine="flit",
            )
            self._chan_flits = np.zeros(len(channels), dtype=np.int64)
            self._sample_cycles = max(
                1, math.ceil(self._sampler.interval_ns / self.cfg.flit_time_ns)
            )
            self._next_sample_cycle = self._sample_cycles

        self._measure_start = self.cfg.warmup_ns
        self._measure_end = self.cfg.warmup_ns + self.cfg.measure_ns
        self._result = SimResult(
            topology=topo.name,
            pattern=pattern.name,
            offered_gbps=offered_gbps,
            num_hosts=self.num_hosts,
            measure_window_ns=self.cfg.measure_ns,
        )

    # ------------------------------------------------------------------
    def switch_of(self, host: int) -> int:
        return host // self.cfg.hosts_per_switch

    def _time_ns(self, cycle: int) -> float:
        return cycle * self._flit_ns

    def _resource_of(self, out_unit: int) -> int:
        """Arbitration resource of a downstream unit: its channel."""
        return self.num_hosts + (out_unit - self._inj_units) // self._v

    def _arrival_gaps(self) -> PoissonGaps:
        """Per-host batched Exp(1/rate) gap streams (built lazily so a
        zero offered load still fails at draw time, as before)."""
        if self._arrivals is None:
            rate = self.cfg.packets_per_ns(self.offered_gbps)
            self._arrivals = PoissonGaps(self.cfg.seed, self.num_hosts, 1.0 / rate)
        return self._arrivals

    # ------------------------------------------------------------------
    # per-cycle phases
    # ------------------------------------------------------------------
    def _generate_traffic(self, now: int) -> None:
        t_ns = self._time_ns(now)
        due = np.flatnonzero(self._next_arrival <= t_ns)
        if due.size == 0:
            return
        self._arr_min_ns = math.inf  # recomputed after the draws below
        gaps = self._arrival_gaps()
        for h in due.tolist():
            while self._next_arrival[h] <= t_ns:
                created = float(self._next_arrival[h])
                if created >= self._measure_end:
                    # Sources switch off when the measurement window
                    # closes: the drain phase flushes the backlog only.
                    # With deadlock-free routing the in-flight population
                    # is then finite, so full delivery is guaranteed for
                    # a long enough drain (see tests/test_fuzz_sim.py).
                    self._next_arrival[h] = math.inf
                    break
                dst = self.pattern.destination(h, self.rng)
                measured = self._measure_start <= created < self._measure_end
                pkt = _FlitPacket(
                    self._next_pid, h, dst, self.switch_of(dst),
                    self.cfg.packet_flits, created, measured,
                )
                self._next_pid += 1
                if measured:
                    self._result.generated_measured += 1
                self.host_queue[h].append(pkt)
                self._pending_hosts.add(h)
                self._next_arrival[h] += gaps.next(h)
        self._arr_min_ns = float(np.min(self._next_arrival))
        self._arr_cycle = None

    def _inject(self, now: int) -> None:
        """Stream source-queue packets into injection units, one flit
        per host per cycle (the injection link's bandwidth).

        With ``_bulk_inject`` (VCT, no faults) a claimed packet's whole
        stream is enqueued at once with arrival stamps ``now + k`` --
        exactly the cycles the per-cycle loop would have appended them,
        since with ``buffer_flits >= size`` the queue-capacity check can
        never stall the stream. Every queue read is stamp-gated, so the
        observable evolution is bit-identical; the host is gated off
        claiming its next packet before ``now + size``, the cycle the
        incremental stream would have freed the injection link.
        """
        v = self._v
        bulk = self._bulk_inject
        for h in sorted(self._pending_hosts):
            if bulk and now < self._host_free_cycle[h]:
                continue
            queue = self.host_queue[h]
            pkt = queue[0]
            uid = None
            # Continue streaming into the unit already carrying pkt, or
            # claim the first idle injection VC for a fresh head.
            for vc in range(v):
                i = h * v + vc
                u = self.units[i]
                if u.packet is pkt:
                    uid = i
                    break
                if uid is None and u.packet is None and not u.queue:
                    uid = i
            if uid is None:
                continue
            u = self.units[uid]
            if u.packet is not pkt:
                u.packet = pkt
                u.state = _ROUTING
                u.route_done_cycle = now + self.router_cycles
                u.inject_left = pkt.size
                u.next_flit = 0
                pkt.rstate = self.adapter.initial_state(self.switch_of(h), pkt.dst_switch)
                self._busy.add(uid)
                self._headers.add(uid)
                if self._wakes is not None:
                    self._wakes.wake(u.route_done_cycle)
                if self._tracer is not None:
                    self._tracer.on_inject(
                        self._time_ns(now), pkt.pid, self.switch_of(h), pkt.dst_switch
                    )
            if bulk:
                u.queue.extend((now + k, k) for k in range(pkt.size))
                u.next_flit = pkt.size
                u.inject_left = 0
                self._host_free_cycle[h] = now + pkt.size
                queue.popleft()
                if not queue:
                    self._pending_hosts.discard(h)
            elif u.inject_left > 0 and len(u.queue) < self.buffer_flits:
                u.queue.append((now, u.next_flit))
                u.next_flit += 1
                u.inject_left -= 1
                if u.inject_left == 0:
                    queue.popleft()
                    if not queue:
                        self._pending_hosts.discard(h)

    def _route_and_allocate(self, header_sorted: list[int], now: int) -> bool:
        """Router pipeline + VC allocation for units holding a header
        (``header_sorted``: the ROUTING / WAIT_VC units in ascending
        unit order -- the same subsequence, in the same order, that the
        old full-busy scan acted on).

        Returns whether any unit is left waiting for a VC -- such a
        unit re-runs allocation (and the adapter's RNG draws) every
        cycle, so the event loop must keep ticking while one exists.

        In pipelined-router mode this phase is the router's VA stage
        (LRG-arbitrated, cycle-start bids) instead of the greedy
        first-fit scan below.
        """
        if self._router is not None:
            return self._router.va_tick(header_sorted, now)
        waiting = False
        credits = self.credits
        units = self.units
        headers = self._headers
        for uid in header_sorted:
            u = units[uid]
            if u.state == _ROUTING and now >= u.route_done_cycle:
                u.state = _WAIT_VC
            if u.state != _WAIT_VC:
                continue
            pkt = u.packet
            at_switch = self._unit_switch[uid]
            if pkt.repoch != self._reroute_epoch:
                # A fault rebuilt the tables since this packet's routing
                # state was derived: re-resolve from the current switch
                # (for source-routed adapters this recomputes the whole
                # remaining path on the survivor graph).
                pkt.rstate = self.adapter.initial_state(at_switch, pkt.dst_switch)
                pkt.repoch = self._reroute_epoch
            if at_switch == pkt.dst_switch:
                u.out_unit = -(pkt.dst_host + 1)
                u.state = _ACTIVE
                headers.discard(uid)
                continue
            # VCT requires room for the whole packet downstream before
            # the head advances; wormhole advances on any free slot.
            need = pkt.size if self.buffer_flits >= pkt.size else 1
            for opt in self.adapter.options(at_switch, pkt.dst_switch, pkt.rstate):
                base = self._chan_base[(at_switch, opt.next_node)]
                for vc in opt.vc_indices:
                    tid = base + vc
                    tu = units[tid]
                    if tu.packet is None and not tu.queue and credits[tid] >= need:
                        tu.packet = pkt  # reserve the downstream VC
                        u.out_unit = tid
                        u.state = _ACTIVE
                        pkt.rstate = opt.new_rstate
                        pkt.hops += 1
                        if self._tracer is not None:
                            self._tracer.on_hop(
                                self._time_ns(now), pkt.pid, at_switch, opt.next_node, vc
                            )
                        break
                else:
                    continue
                break
            if u.state == _WAIT_VC:
                waiting = True
            else:
                headers.discard(uid)
        return waiting

    def _switch_allocation(self, busy_sorted: list[int], now: int) -> int:
        """One flit per output resource per cycle, round-robin arbiter.

        Requests are gathered in ascending unit-id order (the canonical
        port order), so each resource's request list is already sorted
        and the round-robin pointer walks it exactly as before. Returns
        the number of resources with at least one request (== flits
        sent this cycle). In pipelined-router mode this phase is the
        router's SA/ST stages (LRG-arbitrated, VA-latency gated).
        """
        if self._router is not None:
            return self._router.sa_tick(busy_sorted, now)
        requests: dict[int, list[int]] = {}
        credits = self.credits
        for uid in busy_sorted:
            u = self.units[uid]
            if u.state != _ACTIVE or not u.queue:
                continue
            if u.queue[0][0] > now:
                continue
            out = u.out_unit
            if out < 0:
                res = -out - 1  # ejection to host
            else:
                if credits[out] <= 0:
                    continue
                res = self._resource_of(out)  # physical channel
            requests.setdefault(res, []).append(uid)

        rr = self._rr
        for res, reqs in requests.items():
            ptr = rr[res] % len(reqs)
            rr[res] = ptr + 1
            self._send_flit(reqs[ptr], now)
        return len(requests)

    def _send_flit(self, uid: int, now: int) -> None:
        u = self.units[uid]
        _, flit_idx = u.queue.popleft()
        pkt = u.packet
        out = u.out_unit
        is_tail = flit_idx == pkt.size - 1

        # Return the freed buffer slot's credit upstream (after the
        # reverse-link latency). Injection units backpressure the source
        # directly through their queue capacity instead.
        if uid >= self._inj_units:
            self._credit_due.append((now + self.link_cycles, 1, uid))

        if out < 0:
            if is_tail:
                self._deliver(pkt, now + self.link_cycles)
        else:
            self.credits[out] -= 1
            if self._chan_flits is not None:
                self._chan_flits[(out - self._inj_units) // self._v] += 1
            tu = self.units[out]
            tu.queue.append((now + self.link_cycles, flit_idx))
            self._busy.add(out)
            if flit_idx == 0:
                tu.state = _ROUTING
                tu.route_done_cycle = now + self.link_cycles + self.router_cycles
                self._headers.add(out)
                if self._wakes is not None:
                    self._wakes.wake(tu.route_done_cycle)

        if is_tail:
            # Packet fully left this unit; free it for the next one.
            u.state = _IDLE
            u.packet = None
            u.out_unit = _NO_OUT
            if not u.queue:
                self._busy.discard(uid)

    def _stream_flits(self, uid: int, t: int, length: int) -> None:
        """Send ``length`` consecutive flits from ``uid`` at cycles
        ``t .. t+length-1``: the batched equivalent of that many
        uncontended :meth:`_send_flit` grants, with identical per-cycle
        timestamps on downstream arrivals and delivery. The caller
        (:meth:`_burst`) has proven the unit wins its resource on every
        one of those cycles, and schedules the upstream credit returns
        itself (interleaved across the batch's streams in per-cycle
        order)."""
        u = self.units[uid]
        q = u.queue
        pkt = u.packet
        out = u.out_unit
        base = t + self.link_cycles
        # Flit indices in a unit queue are consecutive, so the run is
        # f0..f0+length-1: at most one head (first) and one tail (last).
        f0 = q[0][1]
        has_tail = f0 + length == pkt.size
        whole = length == len(q)
        pop = q.popleft
        if out < 0:
            if whole:
                q.clear()
            else:
                for _ in range(length):
                    pop()
            if has_tail:
                self._deliver(pkt, base + length - 1)
        else:
            self.credits[out] -= length
            if self._chan_flits is not None:
                self._chan_flits[(out - self._inj_units) // self._v] += length
            tu = self.units[out]
            tu.queue.extend(zip(range(base, base + length), range(f0, f0 + length)))
            self._busy.add(out)
            if f0 == 0:
                tu.state = _ROUTING
                tu.route_done_cycle = base + self.router_cycles
                self._headers.add(out)
                self._wakes.wake(tu.route_done_cycle)
            if whole:
                q.clear()
            else:
                for _ in range(length):
                    pop()
        if has_tail:
            u.state = _IDLE
            u.packet = None
            u.out_unit = _NO_OUT
            if not q:
                self._busy.discard(uid)

    def _deliver(self, pkt: _FlitPacket, cycle: int) -> None:
        t_ns = self._time_ns(cycle)
        if self._tracer is not None:
            self._tracer.on_deliver(t_ns, pkt.pid, pkt.dst_host)
        if self._sampler is not None:
            self._delivered_bits_total += pkt.size * self.cfg.flit_bits
        if self._measure_start <= t_ns < self._measure_end:
            self._result.delivered_in_window_bits += pkt.size * self.cfg.flit_bits
            self._result.delivered_in_window_count += 1
            if (
                self._last_fault_ns is not None
                and self._faults_left == 0  # only past the *final* event
                and t_ns >= self._last_fault_ns
            ):
                self._result.post_fault_bits += pkt.size * self.cfg.flit_bits
        if pkt.measured:
            self._result.delivered_measured += 1
            self._result.latencies_ns.append(t_ns - pkt.created_ns)
            self._result.hop_counts.append(pkt.hops)
        if self._recovering:
            self._note_done(pkt.pid, t_ns)

    def _note_done(self, pid: int, t_ns: float) -> None:
        """A tracked packet left the network (delivered or dropped);
        close any fault event whose in-flight set it empties."""
        for record, pids in self._recovering:
            pids.discard(pid)
            if not pids and math.isnan(record.recovery_ns):
                record.recovery_ns = t_ns - record.time_ns
        self._recovering = [(r, p) for r, p in self._recovering if p]

    def _return_credits(self, now: int) -> None:
        """Apply every credit due at or before ``now``. Runs straddling
        ``now`` are applied partially and their remainders re-prepended
        (all with first_due ``now + 1``, which every surviving entry is
        at or past, so the deque stays sorted)."""
        dq = self._credit_due
        if dq and dq[0][0] <= now:
            credits = self.credits
            popleft = dq.popleft
            rem = None
            while dq and dq[0][0] <= now:
                start, count, uid = popleft()
                k = now + 1 - start
                if k >= count:
                    credits[uid] += count
                else:
                    credits[uid] += k
                    if rem is None:
                        rem = [(now + 1, count - k, uid)]
                    else:
                        rem.append((now + 1, count - k, uid))
            if rem is not None:
                dq.extendleft(reversed(rem))

    # ------------------------------------------------------------------
    # dynamic fault injection
    # ------------------------------------------------------------------
    def _clear_unit(self, uid: int) -> int:
        """Discard a unit's buffered flits and free it; returns the
        number of flits discarded. Freed slots are credited back to the
        unit immediately (the upstream sender decremented them when it
        sent) -- injection units backpressure via queue length instead,
        so their credits are untouched."""
        u = self.units[uid]
        dropped = len(u.queue)
        if dropped and uid >= self._inj_units:
            self.credits[uid] += dropped
        u.queue.clear()
        u.state = _IDLE
        u.packet = None
        u.out_unit = _NO_OUT
        u.inject_left = 0
        u.next_flit = 0
        u.sa_ready_cycle = 0
        self._busy.discard(uid)
        self._headers.discard(uid)
        return dropped

    def _apply_fault(self, faults, now: int) -> None:
        """Kill the links of one fault event at cycle ``now``.

        Semantics (see docs/resilience.md):

        * every packet with a flit buffered in -- or already forwarded
          through the head of -- a dead channel is dropped whole: its
          flits everywhere in the network are discarded and counted;
        * a packet that merely *reserved* a dead channel (no flit
          crossed yet) is not dropped: the reservation is cancelled and
          the packet re-routes at its current switch;
        * the routing adapter is rebuilt on the survivor graph, and the
          reroute epoch bump makes every in-flight packet re-derive its
          routing state from its current switch at its next decision.
        """
        self._faults_left -= 1
        dead_pairs = faults.dead_link_set(self.live_topo)
        v = self._v
        dead_units: set[int] = set()
        for a, b in dead_pairs:
            for ch in ((a, b), (b, a)):
                base = self._chan_base[ch]
                dead_units.update(range(base, base + v))

        # Packets with at least one flit on a dead channel die whole;
        # pure reservations (idle unit, empty queue) are cancelled.
        dropped_pkts: set = set()
        for tid in dead_units:
            tu = self.units[tid]
            if tu.packet is not None and (tu.queue or tu.state != _IDLE):
                dropped_pkts.add(tu.packet)

        flits_dropped = 0
        for uid, u in enumerate(self.units):
            pkt = u.packet
            if pkt is None:
                if uid in dead_units:
                    flits_dropped += self._clear_unit(uid)
                continue
            if pkt in dropped_pkts:
                if uid < self._inj_units and u.inject_left > 0:
                    # The tail never left the source; drop it from the
                    # host queue too (partial packets are useless).
                    h = uid // v
                    queue = self.host_queue[h]
                    if queue and queue[0] is pkt:
                        queue.popleft()
                        if not queue:
                            self._pending_hosts.discard(h)
                flits_dropped += self._clear_unit(uid)
            elif uid in dead_units:
                # Reserved by a surviving packet but unused: just free it.
                flits_dropped += self._clear_unit(uid)
            elif u.out_unit is not None and u.out_unit >= 0 and u.out_unit in dead_units:
                # Allocation into a dead channel with no flit across it
                # yet: cancel and re-route at this switch (undoing the
                # hop counted when the reservation was made).
                u.out_unit = _NO_OUT
                u.state = _WAIT_VC
                self._headers.add(uid)
                pkt.hops -= 1

        t_ns = self._time_ns(now)
        for pkt in dropped_pkts:
            self._result.packets_dropped += 1
            if pkt.measured:
                self._result.dropped_measured += 1
            if self._recovering:
                self._note_done(pkt.pid, t_ns)
        self._result.flits_dropped += flits_dropped

        # Rebuild routing on the survivor graph. The survivor is a new
        # Topology with a new fingerprint, so repro.cache derives fresh
        # CSR next-hop / up*/down* tables instead of serving the intact
        # network's.
        self.live_topo = faults.apply(self.live_topo)
        t0 = time.perf_counter()
        self.adapter = self.adapter_factory(self.live_topo)
        reroute_wall = time.perf_counter() - t0
        self._reroute_epoch += 1

        survivors = {
            u.packet.pid for u in self.units if u.packet is not None
        }
        record = FaultRecord(
            time_ns=t_ns,
            links_failed=len(dead_pairs),
            packets_dropped=len(dropped_pkts),
            flits_dropped=flits_dropped,
            in_flight_at_fault=len(survivors),
            reroute_wall_s=reroute_wall,
        )
        if survivors:
            self._recovering.append((record, survivors))
        else:
            record.recovery_ns = 0.0
        self._result.fault_records.append(record)
        self._last_fault_ns = t_ns
        if self._sampler is not None:
            self._sampler.on_fault(t_ns, len(dead_pairs))
        telemetry.count("faults.events")
        telemetry.count("faults.packets_dropped", len(dropped_pkts))
        telemetry.count("faults.flits_dropped", flits_dropped)
        telemetry.observe("faults.reroute_s", reroute_wall)

    def _arrival_cycle(self) -> float:
        """Smallest cycle ``c`` with ``c * flit_time >= min(_next_arrival)``,
        matching the exact float comparison :meth:`_generate_traffic`
        performs per cycle; ``inf`` once every source has switched off."""
        c = self._arr_cycle
        if c is None:
            arr = self._arr_min_ns
            if not math.isfinite(arr):
                c = math.inf
            else:
                ft = self._flit_ns
                c = int(arr // ft)
                while c * ft < arr:
                    c += 1
            self._arr_cycle = c
        return c

    def _idle_next_event(self, cycle: int, faults_pending, horizon: int) -> int:
        """Earliest future cycle at which a completely idle network
        (``_busy`` and ``_pending_hosts`` both empty) can do anything.

        An idle tick touches no simulation state, so the run loop may
        jump straight to the next of: a pending fault, a due credit
        return, a telemetry sample, the first cycle whose time reaches
        the earliest host arrival, or -- once the drain is complete --
        the multiple-of-512 cycle where the termination check fires.
        Jumping *to* (never past) each of these reproduces the linear
        scan bit for bit: every cycle skipped is one where the original
        loop ran all phases as no-ops.
        """
        nxt = horizon
        if faults_pending:
            nxt = min(nxt, faults_pending[0][0])
        if self._credit_due:
            nxt = min(nxt, self._credit_due[0][0])
        if self._sampler is not None:
            nxt = min(nxt, self._next_sample_cycle)
        nxt = min(nxt, self._arrival_cycle())
        if (
            not faults_pending
            and self._result.delivered_measured + self._result.dropped_measured
            >= self._result.generated_measured
        ):
            # Next multiple-of-512 cycle past the measurement window:
            # the termination check would break there if nothing else
            # (an arrival, a fault) intervenes -- and if something does,
            # the min above lands us on it first.
            brk = (cycle // 512 + 1) * 512
            if brk < self._probe0:
                brk = self._probe0
            nxt = min(nxt, brk)
        return int(nxt)

    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        horizon_ns = self._measure_end + self.cfg.drain_ns
        horizon = math.ceil(horizon_ns / self.cfg.flit_time_ns)
        # First multiple-of-512 cycle strictly past the measurement
        # window: the earliest candidate termination-probe cycle.
        probe = 512
        while probe * self._flit_ns <= self._measure_end:
            probe += 512
        self._probe0 = probe
        gaps = self._arrival_gaps()
        for h in range(self.num_hosts):
            self._next_arrival[h] = gaps.next(h)
        self._arr_min_ns = float(np.min(self._next_arrival))
        self._arr_cycle = None

        if self._router is not None:
            # The staged router arbitrates VA/SA every cycle, so the
            # event engine's send-only burst windows (which assume the
            # ideal model's greedy allocation) do not apply: both
            # engine spellings run the linear scan, trivially
            # byte-identical.
            self._run_cycle(horizon)
        elif self.engine == "event":
            self._run_event(horizon)
        else:
            self._run_cycle(horizon)

        if self._router is not None:
            self._router.flush_telemetry()
        if self._last_fault_ns is not None:
            window = self._measure_end - max(self._last_fault_ns, self._measure_start)
            self._result.post_fault_window_ns = max(0.0, window)
        if self._ff_cycles_skipped:
            telemetry.count("flit.fast_forward_cycles", self._ff_cycles_skipped)
        if self._ev_full_cycles:
            telemetry.count("flit.event_full_cycles", self._ev_full_cycles)
            telemetry.count("flit.event_micro_cycles", self._ev_micro_cycles)
        if self._sampler is not None:
            self._result.telemetry = self._sampler.finalize("sim.flit")
            self._result.telemetry["samples"] = self._sampler.records()
        return self._result

    def _run_cycle(self, horizon: int) -> None:
        """The linear reference scan: visit every cycle (modulo the
        whole-network-idle fast-forward) and run all phases."""
        faults_pending = deque(sorted(self._fault_queue, key=lambda f: f[0]))
        cycle = 0
        while cycle < horizon:
            while faults_pending and faults_pending[0][0] <= cycle:
                self._apply_fault(faults_pending.popleft()[1], cycle)
            self._return_credits(cycle)
            self._generate_traffic(cycle)
            if self._pending_hosts:
                self._inject(cycle)
            if self._headers:
                self._route_and_allocate(sorted(self._headers), cycle)
            if self._busy:
                self._switch_allocation(self._busy.snapshot(), cycle)
            if self._sampler is not None and cycle >= self._next_sample_cycle:
                self._take_sample(cycle)
                self._next_sample_cycle += self._sample_cycles
            if (
                cycle % 512 == 0
                and not faults_pending
                and self._time_ns(cycle) > self._measure_end
                and self._result.delivered_measured + self._result.dropped_measured
                >= self._result.generated_measured
            ):
                break
            if self._fast_forward and not self._busy and not self._pending_hosts:
                nxt = max(cycle + 1, self._idle_next_event(cycle, faults_pending, horizon))
                self._ff_cycles_skipped += nxt - cycle - 1
                cycle = nxt
            else:
                cycle += 1

    # ------------------------------------------------------------------
    # event-driven core
    # ------------------------------------------------------------------
    def _run_event(self, horizon: int) -> None:
        """Event-driven run loop: cost scales with traffic, not cycles.

        The loop alternates two regimes, both bit-identical to the
        linear scan by construction:

        * **full ticks** run every phase exactly as :meth:`_run_cycle`
          does. A full tick is scheduled for every cycle on which
          anything other than an ACTIVE-unit flit send can happen: host
          arrivals (exact-cycle conversion of the next Poisson arrival),
          pending-host injection, router-pipeline completions (wake
          events pushed when a head enters a router), fault
          activations (payload events), telemetry samples, and the
          multiple-of-512 termination probe. While any unit waits for a
          VC the loop ticks every cycle -- a failed allocation re-runs
          the adapter (and its RNG draws) per cycle, which must be
          reproduced exactly.
        * **send bursts** (:meth:`_burst`) cover the windows between
          full ticks, where provably the only possible state changes
          are credit returns and ACTIVE units moving flits -- the route
          /inject/generate phases are no-ops there by the scheduling
          argument above, so the burst runs only the credit and
          switch-allocation work of each cycle, skipping cycles where
          no flit is usable.
        """
        wakes = CycleEventQueue()
        self._wakes = wakes
        for due, faults in sorted(self._fault_queue, key=lambda f: f[0]):
            wakes.schedule(due, faults)

        measure_end = self._measure_end
        result = self._result
        cycle = 0
        while cycle < horizon:
            # ---- one full tick: phase order identical to _run_cycle --
            self._ev_full_cycles += 1
            if wakes.payloads_pending:
                for faults in wakes.pop_due(cycle):
                    self._apply_fault(faults, cycle)
            self._return_credits(cycle)
            t_ns = self._time_ns(cycle)
            if self._arr_min_ns <= t_ns:
                self._generate_traffic(cycle)
            if self._pending_hosts:
                self._inject(cycle)
            waiting = False
            if self._headers:
                waiting = self._route_and_allocate(sorted(self._headers), cycle)
            if self._busy:
                self._switch_allocation(self._busy.snapshot(), cycle)
            if self._sampler is not None and cycle >= self._next_sample_cycle:
                self._take_sample(cycle)
                self._next_sample_cycle += self._sample_cycles
            if (
                cycle % 512 == 0
                and not wakes.payloads_pending
                and t_ns > measure_end
                and result.delivered_measured + result.dropped_measured
                >= result.generated_measured
            ):
                break

            # ---- schedule the next full tick -------------------------
            if self._pending_hosts or waiting:
                cycle += 1
                continue
            stop = self._next_full_tick(cycle, wakes, horizon)
            if stop <= cycle + 1:
                cycle += 1
            elif self._busy:
                cycle = self._burst(cycle + 1, stop, wakes)
            else:
                # Whole network idle: nothing to do before the next
                # event; land exactly on due credit buckets so none is
                # skipped over.
                if self._credit_due:
                    stop = min(stop, self._credit_due[0][0])
                stop = max(stop, cycle + 1)
                self._ff_cycles_skipped += stop - cycle - 1
                cycle = stop
        self._wakes = None

    def _next_full_tick(self, cycle: int, wakes: CycleEventQueue, horizon: int) -> int:
        """Earliest future cycle that needs a full tick: the next wake
        (router-pipeline completion or fault), host arrival, telemetry
        sample, or termination probe. Credit returns and ACTIVE-unit
        sends are *not* included -- the burst loop replays those
        in-window at their exact cycles."""
        nxt = horizon
        w = wakes.peek(cycle + 1)
        if w is not None and w < nxt:
            nxt = w
        if self._sampler is not None:
            nxt = min(nxt, self._next_sample_cycle)
        nxt = min(nxt, self._arrival_cycle())
        if not wakes.payloads_pending:
            # The termination probe only fires past the measurement
            # window, but deliveries *inside* a burst can make it
            # eligible -- so always cap at the next candidate probe
            # cycle; the full tick there re-evaluates the condition.
            brk = (cycle // 512 + 1) * 512
            if brk < self._probe0:
                brk = self._probe0
            nxt = min(nxt, brk)
        return int(nxt)

    def _burst(self, start: int, stop: int, wakes: CycleEventQueue) -> int:
        """Advance cycles ``[start, stop)`` in the send-only regime.

        Precondition (established by the caller's full tick): no
        pending hosts, no unit waiting for a VC, every ROUTING unit due
        at or after ``stop``, and no arrival, fault, sample or
        termination probe before ``stop``. In that window the cycle
        engine's generate/inject/route phases are no-ops, so each cycle
        reduces to the credit-return and switch-allocation phases over
        the ACTIVE units -- replayed here with the identical request
        order, round-robin pointer arithmetic and credit timing.
        Returns the cycle the next full tick must run at (``stop``, or
        earlier when a sent head starts a router pipeline due inside
        the window).
        """
        units = self.units
        credits = self.credits
        credit_due = self._credit_due
        ret_credits = self._return_credits
        rr = self._rr
        nh = self.num_hosts
        inj = self._inj_units
        v = self._v
        stream = self._stream_flits
        send = self._send_flit
        peek = wakes.peek
        link = self.link_cycles
        cap_hard = link + self.router_cycles
        actors = [uid for uid in self._busy if units[uid].state == _ACTIVE]
        t = start
        micro = 0
        while t < stop:
            micro += 1
            if credit_due and credit_due[0][0] <= t:
                ret_credits(t)
            # Requests in ascending unit order (actors is sorted and
            # only ever filtered), then one grant per resource -- the
            # exact _switch_allocation semantics. The same pass collects
            # batch caps: ``cap`` bounds a multi-cycle batch at the
            # earliest cycle a *future* queue head could start
            # requesting, ``unstable`` marks actors a credit return or
            # an in-run arrival could enable (empty-queue receivers and
            # credit-blocked senders).
            requests: dict[int, int | list[int]] = {}
            contended = False
            unstable = False
            cap = stop - t
            if cap > cap_hard:
                # Router pipelines started by the batch's own head flits
                # must complete at or after its end.
                cap = cap_hard
            for uid in actors:
                u = units[uid]
                if u.state != _ACTIVE:
                    continue
                q = u.queue
                if not q:
                    unstable = True
                    continue
                a = q[0][0]
                if a > t:
                    d = a - t
                    if d < cap:
                        cap = d
                    continue
                out = u.out_unit
                if out < 0:
                    res = -out - 1
                else:
                    if credits[out] <= 0:
                        unstable = True
                        continue
                    res = nh + (out - inj) // v
                prev = requests.get(res)
                if prev is None:
                    requests[res] = uid
                elif type(prev) is int:
                    requests[res] = [prev, uid]
                    contended = True
                else:
                    prev.append(uid)
            if requests:
                # An uncontended request set usually repeats unchanged
                # for a run of cycles: each requester keeps winning its
                # resource until its queue runs dry (contiguous-arrival
                # check below), its credits run out, its packet tail
                # leaves, or an outside actor could join (the caps
                # above). Prove that run length and send it as one
                # batch instead of re-arbitrating every cycle.
                if contended:
                    length = 0
                else:
                    length = cap
                    if unstable:
                        if length > link:
                            length = link
                        if credit_due:
                            m = credit_due[0][0] - t
                            if m < length:
                                length = m
                    if length > 1:
                        for req in requests.values():
                            u = units[req]
                            out = u.out_unit
                            cmax = length if out < 0 else min(length, credits[out])
                            run = 0
                            for arr, _ in u.queue:
                                if run >= cmax or arr > t + run:
                                    break
                                run += 1
                            if run < length:
                                length = run
                if length > 1:
                    for res, req in requests.items():
                        rr[res] = 1  # single requester wins every cycle
                        stream(req, t, length)
                    # Schedule each sender's credit returns as one run
                    # (one per cycle over the batch window, shifted by
                    # the link latency), then apply any return due
                    # strictly inside the batch window -- the per-cycle
                    # loop would have applied each at its exact cycle,
                    # and no request decision in the window reads them
                    # (the batch proof reserved full credit headroom),
                    # so applying them at the window's end is
                    # observationally identical.
                    base = t + link
                    for req in requests.values():
                        if req >= inj:
                            credit_due.append((base, length, req))
                    end = t + length
                    if credit_due and credit_due[0][0] < end:
                        ret_credits(end - 1)
                    micro += length - 1
                    w = peek(end)
                    if w is not None and w < stop:
                        stop = w
                    t = end
                    continue
                for res, req in requests.items():
                    if type(req) is int:
                        rr[res] = 1  # ptr 0 of a 1-list, advanced past
                        send(req, t)
                    else:
                        ptr = rr[res] % len(req)
                        rr[res] = ptr + 1
                        send(req[ptr], t)
                # A sent head may have started a router pipeline due
                # inside the window; the full tick must run there.
                w = peek(t + 1)
                if w is not None and w < stop:
                    stop = w
                t += 1
                continue
            # No flit usable this cycle: hop to the next credit return
            # or flit arrival that could enable one (or straight to
            # ``stop`` when every actor has finished).
            nt = stop
            if credit_due:
                m = credit_due[0][0]
                if m < nt:
                    nt = m
            for uid in actors:
                u = units[uid]
                if u.state == _ACTIVE and u.queue:
                    a = u.queue[0][0]
                    if t < a < nt:
                        nt = a
            t = nt if nt > t else t + 1
        self._ev_micro_cycles += micro
        return min(t, stop)

    def _take_sample(self, cycle: int) -> None:
        """Feed the sampler one snapshot (observation only: no sim state
        or RNG stream is touched, so results match a telemetry-off run
        bit for bit)."""
        if self._router is not None:
            self._router.sample_stages()
        occ = (
            (self.buffer_flits - np.asarray(self.credits[self._inj_units :]))
            .reshape(-1, self._v)
            .sum(axis=1)
        )
        self._sampler.sample(
            self._time_ns(cycle),
            chan_flits=self._chan_flits,
            occupancy=occ,
            delivered_bits=self._delivered_bits_total,
            offered_bits=self._next_pid * self.cfg.packet_bits,
        )
