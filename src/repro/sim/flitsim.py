"""Cycle-driven flit-level simulator (the reference engine).

While :mod:`repro.sim.network` schedules whole-packet transfers (exact
for virtual cut-through with one-packet buffers), this engine ticks the
network cycle by cycle and moves *individual flits*, modeling:

* per-flit credit-based flow control with configurable buffer depth
  ``buffer_flits`` -- set it below the packet size to get **wormhole
  switching** (blocked packets stall stretched across switches, the
  mode Section V-A's deadlock discussion also covers), or at/above the
  packet size for **virtual cut-through**;
* a per-cycle crossbar constraint: one flit per output port per cycle,
  with round-robin switch allocation among competing inputs;
* a router pipeline of ``ceil(router_delay / flit_time)`` cycles per
  header and link pipelines of ``ceil(link_delay / flit_time)`` cycles.

One cycle is one flit time (256 bits / 96 Gbps = 2.67 ns by default).

The per-cycle bookkeeping is batched: input units are dense integer
ids (injection units first, then switch units in canonical channel
order, so id order equals the canonical key order), credits live in
one numpy array indexed by unit id, credit returns are bucketed by due
cycle, and traffic generation scans all hosts with a single vectorized
comparison. Only units flagged busy (or hosts with queued packets) are
touched per cycle, always in ascending id order -- which makes runs
deterministic regardless of ``PYTHONHASHSEED``, unlike the former
dict-of-tuples structures. Round-robin crossbar arbitration semantics
are unchanged: one flit per output resource per cycle, pointer
advanced past the granted requester.

The engine is still the slower reference next to the event-driven one;
experiments use it for cross-validation (tests pin the two engines to
the same zero-load latency) and for the wormhole-vs-VCT ablation.

**Dynamic fault injection** (``fault_schedule=``): links can die
mid-run. At each fault instant the engine discards every flit sitting
on (or committed to) a dead channel -- the owning packets are dropped
whole and counted -- cancels not-yet-used reservations into dead
channels, rebuilds the routing adapter on the survivor graph via
``adapter_factory`` (new topology fingerprint, so :mod:`repro.cache`
re-derives the CSR next-hop and up*/down* tables instead of serving
stale ones) and bumps a *reroute epoch*: every packet still in flight
re-resolves its routing state from its current switch at its next
routing decision. Recovery time (ns until the pre-fault in-flight
population has drained over the new tables) and post-fault accepted
traffic land in the :class:`~repro.sim.metrics.SimResult`. See
``docs/resilience.md`` for the exact semantics.
"""

from __future__ import annotations

import math
import time
from collections import defaultdict, deque
from typing import Any, Callable

import numpy as np

from repro import telemetry
from repro.sim.adapters import RoutingAdapter
from repro.sim.arrivals import PoissonGaps
from repro.sim.config import SimConfig
from repro.sim.metrics import FaultRecord, SimResult
from repro.telemetry.samplers import SimSampler
from repro.topologies.base import Topology
from repro.traffic.patterns import TrafficPattern
from repro.util import make_rng

__all__ = ["FlitLevelSimulator"]


class _FlitPacket:
    """Packet bookkeeping for the flit engine."""

    __slots__ = (
        "pid",
        "src_host",
        "dst_host",
        "dst_switch",
        "size",
        "created_ns",
        "measured",
        "rstate",
        "hops",
        "repoch",
    )

    def __init__(self, pid, src_host, dst_host, dst_switch, size, created_ns, measured):
        self.pid = pid
        self.src_host = src_host
        self.dst_host = dst_host
        self.dst_switch = dst_switch
        self.size = size
        self.created_ns = created_ns
        self.measured = measured
        self.rstate: Any = None
        self.hops = 0
        self.repoch = 0  #: reroute epoch the rstate was derived under


#: input-unit states
_IDLE, _ROUTING, _WAIT_VC, _ACTIVE = range(4)

#: sentinel out_unit meaning "no output allocated"
_NO_OUT = None


class _InputUnit:
    """One (input port, VC) buffer of a switch: holds one packet's flits.

    ``queue`` entries are ``(arrival_cycle, flit_idx)``; a flit is
    usable once ``arrival_cycle <= now`` (link pipelining).
    ``out_unit`` is the downstream unit id, or ``-(host + 1)`` for
    ejection to ``host``.
    """

    __slots__ = ("queue", "state", "packet", "route_done_cycle", "out_unit", "inject_left", "next_flit")

    def __init__(self):
        self.queue: deque[tuple[int, int]] = deque()
        self.state = _IDLE
        self.packet: _FlitPacket | None = None
        self.route_done_cycle = 0
        self.out_unit: int | None = _NO_OUT
        self.inject_left = 0  # injection units: flits still to stream in
        self.next_flit = 0


class FlitLevelSimulator:
    """Synchronous flit-level simulation of one run.

    Parameters mirror :class:`repro.sim.network.NetworkSimulator`, plus
    ``buffer_flits``: input-buffer depth per VC in flits. ``None`` means
    one full packet (virtual cut-through); smaller values give wormhole
    behaviour.

    ``fault_schedule`` (a :class:`repro.faults.FaultSchedule`, or any
    object with the same ``events``/``validate`` surface) injects timed
    link failures; it requires ``adapter_factory``, a callable mapping
    a survivor :class:`Topology` to a fresh :class:`RoutingAdapter`
    (see :mod:`repro.faults.dynamic` for the standard factories). Only
    link faults are supported dynamically -- a schedule with dead
    switches is rejected, since hosts would vanish mid-run.

    ``tracer`` (a :class:`~repro.sim.trace.TraceRecorder`) receives
    packet inject/hop/deliver events through the same hook surface
    :class:`~repro.sim.network.NetworkSimulator` uses. When telemetry
    is enabled (``REPRO_TELEMETRY=1``) the engine also attaches a
    :class:`~repro.telemetry.samplers.SimSampler` that snapshots
    per-link flit utilization, per-VC queue occupancy and accepted-vs-
    offered load every ``REPRO_TELEMETRY_INTERVAL_NS`` of simulated
    time; the digest lands in ``SimResult.telemetry``.
    """

    #: When the network is completely idle (no busy units, no queued
    #: hosts) the run loop jumps straight to the next event cycle
    #: instead of ticking one cycle at a time. Results are bit-identical
    #: (tests/test_sim_flit.py pins this); set to ``False`` on an
    #: instance to force the plain linear scan.
    _fast_forward = True

    def __init__(
        self,
        topo: Topology,
        adapter: RoutingAdapter,
        pattern: TrafficPattern,
        offered_gbps: float,
        config: SimConfig | None = None,
        buffer_flits: int | None = None,
        fault_schedule=None,
        adapter_factory: Callable[[Topology], RoutingAdapter] | None = None,
        tracer=None,
    ):
        self.topo = topo
        self.live_topo = topo  #: survivor graph after applied faults
        self.adapter = adapter
        self.adapter_factory = adapter_factory
        self.pattern = pattern
        self.offered_gbps = offered_gbps
        self.cfg = config or SimConfig()
        self.fault_schedule = fault_schedule
        if fault_schedule is not None and len(fault_schedule):
            if adapter_factory is None:
                raise ValueError(
                    "fault_schedule needs adapter_factory to rebuild routing "
                    "on the survivor graph (see repro.faults.dynamic)"
                )
            if any(e.faults.dead_switches for e in fault_schedule.events):
                raise ValueError("dynamic fault injection supports link faults only")
            fault_schedule.validate(topo)
        self.buffer_flits = buffer_flits if buffer_flits is not None else self.cfg.packet_flits
        if self.buffer_flits < 1:
            raise ValueError("buffer_flits must be >= 1")
        if pattern.num_hosts != topo.n * self.cfg.hosts_per_switch:
            raise ValueError("traffic pattern size does not match the network")
        self.num_hosts = pattern.num_hosts
        self.rng = make_rng(self.cfg.seed)

        self.router_cycles = max(1, math.ceil(self.cfg.router_delay_ns / self.cfg.flit_time_ns))
        self.link_cycles = max(1, math.ceil(self.cfg.link_delay_ns / self.cfg.flit_time_ns))

        v = self.cfg.num_vcs
        # Dense unit ids: injection units (host-major, VC-minor) first,
        # then switch units in sorted directed-channel order, VC-minor.
        # The unit at switch b fed by the channel a -> b for VC k has id
        # inj_units + chan_index(a, b) * v + k.
        self._v = v
        self._inj_units = self.num_hosts * v
        channels = []
        for link in topo.links:
            channels.append((link.u, link.v))
            channels.append((link.v, link.u))
        channels.sort()
        self._chan_base = {
            ch: self._inj_units + i * v for i, ch in enumerate(channels)
        }
        num_units = self._inj_units + len(channels) * v
        self.units: list[_InputUnit] = [_InputUnit() for _ in range(num_units)]
        # Switch each unit routes at (injection units sit at the host's
        # switch; a channel unit sits at the channel's head switch).
        unit_switch = [0] * num_units
        for h in range(self.num_hosts):
            for vc in range(v):
                unit_switch[h * v + vc] = self.switch_of(h)
        for (a, b), base in self._chan_base.items():
            for vc in range(v):
                unit_switch[base + vc] = b
        self._unit_switch = unit_switch

        # Free downstream buffer slots, tracked at the sender side, and
        # credit returns bucketed by the cycle they come due.
        self.credits = np.full(num_units, self.buffer_flits, dtype=np.int64)
        self._credit_due: defaultdict[int, list[int]] = defaultdict(list)

        # Output resources for crossbar arbitration: one per ejection
        # host (ids 0..H-1), one per directed channel (H..H+C-1).
        self._rr = np.zeros(self.num_hosts + len(channels), dtype=np.int64)

        self._busy: set[int] = set()  # units that may need per-cycle work
        self._pending_hosts: set[int] = set()  # hosts with queued packets

        # Fault machinery: events keyed by due cycle, a reroute epoch
        # stamped on packets, and per-event recovery trackers.
        self._reroute_epoch = 0
        self._fault_queue: list[tuple[int, object]] = []
        if fault_schedule is not None:
            self._fault_queue = [
                (math.ceil(e.time_ns / self.cfg.flit_time_ns), e.faults)
                for e in fault_schedule.events
            ]
        self._recovering: list[tuple[FaultRecord, set[int]]] = []
        self._ff_cycles_skipped = 0  #: idle cycles skipped by fast-forward
        self._faults_left = len(self._fault_queue)
        self._last_fault_ns: float | None = None

        self.host_queue: list[deque[_FlitPacket]] = [deque() for _ in range(self.num_hosts)]
        self._next_arrival = np.zeros(self.num_hosts)
        self._arrivals: PoissonGaps | None = None  # built on first use (needs rate > 0)
        self._next_pid = 0

        # Telemetry: a per-packet-event tracer (same hook surface as
        # NetworkSimulator's) and, when telemetry is enabled, a periodic
        # sampler fed from cumulative per-channel flit counts. With
        # telemetry off both stay None and the only per-cycle cost is
        # one ``is not None`` check in :meth:`run`.
        self._tracer = tracer
        self._sampler: SimSampler | None = None
        self._chan_flits: np.ndarray | None = None
        self._delivered_bits_total = 0.0
        self._sample_cycles = 0
        self._next_sample_cycle = 0
        if telemetry.enabled():
            self._sampler = SimSampler(
                channels,
                num_hosts=self.num_hosts,
                flit_time_ns=self.cfg.flit_time_ns,
                engine="flit",
            )
            self._chan_flits = np.zeros(len(channels), dtype=np.int64)
            self._sample_cycles = max(
                1, math.ceil(self._sampler.interval_ns / self.cfg.flit_time_ns)
            )
            self._next_sample_cycle = self._sample_cycles

        self._measure_start = self.cfg.warmup_ns
        self._measure_end = self.cfg.warmup_ns + self.cfg.measure_ns
        self._result = SimResult(
            topology=topo.name,
            pattern=pattern.name,
            offered_gbps=offered_gbps,
            num_hosts=self.num_hosts,
            measure_window_ns=self.cfg.measure_ns,
        )

    # ------------------------------------------------------------------
    def switch_of(self, host: int) -> int:
        return host // self.cfg.hosts_per_switch

    def _time_ns(self, cycle: int) -> float:
        return cycle * self.cfg.flit_time_ns

    def _resource_of(self, out_unit: int) -> int:
        """Arbitration resource of a downstream unit: its channel."""
        return self.num_hosts + (out_unit - self._inj_units) // self._v

    def _arrival_gaps(self) -> PoissonGaps:
        """Per-host batched Exp(1/rate) gap streams (built lazily so a
        zero offered load still fails at draw time, as before)."""
        if self._arrivals is None:
            rate = self.cfg.packets_per_ns(self.offered_gbps)
            self._arrivals = PoissonGaps(self.cfg.seed, self.num_hosts, 1.0 / rate)
        return self._arrivals

    # ------------------------------------------------------------------
    # per-cycle phases
    # ------------------------------------------------------------------
    def _generate_traffic(self, now: int) -> None:
        t_ns = self._time_ns(now)
        due = np.flatnonzero(self._next_arrival <= t_ns)
        if due.size == 0:
            return
        gaps = self._arrival_gaps()
        for h in due.tolist():
            while self._next_arrival[h] <= t_ns:
                created = float(self._next_arrival[h])
                if created >= self._measure_end:
                    # Sources switch off when the measurement window
                    # closes: the drain phase flushes the backlog only.
                    # With deadlock-free routing the in-flight population
                    # is then finite, so full delivery is guaranteed for
                    # a long enough drain (see tests/test_fuzz_sim.py).
                    self._next_arrival[h] = math.inf
                    break
                dst = self.pattern.destination(h, self.rng)
                measured = self._measure_start <= created < self._measure_end
                pkt = _FlitPacket(
                    self._next_pid, h, dst, self.switch_of(dst),
                    self.cfg.packet_flits, created, measured,
                )
                self._next_pid += 1
                if measured:
                    self._result.generated_measured += 1
                self.host_queue[h].append(pkt)
                self._pending_hosts.add(h)
                self._next_arrival[h] += gaps.next(h)

    def _inject(self, now: int) -> None:
        """Stream source-queue packets into injection units, one flit
        per host per cycle (the injection link's bandwidth)."""
        v = self._v
        for h in sorted(self._pending_hosts):
            queue = self.host_queue[h]
            pkt = queue[0]
            uid = None
            # Continue streaming into the unit already carrying pkt, or
            # claim the first idle injection VC for a fresh head.
            for vc in range(v):
                i = h * v + vc
                u = self.units[i]
                if u.packet is pkt:
                    uid = i
                    break
                if uid is None and u.packet is None and not u.queue:
                    uid = i
            if uid is None:
                continue
            u = self.units[uid]
            if u.packet is not pkt:
                u.packet = pkt
                u.state = _ROUTING
                u.route_done_cycle = now + self.router_cycles
                u.inject_left = pkt.size
                u.next_flit = 0
                pkt.rstate = self.adapter.initial_state(self.switch_of(h), pkt.dst_switch)
                self._busy.add(uid)
                if self._tracer is not None:
                    self._tracer.on_inject(
                        self._time_ns(now), pkt.pid, self.switch_of(h), pkt.dst_switch
                    )
            if u.inject_left > 0 and len(u.queue) < self.buffer_flits:
                u.queue.append((now, u.next_flit))
                u.next_flit += 1
                u.inject_left -= 1
                if u.inject_left == 0:
                    queue.popleft()
                    if not queue:
                        self._pending_hosts.discard(h)

    def _route_and_allocate(self, busy_sorted: list[int], now: int) -> None:
        """Router pipeline + VC allocation for units holding a header."""
        credits = self.credits
        units = self.units
        for uid in busy_sorted:
            u = units[uid]
            if u.state == _ROUTING and now >= u.route_done_cycle:
                u.state = _WAIT_VC
            if u.state != _WAIT_VC:
                continue
            pkt = u.packet
            at_switch = self._unit_switch[uid]
            if pkt.repoch != self._reroute_epoch:
                # A fault rebuilt the tables since this packet's routing
                # state was derived: re-resolve from the current switch
                # (for source-routed adapters this recomputes the whole
                # remaining path on the survivor graph).
                pkt.rstate = self.adapter.initial_state(at_switch, pkt.dst_switch)
                pkt.repoch = self._reroute_epoch
            if at_switch == pkt.dst_switch:
                u.out_unit = -(pkt.dst_host + 1)
                u.state = _ACTIVE
                continue
            # VCT requires room for the whole packet downstream before
            # the head advances; wormhole advances on any free slot.
            need = pkt.size if self.buffer_flits >= pkt.size else 1
            for opt in self.adapter.options(at_switch, pkt.dst_switch, pkt.rstate):
                base = self._chan_base[(at_switch, opt.next_node)]
                for vc in opt.vc_indices:
                    tid = base + vc
                    tu = units[tid]
                    if tu.packet is None and not tu.queue and credits[tid] >= need:
                        tu.packet = pkt  # reserve the downstream VC
                        u.out_unit = tid
                        u.state = _ACTIVE
                        pkt.rstate = opt.new_rstate
                        pkt.hops += 1
                        if self._tracer is not None:
                            self._tracer.on_hop(
                                self._time_ns(now), pkt.pid, at_switch, opt.next_node, vc
                            )
                        break
                else:
                    continue
                break

    def _switch_allocation(self, busy_sorted: list[int], now: int) -> None:
        """One flit per output resource per cycle, round-robin arbiter.

        Requests are gathered in ascending unit-id order (the canonical
        port order), so each resource's request list is already sorted
        and the round-robin pointer walks it exactly as before.
        """
        requests: dict[int, list[int]] = {}
        credits = self.credits
        for uid in busy_sorted:
            u = self.units[uid]
            if u.state != _ACTIVE or not u.queue:
                continue
            if u.queue[0][0] > now:
                continue
            out = u.out_unit
            if out < 0:
                res = -out - 1  # ejection to host
            else:
                if credits[out] <= 0:
                    continue
                res = self._resource_of(out)  # physical channel
            requests.setdefault(res, []).append(uid)

        rr = self._rr
        for res, reqs in requests.items():
            ptr = int(rr[res]) % len(reqs)
            rr[res] = ptr + 1
            self._send_flit(reqs[ptr], now)

    def _send_flit(self, uid: int, now: int) -> None:
        u = self.units[uid]
        _, flit_idx = u.queue.popleft()
        pkt = u.packet
        out = u.out_unit
        is_tail = flit_idx == pkt.size - 1

        # Return the freed buffer slot's credit upstream (after the
        # reverse-link latency). Injection units backpressure the source
        # directly through their queue capacity instead.
        if uid >= self._inj_units:
            self._credit_due[now + self.link_cycles].append(uid)

        if out < 0:
            if is_tail:
                self._deliver(pkt, now + self.link_cycles)
        else:
            self.credits[out] -= 1
            if self._chan_flits is not None:
                self._chan_flits[(out - self._inj_units) // self._v] += 1
            tu = self.units[out]
            tu.queue.append((now + self.link_cycles, flit_idx))
            self._busy.add(out)
            if flit_idx == 0:
                tu.state = _ROUTING
                tu.route_done_cycle = now + self.link_cycles + self.router_cycles

        if is_tail:
            # Packet fully left this unit; free it for the next one.
            u.state = _IDLE
            u.packet = None
            u.out_unit = _NO_OUT
            if not u.queue:
                self._busy.discard(uid)

    def _deliver(self, pkt: _FlitPacket, cycle: int) -> None:
        t_ns = self._time_ns(cycle)
        if self._tracer is not None:
            self._tracer.on_deliver(t_ns, pkt.pid, pkt.dst_host)
        if self._sampler is not None:
            self._delivered_bits_total += pkt.size * self.cfg.flit_bits
        if self._measure_start <= t_ns < self._measure_end:
            self._result.delivered_in_window_bits += pkt.size * self.cfg.flit_bits
            self._result.delivered_in_window_count += 1
            if (
                self._last_fault_ns is not None
                and self._faults_left == 0  # only past the *final* event
                and t_ns >= self._last_fault_ns
            ):
                self._result.post_fault_bits += pkt.size * self.cfg.flit_bits
        if pkt.measured:
            self._result.delivered_measured += 1
            self._result.latencies_ns.append(t_ns - pkt.created_ns)
            self._result.hop_counts.append(pkt.hops)
        if self._recovering:
            self._note_done(pkt.pid, t_ns)

    def _note_done(self, pid: int, t_ns: float) -> None:
        """A tracked packet left the network (delivered or dropped);
        close any fault event whose in-flight set it empties."""
        for record, pids in self._recovering:
            pids.discard(pid)
            if not pids and math.isnan(record.recovery_ns):
                record.recovery_ns = t_ns - record.time_ns
        self._recovering = [(r, p) for r, p in self._recovering if p]

    def _return_credits(self, now: int) -> None:
        due = self._credit_due.pop(now, None)
        if due:
            np.add.at(self.credits, due, 1)

    # ------------------------------------------------------------------
    # dynamic fault injection
    # ------------------------------------------------------------------
    def _clear_unit(self, uid: int) -> int:
        """Discard a unit's buffered flits and free it; returns the
        number of flits discarded. Freed slots are credited back to the
        unit immediately (the upstream sender decremented them when it
        sent) -- injection units backpressure via queue length instead,
        so their credits are untouched."""
        u = self.units[uid]
        dropped = len(u.queue)
        if dropped and uid >= self._inj_units:
            self.credits[uid] += dropped
        u.queue.clear()
        u.state = _IDLE
        u.packet = None
        u.out_unit = _NO_OUT
        u.inject_left = 0
        u.next_flit = 0
        self._busy.discard(uid)
        return dropped

    def _apply_fault(self, faults, now: int) -> None:
        """Kill the links of one fault event at cycle ``now``.

        Semantics (see docs/resilience.md):

        * every packet with a flit buffered in -- or already forwarded
          through the head of -- a dead channel is dropped whole: its
          flits everywhere in the network are discarded and counted;
        * a packet that merely *reserved* a dead channel (no flit
          crossed yet) is not dropped: the reservation is cancelled and
          the packet re-routes at its current switch;
        * the routing adapter is rebuilt on the survivor graph, and the
          reroute epoch bump makes every in-flight packet re-derive its
          routing state from its current switch at its next decision.
        """
        self._faults_left -= 1
        dead_pairs = faults.dead_link_set(self.live_topo)
        v = self._v
        dead_units: set[int] = set()
        for a, b in dead_pairs:
            for ch in ((a, b), (b, a)):
                base = self._chan_base[ch]
                dead_units.update(range(base, base + v))

        # Packets with at least one flit on a dead channel die whole;
        # pure reservations (idle unit, empty queue) are cancelled.
        dropped_pkts: set = set()
        for tid in dead_units:
            tu = self.units[tid]
            if tu.packet is not None and (tu.queue or tu.state != _IDLE):
                dropped_pkts.add(tu.packet)

        flits_dropped = 0
        for uid, u in enumerate(self.units):
            pkt = u.packet
            if pkt is None:
                if uid in dead_units:
                    flits_dropped += self._clear_unit(uid)
                continue
            if pkt in dropped_pkts:
                if uid < self._inj_units and u.inject_left > 0:
                    # The tail never left the source; drop it from the
                    # host queue too (partial packets are useless).
                    h = uid // v
                    queue = self.host_queue[h]
                    if queue and queue[0] is pkt:
                        queue.popleft()
                        if not queue:
                            self._pending_hosts.discard(h)
                flits_dropped += self._clear_unit(uid)
            elif uid in dead_units:
                # Reserved by a surviving packet but unused: just free it.
                flits_dropped += self._clear_unit(uid)
            elif u.out_unit is not None and u.out_unit >= 0 and u.out_unit in dead_units:
                # Allocation into a dead channel with no flit across it
                # yet: cancel and re-route at this switch (undoing the
                # hop counted when the reservation was made).
                u.out_unit = _NO_OUT
                u.state = _WAIT_VC
                pkt.hops -= 1

        t_ns = self._time_ns(now)
        for pkt in dropped_pkts:
            self._result.packets_dropped += 1
            if pkt.measured:
                self._result.dropped_measured += 1
            if self._recovering:
                self._note_done(pkt.pid, t_ns)
        self._result.flits_dropped += flits_dropped

        # Rebuild routing on the survivor graph. The survivor is a new
        # Topology with a new fingerprint, so repro.cache derives fresh
        # CSR next-hop / up*/down* tables instead of serving the intact
        # network's.
        self.live_topo = faults.apply(self.live_topo)
        t0 = time.perf_counter()
        self.adapter = self.adapter_factory(self.live_topo)
        reroute_wall = time.perf_counter() - t0
        self._reroute_epoch += 1

        survivors = {
            u.packet.pid for u in self.units if u.packet is not None
        }
        record = FaultRecord(
            time_ns=t_ns,
            links_failed=len(dead_pairs),
            packets_dropped=len(dropped_pkts),
            flits_dropped=flits_dropped,
            in_flight_at_fault=len(survivors),
            reroute_wall_s=reroute_wall,
        )
        if survivors:
            self._recovering.append((record, survivors))
        else:
            record.recovery_ns = 0.0
        self._result.fault_records.append(record)
        self._last_fault_ns = t_ns
        if self._sampler is not None:
            self._sampler.on_fault(t_ns, len(dead_pairs))
        telemetry.count("faults.events")
        telemetry.count("faults.packets_dropped", len(dropped_pkts))
        telemetry.count("faults.flits_dropped", flits_dropped)
        telemetry.observe("faults.reroute_s", reroute_wall)

    def _idle_next_event(self, cycle: int, faults_pending, horizon: int) -> int:
        """Earliest future cycle at which a completely idle network
        (``_busy`` and ``_pending_hosts`` both empty) can do anything.

        An idle tick touches no simulation state, so the run loop may
        jump straight to the next of: a pending fault, a due credit
        return, a telemetry sample, the first cycle whose time reaches
        the earliest host arrival, or -- once the drain is complete --
        the multiple-of-512 cycle where the termination check fires.
        Jumping *to* (never past) each of these reproduces the linear
        scan bit for bit: every cycle skipped is one where the original
        loop ran all phases as no-ops.
        """
        nxt = horizon
        if faults_pending:
            nxt = min(nxt, faults_pending[0][0])
        if self._credit_due:
            nxt = min(nxt, min(self._credit_due))
        if self._sampler is not None:
            nxt = min(nxt, self._next_sample_cycle)
        arr = float(np.min(self._next_arrival))
        if math.isfinite(arr):
            # Smallest c with c * flit_time >= arr, matching the exact
            # float comparison _generate_traffic performs per cycle.
            c = int(arr // self.cfg.flit_time_ns)
            while self._time_ns(c) < arr:
                c += 1
            nxt = min(nxt, c)
        if (
            not faults_pending
            and self._result.delivered_measured + self._result.dropped_measured
            >= self._result.generated_measured
        ):
            # Next multiple-of-512 cycle past the measurement window:
            # the termination check would break there if nothing else
            # (an arrival, a fault) intervenes -- and if something does,
            # the min above lands us on it first.
            brk = (cycle // 512 + 1) * 512
            while self._time_ns(brk) <= self._measure_end:
                brk += 512
            nxt = min(nxt, brk)
        return nxt

    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        horizon_ns = self._measure_end + self.cfg.drain_ns
        horizon = math.ceil(horizon_ns / self.cfg.flit_time_ns)
        gaps = self._arrival_gaps()
        for h in range(self.num_hosts):
            self._next_arrival[h] = gaps.next(h)

        faults_pending = deque(sorted(self._fault_queue, key=lambda f: f[0]))
        cycle = 0
        while cycle < horizon:
            while faults_pending and faults_pending[0][0] <= cycle:
                self._apply_fault(faults_pending.popleft()[1], cycle)
            self._return_credits(cycle)
            self._generate_traffic(cycle)
            if self._pending_hosts:
                self._inject(cycle)
            busy_sorted = sorted(self._busy)
            if busy_sorted:
                self._route_and_allocate(busy_sorted, cycle)
                self._switch_allocation(busy_sorted, cycle)
            if self._sampler is not None and cycle >= self._next_sample_cycle:
                self._take_sample(cycle)
                self._next_sample_cycle += self._sample_cycles
            if (
                cycle % 512 == 0
                and not faults_pending
                and self._time_ns(cycle) > self._measure_end
                and self._result.delivered_measured + self._result.dropped_measured
                >= self._result.generated_measured
            ):
                break
            if self._fast_forward and not self._busy and not self._pending_hosts:
                nxt = max(cycle + 1, self._idle_next_event(cycle, faults_pending, horizon))
                self._ff_cycles_skipped += nxt - cycle - 1
                cycle = nxt
            else:
                cycle += 1
        if self._last_fault_ns is not None:
            window = self._measure_end - max(self._last_fault_ns, self._measure_start)
            self._result.post_fault_window_ns = max(0.0, window)
        if self._ff_cycles_skipped:
            telemetry.count("flit.fast_forward_cycles", self._ff_cycles_skipped)
        if self._sampler is not None:
            self._result.telemetry = self._sampler.finalize("sim.flit")
            self._result.telemetry["samples"] = self._sampler.records()
        return self._result

    def _take_sample(self, cycle: int) -> None:
        """Feed the sampler one snapshot (observation only: no sim state
        or RNG stream is touched, so results match a telemetry-off run
        bit for bit)."""
        occ = (
            (self.buffer_flits - self.credits[self._inj_units :])
            .reshape(-1, self._v)
            .sum(axis=1)
        )
        self._sampler.sample(
            self._time_ns(cycle),
            chan_flits=self._chan_flits,
            occupancy=occ,
            delivered_bits=self._delivered_bits_total,
            offered_bits=self._next_pid * self.cfg.packet_bits,
        )
